"""SGD optimiser: updates, momentum, weight decay, surgery rebinding."""

import numpy as np
import pytest

from repro.optim import SGD
from repro.tensor import Tensor


def quadratic_loss(w):
    return (w * w).sum()


class TestVanillaSGD:
    def test_single_step(self):
        w = Tensor([1.0], requires_grad=True)
        opt = SGD([w], lr=0.1)
        quadratic_loss(w).backward()
        opt.step()
        np.testing.assert_allclose(w.data, [0.8])

    def test_converges_on_quadratic(self):
        w = Tensor([5.0, -3.0], requires_grad=True)
        opt = SGD([w], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            quadratic_loss(w).backward()
            opt.step()
        np.testing.assert_allclose(w.data, [0.0, 0.0], atol=1e-6)

    def test_skips_parameters_without_grad(self):
        w = Tensor([1.0], requires_grad=True)
        opt = SGD([w], lr=0.1)
        opt.step()  # no backward ran
        np.testing.assert_allclose(w.data, [1.0])

    def test_zero_grad(self):
        w = Tensor([1.0], requires_grad=True)
        opt = SGD([w], lr=0.1)
        quadratic_loss(w).backward()
        opt.zero_grad()
        assert w.grad is None

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([Tensor([1.0], requires_grad=True)], lr=0.0)


class TestMomentum:
    def test_momentum_accumulates_velocity(self):
        w = Tensor([1.0], requires_grad=True)
        opt = SGD([w], lr=0.1, momentum=0.9)
        # Constant gradient of 1: velocity = 1, then 1.9, ...
        w.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        np.testing.assert_allclose(w.data, [0.9])
        w.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        np.testing.assert_allclose(w.data, [0.9 - 0.1 * 1.9], rtol=1e-6)

    def test_momentum_faster_than_vanilla_on_ravine(self):
        def run(momentum):
            w = Tensor([10.0], requires_grad=True)
            opt = SGD([w], lr=0.02, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                quadratic_loss(w).backward()
                opt.step()
            return abs(float(w.data[0]))

        assert run(0.9) < run(0.0)


class TestWeightDecay:
    def test_weight_decay_shrinks_weights_without_loss_gradient(self):
        w = Tensor([1.0], requires_grad=True)
        opt = SGD([w], lr=0.1, weight_decay=0.5)
        w.grad = np.array([0.0], dtype=np.float32)
        opt.step()
        np.testing.assert_allclose(w.data, [1.0 - 0.1 * 0.5])

    def test_weight_decay_adds_to_gradient(self):
        w = Tensor([2.0], requires_grad=True)
        opt = SGD([w], lr=0.1, weight_decay=0.1)
        w.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        np.testing.assert_allclose(w.data, [2.0 - 0.1 * (1.0 + 0.2)], rtol=1e-6)


class TestSurgeryInteraction:
    def test_velocity_reset_when_shape_changes(self):
        # After surgery, the parameter array is smaller; the stale velocity
        # buffer must not be applied.
        w = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
        opt = SGD([w], lr=0.1, momentum=0.9)
        w.grad = np.ones(4, dtype=np.float32)
        opt.step()
        w.data = w.data[:2].copy()   # simulate surgery
        w.grad = np.ones(2, dtype=np.float32)
        opt.step()                    # must not crash
        assert w.data.shape == (2,)

    def test_rebind_drops_dead_buffers(self):
        w1 = Tensor([1.0], requires_grad=True)
        w2 = Tensor([1.0], requires_grad=True)
        opt = SGD([w1, w2], lr=0.1, momentum=0.9)
        for w in (w1, w2):
            w.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        assert len(opt._velocity) == 2
        opt.rebind([w1])
        assert len(opt._velocity) == 1
        assert id(w1) in opt._velocity
