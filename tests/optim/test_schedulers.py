"""Learning-rate schedules."""

import math

import pytest

from repro.optim import SGD, CosineAnnealingLR, MultiStepLR, StepLR
from repro.tensor import Tensor


def make_opt(lr=1.0):
    return SGD([Tensor([0.0], requires_grad=True)], lr=lr)


class TestStepLR:
    def test_decays_every_step_size(self):
        opt = make_opt()
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(6):
            lrs.append(opt.lr)
            sched.step()
        assert lrs == pytest.approx([1.0, 1.0, 0.1, 0.1, 0.01, 0.01])

    def test_invalid_step_size(self):
        with pytest.raises(ValueError):
            StepLR(make_opt(), step_size=0)


class TestMultiStepLR:
    def test_decays_at_milestones(self):
        opt = make_opt()
        sched = MultiStepLR(opt, milestones=[2, 4], gamma=0.5)
        lrs = []
        for _ in range(5):
            lrs.append(opt.lr)
            sched.step()
        assert lrs == pytest.approx([1.0, 1.0, 0.5, 0.5, 0.25])

    def test_unsorted_milestones_accepted(self):
        opt = make_opt()
        sched = MultiStepLR(opt, milestones=[4, 2], gamma=0.5)
        assert sched.get_lr(3) == pytest.approx(0.5)


class TestCosineAnnealing:
    def test_starts_at_base_and_ends_at_eta_min(self):
        opt = make_opt()
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.01)
        assert sched.get_lr(0) == pytest.approx(1.0)
        assert sched.get_lr(10) == pytest.approx(0.01)

    def test_halfway_is_midpoint(self):
        sched = CosineAnnealingLR(make_opt(), t_max=10)
        assert sched.get_lr(5) == pytest.approx(0.5)

    def test_monotone_decreasing(self):
        sched = CosineAnnealingLR(make_opt(), t_max=20)
        lrs = [sched.get_lr(e) for e in range(21)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_clamps_past_t_max(self):
        sched = CosineAnnealingLR(make_opt(), t_max=5, eta_min=0.1)
        assert sched.get_lr(100) == pytest.approx(0.1)

    def test_invalid_t_max(self):
        with pytest.raises(ValueError):
            CosineAnnealingLR(make_opt(), t_max=0)
