"""Dataset, Subset, DataLoader, per-class sampling."""

import numpy as np
import pytest

from repro.data import DataLoader, Subset, TensorDataset, per_class_images


def make_ds(n=20, classes=4, seed=0):
    rng = np.random.default_rng(seed)
    images = rng.normal(size=(n, 3, 4, 4)).astype(np.float32)
    labels = np.arange(n) % classes
    return TensorDataset(images, labels)


class TestTensorDataset:
    def test_len_and_getitem(self):
        ds = make_ds()
        assert len(ds) == 20
        image, label = ds[3]
        assert image.shape == (3, 4, 4)
        assert label == 3

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            TensorDataset(np.zeros((3, 1, 2, 2)), np.zeros(4))

    def test_labels_property(self):
        ds = make_ds(classes=2)
        np.testing.assert_array_equal(ds.labels, np.arange(20) % 2)


class TestSubset:
    def test_restricts_view(self):
        ds = make_ds()
        sub = Subset(ds, np.array([5, 7]))
        assert len(sub) == 2
        assert sub[0][1] == ds[5][1]

    def test_labels_follow_indices(self):
        ds = make_ds(classes=4)
        sub = Subset(ds, np.array([0, 4, 8]))
        np.testing.assert_array_equal(sub.labels, [0, 0, 0])


class TestDataLoader:
    def test_batch_shapes(self):
        loader = DataLoader(make_ds(), batch_size=8)
        batches = list(loader)
        assert [len(b[1]) for b in batches] == [8, 8, 4]
        assert batches[0][0].shape == (8, 3, 4, 4)

    def test_len(self):
        assert len(DataLoader(make_ds(), batch_size=8)) == 3
        assert len(DataLoader(make_ds(), batch_size=8, drop_last=True)) == 2

    def test_drop_last(self):
        loader = DataLoader(make_ds(), batch_size=8, drop_last=True)
        assert [len(b[1]) for b in loader] == [8, 8]

    def test_no_shuffle_preserves_order(self):
        loader = DataLoader(make_ds(), batch_size=20, shuffle=False)
        _, labels = next(iter(loader))
        np.testing.assert_array_equal(labels, np.arange(20) % 4)

    def test_shuffle_changes_order_but_not_content(self):
        loader = DataLoader(make_ds(), batch_size=20, shuffle=True, seed=1)
        _, labels = next(iter(loader))
        assert not np.array_equal(labels, np.arange(20) % 4)
        assert sorted(labels) == sorted(np.arange(20) % 4)

    def test_shuffle_is_seed_deterministic(self):
        l1 = DataLoader(make_ds(), batch_size=20, shuffle=True, seed=42)
        l2 = DataLoader(make_ds(), batch_size=20, shuffle=True, seed=42)
        np.testing.assert_array_equal(next(iter(l1))[1], next(iter(l2))[1])

    def test_epochs_reshuffle(self):
        loader = DataLoader(make_ds(), batch_size=20, shuffle=True, seed=0)
        first = next(iter(loader))[1]
        second = next(iter(loader))[1]
        assert not np.array_equal(first, second)

    def test_transform_applied(self):
        loader = DataLoader(make_ds(), batch_size=4,
                            transform=lambda batch, rng: batch * 0.0)
        images, _ = next(iter(loader))
        assert (images == 0).all()

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(make_ds(), batch_size=0)


class TestPerClassImages:
    def test_returns_requested_count(self):
        ds = make_ds(n=40, classes=4)
        rng = np.random.default_rng(0)
        images = per_class_images(ds, 2, 5, rng)
        assert images.shape == (5, 3, 4, 4)

    def test_all_images_have_requested_class(self):
        ds = make_ds(n=40, classes=4)
        rng = np.random.default_rng(0)
        candidates = np.flatnonzero(ds.labels == 1)
        chosen = per_class_images(ds, 1, 5, rng)
        pool = ds.images[candidates]
        for img in chosen:
            assert any(np.array_equal(img, p) for p in pool)

    def test_caps_at_available(self):
        ds = make_ds(n=8, classes=4)   # 2 per class
        images = per_class_images(ds, 0, 10, np.random.default_rng(0))
        assert len(images) == 2

    def test_missing_class_raises(self):
        ds = make_ds(n=8, classes=4)
        with pytest.raises(ValueError):
            per_class_images(ds, 99, 1, np.random.default_rng(0))
