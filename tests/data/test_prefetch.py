"""Background-thread prefetching: bit-identical stream, clean failure."""

import threading

import numpy as np
import pytest

from repro.data import DataLoader, SyntheticConfig, SyntheticImageClassification


def _dataset(seed=7):
    cfg = SyntheticConfig(num_classes=3, image_size=8, samples_per_class=20,
                          seed=seed)
    return SyntheticImageClassification(cfg, train=True)


def _batches(loader, epochs=1):
    out = []
    for _ in range(epochs):
        for images, labels in loader:
            out.append((np.array(images, copy=True),
                        np.array(labels, copy=True)))
    return out


def test_prefetched_stream_bit_identical_to_serial():
    dataset = _dataset()
    serial = _batches(DataLoader(dataset, batch_size=16, shuffle=True,
                                 seed=3, prefetch=False), epochs=2)
    prefetched = _batches(DataLoader(dataset, batch_size=16, shuffle=True,
                                     seed=3, prefetch=True), epochs=2)
    assert len(serial) == len(prefetched)
    for (si, sl), (pi, pl) in zip(serial, prefetched):
        np.testing.assert_array_equal(si, pi)
        np.testing.assert_array_equal(sl, pl)


def test_prefetch_with_transform_uses_the_same_rng_stream():
    def jitter(images, rng):
        return images + rng.normal(scale=0.01, size=images.shape).astype(
            images.dtype)

    dataset = _dataset()
    serial = _batches(DataLoader(dataset, batch_size=16, shuffle=True,
                                 seed=5, transform=jitter, prefetch=False))
    prefetched = _batches(DataLoader(dataset, batch_size=16, shuffle=True,
                                     seed=5, transform=jitter, prefetch=True))
    for (si, _), (pi, _) in zip(serial, prefetched):
        np.testing.assert_array_equal(si, pi)


def test_early_break_does_not_leak_the_producer_thread():
    loader = DataLoader(_dataset(), batch_size=8, prefetch=True)
    before = threading.active_count()
    for _ in range(3):
        iterator = iter(loader)
        next(iterator)
        del iterator  # abandoning mid-epoch must stop the producer
    # Give the producer threads a moment to notice the stop event.
    for _ in range(100):
        if threading.active_count() <= before:
            break
        threading.Event().wait(0.05)
    assert threading.active_count() <= before
    # The loader itself stays usable afterwards.
    assert sum(len(labels) for _, labels in loader) == 60


def test_dataset_exception_propagates_to_the_consumer():
    class Exploding:
        def __init__(self, inner):
            self.inner = inner

        def __len__(self):
            return len(self.inner)

        def __getitem__(self, index):
            if index == 17:
                raise RuntimeError("bad sample")
            return self.inner[index]

    loader = DataLoader(Exploding(_dataset()), batch_size=8, prefetch=True)
    with pytest.raises(RuntimeError, match="bad sample"):
        for _ in loader:
            pass
