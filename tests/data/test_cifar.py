"""Real-CIFAR file loaders, exercised against synthesised pickle batches."""

import pickle

import numpy as np
import pytest

from repro.data.cifar import (CIFAR_MEAN, CIFAR_STD, load_cifar10,
                              load_cifar100)


def write_batch(path, n, num_classes, label_key, seed=0):
    rng = np.random.default_rng(seed)
    entry = {
        b"data": rng.integers(0, 256, size=(n, 3072), dtype=np.uint8),
        label_key: rng.integers(0, num_classes, size=n).tolist(),
    }
    with open(path, "wb") as fh:
        pickle.dump(entry, fh)


@pytest.fixture
def cifar10_dir(tmp_path):
    root = tmp_path / "cifar-10-batches-py"
    root.mkdir()
    for i in range(1, 6):
        write_batch(root / f"data_batch_{i}", 20, 10, b"labels", seed=i)
    write_batch(root / "test_batch", 10, 10, b"labels", seed=99)
    return root


@pytest.fixture
def cifar100_dir(tmp_path):
    root = tmp_path / "cifar-100-python"
    root.mkdir()
    write_batch(root / "train", 30, 100, b"fine_labels", seed=1)
    write_batch(root / "test", 10, 100, b"fine_labels", seed=2)
    return root


class TestCifar10:
    def test_train_concatenates_five_batches(self, cifar10_dir):
        ds = load_cifar10(cifar10_dir, train=True)
        assert len(ds) == 100
        assert ds.images.shape == (100, 3, 32, 32)

    def test_test_split(self, cifar10_dir):
        ds = load_cifar10(cifar10_dir, train=False)
        assert len(ds) == 10

    def test_normalisation_applied(self, cifar10_dir):
        raw = load_cifar10(cifar10_dir, normalise=False)
        normed = load_cifar10(cifar10_dir, normalise=True)
        assert raw.images.min() >= 0.0 and raw.images.max() <= 1.0
        mean = np.asarray(CIFAR_MEAN).reshape(1, 3, 1, 1)
        std = np.asarray(CIFAR_STD).reshape(1, 3, 1, 1)
        np.testing.assert_allclose(
            normed.images,
            ((raw.images - mean) / std).astype(np.float32),
            rtol=1e-4, atol=1e-5)

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="download"):
            load_cifar10(tmp_path / "nope")

    def test_labels_in_range(self, cifar10_dir):
        ds = load_cifar10(cifar10_dir)
        assert ds.labels.min() >= 0 and ds.labels.max() < 10


class TestCifar100:
    def test_fine_labels(self, cifar100_dir):
        ds = load_cifar100(cifar100_dir, train=True)
        assert len(ds) == 30
        assert ds.labels.max() < 100

    def test_test_split(self, cifar100_dir):
        assert len(load_cifar100(cifar100_dir, train=False)) == 10
