"""Batch transforms."""

import numpy as np
import pytest

from repro.data import (Compose, GaussianNoise, Normalize, RandomCrop,
                        RandomHorizontalFlip)


def batch(seed=0, n=8):
    return np.random.default_rng(seed).normal(size=(n, 3, 8, 8)).astype(np.float32)


class TestFlip:
    def test_p_one_flips_everything(self):
        b = batch()
        out = RandomHorizontalFlip(p=1.0)(b, np.random.default_rng(0))
        np.testing.assert_array_equal(out, b[:, :, :, ::-1])

    def test_p_zero_is_identity(self):
        b = batch()
        out = RandomHorizontalFlip(p=0.0)(b, np.random.default_rng(0))
        np.testing.assert_array_equal(out, b)

    def test_does_not_mutate_input(self):
        b = batch()
        original = b.copy()
        RandomHorizontalFlip(p=1.0)(b, np.random.default_rng(0))
        np.testing.assert_array_equal(b, original)


class TestCrop:
    def test_output_shape_unchanged(self):
        out = RandomCrop(padding=2)(batch(), np.random.default_rng(0))
        assert out.shape == (8, 3, 8, 8)

    def test_zero_padding_is_identity(self):
        b = batch()
        np.testing.assert_array_equal(RandomCrop(0)(b, np.random.default_rng(0)), b)

    def test_content_is_a_shifted_window(self):
        b = np.arange(64, dtype=np.float32).reshape(1, 1, 8, 8)
        out = RandomCrop(padding=1)(b, np.random.default_rng(3))
        # Interior pixels of the crop come from the original image.
        overlap = np.intersect1d(out, b)
        assert len(overlap) >= 49  # at least a 7x7 region survives

    def test_negative_padding_raises(self):
        with pytest.raises(ValueError):
            RandomCrop(-1)


class TestNormalize:
    def test_standardises(self):
        b = batch() * 3 + 5
        mean = b.mean(axis=(0, 2, 3))
        std = b.std(axis=(0, 2, 3))
        out = Normalize(mean, std)(b, np.random.default_rng(0))
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), np.zeros(3),
                                   atol=1e-4)

    def test_zero_std_rejected(self):
        with pytest.raises(ValueError):
            Normalize([0.0, 0.0, 0.0], [1.0, 0.0, 1.0])


class TestNoiseAndCompose:
    def test_noise_changes_values(self):
        b = batch()
        out = GaussianNoise(0.5)(b, np.random.default_rng(0))
        assert not np.array_equal(out, b)

    def test_zero_sigma_identity(self):
        b = batch()
        np.testing.assert_array_equal(GaussianNoise(0.0)(b, np.random.default_rng(0)), b)

    def test_compose_applies_in_order(self):
        double = lambda b, rng: b * 2
        add_one = lambda b, rng: b + 1
        out = Compose([double, add_one])(np.ones((1, 1, 2, 2), np.float32),
                                         np.random.default_rng(0))
        np.testing.assert_array_equal(out, np.full((1, 1, 2, 2), 3.0))
