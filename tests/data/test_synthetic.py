"""Synthetic CIFAR substitute: determinism, structure, learnability proxy."""

import numpy as np
import pytest

from repro.data import (SyntheticConfig, SyntheticImageClassification,
                        make_cifar_like)


class TestDeterminism:
    def test_same_seed_same_data(self):
        cfg = SyntheticConfig(num_classes=4, image_size=8, samples_per_class=5)
        a = SyntheticImageClassification(cfg)
        b = SyntheticImageClassification(cfg)
        np.testing.assert_array_equal(a.images, b.images)

    def test_different_seed_different_data(self):
        a = SyntheticImageClassification(SyntheticConfig(seed=0, image_size=8,
                                                         samples_per_class=5))
        b = SyntheticImageClassification(SyntheticConfig(seed=1, image_size=8,
                                                         samples_per_class=5))
        assert not np.array_equal(a.images, b.images)

    def test_train_test_splits_differ_but_share_templates(self):
        cfg = SyntheticConfig(num_classes=3, image_size=8, samples_per_class=5)
        train = SyntheticImageClassification(cfg, train=True)
        test = SyntheticImageClassification(cfg, train=False)
        assert not np.array_equal(train.images, test.images)
        np.testing.assert_array_equal(train.templates, test.templates)


class TestStructure:
    def test_shapes_and_labels(self):
        cfg = SyntheticConfig(num_classes=5, image_size=8, samples_per_class=4)
        ds = SyntheticImageClassification(cfg)
        assert ds.images.shape == (20, 3, 8, 8)
        assert set(ds.labels) == set(range(5))
        assert (np.bincount(ds.labels) == 4).all()

    def test_templates_are_normalised(self):
        cfg = SyntheticConfig(num_classes=4, image_size=8, samples_per_class=2)
        ds = SyntheticImageClassification(cfg)
        for template in ds.templates:
            np.testing.assert_allclose(template.mean(axis=(1, 2)),
                                       np.zeros(3), atol=1e-5)
            np.testing.assert_allclose(template.std(axis=(1, 2)),
                                       np.ones(3), atol=1e-4)

    def test_templates_pairwise_distinct(self):
        cfg = SyntheticConfig(num_classes=10, image_size=8, samples_per_class=1)
        ds = SyntheticImageClassification(cfg)
        t = ds.templates.reshape(10, -1)
        # Normalised correlations between different classes stay well below 1.
        corr = (t @ t.T) / (np.linalg.norm(t, axis=1, keepdims=True)
                            * np.linalg.norm(t, axis=1))
        off_diag = corr[~np.eye(10, dtype=bool)]
        assert np.abs(off_diag).max() < 0.9

    def test_nearest_template_classifies_samples(self):
        # The task must be learnable: a nearest-template classifier (aware
        # of the random horizontal flip augmentation) should be near
        # perfect at default noise, so a CNN can reach high accuracy too.
        cfg = SyntheticConfig(num_classes=5, image_size=8,
                              samples_per_class=20, max_shift=0)
        ds = SyntheticImageClassification(cfg)
        t = ds.templates.reshape(5, -1)
        t_flipped = ds.templates[:, :, :, ::-1].reshape(5, -1)
        x = ds.images.reshape(len(ds), -1)
        scores = np.maximum(x @ t.T, x @ t_flipped.T)
        predictions = np.argmax(scores, axis=1)
        assert (predictions == ds.labels).mean() > 0.9


class TestMakeCifarLike:
    def test_returns_train_and_test(self):
        train, test = make_cifar_like(num_classes=3, image_size=8,
                                      samples_per_class=100)
        assert len(train) == 300
        # The test split holds one fifth of the train size (min 10/class).
        assert len(test) == 3 * max(100 // 5, 10)

    def test_hundred_class_variant(self):
        train, _ = make_cifar_like(num_classes=100, image_size=8,
                                   samples_per_class=2)
        assert len(train) == 200
        assert train.cfg.num_classes == 100
