"""Fused analytic regularizer gradients vs the autograd penalty graph."""

import numpy as np
import pytest

from repro.core.regularizers import (FusedRegularizer, ModifiedLoss, _eye,
                                     l1_regularizer, orthogonality_term)
from repro.models import build_model
from repro.tensor import Tensor, ops
from repro.verify import numerical_grad


def _tiny_model(seed=0):
    return build_model("vgg11", num_classes=3, image_size=8, width=0.25,
                       seed=seed)


def _autograd_penalty_grads(model, lambda1, lambda2):
    model.zero_grad()
    total = ops.mul(Tensor(np.float32(lambda1)), l1_regularizer(model))
    orth = orthogonality_term(model, mode="kernel")
    total = ops.add(total, ops.mul(Tensor(np.float32(lambda2)), orth))
    total.backward()
    grads = {name: np.array(p.grad, copy=True)
             for name, p in model.named_parameters() if p.grad is not None}
    model.zero_grad()
    return grads


def test_eye_tensors_are_cached_by_size():
    assert _eye(4) is _eye(4)
    assert _eye(4) is not _eye(5)
    np.testing.assert_array_equal(_eye(3).data, np.eye(3, dtype=np.float32))


def test_fused_gradients_match_autograd():
    model = _tiny_model()
    lambda1, lambda2 = 1e-4, 1e-2
    expected = _autograd_penalty_grads(model, lambda1, lambda2)

    model.zero_grad()
    fused = FusedRegularizer(lambda1=lambda1, lambda2=lambda2)
    l1_value, orth_value = fused.accumulate(model)

    params = dict(model.named_parameters())
    for name, grad in expected.items():
        np.testing.assert_allclose(params[name].grad, grad,
                                   rtol=2e-3, atol=1e-6, err_msg=name)
    # Penalty values agree with the autograd scalars.
    assert l1_value == pytest.approx(float(l1_regularizer(model).data),
                                     rel=1e-5)
    assert orth_value == pytest.approx(
        float(orthogonality_term(model, mode="kernel").data), rel=1e-5)


def test_fused_accumulate_adds_to_existing_grads():
    model = _tiny_model()
    fused = FusedRegularizer(lambda1=1e-3, lambda2=0.0)
    model.zero_grad()
    fused.accumulate(model)
    once = {name: np.array(p.grad, copy=True)
            for name, p in model.named_parameters() if p.grad is not None}
    fused.accumulate(model)
    for name, grad in once.items():
        np.testing.assert_allclose(dict(model.named_parameters())[name].grad,
                                   2 * grad, rtol=1e-6)


def test_closed_form_orth_gradient_against_finite_differences():
    """gradcheck of df/dŴ = 2DŴ/f on a small weight matrix."""
    rng = np.random.default_rng(0)
    weight = Tensor(rng.normal(size=(4, 6)).astype(np.float32) * 0.5,
                    requires_grad=True)

    def orth(w):
        gram = ops.matmul(w, ops.transpose(w))
        diff = ops.sub(gram, _eye(4))
        return ops.sqrt(ops.add(ops.sum(ops.mul(diff, diff)),
                                Tensor(np.float32(1e-12))))

    numerical = numerical_grad(orth, [weight], 0, eps=1e-3)
    flat = weight.data
    d = flat @ flat.T
    d[np.diag_indices_from(d)] -= np.float32(1.0)
    value = np.sqrt(np.sum(d * d) + np.float32(1e-12))
    analytic = (np.float32(2.0) / value) * (d @ flat)
    np.testing.assert_allclose(analytic, numerical, rtol=1e-2, atol=1e-2)


def test_non_kernel_orth_mode_rejected():
    with pytest.raises(ValueError, match="kernel"):
        FusedRegularizer(lambda2=1e-2, orth_mode="conv")
    # λ2 = 0 makes the orth mode irrelevant.
    FusedRegularizer(lambda2=0.0, orth_mode="conv")


def test_track_terms_off_keeps_the_total_gradients():
    model_a = _tiny_model()
    model_b = _tiny_model()
    images = np.random.default_rng(1).normal(
        size=(4, 3, 8, 8)).astype(np.float32)
    targets = np.array([0, 1, 2, 0], dtype=np.intp)

    def grads(model, track):
        loss = ModifiedLoss(lambda1=1e-4, lambda2=1e-2, track_terms=track)
        model.zero_grad()
        terms = loss(model, model(Tensor(images)), targets)
        terms.total.backward()
        return terms, {name: np.array(p.grad, copy=True)
                       for name, p in model.named_parameters()
                       if p.grad is not None}

    terms_on, grads_on = grads(model_a, True)
    terms_off, grads_off = grads(model_b, False)
    assert terms_off.l1 == 0.0 and terms_off.orth == 0.0
    assert terms_on.l1 > 0.0
    np.testing.assert_array_equal(terms_on.total.data, terms_off.total.data)
    for name, grad in grads_on.items():
        np.testing.assert_array_equal(grads_off[name], grad, err_msg=name)
