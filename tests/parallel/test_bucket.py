"""Bucket plan, seqlock protocol, and int8 gradient transport."""

import math

import numpy as np
import pytest

from repro.parallel.bucket import (MODE_QUANT, MODE_RAW, BucketPlan,
                                   dequantize_bucket, is_ready, mark_ready,
                                   mark_writing, pow2_scale, quantize_bucket,
                                   seq_ready, seq_writing)
from repro.parallel.shm import SharedArrayBundle

PARAMS = [
    ("features.0.weight", (8, 3, 3, 3)),
    ("features.0.bias", (8,)),
    ("features.3.weight", (16, 8, 3, 3)),
    ("features.3.bias", (16,)),
    ("classifier.weight", (10, 64)),
    ("classifier.bias", (10,)),
]


class TestBucketPlan:
    def test_layout_covers_every_parameter_exactly_once(self):
        plan = BucketPlan(PARAMS, target_bytes=4096)
        total = sum(int(np.prod(s)) for _, s in PARAMS)
        assert plan.total_floats == total
        covered = np.zeros(total, bool)
        for name, _ in PARAMS:
            _, start, stop, shape = plan.slices[name]
            assert stop - start == int(np.prod(shape))
            assert not covered[start:stop].any()
            covered[start:stop] = True
        assert covered.all()
        # Buckets tile the flat array contiguously.
        assert plan.buckets[0].start == 0
        for prev, cur in zip(plan.buckets, plan.buckets[1:]):
            assert cur.start == prev.stop
        assert plan.buckets[-1].stop == total

    def test_reverse_packing_and_size_target(self):
        plan = BucketPlan(PARAMS, target_bytes=4096)
        # Backward-order packing: the classifier (last parameter) owns
        # the start of the flat layout.
        assert plan.slices["classifier.bias"][1] == 0
        for bucket in plan.buckets[:-1]:
            assert bucket.size * 4 <= 4096 or len(bucket.names) == 1
        # A parameter larger than the target gets its own bucket rather
        # than splitting.
        big = BucketPlan(PARAMS, target_bytes=64)
        for name, shape in PARAMS:
            index = big.bucket_of(name)
            assert name in big.buckets[index].names

    def test_plan_is_deterministic(self):
        a = BucketPlan(PARAMS, target_bytes=1024)
        b = BucketPlan(list(PARAMS), target_bytes=1024)
        assert a.slices == b.slices
        assert [x.names for x in a.buckets] == [x.names for x in b.buckets]

    def test_views_alias_the_flat_array(self):
        plan = BucketPlan(PARAMS, target_bytes=1024)
        flat = np.zeros(plan.total_floats, np.float32)
        view = plan.param_view(flat, "features.0.weight")
        assert view.shape == (8, 3, 3, 3)
        view[0, 0, 0, 0] = 7.0
        _, start, _, _ = plan.slices["features.0.weight"]
        assert flat[start] == 7.0
        bucket = plan.bucket_view(flat, plan.bucket_of("features.0.weight"))
        assert bucket.base is flat or bucket.base is flat.base

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(ValueError):
            BucketPlan([], target_bytes=1024)
        with pytest.raises(ValueError):
            BucketPlan(PARAMS, target_bytes=0)


class TestSeqlock:
    def test_protocol_values(self):
        assert seq_writing(1) == 1 and seq_ready(1) == 2
        assert seq_writing(7) == 13 and seq_ready(7) == 14

    def test_torn_write_is_never_ready(self):
        """Regression: a bucket abandoned mid-write must stay invisible.

        Models a worker SIGKILLed between ``mark_writing`` and
        ``mark_ready``: whatever bytes landed in the region, the odd (or
        stale) sequence word keeps every later step from consuming them.
        """
        seq = np.zeros(4, np.int64)
        mark_writing(seq, 2, step=5)
        assert not is_ready(seq, 2, step=5)      # odd: mid-write
        assert not is_ready(seq, 2, step=4)      # not ready for any step
        mark_ready(seq, 2, step=5)
        assert is_ready(seq, 2, step=5)
        assert not is_ready(seq, 2, step=6)      # stale for the next step
        # Fresh (zeroed) segments are ready for no step at all.
        assert not is_ready(seq, 0, step=1)

    def test_republish_after_death_overwrites_cleanly(self):
        seq = np.zeros(1, np.int64)
        mark_writing(seq, 0, step=3)             # victim died here
        mark_writing(seq, 0, step=3)             # replacement restarts
        mark_ready(seq, 0, step=3)
        assert is_ready(seq, 0, step=3)


class TestInt8Transport:
    def test_pow2_scale_is_a_covering_power_of_two(self):
        for amax in (1e-12, 0.003, 0.5, 1.0, 127.0, 127.5, 1e6):
            scale = pow2_scale(amax)
            mantissa, _ = math.frexp(scale)
            assert mantissa == 0.5, f"{scale} is not a power of two"
            assert amax / scale <= 127.0
            # Smallest such power: halving it must overflow the grid.
            assert amax / (scale / 2) > 127.0
        assert pow2_scale(0.0) == 1.0

    def test_exact_boundary_amax(self):
        # amax/127 exactly a power of two: frexp mantissa == 0.5 branch.
        amax = 127.0 * 0.25
        assert pow2_scale(amax) == 0.25

    def test_roundtrip_is_bit_exact_for_representable_values(self):
        rng = np.random.default_rng(0)
        flat = (rng.standard_normal(513) * 0.01).astype(np.float32)
        codes = np.zeros(flat.size, np.int8)
        mode, scale = quantize_bucket(flat, codes)
        assert mode == MODE_QUANT
        out = np.empty_like(flat)
        dequantize_bucket(codes, scale, out)
        # Certificate: float32 q·scale equals the exact float64 product.
        exact = codes.astype(np.float64) * scale
        np.testing.assert_array_equal(out, exact.astype(np.float32))
        # And the rounding loss is bounded by scale/2 per element.
        assert np.max(np.abs(out - flat)) <= scale / 2

    def test_zero_bucket_roundtrips_to_zero(self):
        flat = np.zeros(17, np.float32)
        codes = np.ones(17, np.int8)
        mode, scale = quantize_bucket(flat, codes)
        assert mode == MODE_QUANT
        out = np.empty_like(flat)
        dequantize_bucket(codes, scale, out)
        assert not out.any()

    def test_nonfinite_bucket_falls_back_to_raw(self):
        flat = np.array([0.1, np.nan, 0.2], np.float32)
        codes = np.zeros(3, np.int8)
        mode, scale = quantize_bucket(flat, codes)
        assert mode == MODE_RAW and scale == 0.0

    def test_reader_demotes_uncertified_scale_to_float64(self):
        codes = np.array([3, -7, 127], np.int8)
        out = np.empty(3, np.float32)
        # 0.3 is not a power of two: the fast path must not be trusted.
        dequantize_bucket(codes, 0.3, out)
        expected = (codes.astype(np.float64) * 0.3).astype(np.float32)
        np.testing.assert_array_equal(out, expected)


class TestCreateEmpty:
    def test_zero_filled_layout_round_trips_through_spec(self):
        layout = {
            "grads": ((24,), "<f4"),
            "empty": ((0,), "<f4"),      # BN-less models produce these
            "seq": ((3,), "<i8"),
            "done": ((1,), "<i8"),
        }
        bundle = SharedArrayBundle.create_empty(layout)
        try:
            assert not bundle.arrays["grads"].any()
            assert bundle.arrays["empty"].size == 0
            other = SharedArrayBundle.attach(bundle.spec, untrack=False)
            bundle.arrays["seq"][1] = 42
            assert other.arrays["seq"][1] == 42
            other.close()
        finally:
            bundle.unlink()
