"""Sharded data-parallel fine-tuning: equivalence and reproducibility.

The determinism contract (``repro.parallel.shard`` module docstring):

* ``workers=1`` is bitwise equal to the serial fused loop — the single
  shard's gradients and batch-norm statistics are applied verbatim;
* for any fixed ``(workers, seed)`` the training history and final
  weights are bitwise reproducible run to run.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.trainer import Trainer, TrainingConfig
from repro.data import make_cifar_like
from repro.models import build_model


def _setup(seed=0):
    model = build_model("vgg11", num_classes=3, image_size=8, width=0.25,
                        seed=seed)
    train, test = make_cifar_like(num_classes=3, image_size=8,
                                  samples_per_class=12, seed=seed)
    return model, train, test


def _train(cfg, epochs=2, seed=0):
    model, train, test = _setup(seed)
    trainer = Trainer(model, train, test, cfg)
    try:
        history = trainer.train(epochs=epochs)
    finally:
        trainer.close()
    return model, history


def _history_rows(history):
    return [(e.train_loss, e.cross_entropy, e.l1, e.orth, e.train_accuracy,
             e.test_accuracy) for e in history.epochs]


BASE = TrainingConfig(epochs=2, batch_size=16, lr=0.05, seed=0)


def test_single_shard_bitwise_equals_fused_serial():
    fused_model, fused_hist = _train(dataclasses.replace(BASE, fused_reg=True))
    shard_model, shard_hist = _train(dataclasses.replace(BASE, workers=1))
    assert _history_rows(fused_hist) == _history_rows(shard_hist)
    fused_state = fused_model.state_dict()
    for key, value in shard_model.state_dict().items():
        np.testing.assert_array_equal(value, fused_state[key], err_msg=key)


def test_multi_shard_history_is_reproducible():
    cfg = dataclasses.replace(BASE, workers=2)
    model_a, hist_a = _train(cfg)
    model_b, hist_b = _train(cfg)
    assert _history_rows(hist_a) == _history_rows(hist_b)
    state_a = model_a.state_dict()
    for key, value in model_b.state_dict().items():
        np.testing.assert_array_equal(value, state_a[key], err_msg=key)


def test_multi_shard_training_converges():
    # Pure cross-entropy objective: the paper's penalty coefficients are
    # tuned for full-size nets and swamp this 8×8 toy model's loss.
    cfg = dataclasses.replace(BASE, workers=2, lr=0.01,
                              lambda1=0.0, lambda2=0.0)
    model, history = _train(cfg, epochs=4)
    assert len(history.epochs) == 4
    assert all(np.isfinite(e.train_loss) for e in history.epochs)
    # Sharded BN statistics make the toy-model trajectory noisy (the
    # module docstring compares it to unsynced DDP); require progress,
    # not monotonicity.
    ce = [e.cross_entropy for e in history.epochs]
    assert min(ce[1:]) < ce[0]


def test_custom_loss_fn_rejected_with_workers():
    model, train, test = _setup()
    cfg = dataclasses.replace(BASE, workers=2)
    with pytest.raises(ValueError, match="loss_fn"):
        Trainer(model, train, test, cfg,
                loss_fn=lambda m, logits, targets: None)


def test_non_kernel_orth_rejected_with_fused_path():
    model, train, test = _setup()
    cfg = dataclasses.replace(BASE, workers=2, orth_mode="conv")
    with pytest.raises(ValueError, match="kernel"):
        Trainer(model, train, test, cfg)
