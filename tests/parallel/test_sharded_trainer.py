"""Sharded data-parallel fine-tuning: equivalence and reproducibility.

The determinism contract (``repro.parallel.shard`` module docstring):

* ``workers=1`` is bitwise equal to the serial fused loop — the single
  shard's gradients and batch-norm statistics are applied verbatim;
* for any fixed ``(workers, seed)`` the training history and final
  weights are bitwise reproducible run to run.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.surgery import group_sizes, prune_groups
from repro.core.trainer import Trainer, TrainingConfig
from repro.data import make_cifar_like
from repro.models import build_model
from repro.models.registry import MODEL_REGISTRY
from repro.nn import cross_entropy
from repro.parallel.shard import ShardedTrainingSession
from repro.tensor import Tensor


def _setup(seed=0):
    model = build_model("vgg11", num_classes=3, image_size=8, width=0.25,
                        seed=seed)
    train, test = make_cifar_like(num_classes=3, image_size=8,
                                  samples_per_class=12, seed=seed)
    return model, train, test


def _train(cfg, epochs=2, seed=0):
    model, train, test = _setup(seed)
    trainer = Trainer(model, train, test, cfg)
    try:
        history = trainer.train(epochs=epochs)
    finally:
        trainer.close()
    return model, history


def _history_rows(history):
    return [(e.train_loss, e.cross_entropy, e.l1, e.orth, e.train_accuracy,
             e.test_accuracy) for e in history.epochs]


BASE = TrainingConfig(epochs=2, batch_size=16, lr=0.05, seed=0)


def test_single_shard_bitwise_equals_fused_serial():
    fused_model, fused_hist = _train(dataclasses.replace(BASE, fused_reg=True))
    shard_model, shard_hist = _train(dataclasses.replace(BASE, workers=1))
    assert _history_rows(fused_hist) == _history_rows(shard_hist)
    fused_state = fused_model.state_dict()
    for key, value in shard_model.state_dict().items():
        np.testing.assert_array_equal(value, fused_state[key], err_msg=key)


def test_multi_shard_history_is_reproducible():
    cfg = dataclasses.replace(BASE, workers=2)
    model_a, hist_a = _train(cfg)
    model_b, hist_b = _train(cfg)
    assert _history_rows(hist_a) == _history_rows(hist_b)
    state_a = model_a.state_dict()
    for key, value in model_b.state_dict().items():
        np.testing.assert_array_equal(value, state_a[key], err_msg=key)


def test_multi_shard_training_converges():
    # Pure cross-entropy objective: the paper's penalty coefficients are
    # tuned for full-size nets and swamp this 8×8 toy model's loss.
    cfg = dataclasses.replace(BASE, workers=2, lr=0.01,
                              lambda1=0.0, lambda2=0.0)
    model, history = _train(cfg, epochs=4)
    assert len(history.epochs) == 4
    assert all(np.isfinite(e.train_loss) for e in history.epochs)
    # Sharded BN statistics make the toy-model trajectory noisy (the
    # module docstring compares it to unsynced DDP); require progress,
    # not monotonicity.
    ce = [e.cross_entropy for e in history.epochs]
    assert min(ce[1:]) < ce[0]


def _prune_half(model, seed=0):
    """Remove ~half of every prunable group's channels in place."""
    rng = np.random.default_rng(seed + 7)
    groups = model.prunable_groups()
    sizes = group_sizes(model, groups)
    keep = {}
    for group in groups:
        n = sizes[group.name]
        k = max(n - max(n // 2, 1), 1)
        keep[group.name] = np.sort(rng.choice(n, size=k, replace=False))
    prune_groups(model, groups, keep)


def _monolithic_reduction(model, images, labels, workers):
    """Reference all-reduce: serial per-shard backward, one dense pass.

    Recomputes every shard's cross-entropy gradients with plain autograd
    in this process and reduces them with the documented formula
    ``g = Σ_k (n_k/n)·g_k`` in shard order, using the same float32
    operations as the session — the pre-bucketing semantics the
    overlapped path must reproduce bit for bit.
    """
    n = len(images)
    n_shards = min(workers, n)
    bounds = [n * i // n_shards for i in range(n_shards + 1)]
    names = [name for name, _ in model.named_parameters()]
    shard_grads = []
    model.train()
    for k in range(n_shards):
        model.zero_grad()
        logits = model(Tensor(images[bounds[k]:bounds[k + 1]]))
        ce = cross_entropy(logits, labels[bounds[k]:bounds[k + 1]])
        ce.backward()
        shard_grads.append({
            name: (np.array(p.grad, copy=True) if p.grad is not None
                   else np.zeros_like(p.data))
            for name, p in model.named_parameters()})
    reduced = {}
    for name in names:
        if n_shards == 1:
            reduced[name] = shard_grads[0][name]
            continue
        acc = np.multiply(shard_grads[0][name],
                          np.float32(bounds[1] / n))
        for k in range(1, n_shards):
            scale = np.float32((bounds[k + 1] - bounds[k]) / n)
            np.add(acc, np.multiply(shard_grads[k][name], scale), out=acc)
        reduced[name] = acc
    return reduced


class TestBucketedReductionEquivalence:
    """Overlapped bucketed all-reduce ≡ monolithic reduction, bitwise.

    The acceptance matrix of the bucketed rewrite: every zoo model, dense
    and after channel surgery, at workers ∈ {1, 2, 4} — the session's
    reduced gradients must match the serial per-shard reference byte for
    byte (same shards, same order, same float32 operations).
    """

    @pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
    def test_session_gradients_match_reference(self, name):
        train, _ = make_cifar_like(num_classes=3, image_size=8,
                                   samples_per_class=6, seed=0)
        images = train.images[:12].astype(np.float32)
        labels = train.labels[:12]
        for pruned in (False, True):
            for workers in (1, 2, 4):
                model = build_model(name, num_classes=3, image_size=8,
                                    width=0.25, seed=0)
                if pruned:
                    _prune_half(model)
                with ShardedTrainingSession(
                        model, workers, capacity=len(images),
                        sample_shape=images.shape[1:],
                        bucket_bytes=2048) as session:
                    # The reference runs against the same (now shared)
                    # parameter arrays — binding copies them bitwise.
                    expected = _monolithic_reduction(model, images,
                                                     labels, workers)
                    batch = session.run_batch(images, labels)
                    label = f"{name} pruned={pruned} workers={workers}"
                    for pname, param in model.named_parameters():
                        np.testing.assert_array_equal(
                            param.grad, expected[pname],
                            err_msg=f"{label}: {pname}")
                assert batch["count"] == len(images)
                assert set(batch["phases"]) == {"broadcast", "compute",
                                                "publish", "reduce"}


class TestInt8Transport:
    # Pure cross entropy at a modest lr: bucket-level scales share one
    # grid across every parameter in the bucket, so the hot regularized
    # recipe of BASE would amplify the (bounded, deterministic) rounding
    # noise on this toy model. Production-shaped config, small buckets.
    CFG = dataclasses.replace(BASE, lr=0.01, lambda1=0.0, lambda2=0.0,
                              workers=2, grad_bucket_kb=4)

    def test_int8_history_reproducible_and_close_to_fp32(self):
        cfg8 = dataclasses.replace(self.CFG, grad_transport="int8")
        model_a, hist_a = _train(cfg8)
        model_b, hist_b = _train(cfg8)
        assert _history_rows(hist_a) == _history_rows(hist_b)
        state_a = model_a.state_dict()
        for key, value in model_b.state_dict().items():
            np.testing.assert_array_equal(value, state_a[key], err_msg=key)
        # Quantization rounding must stay a perturbation, not a rewrite:
        # the int8 run tracks the fp32 run's loss trajectory.
        model_f, hist_f = _train(self.CFG)
        for r8, rf in zip(_history_rows(hist_a), _history_rows(hist_f)):
            assert r8[0] == pytest.approx(rf[0], rel=0.25)
            assert np.isfinite(r8[0])

    def test_int8_quantization_error_is_bounded_per_bucket(self):
        from repro.parallel.bucket import pow2_scale

        train, _ = make_cifar_like(num_classes=3, image_size=8,
                                   samples_per_class=6, seed=0)
        images = train.images[:8].astype(np.float32)
        labels = train.labels[:8]
        workers = 2

        def grads(transport):
            model = build_model("vgg11", num_classes=3, image_size=8,
                                width=0.25, seed=0)
            with ShardedTrainingSession(
                    model, workers, capacity=len(images),
                    sample_shape=images.shape[1:], bucket_bytes=2048,
                    transport=transport) as session:
                session.run_batch(images, labels)
                return ({name: np.array(p.grad, copy=True)
                         for name, p in model.named_parameters()},
                        session.plan, model)

        exact, plan, model = grads("fp32")
        quant, _, _ = grads("int8")
        # Per-shard, per-bucket scales: rounding error is ≤ scale/2 per
        # element in each shard, and the shard weights sum to one, so
        # max_k(scale_k)/2 bounds every element of the reduction.
        n = len(images)
        bounds = [n * i // workers for i in range(workers + 1)]
        shard_scales = []
        for k in range(workers):
            model.zero_grad()
            logits = model(Tensor(images[bounds[k]:bounds[k + 1]]))
            cross_entropy(logits, labels[bounds[k]:bounds[k + 1]]).backward()
            flat = np.zeros(plan.total_floats, np.float32)
            for pname, param in model.named_parameters():
                if param.grad is not None:
                    plan.param_view(flat, pname)[...] = param.grad
            shard_scales.append([
                pow2_scale(float(np.max(np.abs(
                    plan.bucket_view(flat, b.index)))))
                for b in plan.buckets])
        for pname in exact:
            index = plan.bucket_of(pname)
            bound = max(s[index] for s in shard_scales) / 2 + 1e-7
            error = float(np.max(np.abs(exact[pname] - quant[pname])))
            assert error <= bound, f"{pname}: {error} > {bound}"

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="grad_transport"):
            dataclasses.replace(BASE, grad_transport="fp16")
        model, train, _ = _setup()
        with pytest.raises(ValueError, match="transport"):
            ShardedTrainingSession(model, 1, capacity=8,
                                   sample_shape=(3, 8, 8),
                                   transport="fp16")


def test_custom_loss_fn_rejected_with_workers():
    model, train, test = _setup()
    cfg = dataclasses.replace(BASE, workers=2)
    with pytest.raises(ValueError, match="loss_fn"):
        Trainer(model, train, test, cfg,
                loss_fn=lambda m, logits, targets: None)


def test_non_kernel_orth_rejected_with_fused_path():
    model, train, test = _setup()
    cfg = dataclasses.replace(BASE, workers=2, orth_mode="conv")
    with pytest.raises(ValueError, match="kernel"):
        Trainer(model, train, test, cfg)
