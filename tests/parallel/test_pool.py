"""Worker pool: ordered results, crash detection, error propagation."""

import pytest

from repro.parallel import (CRASH_TASK, EchoService, ParallelExecutionError,
                            WorkerPool, resolve_processes)


def test_results_come_back_in_task_order():
    with WorkerPool(2, EchoService, ("tag",)) as pool:
        tasks = list(range(7))
        assert pool.run_tasks(tasks) == [("tag", t) for t in tasks]


def test_pool_is_reusable_across_run_tasks_calls():
    with WorkerPool(1, EchoService, ()) as pool:
        assert pool.run_tasks(["a"]) == [("", "a")]
        assert pool.run_tasks(["b", "c"]) == [("", "b"), ("", "c")]


def test_service_exception_surfaces_with_remote_traceback():
    pool = WorkerPool(2, EchoService, ())
    with pytest.raises(ParallelExecutionError, match="boom"):
        pool.run_tasks(["ok", {"raise": "boom"}])
    # The traceback names the remote exception type.
    with pytest.raises(ParallelExecutionError, match="pool is closed"):
        pool.run_tasks(["after"])


def test_worker_crash_raises_clean_error():
    pool = WorkerPool(2, EchoService, ())
    with pytest.raises(ParallelExecutionError, match="exit code"):
        pool.run_tasks(["a", CRASH_TASK, "b"])
    pool.close()  # idempotent after the failure path closed it


def test_fresh_pool_works_after_a_crash():
    pool = WorkerPool(1, EchoService, ())
    with pytest.raises(ParallelExecutionError):
        pool.run_tasks([CRASH_TASK])
    with WorkerPool(1, EchoService, ()) as fresh:
        assert fresh.run_tasks(["x"]) == [("", "x")]


def test_init_failure_reports_worker_traceback():
    class Broken:
        def __init__(self):
            raise RuntimeError("cannot construct")

    with pytest.raises(ParallelExecutionError, match="initialise"):
        WorkerPool(1, Broken, ())


def test_resolve_processes_caps_at_workers(monkeypatch):
    monkeypatch.delenv("REPRO_PARALLEL_PROCESSES", raising=False)
    assert resolve_processes(4, processes=8) == 4
    assert resolve_processes(4, processes=2) == 2
    assert resolve_processes(4, processes=0) == 1
    monkeypatch.setenv("REPRO_PARALLEL_PROCESSES", "3")
    assert resolve_processes(8) == 3


def test_invalid_process_count_rejected():
    with pytest.raises(ValueError):
        WorkerPool(0, EchoService, ())
