"""Shared-memory reaper: ledger durability, orphan sweep, fork safety."""

import json
import multiprocessing as mp
import os
from multiprocessing import resource_tracker, shared_memory

import pytest

from repro.parallel import reaper


@pytest.fixture
def ledger(tmp_path, monkeypatch):
    """Isolate the ledger directory and this process's segment set."""
    monkeypatch.setenv("REPRO_SHM_LEDGER_DIR", str(tmp_path))
    saved = set(reaper._segments)
    reaper._segments.clear()
    yield tmp_path
    reaper._segments.clear()
    reaper._segments.update(saved)


def _make_segment(size=64) -> str:
    segment = shared_memory.SharedMemory(create=True, size=size)
    # Keep the test process's resource tracker out of the picture: the
    # reaper (the thing under test) owns cleanup here.
    resource_tracker.unregister(segment._name, "shared_memory")
    segment.close()
    return segment.name


def _destroy(name: str) -> None:
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return
    segment.close()
    segment.unlink()


class TestLedger:
    def test_register_writes_ledger_before_use(self, ledger):
        reaper.register("seg-a")
        path = ledger / f"{os.getpid()}.json"
        assert json.loads(path.read_text()) == ["seg-a"]
        assert reaper.live_segments() == {"seg-a"}
        reaper.unregister("seg-a")

    def test_unregister_deletes_empty_ledger(self, ledger):
        reaper.register("seg-a")
        reaper.register("seg-b")
        reaper.unregister("seg-a")
        path = ledger / f"{os.getpid()}.json"
        assert json.loads(path.read_text()) == ["seg-b"]
        reaper.unregister("seg-b")
        assert not path.exists()
        assert reaper.live_segments() == set()

    def test_reap_all_unlinks_and_clears(self, ledger):
        name = _make_segment()
        try:
            reaper.register(name)
            assert reaper.reap_all() == 1
            assert reaper.live_segments() == set()
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        finally:
            _destroy(name)


class TestOrphanSweep:
    def _dead_pid(self) -> int:
        proc = mp.get_context("fork").Process(target=lambda: None)
        proc.start()
        proc.join()
        return proc.pid

    def test_dead_pids_ledger_is_replayed(self, ledger):
        name = _make_segment()
        try:
            dead = self._dead_pid()
            (ledger / f"{dead}.json").write_text(json.dumps([name]))
            reaped = reaper.sweep_orphans()
            assert name in reaped
            assert not (ledger / f"{dead}.json").exists()
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        finally:
            _destroy(name)

    def test_live_pids_are_never_touched(self, ledger):
        name = _make_segment()
        try:
            reaper.register(name)           # our own (live) ledger
            assert reaper.sweep_orphans() == []
            segment = shared_memory.SharedMemory(name=name)  # still there
            segment.close()
            reaper.unregister(name)
        finally:
            _destroy(name)

    def test_garbage_ledger_files_are_skipped(self, ledger):
        (ledger / "not-a-pid.json").write_text("[]")
        dead = self._dead_pid()
        (ledger / f"{dead}.json").write_text("{corrupt")
        assert reaper.sweep_orphans() == []
        assert (ledger / "not-a-pid.json").exists()
        assert not (ledger / f"{dead}.json").exists()


class TestForkSafety:
    def test_child_does_not_inherit_parents_segments(self, ledger):
        reaper.register("parent-seg")
        queue = mp.get_context("fork").Queue()

        def child(queue):
            # The inherited set must be reset: registering here must not
            # write the parent's live segment into the child's ledger.
            reaper.register("child-seg")
            queue.put(sorted(reaper.live_segments()))
            queue.close()
            queue.join_thread()
            # _exit: a normal exit would run the inherited atexit sweep
            # and erase the child ledger this test wants to inspect.
            os._exit(0)

        proc = mp.get_context("fork").Process(target=child, args=(queue,))
        proc.start()
        seen = queue.get(timeout=10)
        proc.join(timeout=10)
        assert seen == ["child-seg"]
        child_ledger = ledger / f"{proc.pid}.json"
        assert json.loads(child_ledger.read_text()) == ["child-seg"]
        assert reaper.live_segments() == {"parent-seg"}
        reaper.unregister("parent-seg")
        child_ledger.unlink()
