"""Shared-memory reaper: ledger durability, orphan sweep, fork safety."""

import json
import multiprocessing as mp
import os
from multiprocessing import resource_tracker, shared_memory

import pytest

from repro.parallel import reaper


@pytest.fixture
def ledger(tmp_path, monkeypatch):
    """Isolate the ledger directory and this process's segment set."""
    monkeypatch.setenv("REPRO_SHM_LEDGER_DIR", str(tmp_path))
    saved = set(reaper._segments)
    reaper._segments.clear()
    yield tmp_path
    reaper._segments.clear()
    reaper._segments.update(saved)


def _make_segment(size=64) -> str:
    segment = shared_memory.SharedMemory(create=True, size=size)
    # Keep the test process's resource tracker out of the picture: the
    # reaper (the thing under test) owns cleanup here.
    resource_tracker.unregister(segment._name, "shared_memory")
    segment.close()
    return segment.name


def _destroy(name: str) -> None:
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return
    segment.close()
    segment.unlink()


class TestLedger:
    def test_register_writes_ledger_before_use(self, ledger):
        reaper.register("seg-a")
        path = ledger / f"{os.getpid()}.json"
        assert json.loads(path.read_text()) == ["seg-a"]
        assert reaper.live_segments() == {"seg-a"}
        reaper.unregister("seg-a")

    def test_unregister_deletes_empty_ledger(self, ledger):
        reaper.register("seg-a")
        reaper.register("seg-b")
        reaper.unregister("seg-a")
        path = ledger / f"{os.getpid()}.json"
        assert json.loads(path.read_text()) == ["seg-b"]
        reaper.unregister("seg-b")
        assert not path.exists()
        assert reaper.live_segments() == set()

    def test_reap_all_unlinks_and_clears(self, ledger):
        name = _make_segment()
        try:
            reaper.register(name)
            assert reaper.reap_all() == 1
            assert reaper.live_segments() == set()
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        finally:
            _destroy(name)


class TestOrphanSweep:
    def _dead_pid(self) -> int:
        proc = mp.get_context("fork").Process(target=lambda: None)
        proc.start()
        proc.join()
        return proc.pid

    def test_dead_pids_ledger_is_replayed(self, ledger):
        name = _make_segment()
        try:
            dead = self._dead_pid()
            (ledger / f"{dead}.json").write_text(json.dumps([name]))
            reaped = reaper.sweep_orphans()
            assert name in reaped
            assert not (ledger / f"{dead}.json").exists()
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        finally:
            _destroy(name)

    def test_live_pids_are_never_touched(self, ledger):
        name = _make_segment()
        try:
            reaper.register(name)           # our own (live) ledger
            assert reaper.sweep_orphans() == []
            segment = shared_memory.SharedMemory(name=name)  # still there
            segment.close()
            reaper.unregister(name)
        finally:
            _destroy(name)

    def test_garbage_ledger_files_are_skipped(self, ledger):
        (ledger / "not-a-pid.json").write_text("[]")
        dead = self._dead_pid()
        (ledger / f"{dead}.json").write_text("{corrupt")
        assert reaper.sweep_orphans() == []
        assert (ledger / "not-a-pid.json").exists()
        assert not (ledger / f"{dead}.json").exists()


class TestForkSafety:
    def test_child_does_not_inherit_parents_segments(self, ledger):
        reaper.register("parent-seg")
        queue = mp.get_context("fork").Queue()

        def child(queue):
            # The inherited set must be reset: registering here must not
            # write the parent's live segment into the child's ledger.
            reaper.register("child-seg")
            queue.put(sorted(reaper.live_segments()))
            queue.close()
            queue.join_thread()
            # _exit: a normal exit would run the inherited atexit sweep
            # and erase the child ledger this test wants to inspect.
            os._exit(0)

        proc = mp.get_context("fork").Process(target=child, args=(queue,))
        proc.start()
        seen = queue.get(timeout=10)
        proc.join(timeout=10)
        assert seen == ["child-seg"]
        child_ledger = ledger / f"{proc.pid}.json"
        assert json.loads(child_ledger.read_text()) == ["child-seg"]
        assert reaper.live_segments() == {"parent-seg"}
        reaper.unregister("parent-seg")
        child_ledger.unlink()


class TestPathEntries:
    """Filesystem artifacts (sockets, pid files, socket dirs) ride the
    same ledger as shm segments, prefixed so sweeps can tell them apart."""

    def test_register_path_lands_prefixed_in_the_ledger(self, ledger,
                                                        tmp_path):
        target = tmp_path / "replica.sock"
        target.write_text("")
        reaper.register_path(target)
        entry = f"path:{target.absolute()}"
        assert entry in reaper.live_segments()
        path = ledger / f"{os.getpid()}.json"
        assert entry in json.loads(path.read_text())
        reaper.unregister_path(target)
        assert reaper.live_segments() == set()

    def test_reap_all_unlinks_registered_files(self, ledger, tmp_path):
        target = tmp_path / "r0.pid"
        target.write_text("1234")
        reaper.register_path(target)
        assert reaper.reap_all() == 1
        assert not target.exists()
        assert reaper.live_segments() == set()

    def test_reap_all_removes_files_before_their_directory(self, ledger,
                                                           tmp_path):
        # Registration order is dir first (it exists first); reclaim must
        # run deepest-first or the rmdir fails on a non-empty directory.
        socket_dir = tmp_path / "replicas"
        socket_dir.mkdir()
        reaper.register_path(socket_dir)
        for name in ("r0.sock", "r1.sock", "r0.pid"):
            child = socket_dir / name
            child.write_text("")
            reaper.register_path(child)
        assert reaper.reap_all() == 4
        assert not socket_dir.exists()

    def test_missing_paths_reap_quietly(self, ledger, tmp_path):
        target = tmp_path / "already-gone.sock"
        reaper.register_path(target)        # never created on disk
        assert reaper.reap_all() == 0       # nothing reclaimed, no raise
        assert reaper.live_segments() == set()

    def test_orphan_sweep_reclaims_a_dead_replicas_artifacts(self, ledger,
                                                             tmp_path):
        socket_dir = tmp_path / "repro-replicas-x"
        socket_dir.mkdir()
        sock = socket_dir / "r0.1.sock"
        sock.write_text("")
        dead = TestOrphanSweep._dead_pid(self)
        (ledger / f"{dead}.json").write_text(json.dumps(
            [f"path:{socket_dir.absolute()}",
             f"path:{sock.absolute()}"]))
        reaped = reaper.sweep_orphans()
        assert len(reaped) == 2
        assert not sock.exists()
        assert not socket_dir.exists()
        assert not (ledger / f"{dead}.json").exists()
