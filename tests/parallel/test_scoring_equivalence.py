"""Parallel importance scoring must be bit-identical to the serial loop.

This is the acceptance property of ``repro.parallel.scoring``: for every
model in the zoo, fanning the per-class Taylor evaluations across worker
processes returns byte-for-byte the same :class:`ImportanceReport` as the
serial per-class loop — same totals, same per-class score matrices.
"""

import numpy as np
import pytest

from repro.core.importance import ImportanceConfig, ImportanceEvaluator
from repro.data import make_cifar_like
from repro.models import build_model
from repro.models.registry import MODEL_REGISTRY


def _tiny(name):
    model = build_model(name, num_classes=3, image_size=8, width=0.25,
                        seed=0)
    train, _ = make_cifar_like(num_classes=3, image_size=8,
                               samples_per_class=6, seed=0)
    return model, train


def _groups(model):
    return [g.conv for g in model.prunable_groups()]


def _assert_identical(serial, parallel):
    assert set(serial.total) == set(parallel.total)
    for path in serial.total:
        np.testing.assert_array_equal(serial.total[path],
                                      parallel.total[path])
        np.testing.assert_array_equal(serial.per_class[path],
                                      parallel.per_class[path])


@pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
def test_parallel_report_bit_identical_to_serial(name):
    model, train = _tiny(name)
    groups = _groups(model)
    cfg = ImportanceConfig(images_per_class=2, tau_mode="quantile",
                           tau_quantile=0.5, seed=0)
    serial = ImportanceEvaluator(model, train, 3, cfg).evaluate(groups)
    evaluator = ImportanceEvaluator(model, train, 3, cfg, workers=2)
    try:
        _assert_identical(serial, evaluator.evaluate(groups))
    finally:
        evaluator.close()


def test_absolute_tau_mode_matches_too():
    model, train = _tiny("vgg11")
    groups = _groups(model)
    cfg = ImportanceConfig(images_per_class=2, tau_mode="absolute", seed=0)
    serial = ImportanceEvaluator(model, train, 3, cfg).evaluate(groups)
    evaluator = ImportanceEvaluator(model, train, 3, cfg, workers=3)
    try:
        _assert_identical(serial, evaluator.evaluate(groups))
    finally:
        evaluator.close()


def test_exact_zeroing_engine_matches_in_workers():
    model, train = _tiny("vgg11")
    groups = _groups(model)[:2]
    cfg = ImportanceConfig(images_per_class=2, use_exact=True, seed=0)
    serial = ImportanceEvaluator(model, train, 3, cfg).evaluate(groups)
    evaluator = ImportanceEvaluator(model, train, 3, cfg, workers=2)
    try:
        _assert_identical(serial, evaluator.evaluate(groups))
    finally:
        evaluator.close()


def test_session_reuse_and_weight_refresh():
    """A reused pool sees updated weights and stays bit-identical."""
    model, train = _tiny("resnet20")
    groups = _groups(model)
    cfg = ImportanceConfig(images_per_class=2, tau_mode="quantile",
                           tau_quantile=0.5, seed=0)
    evaluator = ImportanceEvaluator(model, train, 3, cfg, workers=2)
    try:
        first = evaluator.evaluate(groups)
        _assert_identical(first, evaluator.evaluate(groups))
        # Perturb the weights: the session refreshes shared memory in
        # place and must track the serial evaluator exactly.
        for _, param in model.named_parameters():
            param.data = param.data + np.float32(0.01)
        serial = ImportanceEvaluator(model, train, 3, cfg).evaluate(groups)
        _assert_identical(serial, evaluator.evaluate(groups))
    finally:
        evaluator.close()


def test_worker_count_does_not_change_the_report():
    model, train = _tiny("vgg11")
    groups = _groups(model)
    cfg = ImportanceConfig(images_per_class=2, tau_mode="quantile",
                           tau_quantile=0.5, seed=0)
    reports = []
    for workers in (1, 2, 3):
        evaluator = ImportanceEvaluator(model, train, 3, cfg,
                                        workers=workers)
        try:
            reports.append(evaluator.evaluate(groups))
        finally:
            evaluator.close()
    _assert_identical(reports[0], reports[1])
    _assert_identical(reports[0], reports[2])
