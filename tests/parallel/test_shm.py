"""Shared-memory ndarray bundles: round trips, refresh, lifecycle."""

import pickle

import numpy as np
import pytest

from repro.parallel import SharedArrayBundle, ShmSpec


def _sample_arrays():
    rng = np.random.default_rng(0)
    return {
        "weights": rng.normal(size=(4, 3, 3, 3)).astype(np.float32),
        "labels": np.arange(10, dtype=np.intp),
        "scores": rng.normal(size=(8, 5)),  # float64
    }


def test_round_trip_through_spec():
    arrays = _sample_arrays()
    bundle = SharedArrayBundle.create(arrays)
    try:
        attached = SharedArrayBundle.attach(bundle.spec, untrack=False)
        try:
            assert set(attached.arrays) == set(arrays)
            for key, value in arrays.items():
                view = attached.arrays[key]
                assert view.dtype == value.dtype
                np.testing.assert_array_equal(view, value)
        finally:
            attached.close()
    finally:
        bundle.unlink()


def test_spec_is_picklable():
    bundle = SharedArrayBundle.create({"x": np.ones(3, np.float32)})
    try:
        spec = pickle.loads(pickle.dumps(bundle.spec))
        assert isinstance(spec, ShmSpec)
        assert spec == bundle.spec
    finally:
        bundle.unlink()


def test_copy_from_refreshes_in_place():
    arrays = _sample_arrays()
    bundle = SharedArrayBundle.create(arrays)
    try:
        attached = SharedArrayBundle.attach(bundle.spec, untrack=False)
        try:
            updated = {k: v + 1 for k, v in arrays.items()}
            bundle.copy_from(updated)
            # The other mapping sees the new values without re-attaching.
            for key in arrays:
                np.testing.assert_array_equal(attached.arrays[key],
                                              updated[key])
        finally:
            attached.close()
    finally:
        bundle.unlink()


def test_writes_through_attached_view_visible_to_owner():
    bundle = SharedArrayBundle.create({"x": np.zeros((2, 2), np.float32)})
    try:
        attached = SharedArrayBundle.attach(bundle.spec, untrack=False)
        try:
            attached.arrays["x"][0, 1] = 7.0
            assert bundle.arrays["x"][0, 1] == 7.0
        finally:
            attached.close()
    finally:
        bundle.unlink()


def test_unlink_destroys_segment():
    bundle = SharedArrayBundle.create({"x": np.ones(2, np.float32)})
    spec = bundle.spec
    bundle.unlink()
    with pytest.raises(FileNotFoundError):
        SharedArrayBundle.attach(spec, untrack=False)


def test_create_registers_with_reaper_until_unlink():
    from repro.parallel import reaper
    bundle = SharedArrayBundle.create({"x": np.ones(2, np.float32)})
    try:
        assert bundle.spec.name in reaper.live_segments()
    finally:
        bundle.unlink()
    assert bundle.spec.name not in reaper.live_segments()


def test_failed_create_leaks_nothing():
    # copy_from fails after the segment is allocated; the segment must be
    # unlinked and deregistered before the error reaches the caller.
    from repro.parallel import reaper

    class ExplodingMapping(dict):
        def __getitem__(self, key):
            raise RuntimeError("storage fault while copying")

    arrays = ExplodingMapping(x=np.ones(4, np.float32))
    before = reaper.live_segments()
    with pytest.raises(RuntimeError, match="storage fault"):
        SharedArrayBundle.create(arrays)
    assert reaper.live_segments() == before


def test_failed_attach_closes_mapping_and_segment_stays_destroyable():
    # Regression: a malformed spec used to leak the worker-side mapping
    # when view construction raised between attach and return.
    from repro.parallel.shm import ShmSpec
    bundle = SharedArrayBundle.create({"x": np.ones(4, np.float32)})
    try:
        bad = ShmSpec(name=bundle.spec.name,
                      entries=(("x", "<f4", (1024, 1024),
                                bundle.spec.total_bytes * 2),),
                      total_bytes=bundle.spec.total_bytes)
        with pytest.raises(TypeError):
            SharedArrayBundle.attach(bad, untrack=False)
        # The good spec still works: the failed attach held no mapping.
        attached = SharedArrayBundle.attach(bundle.spec, untrack=False)
        np.testing.assert_array_equal(attached.arrays["x"],
                                      np.ones(4, np.float32))
        attached.close()
    finally:
        bundle.unlink()
