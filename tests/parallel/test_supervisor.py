"""Supervised pool: respawn, deadlines, degrade, and bit-determinism."""

import numpy as np
import pytest

from repro.core import (ClassAwarePruningFramework, FrameworkConfig,
                        ImportanceConfig, Trainer, TrainingConfig)
from repro.core.importance import ImportanceEvaluator
from repro.data import make_cifar_like
from repro.models import build_model
from repro.parallel import (CRASH_TASK, EchoService, ParallelExecutionError,
                            SupervisedWorkerPool, SupervisionConfig,
                            TaskFailedError, WorkerEvent, reaper)
from repro.parallel.scoring import ScoringService
from repro.parallel.shard import TrainingService
from repro.resilience import RunJournal, worker_fault
from repro.resilience.chaos import SimulatedCrash

# Tight timings so fault drills finish in well under a second each. The
# 30s task deadline (vs the 120s default) bounds the stall if a loaded CI
# host makes a respawned worker miss its start-up deadline.
FAST = dict(poll_seconds=0.02, heartbeat_seconds=0.05,
            respawn_delay=0.01, respawn_jitter=0.0,
            task_deadline_seconds=30.0)


def _tiny_model(seed=0):
    return build_model("vgg11", num_classes=3, image_size=8, width=0.25,
                       seed=seed)


def _tiny_data(seed=0):
    return make_cifar_like(num_classes=3, image_size=8, samples_per_class=12,
                           seed=seed)


class TestHealthyPool:
    def test_results_in_task_order_and_pool_reusable(self):
        with SupervisedWorkerPool(2, EchoService, ("tag",),
                                  supervision=SupervisionConfig(**FAST)) as pool:
            tasks = list(range(7))
            assert pool.run_tasks(tasks) == [("tag", t) for t in tasks]
            assert pool.run_tasks(["again"]) == [("tag", "again")]
            assert not pool.degraded
            assert pool.events == []

    def test_closed_pool_rejects_work(self):
        pool = SupervisedWorkerPool(1, EchoService, (),
                                    supervision=SupervisionConfig(**FAST))
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(ParallelExecutionError, match="closed"):
            pool.run_tasks(["x"])

    def test_initial_construction_failure_raises(self):
        class Broken:
            def __init__(self):
                raise RuntimeError("cannot construct")

        with pytest.raises(ParallelExecutionError, match="initialise"):
            SupervisedWorkerPool(1, Broken, (),
                                 supervision=SupervisionConfig(**FAST))

    def test_invalid_process_count_rejected(self):
        with pytest.raises(ValueError):
            SupervisedWorkerPool(0, EchoService, ())


class TestFaultRecovery:
    def test_sigkill_mid_task_heals_without_degrading(self):
        supervision = SupervisionConfig(**FAST)
        with worker_fault(EchoService, mode="kill", at_call=0) as marker:
            with SupervisedWorkerPool(2, EchoService, ("t",),
                                      supervision=supervision) as pool:
                out = pool.run_tasks(["a", "b", "c", "d"])
                kinds = [e.kind for e in pool.events]
                degraded = pool.degraded
        assert marker.exists(), "kill fault never fired"
        marker.unlink()
        assert out == [("t", t) for t in ("a", "b", "c", "d")]
        assert not degraded
        assert "crash" in kinds
        assert "retry" in kinds
        assert "respawn" in kinds

    def test_hang_caught_by_task_deadline(self):
        supervision = SupervisionConfig(
            **{**FAST, "task_deadline_seconds": 0.8})
        with worker_fault(EchoService, mode="hang", at_call=0) as marker:
            with SupervisedWorkerPool(2, EchoService, ("t",),
                                      supervision=supervision) as pool:
                out = pool.run_tasks(["a", "b", "c"])
                kinds = [e.kind for e in pool.events]
                degraded = pool.degraded
        assert marker.exists(), "hang fault never fired"
        marker.unlink()
        assert out == [("t", t) for t in ("a", "b", "c")]
        assert not degraded
        assert "hang" in kinds
        assert "respawn" in kinds

    def test_frozen_process_caught_by_stale_heartbeat(self):
        supervision = SupervisionConfig(stale_after_seconds=0.5, **FAST)
        with worker_fault(EchoService, mode="freeze", at_call=0) as marker:
            with SupervisedWorkerPool(2, EchoService, ("t",),
                                      supervision=supervision) as pool:
                out = pool.run_tasks(["a", "b", "c"])
                kinds = [e.kind for e in pool.events]
                degraded = pool.degraded
        assert marker.exists(), "freeze fault never fired"
        marker.unlink()
        assert out == [("t", t) for t in ("a", "b", "c")]
        assert not degraded
        assert "stale" in kinds

    def test_worker_exception_raises_immediately_without_retry(self):
        # A raising task is a deterministic bug: retrying would fail the
        # same way, so the remote traceback must surface on the spot.
        pool = SupervisedWorkerPool(2, EchoService, (),
                                    supervision=SupervisionConfig(**FAST))
        with pytest.raises(TaskFailedError, match="boom"):
            pool.run_tasks(["ok", {"raise": "boom"}])
        assert not any(e.kind == "retry" for e in pool.events)
        pool.close()


class TestGracefulDegrade:
    def test_poison_task_degrades_to_serial_completion(self):
        supervision = SupervisionConfig(max_respawns=2, max_task_retries=1,
                                        **FAST)
        with SupervisedWorkerPool(2, EchoService, ("t",),
                                  supervision=supervision) as pool:
            out = pool.run_tasks(["a", CRASH_TASK, "b", "c"])
            assert pool.degraded
            assert pool.degrade_reason
            # The serial fallback runs the service directly (the crash
            # sentinel lives in the worker loop), so every task completes.
            assert out == [("t", t) for t in ("a", CRASH_TASK, "b", "c")]
            assert any(e.kind == "degrade" for e in pool.events)
            # A degraded pool keeps serving, serially.
            assert pool.run_tasks(["d", "e"]) == [("t", "d"), ("t", "e")]


class TestBitIdentity:
    """Acceptance: a SIGKILLed worker must not change a single bit."""

    def test_scoring_session_bit_identical_after_sigkill(self):
        model = _tiny_model()
        train, _ = _tiny_data()
        cfg = ImportanceConfig(images_per_class=3)
        groups = [g.conv for g in model.prunable_groups()]

        with ImportanceEvaluator(model, train, 3, cfg, workers=2) as ev:
            clean = ev.evaluate(groups)

        events = []
        with worker_fault(ScoringService, mode="kill", at_call=0) as marker:
            with ImportanceEvaluator(
                    model, train, 3, cfg, workers=2,
                    supervision=SupervisionConfig(**FAST),
                    on_worker_event=events.append) as ev:
                faulted = ev.evaluate(groups)
                assert not ev.degraded
        assert marker.exists(), "kill fault never fired"
        marker.unlink()
        assert any(e.kind == "respawn" for e in events)
        for path in clean.total:
            np.testing.assert_array_equal(clean.total[path],
                                          faulted.total[path])
        assert not reaper.live_segments()

    def test_sharded_training_bit_identical_after_sigkill(self):
        train, _ = _tiny_data()
        tcfg = TrainingConfig(epochs=1, batch_size=16, lr=0.05, seed=0,
                              workers=2)

        clean = _tiny_model()
        trainer = Trainer(clean, train, None, tcfg)
        try:
            trainer.train(epochs=1)
        finally:
            trainer.close()

        events = []
        faulted = _tiny_model()
        # The standing pipeline calls `handle` once per dispatch, so the
        # kill is planted on the per-shard inner method: it fires between
        # the bucket publications of two shards of the same step.
        with worker_fault(TrainingService, mode="kill", at_call=1,
                          method="run_shard") as marker:
            trainer = Trainer(faulted, train, None, tcfg,
                              supervision=SupervisionConfig(**FAST),
                              on_worker_event=events.append)
            try:
                trainer.train(epochs=1)
                assert not trainer.degraded
            finally:
                trainer.close()
        assert marker.exists(), "kill fault never fired"
        marker.unlink()
        assert any(e.kind == "respawn" for e in events)
        ref, got = clean.state_dict(), faulted.state_dict()
        assert sorted(ref) == sorted(got)
        for key in ref:
            np.testing.assert_array_equal(ref[key], got[key])
        assert not reaper.live_segments()


class TestFrameworkIntegration:
    def _framework(self, seed=0):
        model = _tiny_model(seed)
        train, test = _tiny_data(seed)
        return ClassAwarePruningFramework(
            model, train, test, num_classes=3, input_shape=(3, 8, 8),
            config=FrameworkConfig(
                score_threshold=1.0, max_fraction_per_iteration=0.2,
                finetune_epochs=1, accuracy_drop_tolerance=0.5,
                max_iterations=1,
                importance=ImportanceConfig(images_per_class=3)),
            training=TrainingConfig(epochs=1, batch_size=32, lr=0.05,
                                    seed=seed))

    def test_degrade_event_sets_stop_reason_and_journals(self, tmp_path):
        fw = self._framework()
        run_dir = tmp_path / "run"

        def degrade(iteration):
            fw._on_worker_event(WorkerEvent(
                kind="crash", worker_id=1, task_index=3,
                detail="process died with exit code -9"))
            fw._on_worker_event(WorkerEvent(
                kind="degrade", worker_id=-1,
                detail="respawn budget exhausted (injected)"))

        result = fw.run(run_dir=run_dir, post_iteration=degrade)
        assert result.stop_reason == "parallel-degraded"
        assert "degraded to serial" in result.termination
        assert fw.degraded
        assert len(fw.worker_events) == 2

        journal = RunJournal(run_dir / "journal.jsonl")
        fault = journal.last_event("worker_fault")
        assert fault is not None and fault["kind"] == "crash"
        degrade_rec = journal.last_event("parallel_degrade")
        assert degrade_rec is not None
        assert degrade_rec["detail"] == "respawn budget exhausted (injected)"

    def test_resume_replays_degraded_stop_reason(self, tmp_path):
        fw = self._framework()
        run_dir = tmp_path / "run"

        def degrade_then_crash(iteration):
            fw._on_worker_event(WorkerEvent(
                kind="degrade", worker_id=-1, detail="injected"))
            raise SimulatedCrash("killed mid-run")

        with pytest.raises(SimulatedCrash):
            fw.run(run_dir=run_dir, post_iteration=degrade_then_crash)

        resumed = self._framework().run(resume_from=run_dir)
        assert resumed.stop_reason == "parallel-degraded"

    def test_clean_run_does_not_degrade(self, tmp_path):
        fw = self._framework()
        result = fw.run(run_dir=tmp_path / "run")
        assert result.stop_reason != "parallel-degraded"
        assert not fw.degraded
        assert fw.worker_events == []
