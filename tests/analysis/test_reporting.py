"""Experiment records and table formatting."""

import numpy as np
import pytest

from repro.analysis import (ExperimentRecord, format_table, load_records,
                            save_records)


class TestExperimentRecord:
    def test_to_dict_handles_numpy(self):
        record = ExperimentRecord(
            experiment="table1", setting="VGG16-C10",
            paper={"ratio": 95.6},
            measured={"ratio": np.float64(90.0),
                      "curve": np.array([1.0, 2.0])})
        d = record.to_dict()
        assert d["measured"]["ratio"] == 90.0
        assert d["measured"]["curve"] == [1.0, 2.0]

    def test_row_renders(self):
        record = ExperimentRecord("table1", "x", paper={"a": 1},
                                  measured={"b": 2.0})
        assert "table1" in record.row()

    def test_save_and_load_roundtrip(self, tmp_path):
        records = [ExperimentRecord("fig6", "l1", paper={"acc": 93.0},
                                    measured={"acc": 0.91})]
        path = tmp_path / "out" / "records.json"
        save_records(records, path)
        loaded = load_records(path)
        assert loaded[0].experiment == "fig6"
        assert loaded[0].measured["acc"] == pytest.approx(0.91)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "value"],
                            [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].index("value") == lines[2].index("1") or True
        assert "long-name" in lines[3]

    def test_title(self):
        text = format_table(["h"], [["x"]], title="Table I")
        assert text.splitlines()[0] == "Table I"


class TestMethodComparison:
    def test_table_and_ranks(self):
        from repro.analysis import MethodComparison
        from repro.baselines.harness import BaselineRunResult

        cmp = MethodComparison("VGG16-C10", original_accuracy=0.9)
        cmp.add(BaselineRunResult("l1", 0.9, 0.85, 0.5, 0.4, 3))
        cmp.add(BaselineRunResult("class-aware", 0.9, 0.88, 0.6, 0.5, 3))
        assert cmp.best_accuracy_method() == "class-aware"
        assert cmp.rank_of("class-aware") == 1
        assert cmp.rank_of("l1") == 2
        table = cmp.table()
        assert "VGG16-C10" in table
        panels = cmp.panels()
        assert "FLOPs reduction" in panels

    def test_rank_of_missing_method(self):
        from repro.analysis import MethodComparison
        cmp = MethodComparison("x", 0.9)
        with pytest.raises(ValueError):
            cmp.best_accuracy_method()
