"""Threshold-sweep trade-off analysis."""

import numpy as np
import pytest

from repro.analysis import TradeoffPoint, pareto_front, threshold_sweep
from repro.core import (FrameworkConfig, ImportanceConfig, Trainer,
                        TrainingConfig)
from repro.models import vgg11


class TestParetoFront:
    def test_keeps_non_dominated(self):
        points = [
            TradeoffPoint(1, 0.9, 0.2, 0.1, "x"),
            TradeoffPoint(2, 0.8, 0.5, 0.3, "x"),
            TradeoffPoint(3, 0.7, 0.4, 0.2, "x"),  # dominated by p2
        ]
        front = pareto_front(points)
        assert {p.threshold for p in front} == {1, 2}

    def test_sorted_by_ratio(self):
        points = [
            TradeoffPoint(1, 0.7, 0.6, 0.1, "x"),
            TradeoffPoint(2, 0.9, 0.2, 0.1, "x"),
        ]
        front = pareto_front(points)
        assert [p.pruning_ratio for p in front] == [0.2, 0.6]

    def test_identical_points_both_kept(self):
        points = [TradeoffPoint(1, 0.9, 0.5, 0.1, "x"),
                  TradeoffPoint(2, 0.9, 0.5, 0.1, "x")]
        assert len(pareto_front(points)) == 2

    def test_empty(self):
        assert pareto_front([]) == []


class TestThresholdSweep:
    def test_sweep_runs_and_is_monotone_in_aggressiveness(
            self, tiny_dataset, tiny_test_dataset):
        model = vgg11(num_classes=3, image_size=8, width=0.25, seed=6)
        training = TrainingConfig(epochs=10, batch_size=32, lr=0.05,
                                  lambda1=1e-4, lambda2=1e-2,
                                  weight_decay=0.0)
        Trainer(model, tiny_dataset, tiny_test_dataset, training).train()
        points = threshold_sweep(
            model, tiny_dataset, tiny_test_dataset, num_classes=3,
            input_shape=(3, 8, 8), thresholds=[0.5, 2.5],
            base_config=FrameworkConfig(
                max_fraction_per_iteration=0.2, finetune_epochs=1,
                accuracy_drop_tolerance=0.5, max_iterations=3,
                importance=ImportanceConfig(images_per_class=4,
                                            tau_mode="quantile",
                                            tau_quantile=0.9)),
            training=training)
        assert len(points) == 2
        # A higher threshold admits more filters as prunable.
        assert points[1].pruning_ratio >= points[0].pruning_ratio - 1e-9
        # The swept copies never touch the original model.
        assert model.num_parameters() > 0
