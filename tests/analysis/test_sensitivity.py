"""Layer-wise sensitivity analysis."""

import numpy as np
import pytest

from repro.analysis import (LayerSensitivity, layer_sensitivity,
                            sensitivity_vs_importance)
from repro.core.importance import ImportanceReport


class TestLayerSensitivity:
    def test_curves_cover_all_groups(self, tiny_mlp, tiny_dataset):
        groups = tiny_mlp.prunable_groups()
        curves = layer_sensitivity(tiny_mlp, tiny_dataset, groups,
                                   fractions=(0.0, 0.5))
        assert set(curves) == {g.name for g in groups}
        for curve in curves.values():
            assert curve.fractions == [0.0, 0.5]
            assert all(0 <= a <= 1 for a in curve.accuracies)

    def test_fraction_zero_equals_unmasked_accuracy(self, tiny_mlp,
                                                    tiny_dataset):
        from repro.core import evaluate_model
        groups = tiny_mlp.prunable_groups()
        curves = layer_sensitivity(tiny_mlp, tiny_dataset, groups,
                                   fractions=(0.0,))
        _, plain = evaluate_model(tiny_mlp, tiny_dataset)
        for curve in curves.values():
            assert curve.accuracies[0] == pytest.approx(plain)

    def test_model_untouched(self, tiny_mlp, tiny_dataset):
        groups = tiny_mlp.prunable_groups()
        before = tiny_mlp.get_module(groups[0].conv).weight.data.copy()
        layer_sensitivity(tiny_mlp, tiny_dataset, groups,
                          fractions=(0.0, 0.75))
        np.testing.assert_array_equal(
            tiny_mlp.get_module(groups[0].conv).weight.data, before)

    def test_custom_score_order_used(self, tiny_mlp, tiny_dataset):
        groups = tiny_mlp.prunable_groups()
        g = groups[0]
        n = tiny_mlp.get_module(g.conv).out_features
        # All-equal scores vs weight norms can give different victims; we
        # only verify the call path accepts custom scores.
        scores = {g.name: np.arange(n, dtype=float)}
        curves = layer_sensitivity(tiny_mlp, tiny_dataset, [g],
                                   scores=scores, fractions=(0.0, 0.5))
        assert g.name in curves

    def test_drop_at(self):
        curve = LayerSensitivity("g", [0.0, 0.5], [0.9, 0.6])
        assert curve.drop_at(0.5) == pytest.approx(0.3)
        with pytest.raises(ValueError):
            LayerSensitivity("g").drop_at(0.5)


class TestSensitivityVsImportance:
    def _curves(self, drops):
        return {name: LayerSensitivity(name, [0.0, 0.5], [0.9, 0.9 - d])
                for name, d in drops.items()}

    def _report(self, means):
        report = ImportanceReport(num_classes=10)
        report.total = {name: np.full(4, m) for name, m in means.items()}
        return report

    def test_positive_correlation_detected(self):
        drops = {"a": 0.1, "b": 0.2, "c": 0.3, "d": 0.4}
        means = {"a": 1.0, "b": 2.0, "c": 3.0, "d": 4.0}
        rho = sensitivity_vs_importance(self._curves(drops),
                                        self._report(means))
        assert rho == pytest.approx(1.0)

    def test_requires_three_layers(self):
        with pytest.raises(ValueError):
            sensitivity_vs_importance(self._curves({"a": 0.1, "b": 0.2}),
                                      self._report({"a": 1.0, "b": 2.0}))

    def test_constant_inputs_return_zero(self):
        drops = {"a": 0.1, "b": 0.1, "c": 0.1}
        means = {"a": 1.0, "b": 2.0, "c": 3.0}
        assert sensitivity_vs_importance(self._curves(drops),
                                         self._report(means)) == 0.0
