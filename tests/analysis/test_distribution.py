"""Score-distribution analysis (Figs. 4, 7, 8 machinery)."""

import numpy as np
import pytest

from repro.analysis import (DistributionComparison, ascii_bars,
                            ascii_histogram, layer_average_scores,
                            polarization_index, score_histogram)
from repro.core.importance import ImportanceReport


class TestScoreHistogram:
    def test_default_one_bin_per_class(self):
        counts, edges = score_histogram(np.array([0.0, 5.0, 10.0]), 10)
        assert len(counts) == 11
        assert counts.sum() == 3

    def test_full_score_lands_in_last_bin(self):
        counts, _ = score_histogram(np.array([10.0]), 10)
        assert counts[-1] == 1

    def test_zero_score_in_first_bin(self):
        counts, _ = score_histogram(np.array([0.0]), 10)
        assert counts[0] == 1

    def test_scores_clipped_into_range(self):
        counts, _ = score_histogram(np.array([-1.0, 99.0]), 10)
        assert counts.sum() == 2

    def test_custom_bins(self):
        counts, edges = score_histogram(np.linspace(0, 10, 50), 10, bins=5)
        assert len(counts) == 5

    def test_invalid_num_classes(self):
        with pytest.raises(ValueError):
            score_histogram(np.array([1.0]), 0)


class TestPolarizationIndex:
    def test_fully_polarised_is_one(self):
        scores = np.array([0.0, 0.0, 10.0, 10.0])
        assert polarization_index(scores, 10) == 1.0

    def test_centered_is_zero(self):
        scores = np.full(10, 5.0)
        assert polarization_index(scores, 10) == 0.0

    def test_empty_scores(self):
        assert polarization_index(np.array([]), 10) == 0.0

    def test_l1_orth_combination_story(self):
        # Matches Fig. 8: a bimodal distribution is more polarised than a
        # unimodal mid-range one.
        rng = np.random.default_rng(0)
        bimodal = np.concatenate([rng.uniform(0, 0.5, 50),
                                  rng.uniform(9.5, 10, 50)])
        unimodal = rng.uniform(3, 7, 100)
        assert polarization_index(bimodal, 10) > polarization_index(unimodal, 10)


class TestDistributionComparison:
    def test_series_and_means(self):
        cmp = DistributionComparison("layer1", num_classes=10)
        cmp.add("before", np.array([1.0, 3.0]))
        cmp.add("after", np.array([8.0, 10.0]))
        means = cmp.means()
        assert means["after"] > means["before"]

    def test_histograms_per_series(self):
        cmp = DistributionComparison("l", num_classes=5)
        cmp.add("a", np.array([0.0, 5.0]))
        h = cmp.histograms()
        assert h["a"].sum() == 2

    def test_render_contains_labels(self):
        cmp = DistributionComparison("conv3", num_classes=5)
        cmp.add("before pruning", np.array([1.0]))
        text = cmp.render()
        assert "conv3" in text
        assert "before pruning" in text


class TestAsciiRendering:
    def test_histogram_lines(self):
        counts, edges = score_histogram(np.array([0.0, 1.0, 1.0]), 2)
        text = ascii_histogram(counts, edges)
        assert len(text.splitlines()) == len(counts)

    def test_bars_scale_to_peak(self):
        text = ascii_bars({"a": 1.0, "b": 2.0}, width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_empty_bars(self):
        assert ascii_bars({}) == "(empty)"


class TestLayerAverages:
    def test_reads_report(self):
        report = ImportanceReport(num_classes=3)
        report.total = {"conv1": np.array([1.0, 2.0]),
                        "conv2": np.array([3.0])}
        means = layer_average_scores(report)
        assert means == {"conv1": 1.5, "conv2": 3.0}
