"""Markdown export of experiment records."""

import pytest

from repro.analysis import ExperimentRecord
from repro.analysis.reporting import records_to_markdown


class TestRecordsToMarkdown:
    def test_empty(self):
        assert records_to_markdown([]) == "(no records)"

    def test_header_covers_union_of_metrics(self):
        records = [
            ExperimentRecord("t1", "a", measured={"acc": 1.0}),
            ExperimentRecord("t1", "b", measured={"ratio": 2.0}),
        ]
        md = records_to_markdown(records)
        header = md.splitlines()[0]
        assert "acc" in header and "ratio" in header

    def test_row_count(self):
        records = [ExperimentRecord("t", f"s{i}", measured={"x": float(i)})
                   for i in range(3)]
        md = records_to_markdown(records)
        assert len(md.splitlines()) == 2 + 3  # header + separator + rows

    def test_paper_column(self):
        record = ExperimentRecord("t", "s", paper={"ratio": 95.6},
                                  measured={"ratio": 66.5})
        md = records_to_markdown([record])
        assert "ratio=95.6" in md
        assert "66.50" in md

    def test_missing_metric_rendered_empty(self):
        records = [
            ExperimentRecord("t", "a", measured={"acc": 1.0}),
            ExperimentRecord("t", "b", measured={"ratio": 2.0}),
        ]
        md = records_to_markdown(records)
        row_a = md.splitlines()[2]
        assert row_a.count("|") == md.splitlines()[0].count("|")
