"""Report correlation (the Sec. IV M-sensitivity metric)."""

import numpy as np
import pytest

from repro.analysis import report_correlation
from repro.core.importance import ImportanceReport


def make_report(values: dict[str, list[float]]) -> ImportanceReport:
    report = ImportanceReport(num_classes=10)
    report.total = {k: np.asarray(v, dtype=np.float64)
                    for k, v in values.items()}
    return report


class TestReportCorrelation:
    def test_identical_reports_correlate_perfectly(self):
        a = make_report({"x": [1.0, 2.0, 3.0]})
        b = make_report({"x": [1.0, 2.0, 3.0]})
        assert report_correlation(a, b) == pytest.approx(1.0)

    def test_monotone_transform_preserves_rank(self):
        a = make_report({"x": [1.0, 2.0, 3.0, 4.0]})
        b = make_report({"x": [2.0, 4.0, 6.0, 8.0]})
        assert report_correlation(a, b) == pytest.approx(1.0)

    def test_reversed_order_is_negative(self):
        a = make_report({"x": [1.0, 2.0, 3.0]})
        b = make_report({"x": [3.0, 2.0, 1.0]})
        assert report_correlation(a, b) == pytest.approx(-1.0)

    def test_mismatched_groups_rejected(self):
        a = make_report({"x": [1.0]})
        b = make_report({"y": [1.0]})
        with pytest.raises(ValueError):
            report_correlation(a, b)

    def test_mismatched_sizes_rejected(self):
        a = make_report({"x": [1.0, 2.0]})
        b = make_report({"x": [1.0]})
        with pytest.raises(ValueError):
            report_correlation(a, b)

    def test_constant_vectors_handled(self):
        a = make_report({"x": [2.0, 2.0, 2.0]})
        b = make_report({"x": [2.0, 2.0, 2.0]})
        assert report_correlation(a, b) == 1.0
        c = make_report({"x": [1.0, 2.0, 3.0]})
        assert report_correlation(a, c) == 0.0
