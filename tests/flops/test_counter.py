"""FLOPs/params accounting (Table I metric machinery)."""

import numpy as np
import pytest

from repro.flops import (flops_reduction, profile_model, pruning_ratio)
from repro.models import MLP, resnet20, vgg11
from repro.nn import BatchNorm2d, Conv2d, Linear, ReLU, Sequential
from repro.core import prune_groups


class TestLayerCosts:
    def test_single_conv_macs_by_hand(self):
        # 4 filters of 3x3x3 over an 8x8 input with padding 1:
        # MACs = 8*8*4 * 3*3*3 = 6912.
        model = Sequential(Conv2d(3, 4, 3, padding=1))
        profile = profile_model(model, (3, 8, 8))
        conv = profile.by_type("Conv2d")[0]
        assert conv.macs == 8 * 8 * 4 * 27
        assert conv.flops == 2 * conv.macs
        assert conv.params == 4 * 27 + 4

    def test_strided_conv_counts_output_positions(self):
        model = Sequential(Conv2d(1, 1, 3, stride=2, padding=1, bias=False))
        profile = profile_model(model, (1, 8, 8))
        assert profile.by_type("Conv2d")[0].macs == 4 * 4 * 9

    def test_linear_macs(self):
        model = Sequential(Linear(10, 5))
        # Shape inference needs a 2-D input; wrap in a flatten-style call.
        from repro.nn import Flatten
        model = Sequential(Flatten(), Linear(12, 5))
        profile = profile_model(model, (3, 2, 2))
        lin = profile.by_type("Linear")[0]
        assert lin.macs == 12 * 5
        assert lin.params == 12 * 5 + 5

    def test_batchnorm_counted(self):
        model = Sequential(Conv2d(1, 2, 3, padding=1), BatchNorm2d(2))
        profile = profile_model(model, (1, 4, 4))
        bn = profile.by_type("BatchNorm2d")[0]
        assert bn.params == 4
        assert bn.macs == 2 * 4 * 4

    def test_total_params_matches_module_count(self):
        model = vgg11(num_classes=3, image_size=8, width=0.125)
        profile = profile_model(model, (3, 8, 8))
        assert profile.total_params == model.num_parameters()

    def test_layers_in_execution_order(self):
        model = vgg11(num_classes=3, image_size=8, width=0.125)
        profile = profile_model(model, (3, 8, 8))
        conv_paths = [l.path for l in profile.layers
                      if l.layer_type == "Conv2d"]
        assert conv_paths == model.conv_layer_paths()

    def test_profile_does_not_disturb_bn_stats(self):
        model = vgg11(num_classes=3, image_size=8, width=0.125)
        bn = model.get_module(model.prunable_groups()[0].bn)
        before = bn.running_mean.copy()
        profile_model(model, (3, 8, 8))
        np.testing.assert_array_equal(bn.running_mean, before)

    def test_summary_renders(self):
        model = MLP(12, [8], 3)
        text = profile_model(model, (3, 2, 2)).summary()
        assert "TOTAL" in text


class TestRatios:
    def test_pruning_ratio_after_surgery(self, tiny_vgg):
        original = profile_model(tiny_vgg, (3, 8, 8))
        groups = tiny_vgg.prunable_groups()
        g = groups[0]
        n = tiny_vgg.get_module(g.conv).out_channels
        prune_groups(tiny_vgg, groups, {g.name: np.arange(n // 2)})
        pruned = profile_model(tiny_vgg, (3, 8, 8))
        ratio = pruning_ratio(original, pruned)
        red = flops_reduction(original, pruned)
        assert 0 < ratio < 1
        assert 0 < red < 1

    def test_identity_is_zero(self, tiny_vgg):
        p = profile_model(tiny_vgg, (3, 8, 8))
        assert pruning_ratio(p, p) == 0.0
        assert flops_reduction(p, p) == 0.0

    def test_resnet_conv1_only_rule_preserves_fixed_costs(self, tiny_resnet):
        # Pruning only first convs of blocks never touches the stem,
        # shortcut projections or classifier: their costs must survive
        # even under the most extreme pruning, bounding the reduction
        # away from 100%.
        original = profile_model(tiny_resnet, (3, 8, 8))
        groups = tiny_resnet.prunable_groups()
        keep = {g.name: np.arange(1) for g in groups}  # extreme prune
        prune_groups(tiny_resnet, groups, keep)
        pruned = profile_model(tiny_resnet, (3, 8, 8))
        assert flops_reduction(original, pruned) < 1.0
        fixed = ["conv1", "stage2.0.shortcut.0", "stage3.0.shortcut.0",
                 "classifier"]
        orig_by_path = {l.path: l for l in original.layers}
        pruned_by_path = {l.path: l for l in pruned.layers}
        for path in fixed:
            assert pruned_by_path[path].macs == orig_by_path[path].macs

    def test_empty_profile_raises(self):
        from repro.flops import ModelProfile
        with pytest.raises(ValueError):
            pruning_ratio(ModelProfile(), ModelProfile())
