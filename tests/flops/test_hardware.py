"""Systolic-array cost model."""

import math

import numpy as np
import pytest

from repro.core import prune_groups
from repro.flops import (HardwareReport, SystolicArrayConfig, cycle_reduction,
                         estimate_cycles, gemm_cycles)
from repro.models import vgg11


class TestGemmCycles:
    def test_single_tile_cost(self):
        cfg = SystolicArrayConfig(rows=4, cols=4)
        # One 4x4 weight tile, M=10 rows: 10 + 4 + 4 - 1 = 17 cycles.
        assert gemm_cycles(10, 4, 4, cfg) == 17

    def test_tiling_scales_linearly(self):
        cfg = SystolicArrayConfig(rows=4, cols=4)
        one = gemm_cycles(10, 4, 4, cfg)
        assert gemm_cycles(10, 8, 4, cfg) == 2 * one
        assert gemm_cycles(10, 8, 8, cfg) == 4 * one

    def test_partial_tiles_round_up(self):
        cfg = SystolicArrayConfig(rows=4, cols=4)
        assert gemm_cycles(10, 5, 4, cfg) == 2 * gemm_cycles(10, 4, 4, cfg)

    def test_sparsity_ignored_without_zero_skipping(self):
        cfg = SystolicArrayConfig(rows=4, cols=4, zero_skipping=False)
        assert gemm_cycles(10, 16, 16, cfg, sparsity=0.9) == \
            gemm_cycles(10, 16, 16, cfg, sparsity=0.0)

    def test_zero_skipping_compresses_reduction_dim(self):
        cfg = SystolicArrayConfig(rows=4, cols=4, zero_skipping=True,
                                  skip_overhead=0.0)
        dense = gemm_cycles(10, 16, 16, cfg, sparsity=0.0)
        sparse = gemm_cycles(10, 16, 16, cfg, sparsity=0.75)
        assert sparse == dense // 4

    def test_zero_skipping_pays_overhead(self):
        with_oh = SystolicArrayConfig(rows=4, cols=4, zero_skipping=True,
                                      skip_overhead=0.5)
        no_oh = SystolicArrayConfig(rows=4, cols=4, zero_skipping=True,
                                    skip_overhead=0.0)
        assert gemm_cycles(10, 16, 16, with_oh, sparsity=0.5) > \
            gemm_cycles(10, 16, 16, no_oh, sparsity=0.5)

    def test_invalid_inputs(self):
        cfg = SystolicArrayConfig()
        with pytest.raises(ValueError):
            gemm_cycles(0, 1, 1, cfg)
        with pytest.raises(ValueError):
            gemm_cycles(1, 1, 1, cfg, sparsity=1.5)
        with pytest.raises(ValueError):
            SystolicArrayConfig(rows=0)
        with pytest.raises(ValueError):
            SystolicArrayConfig(skip_overhead=1.0)


class TestModelEstimate:
    def test_covers_all_conv_and_linear_layers(self, tiny_vgg):
        report = estimate_cycles(tiny_vgg, (3, 8, 8))
        conv_count = len(tiny_vgg.conv_layer_paths())
        assert len(report.layers) == conv_count + 1  # + classifier
        assert report.total_cycles > 0
        assert report.latency_ms > 0

    def test_conv_gemm_dims(self, tiny_vgg):
        report = estimate_cycles(tiny_vgg, (3, 8, 8))
        first = report.layers[0]
        conv = tiny_vgg.get_module(first.path)
        assert first.k == conv.in_channels * conv.kernel_size ** 2
        assert first.n == conv.out_channels
        assert first.m == 8 * 8  # padding-1 3x3 conv keeps resolution

    def test_structured_pruning_reduces_cycles(self, tiny_vgg):
        original = estimate_cycles(tiny_vgg, (3, 8, 8))
        groups = tiny_vgg.prunable_groups()
        keep = {g.name: np.arange(max(
            tiny_vgg.get_module(g.conv).out_channels // 2, 1))
            for g in groups}
        prune_groups(tiny_vgg, groups, keep)
        pruned = estimate_cycles(tiny_vgg, (3, 8, 8))
        assert cycle_reduction(original, pruned) > 0.2

    def test_unstructured_zeros_do_not_reduce_cycles_without_skipping(
            self, tiny_vgg):
        original = estimate_cycles(tiny_vgg, (3, 8, 8))
        # Zero 90% of every conv weight in place.
        rng = np.random.default_rng(0)
        for path in tiny_vgg.conv_layer_paths():
            w = tiny_vgg.get_module(path).weight.data
            mask = rng.random(w.shape) < 0.9
            w[mask] = 0.0
        masked = estimate_cycles(tiny_vgg, (3, 8, 8))
        assert masked.total_cycles == original.total_cycles

    def test_zero_skipping_hardware_recovers_unstructured_gains(
            self, tiny_vgg):
        rng = np.random.default_rng(0)
        for path in tiny_vgg.conv_layer_paths():
            w = tiny_vgg.get_module(path).weight.data
            mask = rng.random(w.shape) < 0.9
            w[mask] = 0.0
        plain = estimate_cycles(tiny_vgg, (3, 8, 8),
                                SystolicArrayConfig(zero_skipping=False))
        skipping = estimate_cycles(tiny_vgg, (3, 8, 8),
                                   SystolicArrayConfig(zero_skipping=True))
        assert skipping.total_cycles < plain.total_cycles

    def test_summary_renders(self, tiny_vgg):
        text = estimate_cycles(tiny_vgg, (3, 8, 8)).summary()
        assert "TOTAL" in text
        assert "latency" in text

    def test_cycle_reduction_requires_cycles(self):
        with pytest.raises(ValueError):
            cycle_reduction(HardwareReport(config=SystolicArrayConfig()),
                            HardwareReport(config=SystolicArrayConfig()))
