"""Pruning-pipeline invariants: equivalence, score ranges, determinism."""

import numpy as np

from repro.core import ImportanceConfig, ImportanceEvaluator
from repro.models import build_model
from repro.verify import invariants


class TestPruneMaskEquivalence:
    def test_all_registry_families_pass(self):
        result = invariants.check_prune_mask_equivalence(seed=0, trials=1)
        assert result.passed, result.failures
        # One case per registry family at minimum.
        assert "3 model/victim cases" in result.detail

    def test_registry_cases_cover_all_architecture_families(self):
        # Acceptance bar: VGG, ResNet and MLP registry specs.
        assert {"vgg11", "resnet20", "mlp"} <= set(invariants.REGISTRY_CASES)

    def test_perturbed_bn_is_load_bearing(self):
        # The helper must actually change BN statistics, otherwise the
        # equivalence check degenerates to the trivially-passing case.
        model = build_model("vgg11", **invariants.REGISTRY_CASES["vgg11"])
        before = [g.bn for g in model.prunable_groups()]
        means = [model.get_module(p).running_mean.copy() for p in before]
        invariants.perturb_batchnorm_stats(model, seed=0)
        after = [model.get_module(p).running_mean for p in before]
        assert any(not np.array_equal(a, b) for a, b in zip(means, after))


class TestBaselineScorers:
    def test_quick_scorer_subset_passes(self):
        result = invariants.check_baseline_scorer_equivalence(
            seed=0, scorers=["l1", "taylor", "random"])
        assert result.passed, result.failures

    def test_unknown_scorer_reported_not_raised(self):
        result = invariants.check_baseline_scorer_equivalence(
            seed=0, scorers=["no-such-scorer"])
        assert not result.passed
        assert "no-such-scorer" in result.failures[0]


class TestTaylorScoreRanges:
    def test_ranges_hold(self):
        result = invariants.check_taylor_score_ranges(seed=0)
        assert result.passed, result.failures


class TestImportanceDeterminism:
    def test_invariant_check_passes(self):
        result = invariants.check_importance_determinism(seed=0)
        assert result.passed, result.failures

    def test_two_runs_bit_identical(self, tiny_vgg, tiny_dataset):
        """Same seed ⇒ bit-identical ImportanceReport, not just close."""
        paths = [g.conv for g in tiny_vgg.prunable_groups()]
        config = ImportanceConfig(images_per_class=4, seed=42)
        reports = []
        for _ in range(2):
            evaluator = ImportanceEvaluator(tiny_vgg, tiny_dataset, 3, config)
            reports.append(evaluator.evaluate(paths))
        first, second = reports
        assert set(first.total) == set(second.total) == set(paths)
        for path in paths:
            assert np.array_equal(first.total[path], second.total[path])
            assert np.array_equal(first.per_class[path],
                                  second.per_class[path])


class TestRunInvariants:
    def test_quick_battery_passes(self):
        results = invariants.run_invariants(seed=0, quick=True)
        names = {r.name for r in results}
        assert names == {"prune_mask_equivalence",
                         "baseline_scorer_equivalence",
                         "taylor_score_ranges",
                         "importance_determinism",
                         "compiled_inference_equivalence",
                         "quantized_inference_equivalence"}
        failed = [r for r in results if not r.passed]
        assert not failed, "\n".join(f"{r.name}: {r.failures}"
                                     for r in failed)
