"""CLI behaviour of ``python -m repro.verify`` and the ``repro verify``
subcommand: exit codes and argument forwarding."""

import repro.cli as cli
from repro.verify import fuzz, runner


class TestExitCodes:
    def test_list_exits_zero(self, capsys):
        assert runner.main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fuzz specs" in out

    def test_coverage_only_run_exits_zero(self, capsys):
        code = runner.main(["--skip-fuzz", "--skip-invariants",
                            "--skip-golden"])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_coverage_gap_fails(self, capsys, monkeypatch):
        monkeypatch.setattr(fuzz, "coverage_gaps",
                            lambda: {"ops.imaginary"})
        code = runner.main(["--skip-fuzz", "--skip-invariants",
                            "--skip-golden"])
        assert code == 1
        assert "ops.imaginary" in capsys.readouterr().out

    def test_select_matching_nothing_fails(self, capsys):
        # A typo'd --select must not masquerade as a clean pass.
        code = runner.main(["--select", "no.such.spec", "--skip-invariants",
                            "--skip-golden"])
        assert code == 1
        assert "matched no fuzz specs" in capsys.readouterr().out

    def test_select_narrows_fuzz_run(self, capsys):
        code = runner.main(["--select", "ops.neg", "--skip-invariants",
                            "--skip-golden"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ops.neg" in out
        assert "ops.matmul" not in out


class TestCliForwarding:
    def test_repro_verify_subcommand(self, capsys):
        assert cli.main(["verify", "--list"]) == 0
        assert "fuzz specs" in capsys.readouterr().out

    def test_double_dash_separator_accepted(self, capsys):
        assert cli.main(["verify", "--", "--list"]) == 0

    def test_help_mentions_verify(self, capsys):
        try:
            cli.main(["--help"])
        except SystemExit as exc:
            assert exc.code == 0
        assert "verify" in capsys.readouterr().out
