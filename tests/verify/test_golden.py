"""Golden regression fixtures: committed snapshots must match the live
pipeline, and the comparator must notice tampering."""

import numpy as np
import pytest

from repro.verify import golden


class TestCommittedFixtures:
    def test_fixture_files_exist_for_every_case(self):
        for name in golden.GOLDEN_CASES:
            assert (golden.GOLDEN_DIR / f"{name}.npz").exists(), (
                f"missing fixture for {name}; run "
                "`python -m repro.verify --write-golden`")

    @pytest.mark.parametrize("name", sorted(golden.GOLDEN_CASES))
    def test_live_pipeline_matches_fixture(self, name):
        result = golden.check_golden(name)
        assert result.passed, result.failures


class TestSnapshotProperties:
    def test_snapshot_is_deterministic(self):
        a = golden.build_snapshot("mlp")
        b = golden.build_snapshot("mlp")
        assert set(a) == set(b)
        for key in a:
            np.testing.assert_array_equal(a[key], b[key])

    def test_snapshot_contains_logits_and_scores(self):
        arrays = golden.build_snapshot("mlp")
        assert "logits" in arrays
        assert any(k.startswith("total::") for k in arrays)
        assert any(k.startswith("per_class::") for k in arrays)


class TestTamperDetection:
    def test_corrupted_fixture_fails(self, tmp_path, monkeypatch):
        monkeypatch.setattr(golden, "GOLDEN_DIR", tmp_path)
        golden.write_golden(["mlp"])
        path = tmp_path / "mlp.npz"
        with np.load(path) as archive:
            arrays = {key: archive[key].copy() for key in archive.files}
        arrays["logits"][0, 0] += 0.1
        np.savez(path, **arrays)
        result = golden.check_golden("mlp")
        assert not result.passed
        assert any("logits" in f for f in result.failures)

    def test_missing_fixture_fails_with_hint(self, tmp_path, monkeypatch):
        monkeypatch.setattr(golden, "GOLDEN_DIR", tmp_path)
        result = golden.check_golden("mlp")
        assert not result.passed
        assert "--write-golden" in result.failures[0]

    def test_stale_fixture_key_fails(self, tmp_path, monkeypatch):
        monkeypatch.setattr(golden, "GOLDEN_DIR", tmp_path)
        golden.write_golden(["mlp"])
        path = tmp_path / "mlp.npz"
        with np.load(path) as archive:
            arrays = {key: archive[key].copy() for key in archive.files}
        arrays["total::renamed_group"] = np.zeros(3)
        np.savez(path, **arrays)
        result = golden.check_golden("mlp")
        assert not result.passed
        assert any("renamed_group" in f for f in result.failures)
