"""Fast seeded slice of the gradient fuzzer (the full sweep is
``python -m repro.verify``). The subset here must stay under ~5 seconds."""

import numpy as np
import pytest

from repro.tensor import Tensor, ops
from repro.verify import fuzz
from repro.verify.fuzz import FuzzCase, OpSpec


class TestQuickSubset:
    def test_quick_specs_all_pass(self):
        results = fuzz.run_fuzzer(seed=1234, quick=True)
        failed = [r for r in results if not r.passed]
        assert not failed, "\n".join(
            f"{r.spec}: {r.failures}" for r in failed)
        assert {r.spec for r in results} == set(fuzz.QUICK_SPECS)

    def test_select_filters_by_substring(self):
        results = fuzz.run_fuzzer(seed=0, quick=True, select="conv.")
        assert {r.spec for r in results} == {"conv.conv2d", "conv.max_pool2d"}


class TestDeterminism:
    def test_same_seed_draws_same_cases(self):
        spec = fuzz.OP_SPECS["ops.matmul"]
        a = spec.build(np.random.default_rng(fuzz._spec_seed(7, spec.name)))
        b = spec.build(np.random.default_rng(fuzz._spec_seed(7, spec.name)))
        assert a.note == b.note
        for ta, tb in zip(a.inputs, b.inputs):
            np.testing.assert_array_equal(ta.data, tb.data)

    def test_different_seeds_differ(self):
        spec = fuzz.OP_SPECS["ops.matmul"]
        notes = {spec.build(np.random.default_rng(
            fuzz._spec_seed(s, spec.name))).note for s in range(8)}
        assert len(notes) > 1


class TestFailureDetection:
    """The fuzzer must catch planted bugs, or it proves nothing."""

    def test_wrong_gradient_is_reported(self):
        def bad_mul(a, b):
            out = ops.mul(a, b)

            # Overwrite with a corrupted backward: swaps nothing, but
            # doubles the gradient to one parent.
            def backward(grad):
                return (2 * grad * b.data, grad * a.data)

            return Tensor._make(out.data, (a, b), "bad_mul", backward)

        spec = OpSpec(
            name="planted.bad_mul", covers=("planted.bad_mul",),
            build=lambda rng: FuzzCase(bad_mul, [
                Tensor(rng.uniform(0.5, 1.5, (3,)).astype(np.float32),
                       requires_grad=True),
                Tensor(rng.uniform(0.5, 1.5, (3,)).astype(np.float32),
                       requires_grad=True)]))
        result = fuzz.run_spec(spec, seed=0, rounds=2)
        assert not result.passed
        assert len(result.failures) == 2

    def test_crashing_forward_is_reported_not_raised(self):
        def boom(a):
            raise RuntimeError("broken op")

        spec = OpSpec(
            name="planted.boom", covers=("planted.boom",),
            build=lambda rng: FuzzCase(boom, [
                Tensor(np.ones(2, dtype=np.float32), requires_grad=True)]))
        result = fuzz.run_spec(spec, seed=0, rounds=1)
        assert not result.passed
        assert "RuntimeError" in result.failures[0]


class TestBuilderHygiene:
    @pytest.mark.parametrize("name", ["ops.abs", "ops.relu", "ops.clip"])
    def test_kinked_ops_keep_margin_from_kinks(self, name):
        # eps=1e-3 finite differences must never straddle a kink.
        spec = fuzz.OP_SPECS[name]
        rng = np.random.default_rng(3)
        for _ in range(5):
            case = spec.build(rng)
            (x,) = case.inputs
            if name == "ops.clip":
                dist = np.minimum(np.abs(x.data - (-1.0)),
                                  np.abs(x.data - 1.0))
            else:
                dist = np.abs(x.data)
            assert dist.min() > 2 * spec.eps

    def test_max_inputs_are_pairwise_distinct(self):
        spec = fuzz.OP_SPECS["ops.max"]
        rng = np.random.default_rng(4)
        for _ in range(5):
            case = spec.build(rng)
            flat = case.inputs[0].data.reshape(-1)
            assert len(np.unique(flat)) == flat.size
