"""The fuzzer's coverage contract: every public differentiable op has a spec.

This is the test the acceptance criteria hang on — adding a new op to
``repro.tensor.ops.__all__`` (or a new layer to ``repro.nn.__all__``)
without a fuzz spec must fail here, not silently reduce coverage.
"""

import numpy as np

from repro import nn
from repro.tensor import conv, ops
from repro.verify import fuzz


class TestCoverageContract:
    def test_no_coverage_gaps(self):
        assert fuzz.coverage_gaps() == set(), (
            "public differentiable ops without a fuzz spec: "
            f"{sorted(fuzz.coverage_gaps())} — add an OpSpec in "
            "repro/verify/fuzz.py")

    def test_required_coverage_tracks_public_api(self):
        required = fuzz.required_coverage()
        for name in ops.__all__:
            assert f"ops.{name}" in required
        for name in conv.__all__:
            if name not in fuzz.NON_DIFFERENTIABLE["conv"]:
                assert f"conv.{name}" in required
        for name in nn.__all__:
            if name not in fuzz.NON_DIFFERENTIABLE["nn"]:
                assert f"nn.{name}" in required
        assert "core.toeplitz_matrix_tensor" in required
        assert "core.orthogonality_term" in required

    def test_exclusions_are_really_non_differentiable(self):
        # The exclusion lists must only name things that exist; a renamed
        # helper would otherwise hide a coverage gap forever.
        for name in fuzz.NON_DIFFERENTIABLE["conv"]:
            assert name in conv.__all__
        for name in fuzz.NON_DIFFERENTIABLE["nn"]:
            assert name in nn.__all__

    def test_every_covered_name_is_required(self):
        # No spec may claim coverage of a name that is not (or no longer)
        # part of the public surface — stale claims mask real gaps.
        assert fuzz.covered_names() <= fuzz.required_coverage()

    def test_quick_subset_is_registered(self):
        for name in fuzz.QUICK_SPECS:
            assert name in fuzz.OP_SPECS


class TestSpecRegistry:
    def test_specs_build_valid_cases(self):
        rng = np.random.default_rng(0)
        spec = fuzz.OP_SPECS["ops.add"]
        case = spec.build(rng)
        assert isinstance(case, fuzz.FuzzCase)
        assert case.fn is not None and len(case.inputs) == 2

    def test_duplicate_registration_rejected(self):
        try:
            fuzz.register_spec("ops.add", ["ops.add"])(lambda rng: None)
        except ValueError:
            pass
        else:
            raise AssertionError("duplicate spec name was accepted")
