"""End-to-end integration: the paper's qualitative claims at test scale.

These tests run the real pipeline (train → score → prune → fine-tune) on a
small but genuinely learnable task and assert the *shape* of the paper's
results: substantial compression with bounded accuracy loss, and importance
scores that rise after pruning (Fig. 7).
"""

import numpy as np
import pytest

from repro.core import (ClassAwarePruningFramework, FrameworkConfig,
                        ImportanceConfig, TrainingConfig, evaluate_model)
from repro.data import SyntheticConfig, SyntheticImageClassification
from repro.models import MLP, vgg11


@pytest.fixture(scope="module")
def task():
    train = SyntheticImageClassification(
        SyntheticConfig(num_classes=4, image_size=8, samples_per_class=30,
                        seed=11))
    test = SyntheticImageClassification(
        SyntheticConfig(num_classes=4, image_size=8, samples_per_class=15,
                        seed=11), train=False)
    return train, test


@pytest.fixture(scope="module")
def pruned_run(task):
    train, test = task
    model = vgg11(num_classes=4, image_size=8, width=0.25, seed=21)
    training = TrainingConfig(epochs=20, batch_size=32, lr=0.05,
                              lambda1=1e-4, lambda2=1e-2, weight_decay=0.0)
    fw = ClassAwarePruningFramework(
        model, train, test, num_classes=4, input_shape=(3, 8, 8),
        config=FrameworkConfig(
            score_threshold=1.5, max_fraction_per_iteration=0.15,
            finetune_epochs=4, accuracy_drop_tolerance=0.15,
            max_iterations=4,
            importance=ImportanceConfig(images_per_class=5)),
        training=training)
    fw.pretrain()
    return fw.run()


class TestHeadlineClaims:
    def test_baseline_model_learned_the_task(self, pruned_run):
        assert pruned_run.baseline_accuracy > 0.6  # chance = 0.25

    def test_substantial_compression(self, pruned_run):
        assert pruned_run.pruning_ratio > 0.15
        assert pruned_run.flops_reduction > 0.05

    def test_accuracy_within_tolerance(self, pruned_run):
        assert pruned_run.accuracy_drop <= 0.15 + 1e-9

    def test_fig7_scores_rise_after_pruning(self, pruned_run):
        """Fig. 7: survivors are important for more classes on average."""
        before = pruned_run.report_before.all_scores().mean()
        after = pruned_run.report_after.all_scores().mean()
        assert after > before

    def test_low_score_filters_were_removed(self, pruned_run):
        # Every iteration removed filters; the union of removals is
        # consistent with the final parameter count.
        removed = sum(it.num_removed for it in pruned_run.iterations)
        assert removed > 0

    def test_final_model_consistent_with_profile(self, pruned_run):
        assert (pruned_run.final_profile.total_params
                == pruned_run.model.num_parameters())


class TestMLPNeuronPruning:
    """The paper's Fig. 1 story on an actual MLP."""

    def test_neuron_pruning_end_to_end(self, task):
        train, test = task
        model = MLP(3 * 8 * 8, [48, 24], 4, seed=5)
        training = TrainingConfig(epochs=15, batch_size=32, lr=0.05,
                                  lambda1=1e-4, lambda2=0.0,
                                  weight_decay=0.0)
        fw = ClassAwarePruningFramework(
            model, train, test, num_classes=4, input_shape=(3, 8, 8),
            config=FrameworkConfig(
                score_threshold=1.5, max_fraction_per_iteration=0.2,
                finetune_epochs=3, accuracy_drop_tolerance=0.2,
                max_iterations=3,
                importance=ImportanceConfig(images_per_class=5)),
            training=training)
        fw.pretrain()
        result = fw.run()
        assert result.pruning_ratio > 0.1
        assert result.final_accuracy > 0.5
