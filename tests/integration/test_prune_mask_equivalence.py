"""End-to-end prune-vs-mask equivalence through the real pruning path.

The invariant suite (:mod:`repro.verify.invariants`) checks equivalence
with synthetic victim sets; here the victims come from the actual
importance pipeline — :class:`ImportanceEvaluator` scores feed a
:class:`PercentageStrategy`, and the resulting decision is both simulated
with group-aware masks and committed with :func:`apply_pruning`. The two
must agree to float32 tolerance on the logits of a held-out batch.
"""

import copy

import numpy as np
import pytest

from repro.core import (FilterMasks, ImportanceConfig, ImportanceEvaluator,
                        apply_pruning, group_sizes)
from repro.core.pruner import PercentageStrategy
from repro.tensor import Tensor, no_grad
from repro.verify.invariants import perturb_batchnorm_stats


def _logits(model, batch):
    model.eval()
    with no_grad():
        return model(Tensor(batch)).data


def _decision(model, dataset, fraction=0.25, seed=0):
    groups = model.prunable_groups()
    evaluator = ImportanceEvaluator(
        model, dataset, num_classes=3,
        config=ImportanceConfig(images_per_class=4, seed=seed))
    report = evaluator.evaluate([g.conv for g in groups])
    sizes = group_sizes(model, groups)
    scores = {g.name: report.total[g.conv] for g in groups
              if g.conv in report.total and
              len(report.total[g.conv]) == sizes[g.name]}
    strategy = PercentageStrategy(fraction)
    decision = strategy.select(scores,
                               {g.name: g.min_channels for g in groups})
    return report, strategy, decision


@pytest.mark.parametrize("model_fixture", ["tiny_vgg", "tiny_resnet"])
def test_importance_driven_prune_equals_mask(model_fixture, tiny_dataset,
                                             request):
    model = request.getfixturevalue(model_fixture)
    perturb_batchnorm_stats(model, seed=1)
    batch = np.random.default_rng(5).normal(size=(6, 3, 8, 8)).astype(
        np.float32)

    report, strategy, decision = _decision(model, tiny_dataset)
    assert not decision.is_empty(), "strategy selected nothing to prune"

    with FilterMasks.for_groups(model, model.prunable_groups(),
                                decision.remove):
        masked_out = _logits(model, batch)

    pruned = copy.deepcopy(model)
    record = apply_pruning(pruned, pruned.prunable_groups(), report, strategy)
    assert record.num_removed == decision.num_selected
    pruned_out = _logits(pruned, batch)

    np.testing.assert_allclose(masked_out, pruned_out, rtol=1e-4, atol=1e-5)


def test_pruned_model_is_actually_smaller(tiny_vgg, tiny_dataset):
    perturb_batchnorm_stats(tiny_vgg, seed=1)
    report, strategy, _ = _decision(tiny_vgg, tiny_dataset)
    before = tiny_vgg.num_parameters()
    record = apply_pruning(tiny_vgg, tiny_vgg.prunable_groups(), report,
                           strategy)
    assert record.num_removed > 0
    assert tiny_vgg.num_parameters() < before
