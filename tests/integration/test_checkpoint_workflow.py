"""Full-circle workflow: train → prune → checkpoint → reload → evaluate."""

import numpy as np
import pytest

from repro.core import (ClassAwarePruningFramework, FrameworkConfig,
                        ImportanceConfig, TrainingConfig, evaluate_model)
from repro.data import SyntheticConfig, SyntheticImageClassification
from repro.io import load_model, save_model
from repro.models import build_model


@pytest.fixture(scope="module")
def workflow(tmp_path_factory):
    train = SyntheticImageClassification(
        SyntheticConfig(num_classes=3, image_size=8, samples_per_class=25,
                        seed=31))
    test = SyntheticImageClassification(
        SyntheticConfig(num_classes=3, image_size=8, samples_per_class=10,
                        seed=31), train=False)
    model = build_model("vgg11", num_classes=3, image_size=8, width=0.25,
                        seed=31)
    framework = ClassAwarePruningFramework(
        model, train, test, num_classes=3, input_shape=(3, 8, 8),
        config=FrameworkConfig(
            score_threshold=1.5, max_fraction_per_iteration=0.15,
            finetune_epochs=3, finetune_lr=0.01,
            accuracy_drop_tolerance=0.15, max_iterations=3,
            importance=ImportanceConfig(images_per_class=5,
                                        tau_mode="quantile",
                                        tau_quantile=0.9)),
        training=TrainingConfig(epochs=15, batch_size=32, lr=0.05,
                                lambda1=1e-4, lambda2=1e-2,
                                weight_decay=0.0))
    framework.pretrain()
    result = framework.run()
    path = tmp_path_factory.mktemp("ckpt") / "pruned.npz"
    save_model(result.model, path)
    return result, path, test


class TestCheckpointWorkflow:
    def test_pruning_actually_happened(self, workflow):
        result, _, _ = workflow
        assert result.pruning_ratio > 0.05

    def test_reloaded_model_matches_accuracy(self, workflow):
        result, path, test = workflow
        reloaded = load_model(path)
        _, acc = evaluate_model(reloaded, test)
        assert acc == pytest.approx(result.final_accuracy, abs=1e-6)

    def test_reloaded_model_has_pruned_shapes(self, workflow):
        result, path, _ = workflow
        reloaded = load_model(path)
        for group in result.model.prunable_groups():
            original = result.model.get_module(group.conv).out_channels
            assert reloaded.get_module(group.conv).out_channels == original

    def test_reloaded_model_can_keep_training(self, workflow):
        result, path, test = workflow
        reloaded = load_model(path)
        train = SyntheticImageClassification(
            SyntheticConfig(num_classes=3, image_size=8,
                            samples_per_class=25, seed=31))
        from repro.core import Trainer
        Trainer(reloaded, train, test,
                TrainingConfig(epochs=1, batch_size=32, lr=0.01,
                               lambda1=0, lambda2=0,
                               weight_decay=0.0)).train()
        _, acc = evaluate_model(reloaded, test)
        assert acc > 0.4
