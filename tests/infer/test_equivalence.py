"""Compiled ≡ eager on every registry model, dense and pruned.

This is the acceptance bar for the compiled engine: same logits as the
define-by-run stack (to float32 tolerance) for every architecture in
``MODEL_REGISTRY``, both at full width and after channel surgery, with
perturbed BatchNorm statistics so folding errors cannot hide.
"""

import numpy as np
import pytest

from repro.core.surgery import group_sizes, prune_groups
from repro.infer import compile_model
from repro.models import MODEL_REGISTRY, build_model
from repro.tensor import Tensor, no_grad
from repro.verify import invariants
from repro.verify.invariants import (INFER_CASES,
                                     check_compiled_inference_equivalence,
                                     perturb_batchnorm_stats)

RTOL, ATOL = 1e-4, 1e-5


def _build(name, pruned, seed=0):
    model = build_model(name, **INFER_CASES[name])
    perturb_batchnorm_stats(model, seed=seed)
    if pruned:
        rng = np.random.default_rng(seed + 5)
        groups = model.prunable_groups()
        victims = invariants._random_victims(model, groups, rng)
        sizes = group_sizes(model, groups)
        keep = {g: np.setdiff1d(np.arange(sizes[g]), idx)
                for g, idx in victims.items()}
        prune_groups(model, groups, keep)
    model.eval()
    return model


def _batch(seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(6, 3, 8, 8)).astype(np.float32)


class TestCompiledVsEager:
    @pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
    @pytest.mark.parametrize("variant", ["dense", "pruned"])
    def test_registry_model_matches(self, name, variant):
        model = _build(name, pruned=variant == "pruned")
        x = _batch()
        with no_grad():
            eager = model(Tensor(x)).data
        engine = compile_model(model, x, validate=False)
        np.testing.assert_allclose(engine.run(x), eager, rtol=RTOL, atol=ATOL)

    def test_infer_cases_cover_whole_registry(self):
        assert set(INFER_CASES) == set(MODEL_REGISTRY)

    def test_verify_invariant_passes(self):
        result = check_compiled_inference_equivalence(seed=0, quick=True)
        assert result.passed, result.failures
        assert "6 model/variant cases" in result.detail

    def test_verify_invariant_is_in_the_battery(self):
        names = [r.name for r in invariants.run_invariants(seed=0, quick=True)]
        assert "compiled_inference_equivalence" in names


class TestEvaluateModelEngine:
    def test_infer_engine_matches_eager(self):
        from repro.core.trainer import evaluate_model
        from repro.data import SyntheticConfig, SyntheticImageClassification

        model = _build("vgg11", pruned=False)
        cfg = SyntheticConfig(num_classes=3, image_size=8,
                              samples_per_class=10, seed=3)
        dataset = SyntheticImageClassification(cfg, train=False)
        loss_eager, acc_eager = evaluate_model(model, dataset, batch_size=16)
        loss_infer, acc_infer = evaluate_model(model, dataset, batch_size=16,
                                               engine="infer")
        assert acc_eager == acc_infer
        assert abs(loss_eager - loss_infer) < 1e-4

    def test_unknown_engine_rejected(self):
        from repro.core.trainer import evaluate_model
        from repro.data import SyntheticConfig, SyntheticImageClassification

        dataset = SyntheticImageClassification(
            SyntheticConfig(num_classes=3, image_size=8, samples_per_class=2,
                            seed=0), train=False)
        with pytest.raises(ValueError, match="engine"):
            evaluate_model(_build("mlp", pruned=False), dataset,
                           engine="turbo")
