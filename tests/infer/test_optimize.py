"""BN folding and ReLU fusion: numerics and fan-out safety."""

import numpy as np

from repro.infer import (InferenceEngine, capture_plan, fold_batchnorm,
                         fuse_relu, optimize_plan)
from repro.nn import BatchNorm2d, Conv2d, Module, ReLU, Sequential
from repro.tensor import Tensor, no_grad, ops


def _conv_bn(seed=0):
    rng = np.random.default_rng(seed)
    model = Sequential(Conv2d(3, 6, 3, padding=1), BatchNorm2d(6))
    bn = model[1]
    bn.running_mean += rng.normal(size=6).astype(np.float32)
    bn.running_var *= np.exp(rng.normal(scale=0.3, size=6)).astype(np.float32)
    bn.weight.data = rng.normal(loc=1.0, scale=0.2, size=6).astype(np.float32)
    bn.bias.data = rng.normal(size=6).astype(np.float32)
    model.eval()
    return model


def _example(seed=0):
    rng = np.random.default_rng(seed + 100)
    return rng.normal(size=(4, 3, 8, 8)).astype(np.float32)


def _eager(model, x):
    with no_grad():
        return model(Tensor(x)).data


class TestBatchNormFolding:
    def test_bn_step_disappears(self):
        plan = capture_plan(_conv_bn(), _example())
        folded, count = fold_batchnorm(plan)
        assert count == 1
        assert "batchnorm" not in folded.op_counts()
        assert len(folded) == len(plan) - 1

    def test_folded_numerics_match_eager(self):
        model = _conv_bn()
        x = _example()
        plan = capture_plan(model, x)
        folded, _ = fold_batchnorm(plan)
        engine = InferenceEngine(folded)
        np.testing.assert_allclose(engine.run(x), _eager(model, x),
                                   rtol=1e-4, atol=1e-5)

    def test_folded_weights_use_scale_and_shift(self):
        model = _conv_bn()
        plan = capture_plan(model, _example())
        folded, _ = fold_batchnorm(plan)
        conv_step = folded.steps[0]
        bn = model[1]
        scale = bn.weight.data / np.sqrt(bn.running_var + bn.eps)
        expected_w = model[0].weight.data * scale[:, None, None, None]
        np.testing.assert_allclose(conv_step.params["weight"], expected_w,
                                   rtol=1e-6, atol=1e-7)

    def test_fanout_two_blocks_folding(self):
        class PreBNReused(Module):
            def __init__(self):
                super().__init__()
                self.conv = Conv2d(3, 6, 3, padding=1)
                self.bn = BatchNorm2d(6)

            def forward(self, x):
                pre = self.conv(x)
                # The pre-BN activation is consumed twice: folding the BN
                # into the conv would corrupt the second consumer.
                return ops.add(self.bn(pre), pre)

        model = PreBNReused()
        model.eval()
        x = _example()
        plan = capture_plan(model, x)
        folded, count = fold_batchnorm(plan)
        assert count == 0
        assert folded.op_counts()["batchnorm"] == 1
        engine = InferenceEngine(folded)
        np.testing.assert_allclose(engine.run(x), _eager(model, x),
                                   rtol=1e-4, atol=1e-5)

    def test_original_plan_is_not_mutated(self):
        model = _conv_bn()
        plan = capture_plan(model, _example())
        weight_before = plan.steps[0].params["weight"].copy()
        fold_batchnorm(plan)
        np.testing.assert_array_equal(plan.steps[0].params["weight"],
                                      weight_before)
        assert plan.op_counts()["batchnorm"] == 1


class TestReLUFusion:
    def test_conv_relu_fuses(self):
        model = Sequential(Conv2d(3, 4, 3, padding=1), ReLU())
        model.eval()
        x = _example()
        plan = capture_plan(model, x)
        fused, count = fuse_relu(plan)
        assert count == 1
        assert fused.op_counts() == {"conv2d_relu": 1}
        engine = InferenceEngine(fused)
        np.testing.assert_allclose(engine.run(x), _eager(model, x),
                                   rtol=1e-5, atol=1e-6)

    def test_fused_numerics_clamp_negatives(self):
        model = Sequential(Conv2d(3, 4, 3, padding=1), ReLU())
        model.eval()
        x = _example()
        engine = InferenceEngine(fuse_relu(capture_plan(model, x))[0])
        assert np.min(engine.run(x)) >= 0.0

    def test_fanout_two_blocks_fusion(self):
        class PreReLUReused(Module):
            def __init__(self):
                super().__init__()
                self.conv = Conv2d(3, 4, 3, padding=1)
                self.act = ReLU()

            def forward(self, x):
                pre = self.conv(x)
                return ops.add(self.act(pre), pre)

        model = PreReLUReused()
        model.eval()
        x = _example()
        plan = capture_plan(model, x)
        fused, count = fuse_relu(plan)
        assert count == 0
        engine = InferenceEngine(fused)
        np.testing.assert_allclose(engine.run(x), _eager(model, x),
                                   rtol=1e-4, atol=1e-5)


class TestOptimizePipeline:
    def test_bn_then_relu_collapses_conv_bn_relu(self):
        model = Sequential(Conv2d(3, 6, 3, padding=1), BatchNorm2d(6), ReLU())
        model[1].running_mean += 0.5
        model.eval()
        x = _example()
        plan = capture_plan(model, x)
        optimized, report = optimize_plan(plan)
        assert report.folded_batchnorm == 1
        assert report.fused_relu == 1
        assert optimized.op_counts() == {"conv2d_relu": 1}
        assert "1 BN folded" in report.summary()
        engine = InferenceEngine(optimized)
        np.testing.assert_allclose(engine.run(x), _eager(model, x),
                                   rtol=1e-4, atol=1e-5)

    def test_resnet_residual_add_fuses_relu(self):
        from repro.models import build_model
        model = build_model("resnet20", num_classes=3, image_size=8,
                            width=0.25, seed=0)
        model.eval()
        plan = capture_plan(model, _example())
        optimized, report = optimize_plan(plan)
        counts = optimized.op_counts()
        assert counts.get("add_relu", 0) >= 9       # one per BasicBlock
        assert "batchnorm" not in counts
        assert report.steps_after < report.steps_before
