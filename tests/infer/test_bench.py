"""Benchmark lane: payload shape, CLI smoke, JSON round-trip."""

import json

from repro.cli import main as cli_main
from repro.infer.bench import format_table, run_bench, write_bench


class TestRunBench:
    def test_smoke_payload_structure(self):
        results = run_bench(smoke=True, batch_sizes=(1, 4), repeats=1)
        assert results["smoke"] is True
        entries = results["entries"]
        # 3 models x 2 variants x 2 batch sizes.
        assert len(entries) == 12
        for entry in entries:
            assert entry["variant"] in ("dense", "pruned")
            assert entry["eager_ms"] > 0 and entry["compiled_ms"] > 0
            assert entry["speedup"] > 0
            assert entry["max_abs_diff"] < 1e-3
            assert "BN folded" in (entry["optimization"] or "")

    def test_table_lists_every_entry(self):
        results = run_bench(smoke=True, batch_sizes=(1,), repeats=1,
                            models={"mlp": dict(num_classes=3, image_size=8,
                                                width=0.125, seed=0)})
        table = format_table(results)
        assert table.count("mlp") == 2        # dense + pruned rows

    def test_write_bench_round_trips(self, tmp_path):
        results = run_bench(smoke=True, batch_sizes=(1,), repeats=1,
                            models={"mlp": dict(num_classes=3, image_size=8,
                                                width=0.125, seed=0)})
        out = tmp_path / "bench.json"
        write_bench(results, out)
        assert json.loads(out.read_text()) == results


class TestCLI:
    def test_infer_bench_smoke(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = cli_main(["infer-bench", "--smoke", "--models", "mlp",
                         "--batch-sizes", "1,4", "--repeats", "1",
                         "--out", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert {e["model"] for e in payload["entries"]} == {"mlp"}
        assert "speedup" in capsys.readouterr().out

    def test_unknown_model_rejected(self, capsys):
        code = cli_main(["infer-bench", "--models", "nope"])
        assert code == 1
        assert "unknown bench model" in capsys.readouterr().out
