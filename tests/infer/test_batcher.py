"""Micro-batching: coalescing, result scattering, error propagation."""

import threading

import numpy as np
import pytest

from repro.infer import BatchRunner, compile_model
from repro.models import build_model
from repro.verify.invariants import perturb_batchnorm_stats


def _engine(max_batch=8):
    model = build_model("vgg11", num_classes=3, image_size=8, width=0.125,
                        seed=0)
    perturb_batchnorm_stats(model, seed=0)
    model.eval()
    rng = np.random.default_rng(0)
    example = rng.normal(size=(max_batch, 3, 8, 8)).astype(np.float32)
    return compile_model(model, example, max_batch=max_batch)


class TestBatchRunner:
    def test_results_match_direct_engine_run(self):
        engine = _engine()
        rng = np.random.default_rng(1)
        samples = rng.normal(size=(12, 3, 8, 8)).astype(np.float32)
        expected = engine.run(samples)
        with BatchRunner(engine, max_wait=0.005) as runner:
            tickets = [runner.submit(s) for s in samples]
            for ticket, want in zip(tickets, expected):
                np.testing.assert_allclose(ticket.result(timeout=10.0), want,
                                           rtol=1e-5, atol=1e-6)

    def test_concurrent_submitters(self):
        engine = _engine()
        rng = np.random.default_rng(2)
        samples = rng.normal(size=(16, 3, 8, 8)).astype(np.float32)
        expected = engine.run(samples)
        results = [None] * len(samples)

        with BatchRunner(engine, max_wait=0.01) as runner:
            def worker(idx):
                results[idx] = runner.submit(samples[idx]).result(timeout=10.0)

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(len(samples))]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert runner.stats["samples"] == len(samples)
            assert runner.stats["batches"] >= 1
            assert 1 <= runner.stats["largest_batch"] <= runner.max_batch
        for got, want in zip(results, expected):
            np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-6)

    def test_bad_sample_fails_its_ticket(self):
        engine = _engine()
        with BatchRunner(engine) as runner:
            ticket = runner.submit(np.zeros((5, 5), dtype=np.float32))
            with pytest.raises(ValueError):
                ticket.result(timeout=10.0)

    def test_submit_after_close_raises(self):
        engine = _engine()
        runner = BatchRunner(engine)
        runner.close()
        with pytest.raises(RuntimeError, match="closed"):
            runner.submit(np.zeros((3, 8, 8), dtype=np.float32))

    def test_close_is_idempotent(self):
        runner = BatchRunner(_engine())
        runner.close()
        runner.close()

    def test_invalid_configuration_rejected(self):
        engine = _engine()
        with pytest.raises(ValueError):
            BatchRunner(engine, max_wait=-1.0)
        with pytest.raises(ValueError):
            BatchRunner(engine, max_batch=0)

    def test_ticket_done_transitions(self):
        engine = _engine()
        with BatchRunner(engine, max_wait=0.0) as runner:
            ticket = runner.submit(np.zeros((3, 8, 8), dtype=np.float32))
            ticket.result(timeout=10.0)
            assert ticket.done()

    def test_dead_worker_thread_is_respawned_on_submit(self):
        engine = _engine()
        sample = np.zeros((3, 8, 8), dtype=np.float32)
        with BatchRunner(engine, max_wait=0.0) as runner:
            first = runner.submit(sample).result(timeout=10.0)
            # Kill the worker thread out from under the runner.
            runner._queue.put(runner._worker)  # not a (sample, ticket) pair
            runner._worker.join(timeout=10.0)
            assert not runner._worker.is_alive()
            # The next submission must transparently restart it.
            again = runner.submit(sample).result(timeout=10.0)
            np.testing.assert_array_equal(first, again)
            assert runner.stats["restarts"] == 1

    def test_restart_not_attempted_after_close(self):
        engine = _engine()
        runner = BatchRunner(engine, max_wait=0.0)
        runner.close()
        assert not runner._worker.is_alive()
        with pytest.raises(RuntimeError, match="closed"):
            runner.submit(np.zeros((3, 8, 8), dtype=np.float32))
        assert runner.stats["restarts"] == 0
