"""Micro-batching: coalescing, result scattering, error propagation.

The coalescing-window and deadline tests run on :class:`repro.clock.
FakeClock` — virtual time only moves when the batching loop charges it,
so the window trajectory is asserted exactly, with zero wall-clock
sleeps in any assertion.
"""

import threading

import numpy as np
import pytest

from repro.clock import FakeClock
from repro.infer import BatchRunner, TicketCancelled, compile_model
from repro.infer.batcher import DeadlineExpired, InferenceTicket
from repro.models import build_model
from repro.verify.invariants import perturb_batchnorm_stats


class _StubEngine:
    """Shape-preserving engine double: doubles the input, logs batches."""

    def __init__(self, max_batch=8):
        self.max_batch = max_batch
        self.batches = []

    def run(self, x):
        x = np.asarray(x, dtype=np.float32)
        self.batches.append(x.shape[0])
        return x * 2.0


class _GatedEngine(_StubEngine):
    """Engine that blocks each batch until the test releases it."""

    def __init__(self, max_batch=8):
        super().__init__(max_batch)
        self.gate = threading.Event()

    def run(self, x):
        self.gate.wait()
        return super().run(x)


def _engine(max_batch=8):
    model = build_model("vgg11", num_classes=3, image_size=8, width=0.125,
                        seed=0)
    perturb_batchnorm_stats(model, seed=0)
    model.eval()
    rng = np.random.default_rng(0)
    example = rng.normal(size=(max_batch, 3, 8, 8)).astype(np.float32)
    return compile_model(model, example, max_batch=max_batch)


class TestBatchRunner:
    def test_results_match_direct_engine_run(self):
        engine = _engine()
        rng = np.random.default_rng(1)
        samples = rng.normal(size=(12, 3, 8, 8)).astype(np.float32)
        expected = engine.run(samples)
        with BatchRunner(engine, max_wait=0.005) as runner:
            tickets = [runner.submit(s) for s in samples]
            for ticket, want in zip(tickets, expected):
                np.testing.assert_allclose(ticket.result(timeout=10.0), want,
                                           rtol=1e-5, atol=1e-6)

    def test_concurrent_submitters(self):
        engine = _engine()
        rng = np.random.default_rng(2)
        samples = rng.normal(size=(16, 3, 8, 8)).astype(np.float32)
        expected = engine.run(samples)
        results = [None] * len(samples)

        with BatchRunner(engine, max_wait=0.01) as runner:
            def worker(idx):
                results[idx] = runner.submit(samples[idx]).result(timeout=10.0)

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(len(samples))]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert runner.stats["samples"] == len(samples)
            assert runner.stats["batches"] >= 1
            assert 1 <= runner.stats["largest_batch"] <= runner.max_batch
        for got, want in zip(results, expected):
            np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-6)

    def test_bad_sample_fails_its_ticket(self):
        engine = _engine()
        with BatchRunner(engine) as runner:
            ticket = runner.submit(np.zeros((5, 5), dtype=np.float32))
            with pytest.raises(ValueError):
                ticket.result(timeout=10.0)

    def test_submit_after_close_raises(self):
        engine = _engine()
        runner = BatchRunner(engine)
        runner.close()
        with pytest.raises(RuntimeError, match="closed"):
            runner.submit(np.zeros((3, 8, 8), dtype=np.float32))

    def test_close_is_idempotent(self):
        runner = BatchRunner(_engine())
        runner.close()
        runner.close()

    def test_invalid_configuration_rejected(self):
        engine = _engine()
        with pytest.raises(ValueError):
            BatchRunner(engine, max_wait=-1.0)
        with pytest.raises(ValueError):
            BatchRunner(engine, max_batch=0)

    def test_ticket_done_transitions(self):
        engine = _engine()
        with BatchRunner(engine, max_wait=0.0) as runner:
            ticket = runner.submit(np.zeros((3, 8, 8), dtype=np.float32))
            ticket.result(timeout=10.0)
            assert ticket.done()

    def test_dead_worker_thread_is_respawned_on_submit(self):
        engine = _engine()
        sample = np.zeros((3, 8, 8), dtype=np.float32)
        with BatchRunner(engine, max_wait=0.0) as runner:
            first = runner.submit(sample).result(timeout=10.0)
            # Kill the worker thread out from under the runner.
            runner._queue.put(runner._worker)  # not a (sample, ticket) pair
            runner._worker.join(timeout=10.0)
            assert not runner._worker.is_alive()
            # The next submission must transparently restart it.
            again = runner.submit(sample).result(timeout=10.0)
            np.testing.assert_array_equal(first, again)
            assert runner.stats["restarts"] == 1

    def test_on_batch_hook_observes_every_batch(self):
        engine = _StubEngine(max_batch=4)
        seen = []
        with BatchRunner(engine, max_wait=0.0,
                         on_batch=lambda b, o: seen.append(
                             (b.shape[0], o.shape[0]))) as runner:
            for value in (1.0, 2.0, 3.0):
                sample = np.full((2,), value, dtype=np.float32)
                np.testing.assert_array_equal(
                    runner.submit(sample).result(timeout=10.0), sample * 2)
        assert len(seen) == 3
        assert all(b == o for b, o in seen)

    def test_raising_on_batch_hook_does_not_kill_worker(self):
        def bad_hook(batch, outputs):
            raise RuntimeError("observer bug")

        with BatchRunner(_StubEngine(), max_wait=0.0,
                         on_batch=bad_hook) as runner:
            sample = np.ones((2,), dtype=np.float32)
            for _ in range(3):
                runner.submit(sample).result(timeout=10.0)
            assert runner.stats["restarts"] == 0
            assert runner.stats["batches"] == 3
            # The fault is contained *and counted* — never silent.
            assert runner.stats["observer_faults"] == 3

    def test_observer_faults_are_reported_through_the_error_hook(self):
        failures = []

        def bad_hook(batch, outputs):
            raise RuntimeError("observer bug")

        with BatchRunner(_StubEngine(), max_wait=0.0, on_batch=bad_hook,
                         on_observer_error=failures.append) as runner:
            sample = np.ones((2,), dtype=np.float32)
            runner.submit(sample).result(timeout=10.0)
        assert len(failures) == 1
        assert isinstance(failures[0], RuntimeError)

    def test_raising_error_hook_is_itself_contained(self):
        # The containment must not regress one level up: a buggy
        # on_observer_error callback cannot kill the worker either.
        def bad_hook(batch, outputs):
            raise RuntimeError("observer bug")

        def worse_hook(exc):
            raise ValueError("error hook bug")

        with BatchRunner(_StubEngine(), max_wait=0.0, on_batch=bad_hook,
                         on_observer_error=worse_hook) as runner:
            sample = np.ones((2,), dtype=np.float32)
            for _ in range(2):
                runner.submit(sample).result(timeout=10.0)
            assert runner.stats["observer_faults"] == 2
            assert runner.stats["restarts"] == 0

    def test_registry_counts_observer_faults_in_server_metrics(self):
        from repro.serve import ModelRegistry, ServerMetrics

        def bad_hook(batch, outputs):
            raise RuntimeError("observer bug")

        metrics = ServerMetrics()
        model = build_model("vgg11", num_classes=3, image_size=8,
                            width=0.125, seed=0)
        perturb_batchnorm_stats(model, seed=0)
        model.eval()
        with ModelRegistry(max_batch=4, metrics=metrics) as registry:
            registry.deploy("m", "v1", model=model, input_shape=(3, 8, 8),
                            seed=0)
            _, version = registry.resolve("m")
            version.runner.on_batch = bad_hook
            sample = np.zeros((3, 8, 8), dtype=np.float32)
            version.runner.submit(sample).result(timeout=10.0)
        assert metrics.snapshot()["counters"]["observer_faults"] == 1

    def test_restart_not_attempted_after_close(self):
        engine = _engine()
        runner = BatchRunner(engine, max_wait=0.0)
        runner.close()
        assert not runner._worker.is_alive()
        with pytest.raises(RuntimeError, match="closed"):
            runner.submit(np.zeros((3, 8, 8), dtype=np.float32))
        assert runner.stats["restarts"] == 0


def _quiesced_runner(clock, max_batch=4, max_wait=0.01):
    """A runner whose worker has exited, for driving ``_collect`` directly.

    ``close()`` makes the worker consume the stop sentinel and return;
    afterwards the coalescing loop can be stepped from the test thread
    with the FakeClock as the only time source — fully deterministic.
    """
    runner = BatchRunner(_StubEngine(max_batch), max_batch=max_batch,
                         max_wait=max_wait, clock=clock)
    runner.close()
    return runner


def _enqueue(runner, n, start=0):
    tickets = []
    for i in range(n):
        ticket = InferenceTicket()
        sample = np.full((2,), float(start + i), dtype=np.float32)
        runner._queue.put((sample, ticket))
        tickets.append(ticket)
    return tickets


class TestCoalescingWindowDeterministic:
    """Exact window/deadline behaviour on a FakeClock — no wall clock."""

    def test_full_batch_returns_without_consuming_window(self):
        clock = FakeClock()
        runner = _quiesced_runner(clock, max_batch=4, max_wait=0.01)
        _enqueue(runner, 4)
        batch = runner._collect()
        assert len(batch) == 4
        assert clock.monotonic() == 0.0     # full batch: no waiting at all

    def test_partial_batch_waits_exactly_max_wait(self):
        clock = FakeClock()
        runner = _quiesced_runner(clock, max_batch=4, max_wait=0.01)
        _enqueue(runner, 2)
        batch = runner._collect()
        assert len(batch) == 2
        # Both queued items pop for free; the one empty get charges the
        # whole remaining window to virtual time, expiring the deadline.
        assert clock.monotonic() == pytest.approx(0.01)

    def test_zero_window_ships_singletons(self):
        clock = FakeClock()
        runner = _quiesced_runner(clock, max_batch=4, max_wait=0.0)
        _enqueue(runner, 3)
        assert len(runner._collect()) == 1  # deadline expires immediately
        assert len(runner._collect()) == 1
        assert clock.monotonic() == 0.0

    def test_max_wait_is_read_per_batch(self):
        # The serving layer's adaptive window retunes runner.max_wait
        # between batches; _collect must pick up the new value.
        clock = FakeClock()
        runner = _quiesced_runner(clock, max_batch=4, max_wait=0.001)
        _enqueue(runner, 1)
        runner._collect()
        assert clock.monotonic() == pytest.approx(0.001)
        runner.max_wait = 0.016
        _enqueue(runner, 1)
        runner._collect()
        assert clock.monotonic() == pytest.approx(0.017)

    def test_cancelled_tickets_are_dropped_before_the_engine_runs(self):
        clock = FakeClock()
        runner = _quiesced_runner(clock, max_batch=4, max_wait=0.01)
        tickets = _enqueue(runner, 3)
        assert tickets[1].cancel()
        batch = runner._collect()
        assert len(batch) == 2
        assert [float(s[0]) for s, _ in batch] == [0.0, 2.0]
        assert runner.stats["cancelled"] == 1

    def test_stop_sentinel_mid_coalesce_is_rearmed(self):
        from repro.infer import batcher
        clock = FakeClock()
        runner = _quiesced_runner(clock, max_batch=4, max_wait=0.01)
        _enqueue(runner, 1)
        runner._queue.put(batcher._STOP)
        _enqueue(runner, 1, start=1)
        # The sentinel truncates the first batch but must survive for the
        # loop's next round rather than being swallowed.
        assert len(runner._collect()) == 1
        assert len(runner._collect()) == 1
        assert runner._collect() == []      # the re-armed sentinel

    def test_live_worker_resolves_results_on_fake_clock(self):
        clock = FakeClock()
        engine = _StubEngine(max_batch=8)
        with BatchRunner(engine, max_wait=0.004, clock=clock) as runner:
            for value in (1.0, 2.0, 3.0):
                sample = np.full((2,), value, dtype=np.float32)
                np.testing.assert_array_equal(
                    runner.submit(sample).result(timeout=10.0), sample * 2)
        # Each singleton batch charged its whole window to virtual time.
        assert clock.monotonic() == pytest.approx(3 * 0.004)


def _enqueue_deadlines(runner, deadlines):
    """Queue one ticket per deadline (sample value = its index)."""
    tickets = []
    for i, deadline in enumerate(deadlines):
        ticket = InferenceTicket(deadline)
        sample = np.full((2,), float(i), dtype=np.float32)
        runner._queue.put((sample, ticket))
        tickets.append(ticket)
    return tickets


class TestDeadlineEviction:
    """Expired tickets are evicted during batch formation — acceptance
    criterion (a): a request whose deadline passed while it sat in the
    queue never reaches the engine and surfaces as ``expired``."""

    def test_past_deadline_is_evicted_and_counted(self):
        clock = FakeClock(start=10.0)
        runner = _quiesced_runner(clock, max_batch=4, max_wait=0.01)
        tickets = _enqueue_deadlines(runner, [None, 9.0, 10.0, 11.0])
        batch = runner._collect()
        # 9.0 is past, 10.0 is exactly now (expired: deadline <= now);
        # None and 11.0 survive. A full queue pops for free, so virtual
        # time did not move and the cut is exact.
        assert [float(s[0]) for s, _ in batch] == [0.0, 3.0]
        assert runner.stats["expired"] == 2
        assert clock.monotonic() == 10.0
        for ticket in (tickets[1], tickets[2]):
            with pytest.raises(DeadlineExpired):
                ticket.result(timeout=0)

    def test_eviction_happens_after_the_coalescing_wait(self):
        # A deadline that is live at submit time but dies inside the
        # batching window is still evicted: the check runs at batch
        # formation, against the clock *after* the window was charged.
        clock = FakeClock(start=0.0)
        runner = _quiesced_runner(clock, max_batch=4, max_wait=0.05)
        tickets = _enqueue_deadlines(runner, [0.01])
        batch = runner._collect()       # one empty get charges 0.05s
        assert batch == []
        assert clock.monotonic() == pytest.approx(0.05)
        assert runner.stats["expired"] == 1
        with pytest.raises(DeadlineExpired):
            tickets[0].result(timeout=0)

    def test_cancelled_ticket_counts_cancelled_not_expired(self):
        clock = FakeClock(start=10.0)
        runner = _quiesced_runner(clock, max_batch=2, max_wait=0.01)
        tickets = _enqueue_deadlines(runner, [5.0, None])
        tickets[0].cancel()             # caller gave up before eviction
        batch = runner._collect()
        assert len(batch) == 1
        assert runner.stats["cancelled"] == 1
        assert runner.stats["expired"] == 0

    def test_deadline_expired_is_a_timeout_error(self):
        # The serving layer's error taxonomy depends on this: expired
        # must NOT be a RuntimeError, or the hot-swap retry branch would
        # resubmit already-dead work.
        assert issubclass(DeadlineExpired, TimeoutError)
        assert not issubclass(DeadlineExpired, RuntimeError)

    def test_live_runner_never_runs_expired_work(self):
        # Real clock, gated engine: the blocker occupies the worker, the
        # victim's deadline is already past when submitted, so the batch
        # formed after the gate opens must exclude it.
        engine = _GatedEngine(max_batch=8)
        with BatchRunner(engine, max_wait=0.0) as runner:
            blocker = runner.submit(np.full((2,), 1.0, dtype=np.float32))
            victim = runner.submit(np.full((2,), 2.0, dtype=np.float32),
                                   deadline=runner.clock.monotonic() - 1.0)
            engine.gate.set()
            np.testing.assert_array_equal(blocker.result(timeout=10.0),
                                          np.full((2,), 2.0, np.float32))
            with pytest.raises(DeadlineExpired):
                victim.result(timeout=10.0)
            # Only the blocker's singleton batch ever reached the engine;
            # a live-deadline probe confirms the worker is still healthy.
            probe = runner.submit(
                np.full((2,), 3.0, dtype=np.float32),
                deadline=runner.clock.monotonic() + 60.0)
            probe.result(timeout=10.0)
            assert runner.stats["expired"] == 1
            assert runner.stats["samples"] == 2     # blocker + probe


class TestInferenceTicket:
    def test_cancel_resolves_and_reports(self):
        ticket = InferenceTicket()
        assert ticket.cancel()
        assert ticket.done() and ticket.cancelled()
        with pytest.raises(TicketCancelled):
            ticket.result(timeout=0)

    def test_cancel_after_completion_is_refused(self):
        ticket = InferenceTicket()
        assert ticket._complete(np.float32(7.0))
        assert not ticket.cancel()
        assert not ticket.cancelled()
        assert ticket.result(timeout=0) == np.float32(7.0)

    def test_result_without_cancel_leaves_ticket_pending(self):
        ticket = InferenceTicket()
        with pytest.raises(TimeoutError):
            ticket.result(timeout=0)
        assert not ticket.done()
        ticket._complete(np.float32(1.0))
        assert ticket.result(timeout=0) == np.float32(1.0)

    def test_cancel_on_timeout_resolves_the_ticket(self):
        engine = _GatedEngine()
        with BatchRunner(engine, max_wait=0.0) as runner:
            ticket = runner.submit(np.ones((2,), dtype=np.float32))
            with pytest.raises(TimeoutError):
                ticket.result(timeout=0.01, cancel_on_timeout=True)
            assert ticket.cancelled()
            engine.gate.set()
            # The in-flight batch completes; its attempt to resolve the
            # cancelled ticket is counted, not raised.
            probe = runner.submit(np.ones((2,), dtype=np.float32))
            probe.result(timeout=10.0)
            assert runner.stats["cancelled"] >= 1

    def test_done_callback_fires_on_resolution(self):
        ticket = InferenceTicket()
        fired = []
        ticket.add_done_callback(lambda t: fired.append(t.done()))
        assert fired == []
        ticket._complete(np.float32(0.0))
        assert fired == [True]

    def test_done_callback_fires_immediately_when_already_done(self):
        ticket = InferenceTicket()
        ticket.cancel()
        fired = []
        ticket.add_done_callback(lambda t: fired.append(t.cancelled()))
        assert fired == [True]

    def test_raising_done_callback_is_contained(self):
        ticket = InferenceTicket()

        def bad(_t):
            raise RuntimeError("observer bug")

        fired = []
        ticket.add_done_callback(bad)
        ticket.add_done_callback(lambda t: fired.append(True))
        ticket._complete(np.float32(0.0))
        assert fired == [True]
