"""Graph capture: step recording, SSA validation, training-mode rejection."""

import numpy as np
import pytest

from repro.infer import PlanError, capture_plan
from repro.models import build_model
from repro.nn import Conv2d, Module, ReLU, Sequential
from repro.verify.invariants import perturb_batchnorm_stats


def _example(batch=4, channels=3, size=8, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(batch, channels, size, size)).astype(np.float32)


def _tiny_vgg():
    model = build_model("vgg11", num_classes=3, image_size=8, width=0.125,
                        seed=0)
    perturb_batchnorm_stats(model, seed=0)
    model.eval()
    return model


class TestCapture:
    def test_vgg_plan_structure(self):
        plan = capture_plan(_tiny_vgg(), _example())
        counts = plan.op_counts()
        assert counts["conv2d"] == 8
        assert counts["batchnorm"] == 8
        assert counts["linear"] >= 1
        assert "max_pool2d" in counts
        # Dropout layers alias through: no step recorded for them.
        assert "dropout" not in counts
        assert plan.shapes[plan.input_id] == (4, 3, 8, 8)
        assert plan.shapes[plan.output_id] == (4, 3)
        assert plan.example_batch == 4

    def test_resnet_residual_join_is_captured(self):
        model = build_model("resnet20", num_classes=3, image_size=8,
                            width=0.25, seed=0)
        model.eval()
        plan = capture_plan(model, _example())
        # Functional ops.relu(ops.add(...)) in each BasicBlock.
        assert plan.op_counts()["add"] >= 9

    def test_steps_are_in_ssa_order(self):
        plan = capture_plan(_tiny_vgg(), _example())
        defined = {plan.input_id, *plan.constants}
        for step in plan.steps:
            assert all(vid in defined for vid in step.inputs)
            assert step.output not in defined
            defined.add(step.output)
        assert plan.output_id in defined

    def test_every_step_output_keeps_batch_axis(self):
        plan = capture_plan(_tiny_vgg(), _example())
        for step in plan.steps:
            assert plan.shapes[step.output][0] == plan.example_batch

    def test_summary_mentions_each_step(self):
        plan = capture_plan(_tiny_vgg(), _example())
        text = plan.summary()
        assert f"{len(plan)} steps" in text
        assert "conv2d" in text and "linear" in text


class TestRejection:
    def test_training_mode_rejected(self):
        model = _tiny_vgg()
        model.train()
        with pytest.raises(PlanError, match="eval mode"):
            capture_plan(model, _example())

    def test_non_module_rejected(self):
        with pytest.raises(TypeError):
            capture_plan(lambda x: x, _example())

    def test_missing_batch_axis_rejected(self):
        model = _tiny_vgg()
        with pytest.raises(PlanError, match="batch axis"):
            capture_plan(model, np.zeros(24, dtype=np.float32))

    def test_forward_hooks_rejected(self):
        model = Sequential(Conv2d(3, 4, 3, padding=1), ReLU())
        model.eval()
        handle = model[0].register_forward_hook(lambda m, i, o: None)
        try:
            with pytest.raises(PlanError, match="hook"):
                capture_plan(model, _example())
        finally:
            handle.remove()

    def test_untraced_tensor_rejected(self):
        from repro.tensor import Tensor

        class Sneaky(Module):
            def __init__(self):
                super().__init__()
                self.conv = Conv2d(3, 4, 3, padding=1)

            def forward(self, x):
                # Hand-rolled Tensor op that bypasses repro.tensor.ops.
                doubled = Tensor._make(x.data * 2, (x,), "custom", None)
                return self.conv(doubled)

        model = Sneaky()
        model.eval()
        with pytest.raises(PlanError, match="untraced"):
            capture_plan(model, _example())
