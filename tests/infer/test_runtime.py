"""Engine mechanics: batching, chunking, buffer reuse, validation."""

import numpy as np
import pytest

from repro.infer import (CompileValidationError, InferenceEngine,
                         capture_plan, compile_model)
from repro.models import build_model
from repro.tensor import Tensor, no_grad
from repro.verify.invariants import perturb_batchnorm_stats


def _model():
    model = build_model("vgg11", num_classes=3, image_size=8, width=0.125,
                        seed=0)
    perturb_batchnorm_stats(model, seed=0)
    model.eval()
    return model


def _example(batch=4, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(batch, 3, 8, 8)).astype(np.float32)


def _eager(model, x):
    with no_grad():
        return model(Tensor(x)).data


class TestInferenceEngine:
    def test_partial_batches_reuse_buffers(self):
        model = _model()
        engine = compile_model(model, _example(8))
        for n in (8, 3, 1, 5):
            x = _example(n, seed=n)
            np.testing.assert_allclose(engine.run(x), _eager(model, x),
                                       rtol=1e-4, atol=1e-5)

    def test_single_sample_promotion(self):
        model = _model()
        engine = compile_model(model, _example(4))
        sample = _example(1)[0]
        out = engine.run(sample)
        assert out.shape == (3,)
        np.testing.assert_allclose(out, _eager(model, sample[None])[0],
                                   rtol=1e-4, atol=1e-5)

    def test_oversized_batch_is_chunked(self):
        model = _model()
        engine = compile_model(model, _example(4), max_batch=4)
        x = _example(11, seed=3)
        np.testing.assert_allclose(engine.run(x), _eager(model, x),
                                   rtol=1e-4, atol=1e-5)

    def test_engine_is_callable(self):
        engine = compile_model(_model(), _example())
        x = _example()
        np.testing.assert_array_equal(engine(x), engine.run(x))

    def test_tensor_input_accepted(self):
        engine = compile_model(_model(), _example())
        x = _example()
        np.testing.assert_array_equal(engine.run(Tensor(x)), engine.run(x))

    def test_shape_mismatch_rejected(self):
        engine = compile_model(_model(), _example())
        with pytest.raises(ValueError, match="shape"):
            engine.run(np.zeros((2, 3, 16, 16), dtype=np.float32))

    def test_invalid_im2col_mode_rejected(self):
        plan = capture_plan(_model(), _example())
        with pytest.raises(ValueError, match="im2col"):
            InferenceEngine(plan, im2col="magic")

    def test_gather_mode_matches_strided(self):
        model = _model()
        x = _example()
        strided = compile_model(model, x, im2col="strided")
        gather = compile_model(model, x, im2col="gather")
        np.testing.assert_allclose(strided.run(x), gather.run(x),
                                   rtol=1e-6, atol=1e-7)

    def test_describe_reports_arena_and_optimization(self):
        engine = compile_model(_model(), _example())
        text = engine.describe()
        assert "max_batch=4" in text
        assert "BN folded" in text
        assert engine.arena.nbytes > 0

    def test_unoptimized_engine_matches(self):
        model = _model()
        x = _example()
        plain = compile_model(model, x, optimize=False)
        assert "batchnorm" in plain.plan.op_counts()
        np.testing.assert_allclose(plain.run(x), _eager(model, x),
                                   rtol=1e-4, atol=1e-5)


class TestCompileValidation:
    def test_validation_error_path_fires(self):
        # BN folding reorders float32 arithmetic, so a zero-tolerance
        # validation must trip — proving the check actually compares.
        with pytest.raises(CompileValidationError, match="diverges"):
            compile_model(_model(), _example(), rtol=0.0, atol=0.0)

    def test_default_tolerance_accepts_folding_noise(self):
        engine = compile_model(_model(), _example(), validate=True)
        assert engine.optimization.folded_batchnorm > 0

    def test_validate_false_skips_the_check(self):
        engine = compile_model(_model(), _example(), validate=False)
        assert engine.run(_example()).shape == (4, 3)
