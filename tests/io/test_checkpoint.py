"""Checkpointing of pruned and unpruned models."""

import numpy as np
import pytest

from repro.core import prune_groups
from repro.io import (CheckpointCorruptError, conform_to_state, load_model,
                      save_model)
from repro.models import build_model
from repro.resilience import corrupt_checkpoint
from repro.tensor import Tensor, no_grad


def forward(model, size=8):
    x = Tensor(np.random.default_rng(3).normal(size=(2, 3, size, size))
               .astype(np.float32))
    model.eval()
    with no_grad():
        return model(x).data


class TestRoundTrip:
    def test_unpruned_roundtrip(self, tmp_path):
        model = build_model("vgg11", num_classes=3, image_size=8, width=0.125)
        before = forward(model)
        save_model(model, tmp_path / "model.npz")
        loaded = load_model(tmp_path / "model.npz")
        np.testing.assert_allclose(forward(loaded), before, rtol=1e-5,
                                   atol=1e-6)

    def test_pruned_vgg_roundtrip(self, tmp_path):
        model = build_model("vgg11", num_classes=3, image_size=8, width=0.125)
        groups = model.prunable_groups()
        keep = {groups[1].name: np.array([0, 2]),
                groups[3].name: np.arange(5)}
        prune_groups(model, groups, keep)
        before = forward(model)
        save_model(model, tmp_path / "pruned.npz")
        loaded = load_model(tmp_path / "pruned.npz")
        np.testing.assert_allclose(forward(loaded), before, rtol=1e-5,
                                   atol=1e-6)
        assert loaded.get_module(groups[1].conv).out_channels == 2

    def test_pruned_resnet_roundtrip(self, tmp_path):
        model = build_model("resnet20", num_classes=3, width=0.25,
                            image_size=8)
        groups = model.prunable_groups()
        keep = {g.name: np.arange(1) for g in groups[:4]}
        prune_groups(model, groups, keep)
        before = forward(model)
        save_model(model, tmp_path / "resnet.npz")
        loaded = load_model(tmp_path / "resnet.npz")
        np.testing.assert_allclose(forward(loaded), before, rtol=1e-5,
                                   atol=1e-6)

    def test_mlp_roundtrip(self, tmp_path):
        # MLP is not in the registry; pass the recipe explicitly.
        from repro.models import MLP
        model = MLP(3 * 8 * 8, [16, 8], 3, seed=0)
        with pytest.raises(ValueError):
            save_model(model, tmp_path / "mlp.npz")


class TestValidation:
    def test_missing_arch_rejected_on_save(self, tmp_path):
        from repro.models import vgg11
        model = vgg11(num_classes=3, image_size=8, width=0.125)  # no recipe
        with pytest.raises(ValueError, match="architecture recipe"):
            save_model(model, tmp_path / "x.npz")

    def test_explicit_arch_accepted(self, tmp_path):
        from repro.models import vgg11
        model = vgg11(num_classes=3, image_size=8, width=0.125)
        save_model(model, tmp_path / "x.npz",
                   arch=dict(name="vgg11", num_classes=3, image_size=8,
                             width=0.125))
        loaded = load_model(tmp_path / "x.npz")
        np.testing.assert_allclose(forward(loaded), forward(model),
                                   rtol=1e-5, atol=1e-6)

    def test_non_checkpoint_file_rejected(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(ValueError, match="not a repro checkpoint"):
            load_model(path)

    def test_oversized_checkpoint_rejected(self, tmp_path):
        # Save a wide model, try to load it into a narrow recipe.
        wide = build_model("vgg11", num_classes=3, image_size=8, width=0.25)
        save_model(wide, tmp_path / "wide.npz",
                   arch=dict(name="vgg11", num_classes=3, image_size=8,
                             width=0.125))
        with pytest.raises(ValueError, match="wrong arch recipe"):
            load_model(tmp_path / "wide.npz")

    def test_conform_reports_missing_weights(self):
        model = build_model("vgg11", num_classes=3, image_size=8,
                            width=0.125)
        with pytest.raises(KeyError):
            conform_to_state(model, {}, (3, 8, 8))

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_model(tmp_path / "nope.npz")

    def test_arch_preserved_on_loaded_model(self, tmp_path):
        model = build_model("vgg11", num_classes=3, image_size=8,
                            width=0.125)
        save_model(model, tmp_path / "m.npz")
        loaded = load_model(tmp_path / "m.npz")
        assert loaded.arch["name"] == "vgg11"
        # Round-trip again (the acid test for recipe preservation).
        save_model(loaded, tmp_path / "m2.npz")
        again = load_model(tmp_path / "m2.npz")
        np.testing.assert_allclose(forward(again), forward(model),
                                   rtol=1e-5, atol=1e-6)


class TestTamperDetection:
    def _saved(self, tmp_path):
        model = build_model("vgg11", num_classes=3, image_size=8, width=0.125)
        path = tmp_path / "model.npz"
        save_model(model, path)
        load_model(path)  # sanity: valid before tampering
        return path

    @pytest.mark.parametrize("mode", ["flip", "truncate"])
    def test_corruption_detected(self, tmp_path, mode):
        path = self._saved(tmp_path)
        corrupt_checkpoint(path, mode=mode)
        with pytest.raises(CheckpointCorruptError):
            load_model(path)

    def test_corrupt_error_is_value_error(self, tmp_path):
        # Callers that predate CheckpointCorruptError catch ValueError.
        path = self._saved(tmp_path)
        corrupt_checkpoint(path, mode="truncate")
        with pytest.raises(ValueError):
            load_model(path)

    def test_checksum_catches_payload_swap(self, tmp_path):
        # Rewrite one array through numpy itself: the container stays a
        # valid npz, so only the content digest can notice.
        path = self._saved(tmp_path)
        payload = dict(np.load(path, allow_pickle=True))
        key = next(k for k in payload
                   if k.endswith(".weight") and payload[k].ndim > 1)
        payload[key] = np.zeros_like(payload[key])
        np.savez(path, **payload)
        with pytest.raises(CheckpointCorruptError, match="checksum"):
            load_model(path)

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        self._saved(tmp_path)
        leftovers = [p for p in tmp_path.iterdir()
                     if p.suffix != ".npz"]
        assert leftovers == []
