"""Crash–resume integration: a killed run must resume bit-identically."""

import numpy as np
import pytest

from repro.core import (ClassAwarePruningFramework, FrameworkConfig,
                        ImportanceConfig, TrainingConfig)
from repro.core.framework import ResumeError
from repro.models import build_model
from repro.resilience import RunJournal, SimulatedCrash, corrupt_checkpoint


def make_framework(tolerance=0.5, max_iterations=2):
    from repro.data import make_cifar_like
    model = build_model("vgg11", num_classes=3, image_size=8, width=0.25,
                        seed=0)
    train, test = make_cifar_like(num_classes=3, image_size=8,
                                  samples_per_class=12, seed=0)
    return ClassAwarePruningFramework(
        model, train, test, num_classes=3, input_shape=(3, 8, 8),
        config=FrameworkConfig(
            score_threshold=1.0, max_fraction_per_iteration=0.2,
            finetune_epochs=1, accuracy_drop_tolerance=tolerance,
            max_iterations=max_iterations,
            importance=ImportanceConfig(images_per_class=3)),
        training=TrainingConfig(epochs=1, batch_size=32, lr=0.05, seed=0))


def assert_results_identical(reference, resumed):
    assert resumed.stop_reason == reference.stop_reason
    assert resumed.termination == reference.termination
    assert resumed.final_accuracy == reference.final_accuracy
    assert resumed.baseline_accuracy == reference.baseline_accuracy
    assert len(resumed.iterations) == len(reference.iterations)
    for ref, res in zip(reference.iterations, resumed.iterations):
        assert res.iteration == ref.iteration
        assert res.num_removed == ref.num_removed
        assert res.accuracy_after_finetune == ref.accuracy_after_finetune
        assert res.params == ref.params
    ref_state = reference.model.state_dict()
    res_state = resumed.model.state_dict()
    assert sorted(ref_state) == sorted(res_state)
    for key in ref_state:
        np.testing.assert_array_equal(ref_state[key], res_state[key],
                                      err_msg=key)


@pytest.fixture(scope="module")
def reference_result(tmp_path_factory):
    """One uninterrupted journaled run shared by the comparisons below."""
    run_dir = tmp_path_factory.mktemp("reference") / "run"
    return make_framework().run(run_dir=run_dir), run_dir


class TestJournaledRun:
    def test_journal_records_full_run(self, reference_result):
        result, run_dir = reference_result
        events = [r["event"] for r in RunJournal.read(run_dir / "journal.jsonl")]
        assert events[0] == "run_start"
        assert events[-1] == "run_end"
        assert events.count("iteration") == len(result.iterations)
        for i in range(len(result.iterations)):
            assert (run_dir / "checkpoints" / f"iter_{i:04d}.npz").exists()
        assert (run_dir / "checkpoints" / "baseline.npz").exists()
        assert (run_dir / "checkpoints" / "final.npz").exists()

    def test_journaling_does_not_change_outcome(self, reference_result,
                                                tmp_path):
        result, _ = reference_result
        plain = make_framework().run()
        assert plain.stop_reason == result.stop_reason
        plain_state = plain.model.state_dict()
        for key, value in result.model.state_dict().items():
            np.testing.assert_array_equal(value, plain_state[key])

    def test_run_dir_requires_arch(self, tmp_path, tiny_dataset,
                                   tiny_test_dataset):
        from repro.models import vgg11
        model = vgg11(num_classes=3, image_size=8, width=0.25, seed=0)
        fw = ClassAwarePruningFramework(
            model, tiny_dataset, tiny_test_dataset, num_classes=3,
            input_shape=(3, 8, 8),
            config=FrameworkConfig(
                max_iterations=1,
                importance=ImportanceConfig(images_per_class=2)),
            training=TrainingConfig(epochs=1, batch_size=32))
        with pytest.raises(ValueError, match="architecture recipe"):
            fw.run(run_dir=tmp_path / "run")


class TestCrashResume:
    def _crashed_run_dir(self, tmp_path, crash_after=0):
        run_dir = tmp_path / "crashed"

        def crash(iteration):
            if iteration >= crash_after:
                raise SimulatedCrash(f"killed after iteration {iteration}")

        with pytest.raises(SimulatedCrash):
            make_framework().run(run_dir=run_dir, post_iteration=crash)
        return run_dir

    def test_resume_after_kill_is_bit_identical(self, reference_result,
                                                tmp_path):
        reference, _ = reference_result
        run_dir = self._crashed_run_dir(tmp_path, crash_after=0)
        resumed = make_framework().run(resume_from=run_dir)
        assert_results_identical(reference, resumed)

    def test_resume_writes_resume_and_end_records(self, tmp_path):
        run_dir = self._crashed_run_dir(tmp_path)
        make_framework().run(resume_from=run_dir)
        events = [r["event"] for r in RunJournal.read(run_dir / "journal.jsonl")]
        assert "resume" in events
        assert events[-1] == "run_end"

    def test_resume_with_corrupt_last_checkpoint_falls_back(
            self, reference_result, tmp_path):
        # The crash also mangled the newest checkpoint: resume must drop it,
        # fall back to the baseline recovery point, and still converge to
        # the same result (iteration 0 is simply recomputed).
        reference, _ = reference_result
        run_dir = self._crashed_run_dir(tmp_path, crash_after=0)
        corrupt_checkpoint(run_dir / "checkpoints" / "iter_0000.npz",
                           mode="truncate")
        resumed = make_framework().run(resume_from=run_dir)
        assert_results_identical(reference, resumed)

    def test_resume_of_finished_run_reconstructs(self, reference_result):
        reference, run_dir = reference_result
        resumed = make_framework().run(resume_from=run_dir)
        assert_results_identical(reference, resumed)

    def test_resume_without_journal_rejected(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises((ResumeError, FileNotFoundError)):
            make_framework().run(resume_from=tmp_path / "empty")

    def test_resume_with_dead_baseline_rejected(self, tmp_path):
        run_dir = self._crashed_run_dir(tmp_path)
        corrupt_checkpoint(run_dir / "checkpoints" / "baseline.npz",
                           mode="truncate")
        corrupt_checkpoint(run_dir / "checkpoints" / "iter_0000.npz",
                           mode="truncate")
        with pytest.raises(ResumeError, match="baseline"):
            make_framework().run(resume_from=run_dir)


class TestRollbackResume:
    def _truncate_journal_after(self, run_dir, last_event):
        """Drop journal lines after the first ``last_event`` record —
        simulating a crash at exactly that commit point."""
        path = run_dir / "journal.jsonl"
        lines = path.read_text().splitlines()
        kept = []
        for line in lines:
            kept.append(line)
            if f'"event":"{last_event}"' in line:
                break
        path.write_text("\n".join(kept) + "\n")

    def test_crash_before_rollback_record_reapplies_verdict(self, tmp_path):
        # tolerance=-1: iteration 0 always fails the accuracy rule.
        run_dir = tmp_path / "run"
        reference = make_framework(tolerance=-1.0).run(run_dir=run_dir)
        assert reference.stop_reason == "accuracy"
        # Crash window: the iteration committed, the rollback verdict lost.
        self._truncate_journal_after(run_dir, "iteration")
        (run_dir / "checkpoints" / "final.npz").unlink()
        resumed = make_framework(tolerance=-1.0).run(resume_from=run_dir)
        assert_results_identical(reference, resumed)

    def test_crash_after_rollback_record_redoes_epilogue(self, tmp_path):
        run_dir = tmp_path / "run"
        reference = make_framework(tolerance=-1.0).run(run_dir=run_dir)
        self._truncate_journal_after(run_dir, "rollback")
        (run_dir / "checkpoints" / "final.npz").unlink()
        resumed = make_framework(tolerance=-1.0).run(resume_from=run_dir)
        assert_results_identical(reference, resumed)

    def test_finished_run_with_dead_final_checkpoint_recomputes(
            self, tmp_path):
        run_dir = tmp_path / "run"
        reference = make_framework().run(run_dir=run_dir)
        corrupt_checkpoint(run_dir / "checkpoints" / "final.npz",
                           mode="flip")
        resumed = make_framework().run(resume_from=run_dir)
        assert_results_identical(reference, resumed)
