"""Numerical-health sentinels: every fault kind, rewind, and degradation."""

import numpy as np
import pytest

from repro.core import Trainer, TrainingConfig
from repro.data import EmptyDatasetError, Subset
from repro.resilience import (HealthMonitor, NumericalHealthError,
                              SentinelConfig, plant_numerical_fault)
from repro.tensor import Tensor


class TestHealthMonitor:
    def test_nan_loss_flagged(self):
        monitor = HealthMonitor(SentinelConfig())
        event = monitor.observe_loss(float("nan"), epoch=0, step=3)
        assert event is not None and event.kind == "nan-loss"

    def test_inf_loss_flagged(self):
        monitor = HealthMonitor(SentinelConfig())
        event = monitor.observe_loss(float("inf"), epoch=1, step=0)
        assert event is not None and event.kind == "inf-loss"

    def test_healthy_losses_pass(self):
        monitor = HealthMonitor(SentinelConfig())
        for step in range(20):
            assert monitor.observe_loss(1.0 + 0.01 * step, 0, step) is None

    def test_explosion_needs_baseline(self):
        monitor = HealthMonitor(SentinelConfig(explosion_factor=10))
        # First observation has no baseline — a big loss is not an event.
        assert monitor.observe_loss(1e9, 0, 0) is None

    def test_explosion_flagged_against_median(self):
        monitor = HealthMonitor(SentinelConfig(explosion_factor=10,
                                               explosion_window=8))
        for step in range(8):
            monitor.observe_loss(1.0, 0, step)
        event = monitor.observe_loss(100.0, 0, 8)
        assert event is not None and event.kind == "loss-explosion"

    def test_explosion_detection_can_be_disabled(self):
        monitor = HealthMonitor(SentinelConfig(explosion_factor=0))
        for step in range(8):
            monitor.observe_loss(1.0, 0, step)
        assert monitor.observe_loss(1e12, 0, 8) is None

    def test_reset_clears_baseline(self):
        monitor = HealthMonitor(SentinelConfig(explosion_factor=10,
                                               explosion_window=8))
        for step in range(8):
            monitor.observe_loss(1.0, 0, step)
        monitor.reset()
        assert monitor.observe_loss(100.0, 1, 0) is None

    def test_nan_gradient_flagged(self):
        monitor = HealthMonitor(SentinelConfig())
        param = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        param.grad = np.array([1.0, np.nan, 2.0])
        event = monitor.observe_gradients([("w", param)], 0, 0)
        assert event is not None and event.kind == "nan-grad"
        assert "w" in event.detail

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SentinelConfig(lr_backoff=0.0)
        with pytest.raises(ValueError):
            SentinelConfig(max_retries=-1)
        with pytest.raises(ValueError):
            SentinelConfig(explosion_factor=-1.0)


class TestTrainerSentinels:
    def _trainer(self, model, train, retries=2, epochs=2):
        return Trainer(model, train, None,
                       TrainingConfig(epochs=epochs, batch_size=16, lr=0.05,
                                      seed=0),
                       sentinel=SentinelConfig(max_retries=retries))

    def _fault_target(self, model):
        return model.get_module(model.prunable_groups()[0].conv)

    def test_transient_nan_activation_recovers(self, tiny_vgg, tiny_dataset):
        trainer = self._trainer(tiny_vgg, tiny_dataset)
        handle = plant_numerical_fault(self._fault_target(tiny_vgg),
                                       at_call=1, mode="activation")
        try:
            history = trainer.train(epochs=2)
        finally:
            handle.remove()
        assert len(history.epochs) == 2
        assert len(history.sentinel_events) == 1
        assert history.sentinel_events[0].kind == "nan-loss"
        assert history.sentinel_events[0].action == "rewind"
        for _, param in tiny_vgg.named_parameters():
            assert np.all(np.isfinite(param.data))

    def test_transient_nan_gradient_recovers(self, tiny_vgg, tiny_dataset):
        trainer = self._trainer(tiny_vgg, tiny_dataset)
        handle = plant_numerical_fault(self._fault_target(tiny_vgg),
                                       at_call=1, mode="gradient")
        try:
            history = trainer.train(epochs=2)
        finally:
            handle.remove()
        assert len(history.epochs) == 2
        assert history.sentinel_events[0].kind == "nan-grad"
        for _, param in tiny_vgg.named_parameters():
            assert np.all(np.isfinite(param.data))

    def test_rewind_backs_off_learning_rate(self, tiny_vgg, tiny_dataset):
        trainer = self._trainer(tiny_vgg, tiny_dataset)
        lr_before = trainer.optimizer.lr
        handle = plant_numerical_fault(self._fault_target(tiny_vgg),
                                       at_call=0, mode="activation")
        try:
            trainer.train(epochs=1)
        finally:
            handle.remove()
        assert trainer.optimizer.lr == pytest.approx(lr_before * 0.5)

    def test_persistent_fault_degrades_gracefully(self, tiny_vgg,
                                                  tiny_dataset):
        trainer = self._trainer(tiny_vgg, tiny_dataset, retries=1)
        healthy = {k: v.copy()
                   for k, v in tiny_vgg.state_dict().items()}
        # Fires on every forward call: no retry can ever succeed.
        def hook(_m, _a, out):
            out.data.flat[0] = np.nan
            return None
        handle = self._fault_target(tiny_vgg).register_forward_hook(hook)
        try:
            with pytest.raises(NumericalHealthError) as info:
                trainer.train(epochs=1)
        finally:
            handle.remove()
        # The weights were restored to the last healthy snapshot.
        for key, value in tiny_vgg.state_dict().items():
            np.testing.assert_array_equal(value, healthy[key])
        events = info.value.events
        assert events and events[-1].action == "abort"

    def test_no_sentinel_keeps_legacy_behaviour(self, tiny_vgg, tiny_dataset):
        trainer = Trainer(tiny_vgg, tiny_dataset, None,
                          TrainingConfig(epochs=1, batch_size=16, lr=0.05))
        history = trainer.train(epochs=1)
        assert history.sentinel_events == []


class TestEmptyDatasetGuards:
    def test_trainer_rejects_empty_dataset(self, tiny_vgg, tiny_dataset):
        empty = Subset(tiny_dataset, [])
        trainer = Trainer(tiny_vgg, empty, None,
                          TrainingConfig(epochs=1, batch_size=16))
        with pytest.raises(EmptyDatasetError):
            trainer.train(epochs=1)

    def test_evaluate_rejects_empty_dataset(self, tiny_vgg, tiny_dataset):
        from repro.core import evaluate_model
        with pytest.raises(EmptyDatasetError):
            evaluate_model(tiny_vgg, Subset(tiny_dataset, []))

    def test_importance_reports_zero_sample_class(self, tiny_vgg,
                                                  tiny_dataset):
        from repro.core import ImportanceConfig, ImportanceEvaluator
        indices = np.flatnonzero(tiny_dataset.labels != 1)
        missing_class = Subset(tiny_dataset, indices.tolist())
        evaluator = ImportanceEvaluator(
            tiny_vgg, missing_class, num_classes=3,
            config=ImportanceConfig(images_per_class=2))
        groups = tiny_vgg.prunable_groups()
        with pytest.raises(EmptyDatasetError, match="class 1"):
            evaluator.evaluate([groups[0].conv])

    def test_empty_dataset_error_is_value_error(self):
        assert issubclass(EmptyDatasetError, ValueError)
