"""The verify-runner drill battery must pass and report correctly."""

from repro.resilience import drills


class TestRunDrills:
    def test_quick_battery_passes(self):
        results = drills.run_drills(seed=0, quick=True)
        names = [r.name for r in results]
        assert names == ["surgery.rollback", "checkpoint.tamper",
                         "sentinel.recovery", "loader.retry",
                         "worker.crash", "worker.respawn", "worker.hang",
                         "worker.degrade", "worker.bucket", "shm.reaper",
                         "quant.deploy", "quant.corrupt",
                         "serve.shed", "serve.swap",
                         "serve.drain", "serve.restart",
                         "replica.kill", "replica.hang",
                         "replica.rolling"]
        for result in results:
            assert result.passed, f"{result.name}: {result.failures}"
            assert result.seconds >= 0.0

    def test_full_battery_includes_crash_resume(self):
        results = drills.run_drills(seed=0, quick=False)
        assert results[-1].name == "crash.resume"
        for result in results:
            assert result.passed, f"{result.name}: {result.failures}"

    def test_drill_result_shape_matches_report_contract(self):
        # The verify runner's _report needs these exact attributes.
        result = drills.DrillResult("x")
        assert hasattr(result, "passed")
        assert hasattr(result, "name")
        assert hasattr(result, "seconds")
        assert hasattr(result, "failures")
        result.fail("boom")
        assert not result.passed and result.failures == ["boom"]
