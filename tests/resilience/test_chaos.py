"""The fault-injection harness itself must be deterministic and precise."""

import numpy as np
import pytest

from repro.data import DataLoader
from repro.nn import cross_entropy
from repro.resilience import (ChaosError, DataUnavailableError, FlakyDataset,
                              RetryingDataset, plant_numerical_fault,
                              sabotage_method)
from repro.tensor import Tensor


class TestNumericalFaults:
    def _conv(self, tiny_vgg):
        return tiny_vgg.get_module(tiny_vgg.prunable_groups()[0].conv)

    def _forward(self, model):
        x = Tensor(np.random.default_rng(5).normal(size=(2, 3, 8, 8))
                   .astype(np.float32))
        # Eval mode: train-mode batch norm renormalises by batch statistics,
        # which would cancel a pure scale fault on the previous layer.
        model.eval()
        return model(x)

    def test_activation_fault_fires_once(self, tiny_vgg):
        handle = plant_numerical_fault(self._conv(tiny_vgg), at_call=1,
                                       mode="activation")
        try:
            first = self._forward(tiny_vgg)
            assert np.all(np.isfinite(first.data))       # call 0: clean
            second = self._forward(tiny_vgg)
            assert np.any(np.isnan(second.data))         # call 1: poisoned
            third = self._forward(tiny_vgg)
            assert np.all(np.isfinite(third.data))       # call 2: clean again
        finally:
            handle.remove()

    def test_gradient_fault_leaves_forward_clean(self, tiny_vgg):
        handle = plant_numerical_fault(self._conv(tiny_vgg), at_call=0,
                                       mode="gradient")
        try:
            out = self._forward(tiny_vgg)
            assert np.all(np.isfinite(out.data))
            loss = cross_entropy(out, np.array([0, 1]))
            assert np.isfinite(float(loss.data))
            loss.backward()
        finally:
            handle.remove()
        grads = [p.grad for _, p in tiny_vgg.named_parameters()
                 if p.grad is not None]
        assert any(not np.all(np.isfinite(g)) for g in grads)

    def test_scale_fault_amplifies(self, tiny_vgg):
        clean = self._forward(tiny_vgg).data
        handle = plant_numerical_fault(self._conv(tiny_vgg), at_call=0,
                                       mode="scale", value=1e6)
        try:
            scaled = self._forward(tiny_vgg).data
        finally:
            handle.remove()
        assert np.max(np.abs(scaled)) > np.max(np.abs(clean))

    def test_unknown_mode_rejected(self, tiny_vgg):
        with pytest.raises(ValueError):
            plant_numerical_fault(self._conv(tiny_vgg), mode="gremlins")


class TestSabotage:
    def test_counts_successes_before_failing(self, tiny_vgg):
        conv = tiny_vgg.get_module(tiny_vgg.prunable_groups()[0].conv)
        calls = []
        with sabotage_method(conv, "select_output_channels", after_calls=1):
            conv.select_output_channels(np.arange(conv.out_channels))
            calls.append("ok")
            with pytest.raises(ChaosError):
                conv.select_output_channels(np.arange(conv.out_channels))
        assert calls == ["ok"]

    def test_original_method_restored_on_exit(self, tiny_vgg):
        conv = tiny_vgg.get_module(tiny_vgg.prunable_groups()[0].conv)
        with sabotage_method(conv, "select_output_channels"):
            pass
        # Outside the context the real method works again.
        conv.select_output_channels(np.arange(conv.out_channels))


class TestFlakyDataset:
    def test_each_item_fails_then_succeeds(self, tiny_dataset):
        flaky = FlakyDataset(tiny_dataset, failures=2)
        with pytest.raises(ChaosError):
            flaky[0]
        with pytest.raises(ChaosError):
            flaky[0]
        image, label = flaky[0]
        assert image.shape == tiny_dataset[0][0].shape
        assert label == tiny_dataset[0][1]

    def test_retry_wrapper_absorbs_faults(self, tiny_dataset):
        wrapped = RetryingDataset(FlakyDataset(tiny_dataset, failures=2),
                                  max_retries=2)
        loader = DataLoader(wrapped, batch_size=16, shuffle=False)
        total = sum(len(labels) for _, labels in loader)
        assert total == len(tiny_dataset)
        assert wrapped.retried == 2 * len(tiny_dataset)

    def test_retry_budget_exhaustion_raises(self, tiny_dataset):
        wrapped = RetryingDataset(FlakyDataset(tiny_dataset, failures=5),
                                  max_retries=2)
        with pytest.raises(DataUnavailableError, match="item 0"):
            wrapped[0]

    def test_on_retry_callback_sees_attempts(self, tiny_dataset):
        seen = []
        wrapped = RetryingDataset(
            FlakyDataset(tiny_dataset, failures=1), max_retries=1,
            on_retry=lambda idx, attempt, exc: seen.append((idx, attempt)))
        wrapped[3]
        assert seen == [(3, 0)]
