"""RetryPolicy: deterministic backoff, exhaustion, exception filtering."""

import numpy as np
import pytest

from repro.resilience import RetryBudgetExhausted, RetryPolicy


class TestSchedule:
    def test_delays_are_deterministic_under_fixed_seed(self):
        a = RetryPolicy(max_attempts=6, jitter=0.25, seed=7)
        b = RetryPolicy(max_attempts=6, jitter=0.25, seed=7)
        assert a.delays() == b.delays()
        assert a.delay(3) == a.delay(3)  # pure function of (policy, attempt)

    def test_different_seeds_give_different_jitter(self):
        a = RetryPolicy(max_attempts=6, jitter=0.25, seed=0)
        b = RetryPolicy(max_attempts=6, jitter=0.25, seed=1)
        assert a.delays() != b.delays()

    def test_exponential_growth_and_cap_without_jitter(self):
        policy = RetryPolicy(max_attempts=6, base_delay=0.1, factor=2.0,
                             max_delay=0.5, jitter=0.0)
        assert policy.delays() == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_jitter_bounded_by_fraction(self):
        policy = RetryPolicy(max_attempts=8, base_delay=0.1, factor=1.0,
                             max_delay=1.0, jitter=0.2, seed=3)
        for delay in policy.delays():
            assert 0.1 <= delay <= 0.1 * 1.2

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy().delay(-1)


class TestCall:
    def test_transient_failure_recovers_with_scheduled_sleeps(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.05, jitter=0.1,
                             seed=2)
        state = {"calls": 0}
        slept = []

        def flaky():
            state["calls"] += 1
            if state["calls"] < 3:
                raise OSError("transient")
            return "ok"

        assert policy.call(flaky, sleep=slept.append) == "ok"
        assert state["calls"] == 3
        assert slept == policy.delays()[:2]

    def test_exhaustion_raises_with_attempts_and_cause(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)

        def always_fails():
            raise OSError("still down")

        with pytest.raises(RetryBudgetExhausted) as info:
            policy.call(always_fails, sleep=lambda _: None)
        assert info.value.attempts == 3
        assert isinstance(info.value.__cause__, OSError)

    def test_non_matching_exception_propagates_immediately(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.0)
        state = {"calls": 0}
        slept = []

        def bug():
            state["calls"] += 1
            raise ValueError("programming error")

        with pytest.raises(ValueError, match="programming error"):
            policy.call(bug, retry_on=(OSError,), sleep=slept.append)
        assert state["calls"] == 1      # never retried
        assert slept == []

    def test_on_retry_observer_sees_every_failed_attempt(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
        seen = []

        def always_fails():
            raise OSError("down")

        with pytest.raises(RetryBudgetExhausted):
            policy.call(always_fails, sleep=lambda _: None,
                        on_retry=lambda attempt, exc: seen.append(attempt))
        assert seen == [0, 1, 2]

    def test_supervision_config_derives_policy(self):
        from repro.parallel import SupervisionConfig
        cfg = SupervisionConfig(max_respawns=4, respawn_delay=0.02,
                                respawn_factor=3.0, respawn_jitter=0.0,
                                seed=9)
        policy = cfg.retry_policy()
        assert policy.max_attempts == 5
        assert policy.max_delay == 1.0  # max(respawn_delay * 8, 1.0)
        assert policy.delays() == pytest.approx([0.02, 0.06, 0.18, 0.54])

    def test_jitter_draw_is_pure_numpy_seeded(self):
        # The jitter must come from a per-attempt seeded rng, not global
        # state: polluting the global rng must not change the schedule.
        policy = RetryPolicy(max_attempts=4, jitter=0.5, seed=11)
        before = policy.delays()
        np.random.seed(12345)
        assert policy.delays() == before
