"""Journal framing, lossless payload codec, and crash-truncation tolerance."""

import json

import numpy as np
import pytest

from repro.resilience import (JournalCorruptError, RunDirectory, RunJournal,
                              decode_payload, encode_payload)


class TestPayloadCodec:
    @pytest.mark.parametrize("dtype", ["float32", "float64", "int64", "bool"])
    def test_array_roundtrip_bit_exact(self, dtype):
        rng = np.random.default_rng(0)
        array = (rng.normal(size=(3, 4, 5)) * 1e-30).astype(dtype)
        out = decode_payload(json.loads(json.dumps(encode_payload(array))))
        assert out.dtype == array.dtype
        assert out.shape == array.shape
        assert np.array_equal(out.view(np.uint8), array.view(np.uint8))

    def test_nan_and_inf_survive(self):
        array = np.array([np.nan, np.inf, -np.inf, 0.0], dtype=np.float64)
        out = decode_payload(json.loads(json.dumps(encode_payload(array))))
        assert np.array_equal(out, array, equal_nan=True)

    def test_nested_structures(self):
        payload = {"a": {"b": [np.float32(1.5), np.int64(3)],
                         "c": np.arange(4)},
                   "d": "text", "e": None}
        out = decode_payload(json.loads(json.dumps(encode_payload(payload))))
        assert out["a"]["b"] == [1.5, 3]
        assert np.array_equal(out["a"]["c"], np.arange(4))
        assert out["d"] == "text" and out["e"] is None

    def test_numpy_scalars_become_python(self):
        out = encode_payload({"x": np.float64(2.0), "y": np.bool_(True)})
        assert type(out["x"]) is float and type(out["y"]) is bool


class TestRunJournal:
    def test_append_and_reload(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl")
        journal.append("run_start", value=1)
        journal.append("iteration", iteration=0)
        reloaded = RunJournal(tmp_path / "j.jsonl")
        assert [r["event"] for r in reloaded.records] == \
            ["run_start", "iteration"]
        assert reloaded.records[0]["seq"] == 0
        assert not reloaded.truncated

    def test_truncated_tail_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = RunJournal(path)
        journal.append("run_start")
        journal.append("iteration", iteration=0)
        # Simulate a crash mid-append: cut the last line in half.
        raw = path.read_bytes()
        path.write_bytes(raw[:len(raw) - len(raw.splitlines()[-1]) // 2 - 1])
        reloaded = RunJournal(path)
        assert [r["event"] for r in reloaded.records] == ["run_start"]
        assert reloaded.truncated

    def test_bit_flip_detected_by_crc(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = RunJournal(path)
        journal.append("run_start", accuracy=0.75)
        line = path.read_text()
        path.write_text(line.replace("0.75", "0.85"))
        assert RunJournal(path).records == []
        with pytest.raises(JournalCorruptError):
            RunJournal.read(path, strict=True)

    def test_corrupt_line_invalidates_rest(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = RunJournal(path)
        for i in range(3):
            journal.append("iteration", iteration=i)
        lines = path.read_text().splitlines()
        lines[1] = "garbage"
        path.write_text("\n".join(lines) + "\n")
        reloaded = RunJournal(path)
        # Record 2 may describe state built on the lost record 1.
        assert len(reloaded.records) == 1

    def test_events_filter(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl")
        journal.append("run_start")
        journal.append("iteration", iteration=0)
        journal.append("iteration", iteration=1)
        assert len(journal.events("iteration")) == 2
        assert journal.last_event("iteration")["iteration"] == 1
        assert journal.last_event("run_end") is None


class TestRunDirectory:
    def test_layout(self, tmp_path):
        rundir = RunDirectory(tmp_path / "run")
        assert (tmp_path / "run" / "checkpoints").is_dir()
        assert rundir.checkpoint_path("baseline").name == "baseline.npz"
        assert RunDirectory.iteration_tag(7) == "iter_0007"

    def test_missing_dir_rejected_without_create(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            RunDirectory(tmp_path / "absent", create=False)
