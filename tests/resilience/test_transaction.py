"""Transactional surgery: mid-mutation faults roll back completely."""

import numpy as np
import pytest

from repro.core import prune_groups
from repro.resilience import (ChaosError, ModelSnapshot, sabotage_method,
                              transactional)
from repro.tensor import Tensor, no_grad


def forward(model):
    x = Tensor(np.random.default_rng(11).normal(size=(2, 3, 8, 8))
               .astype(np.float32))
    model.eval()
    with no_grad():
        return model(x).data


class TestModelSnapshot:
    def test_matches_after_capture(self, tiny_vgg):
        assert ModelSnapshot(tiny_vgg).matches(tiny_vgg)

    def test_restore_after_weight_change(self, tiny_vgg):
        snap = ModelSnapshot(tiny_vgg)
        conv = tiny_vgg.get_module(tiny_vgg.prunable_groups()[0].conv)
        conv.weight.data = conv.weight.data + 1.0
        assert not snap.matches(tiny_vgg)
        snap.restore(tiny_vgg)
        assert snap.matches(tiny_vgg)

    def test_restore_after_shape_change(self, tiny_vgg):
        # load_state_dict cannot undo surgery (shape-strict); the snapshot
        # must — that is its whole reason to exist.
        snap = ModelSnapshot(tiny_vgg)
        before = forward(tiny_vgg)
        groups = tiny_vgg.prunable_groups()
        prune_groups(tiny_vgg, groups, {groups[0].name: np.array([0, 1])})
        assert not snap.matches(tiny_vgg)
        snap.restore(tiny_vgg)
        assert snap.matches(tiny_vgg)
        np.testing.assert_array_equal(forward(tiny_vgg), before)

    def test_restore_keeps_tensor_identity(self, tiny_vgg):
        # Optimizers hold references to the parameter tensors; restore must
        # write into those same objects, not swap in new ones.
        conv = tiny_vgg.get_module(tiny_vgg.prunable_groups()[0].conv)
        ref = conv.weight
        snap = ModelSnapshot(tiny_vgg)
        conv.weight.data = conv.weight.data * 2.0
        snap.restore(tiny_vgg)
        assert tiny_vgg.get_module(
            tiny_vgg.prunable_groups()[0].conv).weight is ref


class TestTransactionalSurgery:
    def test_clean_surgery_commits(self, tiny_vgg):
        groups = tiny_vgg.prunable_groups()
        record = prune_groups(tiny_vgg, groups,
                              {groups[0].name: np.array([0, 1])})
        assert record.num_removed > 0
        assert tiny_vgg.get_module(groups[0].conv).out_channels == 2

    def test_mid_surgery_fault_rolls_back(self, tiny_vgg):
        groups = tiny_vgg.prunable_groups()
        snap = ModelSnapshot(tiny_vgg)
        before = forward(tiny_vgg)
        group = groups[0]
        victim = tiny_vgg.get_module(group.consumers[0].path)
        # after_calls=0: the producer is already shrunk when this fires.
        with sabotage_method(victim, "select_input_channels"):
            with pytest.raises(ChaosError):
                prune_groups(tiny_vgg, groups,
                             {group.name: np.array([0, 1])})
        assert snap.matches(tiny_vgg)
        np.testing.assert_array_equal(forward(tiny_vgg), before)

    def test_multi_group_fault_rolls_back_earlier_groups(self, tiny_vgg):
        groups = tiny_vgg.prunable_groups()
        snap = ModelSnapshot(tiny_vgg)
        keep = {groups[0].name: np.array([0, 1]),
                groups[1].name: np.array([0, 1, 2])}
        victim = tiny_vgg.get_module(groups[1].conv)
        with sabotage_method(victim, "select_output_channels"):
            with pytest.raises(ChaosError):
                prune_groups(tiny_vgg, groups, keep)
        # Group 0 was fully pruned before the fault — it must revert too.
        assert snap.matches(tiny_vgg)

    def test_validation_failure_mutates_nothing(self, tiny_vgg):
        groups = tiny_vgg.prunable_groups()
        snap = ModelSnapshot(tiny_vgg)
        with pytest.raises(ValueError):
            prune_groups(tiny_vgg, groups,
                         {groups[0].name: np.array([], dtype=int)})
        assert snap.matches(tiny_vgg)

    def test_transactional_reraises_original_error(self, tiny_vgg):
        class Boom(RuntimeError):
            pass

        with pytest.raises(Boom):
            with transactional(tiny_vgg):
                conv = tiny_vgg.get_module(
                    tiny_vgg.prunable_groups()[0].conv)
                conv.weight.data = conv.weight.data * 0.0
                raise Boom("mid-mutation")
        snap_val = tiny_vgg.get_module(
            tiny_vgg.prunable_groups()[0].conv).weight.data
        assert not np.all(snap_val == 0.0)
