"""Replicated serving tier: replica processes, health-probed router.

Three layers, cheapest first:

* pure-unit coverage of :class:`ReplicaSpec` / :class:`ReplicaConfig`
  and the router's ``probe_scan`` (fake peers, no sockets, no clock);
* :class:`ReplicaSet` process lifecycle — spawn, ledgered artifacts,
  kill/respawn within budget, budget exhaustion;
* end-to-end through a real server + fleet: bitwise answers, SIGKILL
  failover, degrade-to-local with ``stop_reason``, rolling deploy.
"""

import time
from pathlib import Path

import numpy as np

from repro.infer import compile_model
from repro.io import load_model, save_model
from repro.models import build_model
from repro.parallel import reaper
from repro.serve import (ModelRegistry, ReplicaConfig, ReplicaRouter,
                         ReplicaSet, ReplicaSpec, ServeConfig, ServerThread)
from repro.serve.client import ServeClient
from repro.verify.invariants import perturb_batchnorm_stats


def _tiny_model(seed=0, pruned=False):
    model = build_model("vgg11", num_classes=3, image_size=8, width=0.125,
                        seed=seed)
    perturb_batchnorm_stats(model, seed=seed)
    if pruned:
        from repro.infer.bench import _prune_model
        _prune_model(model, seed)
    model.eval()
    return model


def _checkpoint(tmp_path, name="m.npz", seed=0, pruned=False) -> Path:
    path = Path(tmp_path) / name
    save_model(_tiny_model(seed, pruned=pruned), path)
    return path


def _ref_engine(checkpoint, seed=0):
    model = load_model(str(checkpoint))
    model.eval()
    probe = np.random.default_rng(seed).normal(
        size=(4, 3, 8, 8)).astype(np.float32)
    return compile_model(model, probe, max_batch=1)


def _poll(predicate, timeout_s=15.0, interval_s=0.01) -> bool:
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() >= deadline:
            return False
        time.sleep(interval_s)
    return True


class TestSpecAndConfig:
    def test_spec_ref_and_deploy_payload(self):
        spec = ReplicaSpec("m", "v2", checkpoint="/tmp/m.npz")
        assert spec.ref == "m@v2"
        payload = spec.deploy_payload()
        assert payload["op"] == "deploy"
        assert payload["name"] == "m"
        assert payload["version"] == "v2"
        assert payload["checkpoint"] == "/tmp/m.npz"

    def test_retry_policy_is_bounded_by_the_respawn_budget(self):
        config = ReplicaConfig(max_respawns=2, respawn_base_delay_s=0.5,
                               respawn_max_delay_s=1.0)
        policy = config.retry_policy()
        assert policy.max_attempts == 3          # budget + the first spawn
        assert policy.delay(5) <= 1.0 * 1.1      # capped (plus jitter)


class _FakeWriter:
    def __init__(self):
        self.lines = []

    def is_closing(self):
        return False

    def write(self, data):
        self.lines.append(data)


class _FakeHandle:
    def __init__(self, replica_id):
        self.replica_id = replica_id
        self.generation = 1
        self.restarts = 0
        self.kill_reason = None


class _FakeSet:
    """Just enough ReplicaSet surface for the router's probe machinery."""

    def __init__(self, config, seats=2):
        self.config = config
        self.handles = [_FakeHandle(i) for i in range(seats)]
        self.killed = []

    def kill(self, replica_id, reason, kind="hang"):
        self.killed.append((replica_id, kind))


class TestProbeScanDeterministic:
    """probe_scan(now) is pure state-machine: drive it with bare floats."""

    def _router(self, **config_kw):
        config_kw.setdefault("probe_timeout_s", 1.0)
        fake = _FakeSet(ReplicaConfig(**config_kw))
        router = ReplicaRouter(fake, [])
        for peer in router._peers:
            peer.alive = True
            peer.routable = True
            peer.writer = _FakeWriter()
        return router, fake

    def test_scan_sends_one_ping_per_routable_peer(self):
        router, fake = self._router()
        router._peers[1].routable = False
        router.probe_scan(now=100.0)
        assert router._peers[0].probe_rid is not None
        assert router._peers[0].probe_sent_at == 100.0
        assert len(router._peers[0].writer.lines) == 1
        assert b'"ping"' in router._peers[0].writer.lines[0]
        assert router._peers[1].probe_rid is None   # unroutable: skipped

    def test_answered_probe_closes_the_loop_and_rearms(self):
        router, fake = self._router()
        peer = router._peers[0]
        router.probe_scan(now=0.0)
        rid = peer.probe_rid
        router._on_reply(peer, {"rid": rid, "pong": True})
        assert peer.probe_rid is None
        assert peer.breaker.state == "closed"
        router.probe_scan(now=0.5)                  # re-arms immediately
        assert peer.probe_rid is not None
        assert peer.probe_rid != rid
        assert fake.killed == []

    def test_unanswered_probe_past_timeout_kills_as_hang(self):
        router, fake = self._router(probe_timeout_s=1.0)
        peer = router._peers[0]
        router._peers[1].routable = False       # isolate peer 0
        router.probe_scan(now=0.0)
        router.probe_scan(now=0.999)                # within budget: waits
        assert fake.killed == []
        router.probe_scan(now=1.0)                  # at the limit: hang
        assert fake.killed == [(0, "hang")]
        assert peer.breaker.consecutive_failures == 1

    def test_in_flight_probe_is_not_doubled(self):
        router, fake = self._router(probe_timeout_s=10.0)
        peer = router._peers[0]
        router.probe_scan(now=0.0)
        router.probe_scan(now=1.0)
        assert len(peer.writer.lines) == 1          # one outstanding ping


class TestReplicaSetLifecycle:
    def _config(self, tmp_path, **kw):
        kw.setdefault("replicas", 2)
        kw.setdefault("max_batch", 1)
        kw.setdefault("respawn_base_delay_s", 0.01)
        kw.setdefault("respawn_max_delay_s", 0.02)
        return ReplicaConfig(**kw)

    def test_spawn_registers_artifacts_and_close_reclaims(self, tmp_path):
        rset = ReplicaSet(self._config(tmp_path))
        try:
            assert _poll(lambda: all(
                h.socket_path.exists() and h.pid_path.exists()
                for h in rset.handles))
            entries = {e for e in reaper.live_segments()
                       if e.startswith("path:")}
            # Socket dir + per-replica socket and pid file, all ledgered
            # so a crashed parent's sweep can reclaim them.
            assert len(entries) >= 1 + 2 * len(rset.handles)
            paths = [h.socket_path for h in rset.handles]
        finally:
            rset.close()
        assert all(not p.exists() for p in paths)
        assert not any(e.startswith("path:") for e in reaper.live_segments())
        assert all(not h.alive for h in rset.handles)

    def test_kill_and_respawn_replaces_the_seat(self, tmp_path):
        rset = ReplicaSet(self._config(tmp_path))
        try:
            assert _poll(lambda: rset.handles[0].socket_path.exists())
            old_generation = rset.handles[0].generation
            rset.kill(0, reason="test kill", kind="crash")
            assert _poll(lambda: not rset.handles[0].alive)
            assert rset.respawn(0) is True
            handle = rset.handles[0]
            assert handle.generation > old_generation
            assert _poll(lambda: handle.alive and
                         handle.socket_path.exists())
            assert rset.respawns_used == 1
            kinds = [e.kind for e in rset.events]
            assert "crash" in kinds and "respawn" in kinds
        finally:
            rset.close()

    def test_respawn_budget_exhaustion_emits_degrade(self, tmp_path):
        rset = ReplicaSet(self._config(tmp_path, max_respawns=0))
        try:
            rset.kill(0, reason="test kill", kind="crash")
            assert _poll(lambda: not rset.handles[0].alive)
            assert rset.respawn(0) is False
            assert rset.respawns_used == 0
            assert "degrade" in [e.kind for e in rset.events]
        finally:
            rset.close()


class TestReplicatedServing:
    """End-to-end: client -> server -> router -> replica fleet."""

    def _stack(self, tmp_path, **config_kw):
        checkpoint = _checkpoint(tmp_path)
        config_kw.setdefault("replicas", 2)
        config_kw.setdefault("max_batch", 1)
        config_kw.setdefault("respawn_base_delay_s", 0.01)
        config_kw.setdefault("probe_interval_s", 0.1)
        rset = ReplicaSet(ReplicaConfig(**config_kw))
        router = ReplicaRouter(
            rset, [ReplicaSpec("m", "v1", checkpoint=str(checkpoint))])
        registry = ModelRegistry(max_batch=1)
        registry.deploy("m", "v1", checkpoint=str(checkpoint), seed=0)
        return checkpoint, rset, router, registry

    def test_replicated_answers_are_bitwise_and_attributed(self, tmp_path):
        checkpoint, rset, router, registry = self._stack(tmp_path)
        reference = _ref_engine(checkpoint)
        rng = np.random.default_rng(7)
        try:
            with registry, ServerThread(registry, ServeConfig(),
                                        router=router) as srv:
                with ServeClient("127.0.0.1", srv.port) as client:
                    for _ in range(6):
                        sample = rng.normal(size=(3, 8, 8)).astype(
                            np.float32)
                        response = client.infer_verbose("m", sample)
                        assert response["served_by"].startswith("replica:")
                        assert response["model"] == "m@v1"
                        out = np.asarray(response["output"], np.float32)
                        assert np.array_equal(
                            out, reference.run(sample[None])[0])
                    stats = client.stats()
                fleet = stats["replicas"]
                assert fleet["degraded"] is False
                assert fleet["fleet"]["counters"]["completed"] == 6
                assert stats["counters"]["completed"] == 6
        finally:
            rset.close()

    def test_sigkill_failover_serves_every_request_once(self, tmp_path):
        checkpoint, rset, router, registry = self._stack(
            tmp_path, engine_delay_ms=5.0)
        reference = _ref_engine(checkpoint)
        rng = np.random.default_rng(11)
        answered = []
        try:
            with registry, ServerThread(registry, ServeConfig(),
                                        router=router) as srv:
                with ServeClient("127.0.0.1", srv.port, timeout=60) as c:
                    for i in range(8):
                        if i == 2:
                            rset.handles[0].proc.kill()
                        sample = rng.normal(size=(3, 8, 8)).astype(
                            np.float32)
                        answered.append((sample, c.infer("m", sample)))
                    stats = c.stats()
        finally:
            rset.close()
        assert len(answered) == 8
        for sample, out in answered:
            assert np.array_equal(out, reference.run(sample[None])[0])
        assert stats["counters"]["completed"] == 8       # exactly once
        assert "respawn" in [e.kind for e in rset.events]
        assert stats["replicas"]["degraded"] is False

    def test_degrade_to_local_sets_stop_reason(self, tmp_path):
        checkpoint, rset, router, registry = self._stack(
            tmp_path, max_respawns=0)
        reference = _ref_engine(checkpoint)
        rng = np.random.default_rng(13)
        try:
            with registry, ServerThread(registry, ServeConfig(),
                                        router=router) as srv:
                with ServeClient("127.0.0.1", srv.port, timeout=60) as c:
                    sample = rng.normal(size=(3, 8, 8)).astype(np.float32)
                    first = c.infer_verbose("m", sample)
                    assert first["served_by"].startswith("replica:")

                    rset.handles[0].proc.kill()
                    assert _poll(lambda: router.degraded)
                    after = c.infer_verbose("m", sample)
                    # Served, correctly, by the in-process fallback path.
                    assert not after["served_by"].startswith("replica:")
                    assert np.array_equal(
                        np.asarray(after["output"], np.float32),
                        reference.run(sample[None])[0])
                    stats = c.stats()
                assert stats["lifecycle"]["replicas_degraded"] is True
                assert stats["lifecycle"]["stop_reason"] == \
                    "replicas-degraded"
        finally:
            rset.close()

    def test_rolling_deploy_moves_the_whole_fleet(self, tmp_path):
        checkpoint, rset, router, registry = self._stack(tmp_path)
        ckpt_v2 = _checkpoint(tmp_path, name="v2.npz", pruned=True)
        reference_v2 = _ref_engine(ckpt_v2)
        rng = np.random.default_rng(17)
        try:
            with registry, ServerThread(registry, ServeConfig(),
                                        router=router) as srv:
                with ServeClient("127.0.0.1", srv.port, timeout=60) as c:
                    response = c.request(
                        {"op": "swap", "name": "m", "version": "v2",
                         "checkpoint": str(ckpt_v2)})
                    assert response["rolling"]["ok"] is True
                    assert sorted(response["rolling"]["updated"]) == [0, 1]
                    sample = rng.normal(size=(3, 8, 8)).astype(np.float32)
                    after = c.infer_verbose("m", sample)
                    assert after["model"] == "m@v2"
                    assert np.array_equal(
                        np.asarray(after["output"], np.float32),
                        reference_v2.run(sample[None])[0])
                    stats = c.stats()
                models = {rid: entry.get("models", {}).get("m")
                          for rid, entry in
                          stats["replicas"]["per_replica"].items()}
                assert models == {"0": "m@v2", "1": "m@v2"}
                assert stats["models"]["m"]["active"] == "m@v2"
                assert "rolling" in [e.kind for e in rset.events]
        finally:
            rset.close()
