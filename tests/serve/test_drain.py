"""Graceful drain: zero drops, explicit ``draining`` answers, idempotence.

Acceptance criterion (b): every request accepted before the drain began
is answered (bitwise equal to its row of the batch the engine actually
executed — the ``on_batch`` trace idiom from the e2e tests), requests
arriving during the drain get an explicit ``draining`` error, and
nothing is dropped. Determinism comes from a gated engine: in-flight
requests are parked *inside* the engine until the test releases them, so
"drain with work in flight" is a constructed state, not a race.
"""

import threading
import time

import numpy as np
import pytest

from repro.models import build_model
from repro.serve import ModelRegistry, SheddingConfig
from repro.serve.client import Draining, ServeClient
from repro.serve.server import ServeConfig, ServerThread
from repro.verify.invariants import perturb_batchnorm_stats


def _tiny_model(seed=0):
    model = build_model("vgg11", num_classes=3, image_size=8, width=0.125,
                        seed=seed)
    perturb_batchnorm_stats(model, seed=seed)
    model.eval()
    return model


class _GatedEngine:
    def __init__(self, engine):
        self._engine = engine
        self.max_batch = engine.max_batch
        self.release = threading.Event()

    def run(self, x):
        self.release.wait(timeout=30)
        return self._engine.run(x)


class _BatchTrace:
    """Record every executed batch row, keyed by its sample bytes."""

    def __init__(self):
        self._lock = threading.Lock()
        self.rows = {}

    def __call__(self, name, version, batch, outputs):
        with self._lock:
            for sample, row in zip(batch, outputs):
                self.rows[np.ascontiguousarray(sample).tobytes()] = \
                    np.array(row, copy=True)


def _poll(predicate, timeout_s=10.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


class TestGracefulDrain:
    def test_drain_answers_all_accepted_and_refuses_new(self):
        trace = _BatchTrace()
        registry = ModelRegistry(
            max_batch=8, shedding=SheddingConfig(max_pending=64,
                                                 p99_budget_ms=None),
            on_batch=trace)
        registry.deploy("m", "v1", model=_tiny_model(),
                        input_shape=(3, 8, 8))
        _, version = registry.resolve("m")
        gate = _GatedEngine(version.engine)
        version.runner.engine = gate

        rng = np.random.default_rng(7)
        samples = rng.normal(size=(3, 3, 8, 8)).astype(np.float32)
        results, errors = {}, []
        lock = threading.Lock()

        def inflight_client(idx):
            try:
                with ServeClient("127.0.0.1", port) as client:
                    out = client.infer("m", samples[idx])
                with lock:
                    results[idx] = out
            except Exception as exc:  # noqa: BLE001 - collected for assert
                with lock:
                    errors.append(repr(exc))

        with registry, ServerThread(registry, ServeConfig()) as srv:
            port = srv.port
            workers = [threading.Thread(target=inflight_client, args=(i,))
                       for i in range(3)]
            for w in workers:
                w.start()
            # All three are accepted and parked inside the gated engine.
            assert _poll(lambda: srv.server.inflight >= 3)

            # This connection is established (one round trip proves the
            # server accepted it) before the listener closes; its next
            # request lands mid-drain.
            late = ServeClient("127.0.0.1", port)
            assert late.ping()
            drainer = threading.Thread(target=srv.drain)
            drainer.start()
            assert _poll(lambda: srv.server.draining)

            with pytest.raises(Draining):
                late.infer("m", samples[0])

            gate.release.set()
            drainer.join(timeout=30)
            assert not drainer.is_alive()
            for w in workers:
                w.join(timeout=10)

            stats = srv.server.stats()

        assert errors == []
        assert len(results) == 3                # zero drops
        for idx, out in results.items():
            key = samples[idx].tobytes()
            assert key in trace.rows, "request never reached the engine"
            np.testing.assert_array_equal(out, trace.rows[key])
        assert stats["counters"]["completed"] == 3
        assert stats["reject_reasons"].get("draining", 0) == 1
        assert stats["lifecycle"]["draining"] is True
        assert stats["lifecycle"]["inflight"] == 0
        late.close()

    def test_drained_listener_refuses_new_connections(self):
        registry = ModelRegistry(shedding=SheddingConfig(p99_budget_ms=None))
        registry.deploy("m", "v1", model=_tiny_model(),
                        input_shape=(3, 8, 8))
        with registry, ServerThread(registry, ServeConfig()) as srv:
            srv.drain()
            with pytest.raises(OSError):
                ServeClient("127.0.0.1", srv.port)

    def test_drain_is_idempotent(self):
        registry = ModelRegistry(shedding=SheddingConfig(p99_budget_ms=None))
        registry.deploy("m", "v1", model=_tiny_model(),
                        input_shape=(3, 8, 8))
        with registry, ServerThread(registry, ServeConfig()) as srv:
            srv.drain()
            srv.drain()         # second aclose is a guarded no-op
            # And ServerThread.stop()'s own aclose after the context
            # exits must not raise either (covered by leaving the block).

    def test_drain_with_no_traffic_completes_immediately(self):
        registry = ModelRegistry(shedding=SheddingConfig(p99_budget_ms=None))
        registry.deploy("m", "v1", model=_tiny_model(),
                        input_shape=(3, 8, 8))
        with registry, ServerThread(registry, ServeConfig()) as srv:
            start = time.monotonic()
            srv.drain()
            # An idle server does not sit out its grace window.
            assert time.monotonic() - start < 5.0
            assert srv.server.draining
            assert srv.server.inflight == 0
