"""End-to-end over a real socket: equivalence, shedding, hot-swap, stats.

The bitwise test does not assume batch-composition invariance (BLAS
reductions differ between a batch of 1 and a batch of 8). Instead the
registry's ``on_batch`` hook records every batch the engine *actually
executed*; each response is then required to be bitwise equal to its row
of that trace. JSON float round-tripping is exact for float32, so any
difference would be a real serving bug, not formatting noise.
"""

import threading
import time

import numpy as np
import pytest

from repro.models import build_model
from repro.serve import ModelRegistry, SheddingConfig
from repro.serve.client import Overloaded, ServeClient, ServerError
from repro.serve.server import ServeConfig, ServerThread
from repro.tensor import Tensor, inference_mode
from repro.verify.invariants import perturb_batchnorm_stats


def _tiny_model(seed=0):
    model = build_model("vgg11", num_classes=3, image_size=8, width=0.125,
                        seed=seed)
    perturb_batchnorm_stats(model, seed=seed)
    model.eval()
    return model


class _BatchTrace:
    """Thread-safe record of every executed batch, keyed by sample bytes."""

    def __init__(self):
        self._lock = threading.Lock()
        self.rows: dict[bytes, np.ndarray] = {}
        self.batch_sizes: list[int] = []

    def __call__(self, name, version, batch, outputs):
        with self._lock:
            self.batch_sizes.append(len(batch))
            for sample, row in zip(batch, outputs):
                self.rows[np.ascontiguousarray(sample).tobytes()] = \
                    np.array(row, copy=True)


@pytest.fixture(scope="module")
def service():
    trace = _BatchTrace()
    registry = ModelRegistry(
        max_batch=8, shedding=SheddingConfig(max_pending=256,
                                             p99_budget_ms=None),
        on_batch=trace)
    model = _tiny_model()
    registry.deploy("m", "v1", model=model, input_shape=(3, 8, 8))
    with registry, ServerThread(registry, ServeConfig()) as srv:
        yield {"port": srv.port, "trace": trace, "model": model,
               "registry": registry}


class TestProtocol:
    def test_ping_and_models(self, service):
        with ServeClient("127.0.0.1", service["port"]) as client:
            assert client.ping()
            models = client.models()
            assert models["m"]["active"] == "m@v1"
            assert "admission" in models["m"]

    def test_single_request_round_trip(self, service):
        sample = np.random.default_rng(0).normal(
            size=(3, 8, 8)).astype(np.float32)
        with ServeClient("127.0.0.1", service["port"]) as client:
            response = client.infer_verbose("m", sample)
        assert response["ok"] and response["model"] == "m@v1"
        assert response["served_by"] in ("batch", "eager")
        assert response["latency_ms"] >= 0
        with inference_mode():
            want = service["model"](Tensor(sample[None])).data[0]
        np.testing.assert_allclose(
            np.asarray(response["output"], np.float32), want,
            rtol=1e-4, atol=1e-5)

    def test_unknown_model_is_a_named_error(self, service):
        with ServeClient("127.0.0.1", service["port"]) as client:
            with pytest.raises(ServerError) as excinfo:
                client.infer("ghost", np.zeros((3, 8, 8), np.float32))
            assert excinfo.value.error == "no-such-model"

    def test_bad_input_shape_is_a_bad_request(self, service):
        with ServeClient("127.0.0.1", service["port"]) as client:
            with pytest.raises(ServerError) as excinfo:
                client.infer("m", np.zeros((5, 5), np.float32))
            assert excinfo.value.error == "bad-request"
            # The connection survives a bad request.
            assert client.ping()

    def test_malformed_json_and_unknown_op(self, service):
        with ServeClient("127.0.0.1", service["port"]) as client:
            client._file.write(b"this is not json\n")
            client._file.flush()
            import json
            response = json.loads(client._file.readline())
            assert response == {"ok": False, "error": "bad-request",
                                "message": response["message"]}
            with pytest.raises(ServerError) as excinfo:
                client.request({"op": "selfdestruct"})
            assert excinfo.value.error == "unknown-op"

    def test_swap_requires_all_fields(self, service):
        with ServeClient("127.0.0.1", service["port"]) as client:
            with pytest.raises(ServerError) as excinfo:
                client.request({"op": "swap", "name": "m"})
            assert excinfo.value.error == "bad-request"


class TestConcurrentEquivalence:
    def test_every_response_is_bitwise_equal_to_its_executed_batch_row(
            self, service):
        connections, per_connection = 6, 8
        rng = np.random.default_rng(42)
        samples = rng.normal(size=(connections, per_connection, 3, 8, 8)
                             ).astype(np.float32)
        results = {}
        errors = []
        lock = threading.Lock()

        def run_client(cid):
            try:
                with ServeClient("127.0.0.1", service["port"]) as client:
                    for i in range(per_connection):
                        response = client.infer_verbose("m", samples[cid, i])
                        with lock:
                            results[(cid, i)] = (
                                np.asarray(response["output"], np.float32),
                                response["served_by"])
            except Exception as exc:  # noqa: BLE001 - collected for assert
                with lock:
                    errors.append(repr(exc))

        threads = [threading.Thread(target=run_client, args=(c,))
                   for c in range(connections)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not errors
        assert len(results) == connections * per_connection
        trace = service["trace"]
        for (cid, i), (output, served_by) in results.items():
            assert served_by == "batch"
            key = samples[cid, i].tobytes()
            assert key in trace.rows, "request never reached the engine"
            np.testing.assert_array_equal(output, trace.rows[key])

    def test_stats_reflect_the_traffic(self, service):
        with ServeClient("127.0.0.1", service["port"]) as client:
            stats = client.stats()
        counters = stats["counters"]
        assert counters["completed"] >= 48
        # No engine faults: nothing fell back to the serial eager path.
        # (The "errors" counter is not asserted zero here — the protocol
        # tests above deliberately send one malformed infer request.)
        assert counters["fallbacks"] == 0
        assert stats["latency"]["p50_ms"] is not None
        assert stats["latency"]["p99_ms"] is not None
        assert stats["models"]["m"]["window"]["window_s"] > 0
        assert stats["models"]["m"]["admission"]["pending"] == 0


class _SlowEngine:
    def __init__(self, engine, delay_s):
        self._engine = engine
        self._delay = delay_s
        self.max_batch = engine.max_batch

    def run(self, x):
        time.sleep(self._delay)
        return self._engine.run(x)


class TestOverload:
    def test_shedding_is_explicit_bounded_and_loss_free(self):
        registry = ModelRegistry(
            max_batch=4, shedding=SheddingConfig(max_pending=3,
                                                 p99_budget_ms=None))
        model = _tiny_model()
        with registry:
            registry.deploy("m", "v1", model=model, input_shape=(3, 8, 8))
            _, version = registry.resolve("m")
            version.runner.engine = _SlowEngine(version.engine, 0.02)

            outcomes = {"ok": 0, "shed": 0, "error": 0}
            lock = threading.Lock()

            def hammer(wid):
                rng = np.random.default_rng(wid)
                local = {"ok": 0, "shed": 0, "error": 0}
                with ServeClient("127.0.0.1", port) as client:
                    for _ in range(5):
                        sample = rng.normal(size=(3, 8, 8)).astype(np.float32)
                        try:
                            client.infer("m", sample)
                            local["ok"] += 1
                        except Overloaded as exc:
                            assert exc.reason == "queue-full"
                            local["shed"] += 1
                        except ServerError:
                            local["error"] += 1
                with lock:
                    for k in outcomes:
                        outcomes[k] += local[k]

            with ServerThread(registry, ServeConfig()) as srv:
                port = srv.port
                threads = [threading.Thread(target=hammer, args=(i,))
                           for i in range(6)]    # 2x the admission bound
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                stats = srv.server.stats()

        assert outcomes["error"] == 0
        assert outcomes["ok"] + outcomes["shed"] == 30   # nothing vanished
        assert outcomes["shed"] > 0
        assert stats["reject_reasons"].get("queue-full", 0) == \
            outcomes["shed"]


class TestOversizedLines:
    """A request line over ``max_line_bytes`` is answered, not dropped.

    Before PR 7 the server let ``readline`` blow up the connection and
    the client saw a bare EOF. Now the oversized line is consumed, the
    client gets an explicit ``bad-request``/``line-too-long``, and the
    same connection keeps serving.
    """

    @pytest.fixture()
    def small_limit_service(self):
        registry = ModelRegistry(
            max_batch=8, shedding=SheddingConfig(p99_budget_ms=None))
        registry.deploy("m", "v1", model=_tiny_model(),
                        input_shape=(3, 8, 8))
        with registry, ServerThread(
                registry, ServeConfig(max_line_bytes=4096)) as srv:
            yield srv

    def test_oversized_line_gets_explicit_error_and_survives(
            self, small_limit_service):
        import json
        srv = small_limit_service
        with ServeClient("127.0.0.1", srv.port) as client:
            client._file.write(b"x" * 20_000 + b"\n")
            client._file.flush()
            response = json.loads(client._file.readline())
            assert response["ok"] is False
            assert response["error"] == "bad-request"
            assert response["reason"] == "line-too-long"
            # The connection resynchronised on the newline: later
            # requests on the same socket are served normally.
            assert client.ping()
            sample = np.zeros((3, 8, 8), dtype=np.float32)
            assert client.infer("m", sample).shape == (3,)

    def test_interleaved_oversized_lines_do_not_poison_requests(
            self, small_limit_service):
        import json
        srv = small_limit_service
        with ServeClient("127.0.0.1", srv.port) as client:
            for _ in range(3):
                client._file.write(b"y" * 10_000 + b"\n")
                client._file.flush()
                response = json.loads(client._file.readline())
                assert response["reason"] == "line-too-long"
                assert client.ping()

    def test_oversized_line_counts_as_received(self, small_limit_service):
        import json
        srv = small_limit_service
        with ServeClient("127.0.0.1", srv.port) as client:
            before = client.stats()["counters"]["received"]
            client._file.write(b"z" * 9_000 + b"\n")
            client._file.flush()
            json.loads(client._file.readline())
            after = client.stats()["counters"]["received"]
        assert after == before + 2          # the bad line + one stats call


class TestDrillsAsTests:
    """The verify drills double as the heavyweight e2e scenarios."""

    def test_shed_drill_passes(self):
        from repro.serve.drills import _drill_serve_shed
        result = _drill_serve_shed(seed=0)
        assert result.passed, result.failures

    def test_hot_swap_drill_passes(self):
        from repro.serve.drills import _drill_serve_swap
        result = _drill_serve_swap(seed=0)
        assert result.passed, result.failures

    def test_drain_drill_passes(self):
        from repro.serve.drills import _drill_serve_drain
        result = _drill_serve_drain(seed=0)
        assert result.passed, result.failures

    def test_restart_drill_passes(self):
        from repro.serve.drills import _drill_serve_restart
        result = _drill_serve_restart(seed=0)
        assert result.passed, result.failures
