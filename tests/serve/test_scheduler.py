"""Adaptive batching window: exact trajectories, no threads, no clock."""

import pytest

from repro.serve import AdaptiveWindow, WindowConfig


def _config(**kw):
    base = dict(min_window=0.001, max_window=0.008, gain=2.0,
                widen_above=0.5, shrink_below=0.25, ewma_alpha=1.0)
    base.update(kw)
    return WindowConfig(**base)


class TestWindowConfig:
    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            WindowConfig(min_window=0.01, max_window=0.001)
        with pytest.raises(ValueError):
            WindowConfig(min_window=0.0)

    def test_rejects_inverted_thresholds(self):
        with pytest.raises(ValueError):
            WindowConfig(widen_above=0.2, shrink_below=0.5)

    def test_rejects_bad_gain_and_alpha(self):
        with pytest.raises(ValueError):
            WindowConfig(gain=1.0)
        with pytest.raises(ValueError):
            WindowConfig(ewma_alpha=0.0)


class TestAdaptiveWindow:
    def test_starts_at_min_window_by_default(self):
        window = AdaptiveWindow(_config(), max_batch=8)
        assert window.current() == 0.001
        assert window.fill == 0.0

    def test_initial_window_is_clamped_into_bounds(self):
        window = AdaptiveWindow(_config(initial_window=1.0), max_batch=8)
        assert window.current() == 0.008
        window = AdaptiveWindow(_config(initial_window=1e-9), max_batch=8)
        assert window.current() == 0.001

    def test_full_batches_widen_to_the_cap_exactly(self):
        # alpha=1 → the EWMA is just the last fill; full batches widen
        # multiplicatively each step: 1 → 2 → 4 → 8 ms, then hold.
        window = AdaptiveWindow(_config(), max_batch=8)
        trajectory = [window.observe_batch(8) for _ in range(5)]
        assert trajectory == [0.002, 0.004, 0.008, 0.008, 0.008]
        assert window.adjustments == {"widened": 3, "shrunk": 0}

    def test_singleton_batches_shrink_to_the_floor_exactly(self):
        window = AdaptiveWindow(_config(initial_window=0.008), max_batch=8)
        trajectory = [window.observe_batch(1) for _ in range(5)]
        assert trajectory == [0.004, 0.002, 0.001, 0.001, 0.001]
        assert window.adjustments == {"widened": 0, "shrunk": 3}

    def test_mid_band_fill_holds_the_window_steady(self):
        window = AdaptiveWindow(_config(initial_window=0.004), max_batch=8)
        for _ in range(10):
            assert window.observe_batch(3) == 0.004   # fill 0.375: in band
        assert window.adjustments == {"widened": 0, "shrunk": 0}

    def test_ewma_smooths_the_fill_fraction(self):
        window = AdaptiveWindow(_config(ewma_alpha=0.4), max_batch=4)
        window.observe_batch(4)                        # fill := 1.0
        window.observe_batch(1)                        # 0.4*0.25 + 0.6*1.0
        assert window.fill == pytest.approx(0.7)
        # Still above widen_above: one noisy singleton must not shrink.
        assert window.adjustments["shrunk"] == 0

    def test_oversized_batch_clamps_fill_to_one(self):
        window = AdaptiveWindow(_config(), max_batch=4)
        window.observe_batch(100)
        assert window.fill == 1.0

    def test_snapshot_round_trips_the_state(self):
        window = AdaptiveWindow(_config(), max_batch=8)
        window.observe_batch(8)
        snap = window.snapshot()
        assert snap["window_s"] == window.current()
        assert snap["fill_ewma"] == pytest.approx(1.0)
        assert snap["widened"] == 1 and snap["shrunk"] == 0
