"""Self-healing client: breaker, backoff, reconnect, idempotent replay.

The breaker unit tests run entirely on :class:`FakeClock`. The e2e tests
use real sockets but a FakeClock *inside the client*, so every backoff
"sleep" is virtual — the only real waiting is socket round trips.
Acceptance criterion (d): the client recovers bitwise-identical results
across a full server restart.
"""

import numpy as np
import pytest

from repro.clock import FakeClock
from repro.models import build_model
from repro.resilience.retry import RetryBudgetExhausted, RetryPolicy
from repro.serve import (CircuitBreaker, CircuitOpenError, ModelRegistry,
                        ResilientClient, SheddingConfig, restore_registry)
from repro.serve.client import ServeClient
from repro.serve.server import ServeConfig, ServerThread
from repro.verify.invariants import perturb_batchnorm_stats


def _tiny_model(seed=0):
    model = build_model("vgg11", num_classes=3, image_size=8, width=0.125,
                        seed=seed)
    perturb_batchnorm_stats(model, seed=seed)
    model.eval()
    return model


def _registry(**kw):
    kw.setdefault("max_batch", 8)
    kw.setdefault("shedding", SheddingConfig(p99_budget_ms=None))
    return ModelRegistry(**kw)


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=5.0,
                                 clock=clock)
        for _ in range(2):
            breaker.on_failure()
            assert breaker.state == "closed" and breaker.allow()
        breaker.on_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.on_failure()
        breaker.on_success()
        breaker.on_failure()
        assert breaker.state == "closed"    # streak broken; not 2 in a row

    def test_cooldown_admits_exactly_one_half_open_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=10.0,
                                 clock=clock)
        breaker.on_failure()
        assert not breaker.allow()
        clock.advance(9.999)
        assert not breaker.allow()          # still cooling
        clock.advance(0.001)
        assert breaker.allow()              # the probe
        assert breaker.state == "half-open"
        assert not breaker.allow()          # second caller blocked

    def test_probe_success_closes_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=10.0,
                                 clock=clock)
        breaker.on_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.on_success()
        assert breaker.state == "closed" and breaker.allow()

        breaker.on_failure()                # trip again
        clock.advance(10.0)
        assert breaker.allow()
        breaker.on_failure()                # the probe failed
        assert breaker.state == "open"
        assert not breaker.allow()          # cooldown restarted
        clock.advance(10.0)
        assert breaker.allow()

    def test_configuration_is_validated(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=-1.0)


class TestResilientAgainstLiveServer:
    def test_plain_requests_pass_through_with_a_rid(self):
        with _registry() as registry:
            registry.deploy("m", "v1", model=_tiny_model(),
                            input_shape=(3, 8, 8))
            with ServerThread(registry, ServeConfig()) as srv:
                with ResilientClient("127.0.0.1", srv.port) as rc:
                    assert rc.ping()
                    sample = np.random.default_rng(0).normal(
                        size=(3, 8, 8)).astype(np.float32)
                    out = rc.infer("m", sample)
                    assert out.shape == (3,)
                    assert rc.stats["retries"] == 0
                stats = srv.server.stats()
        assert stats["counters"]["completed"] == 1

    def test_idempotent_rid_replays_are_not_double_counted(self):
        with _registry() as registry:
            registry.deploy("m", "v1", model=_tiny_model(),
                            input_shape=(3, 8, 8))
            sample = np.random.default_rng(1).normal(
                size=(3, 8, 8)).astype(np.float32)
            payload = {"op": "infer", "model": "m",
                       "input": sample.tolist(), "rid": "t:1"}
            with ServerThread(registry, ServeConfig()) as srv:
                with ServeClient("127.0.0.1", srv.port) as client:
                    first = client.request(dict(payload))
                    again = client.request(dict(payload))
                stats = srv.server.stats()
        assert again["replayed"] is True
        assert "replayed" not in first
        assert again["output"] == first["output"]       # byte-for-byte JSON
        # The work and its completion metric happened exactly once.
        assert stats["counters"]["completed"] == 1
        assert stats["counters"]["replayed"] == 1

    def test_reconnects_across_a_server_restart_bitwise(self, tmp_path):
        sample = np.random.default_rng(2).normal(
            size=(3, 8, 8)).astype(np.float32)
        manifest_dir = tmp_path / "mf"

        with _registry(manifest_dir=manifest_dir) as registry:
            registry.deploy("m", "v1", model=_tiny_model(),
                            input_shape=(3, 8, 8))
            srv = ServerThread(registry, ServeConfig()).start()
            port = srv.port
            rc = ResilientClient("127.0.0.1", port,
                                 policy=RetryPolicy(max_attempts=40,
                                                    base_delay=0.05,
                                                    max_delay=0.2))
            before = rc.infer("m", sample)
            srv.stop()          # the socket under rc dies with the server

        # Warm restart on the SAME port from the manifest — exactly what
        # `repro serve --resume` does after a process death.
        with _registry() as reborn:
            report = restore_registry(reborn, manifest_dir)
            assert [e["name"] for e in report.restored] == ["m"]
            with ServerThread(reborn, ServeConfig(port=port)) as srv2:
                after = rc.infer("m", sample)
        # Batches of one on both sides: bitwise-identical recovery.
        np.testing.assert_array_equal(before, after)
        assert rc.stats["reconnects"] >= 1
        rc.close()

    def test_draining_rejections_back_off_then_exhaust(self):
        # A drain held open by one gated in-flight request: the client's
        # established connection keeps getting explicit ``draining``
        # answers, which feed backoff (virtual, on the FakeClock) and
        # finally RetryBudgetExhausted — never a silent hang, and never
        # the breaker (the server is alive, just unwilling).
        import threading

        class _Gate:
            def __init__(self, engine):
                self._engine = engine
                self.max_batch = engine.max_batch
                self.release = threading.Event()

            def run(self, x):
                self.release.wait(timeout=30)
                return self._engine.run(x)

        registry = _registry()
        registry.deploy("m", "v1", model=_tiny_model(),
                        input_shape=(3, 8, 8))
        _, version = registry.resolve("m")
        gate = _Gate(version.engine)
        version.runner.engine = gate
        sample = np.zeros((3, 8, 8), dtype=np.float32)

        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=1e9,
                                 clock=clock)
        with registry, ServerThread(registry, ServeConfig()) as srv:
            blocker = threading.Thread(
                target=lambda: ServeClient("127.0.0.1", srv.port)
                .infer("m", sample))
            blocker.start()
            import time
            deadline = time.monotonic() + 10
            while srv.server.inflight < 1 and time.monotonic() < deadline:
                time.sleep(0.005)
            rc = ResilientClient(
                "127.0.0.1", srv.port, clock=clock, breaker=breaker,
                policy=RetryPolicy(max_attempts=3, base_delay=0.5))
            assert rc.ping()            # connection pre-dates the drain
            drainer = threading.Thread(target=srv.drain)
            drainer.start()
            deadline = time.monotonic() + 10
            while not srv.server.draining and time.monotonic() < deadline:
                time.sleep(0.005)
            with pytest.raises(RetryBudgetExhausted) as excinfo:
                rc.infer("m", sample)
            from repro.serve.client import Draining
            assert isinstance(excinfo.value.__cause__, Draining)
            assert len(clock.slept) == 2        # backoff between 3 attempts
            # Alive-but-draining never trips the breaker.
            assert breaker.state == "closed"
            gate.release.set()
            drainer.join(timeout=30)
            blocker.join(timeout=10)
            rc.close()

    def test_retry_budget_exhausts_against_a_dead_port(self):
        # Bind-then-close to get a port nothing listens on; connect then
        # fails fast with ConnectionRefused — no wall-clock waiting, and
        # the FakeClock absorbs every backoff sleep.
        import socket
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()

        clock = FakeClock()
        policy = RetryPolicy(max_attempts=4, base_delay=0.5, factor=2.0,
                             max_delay=60.0, seed=7)
        rc = ResilientClient("127.0.0.1", dead_port, policy=policy,
                             clock=clock)
        with pytest.raises(RetryBudgetExhausted):
            rc.ping()
        assert rc.stats["reconnects"] == 4
        # Backoff consulted the policy schedule, on virtual time only.
        assert clock.slept == [policy.delay(0), policy.delay(1),
                               policy.delay(2)]

    def test_breaker_fails_fast_once_open(self):
        import socket
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()

        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=3600.0,
                                 clock=clock)
        rc = ResilientClient(
            "127.0.0.1", dead_port, clock=clock, breaker=breaker,
            policy=RetryPolicy(max_attempts=5, base_delay=0.01,
                               max_delay=0.01))
        # Attempts 1-2 fail on the wire and trip the breaker; attempt 3
        # is refused before touching the socket.
        with pytest.raises(CircuitOpenError):
            rc.ping()
        assert breaker.state == "open"
        assert rc.stats["reconnects"] == 2
        assert rc.stats["breaker_fast_fails"] == 1

        # While open, calls fail fast without any connection attempt.
        with pytest.raises(CircuitOpenError):
            rc.ping()
        assert rc.stats["reconnects"] == 2


def _dead_port() -> int:
    """A port nothing listens on: connects fail fast with refusal."""
    import socket
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


class TestMultiEndpointFailover:
    """``endpoints=`` fallbacks: per-endpoint breakers, half-open probes."""

    def test_stats_exposes_per_endpoint_breaker_state(self):
        clock = FakeClock()
        rc = ResilientClient(
            "10.0.0.1", 1111, clock=clock,
            breaker=CircuitBreaker(failure_threshold=3, clock=clock),
            endpoints=[("10.0.0.2", 2222)])
        stats = rc.stats
        assert stats["endpoint"] == "10.0.0.1:1111"
        assert set(stats["breakers"]) == {"10.0.0.1:1111", "10.0.0.2:2222"}
        for snap in stats["breakers"].values():
            assert snap["state"] == "closed"
            assert snap["consecutive_failures"] == 0
        # The primary keeps the caller's breaker object; the fallback got
        # its own clone — one dead endpoint must not open the other's
        # circuit.
        assert rc.breaker is rc._breakers[("10.0.0.1", 1111)]
        assert rc._breakers[("10.0.0.2", 2222)] is not rc.breaker

    def test_transport_fault_fails_over_and_opens_only_that_breaker(self):
        dead = _dead_port()
        clock = FakeClock()
        with _registry() as registry:
            registry.deploy("m", "v1", model=_tiny_model(),
                            input_shape=(3, 8, 8))
            with ServerThread(registry, ServeConfig()) as srv:
                rc = ResilientClient(
                    "127.0.0.1", dead, clock=clock,
                    breaker=CircuitBreaker(failure_threshold=1,
                                           cooldown_s=3600.0, clock=clock),
                    policy=RetryPolicy(max_attempts=4, base_delay=0.01,
                                       max_delay=0.01),
                    endpoints=[("127.0.0.1", srv.port)])
                sample = np.random.default_rng(3).normal(
                    size=(3, 8, 8)).astype(np.float32)
                out = rc.infer("m", sample)
                with ServeClient("127.0.0.1", srv.port) as direct:
                    expected = direct.infer("m", sample)
                assert np.array_equal(out, expected)    # bitwise via fallback
                stats = rc.stats
                assert stats["failovers"] == 1
                assert stats["endpoint"] == f"127.0.0.1:{srv.port}"
                assert stats["breakers"][f"127.0.0.1:{dead}"]["state"] == \
                    "open"
                assert stats["breakers"][f"127.0.0.1:{srv.port}"]["state"] \
                    == "closed"
                # Follow-up traffic sticks to the healthy endpoint and
                # never pokes the open primary circuit.
                rc.infer("m", sample)
                after = rc.stats
                assert after["failovers"] == 1
                assert (after["breakers"][f"127.0.0.1:{dead}"]
                        ["consecutive_failures"] == 1)
                rc.close()

    def test_half_open_probe_recovers_the_primary_after_cooldown(self):
        primary_port = _dead_port()     # later: a real server binds here
        clock = FakeClock()
        sample = np.random.default_rng(4).normal(
            size=(3, 8, 8)).astype(np.float32)
        cooldown = 10.0
        with _registry() as fallback_registry:
            fallback_registry.deploy("m", "v1", model=_tiny_model(),
                                     input_shape=(3, 8, 8))
            rc = ResilientClient(
                "127.0.0.1", primary_port, clock=clock,
                breaker=CircuitBreaker(failure_threshold=1,
                                       cooldown_s=cooldown, clock=clock),
                policy=RetryPolicy(max_attempts=4, base_delay=0.001,
                                   max_delay=0.001))
            with ServerThread(fallback_registry, ServeConfig()) as fallback:
                rc.endpoints.append(("127.0.0.1", fallback.port))
                rc._breakers[("127.0.0.1", fallback.port)] = \
                    rc.breaker.clone()
                # Primary down: first call opens its circuit and fails
                # over to the fallback.
                out = rc.infer("m", sample)
                assert out.shape == (3,)
                assert rc.stats["endpoint"] == f"127.0.0.1:{fallback.port}"

            # The fallback dies too, and the primary comes back.
            with _registry() as revived_registry:
                revived_registry.deploy("m", "v1", model=_tiny_model(),
                                        input_shape=(3, 8, 8))
                with ServerThread(revived_registry,
                                  ServeConfig(port=primary_port)) as srv:
                    assert srv.port == primary_port
                    # Before the cooldown elapses the primary's circuit is
                    # still open: the fallback's failure opens its breaker
                    # and no endpoint admits — fail fast, not hang.
                    with pytest.raises(CircuitOpenError):
                        rc.infer("m", sample)
                    assert rc.stats["breaker_fast_fails"] == 1

                    # After the cooldown, each circuit admits exactly one
                    # half-open probe; the probe against the revived
                    # primary succeeds and closes its circuit for good.
                    clock.advance(cooldown)
                    out = rc.infer("m", sample)
                    with ServeClient("127.0.0.1", primary_port) as direct:
                        assert np.array_equal(out, direct.infer("m", sample))
                    stats = rc.stats
                    assert stats["endpoint"] == f"127.0.0.1:{primary_port}"
                    assert (stats["breakers"]
                            [f"127.0.0.1:{primary_port}"]["state"]
                            == "closed")
            rc.close()
