"""Deploy manifest + warm restart: journal, snapshot, restore, skip.

Acceptance criterion (c): ``restore_registry`` brings every manifest
version back through the full compile + probe-validation deploy gate,
and a corrupted entry (bit-flipped checkpoint, truncated journal tail)
is skipped with an explicit report instead of aborting the restore or
serving garbage weights.
"""

import numpy as np
import pytest

from repro.io import save_model
from repro.models import build_model
from repro.serve import (ModelRegistry, ServeManifest, SheddingConfig,
                         restore_registry)
from repro.serve.manifest import MANIFEST_NAME
from repro.tensor import Tensor, inference_mode
from repro.verify.invariants import perturb_batchnorm_stats


def _tiny_model(seed=0):
    model = build_model("vgg11", num_classes=3, image_size=8, width=0.125,
                        seed=seed)
    perturb_batchnorm_stats(model, seed=seed)
    model.eval()
    return model


def _registry(**kw):
    kw.setdefault("max_batch", 8)
    kw.setdefault("shedding", SheddingConfig(p99_budget_ms=None))
    return ModelRegistry(**kw)


def _corrupt_npz(path):
    """Flip one payload byte; the checksum in load_model must catch it."""
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    path.write_bytes(bytes(blob))


class TestManifestJournal:
    def test_active_entries_keep_the_last_deploy_per_name(self, tmp_path):
        manifest = ServeManifest(tmp_path)
        manifest.record_deploy("a", "v1", tmp_path / "a1.npz")
        manifest.record_deploy("b", "v1", tmp_path / "b1.npz")
        manifest.record_deploy("a", "v2", tmp_path / "a2.npz")
        entries = manifest.active_entries()
        assert [(e["name"], e["version"]) for e in entries] == \
            [("a", "v2"), ("b", "v1")]          # last wins, a is still first

    def test_checkpoint_deploys_journal_their_resolved_path(self, tmp_path):
        checkpoint = tmp_path / "m.npz"
        save_model(_tiny_model(), checkpoint)
        with _registry(manifest_dir=tmp_path / "manifest") as registry:
            registry.deploy("m", "v1", checkpoint=checkpoint)
        manifest = ServeManifest(tmp_path / "manifest")
        [entry] = manifest.active_entries()
        assert entry["checkpoint"] == str(checkpoint.resolve())

    def test_model_deploys_are_snapshotted_into_the_manifest(self, tmp_path):
        with _registry(manifest_dir=tmp_path) as registry:
            registry.deploy("m", "v1", model=_tiny_model(),
                            input_shape=(3, 8, 8))
        manifest = ServeManifest(tmp_path)
        [entry] = manifest.active_entries()
        snapshot = manifest.snapshot_path("m", "v1")
        assert entry["checkpoint"] == str(snapshot.resolve())
        assert snapshot.exists()

    def test_unsnapshottable_model_is_journaled_without_checkpoint(
            self, tmp_path):
        model = _tiny_model()
        model.arch = None               # no recipe: save_model must refuse
        probe = np.random.default_rng(0).normal(
            size=(2, 3, 8, 8)).astype(np.float32)
        with _registry(manifest_dir=tmp_path) as registry:
            registry.deploy("m", "v1", model=model, probe=probe)
        [entry] = ServeManifest(tmp_path).active_entries()
        assert entry["checkpoint"] is None
        report = restore_registry(_registry(), tmp_path)
        assert report.restored == []
        [skipped] = report.skipped
        assert skipped["name"] == "m" and skipped["checkpoint"] is None

    def test_restore_suppresses_rejournaling(self, tmp_path):
        with _registry(manifest_dir=tmp_path) as registry:
            registry.deploy("m", "v1", model=_tiny_model(),
                            input_shape=(3, 8, 8))
        with _registry(manifest_dir=tmp_path) as restored:
            restore_registry(restored, tmp_path)
        # One deploy event, not two: the replay used record=False.
        assert len(ServeManifest(tmp_path).journal.events("deploy")) == 1


class TestRestore:
    def test_round_trip_restores_every_version_through_validation(
            self, tmp_path):
        checkpoint = tmp_path / "b.npz"
        save_model(_tiny_model(seed=1), checkpoint)
        original = {}
        with _registry(manifest_dir=tmp_path / "mf") as registry:
            registry.deploy("a", "v1", model=_tiny_model(seed=0),
                            input_shape=(3, 8, 8))
            registry.deploy("b", "v3", checkpoint=checkpoint)
            sample = np.random.default_rng(5).normal(
                size=(3, 8, 8)).astype(np.float32)
            for name in ("a", "b"):
                line, version = registry.resolve(name)
                original[name] = registry.eager_infer(line, version, sample)

        with _registry() as fresh:
            report = restore_registry(fresh, tmp_path / "mf")
            assert report.skipped == []
            assert sorted(e["name"] for e in report.restored) == ["a", "b"]
            assert not report.journal_truncated
            for name, want in original.items():
                line, version = fresh.resolve(name)
                assert np.isfinite(version.probe_max_abs_diff)   # validated
                got = fresh.eager_infer(line, version, sample)
                np.testing.assert_array_equal(got, want)
            assert fresh.resolve("b")[1].ref == "b@v3"

    def test_corrupted_checkpoint_is_skipped_with_a_named_reason(
            self, tmp_path):
        doomed = tmp_path / "doomed.npz"
        save_model(_tiny_model(seed=2), doomed)
        with _registry(manifest_dir=tmp_path / "mf") as registry:
            registry.deploy("good", "v1", model=_tiny_model(),
                            input_shape=(3, 8, 8))
            registry.deploy("bad", "v1", checkpoint=doomed)
        _corrupt_npz(doomed)

        with _registry() as fresh:
            report = restore_registry(fresh, tmp_path / "mf")
            assert [e["name"] for e in report.restored] == ["good"]
            [skipped] = report.skipped
            assert skipped["name"] == "bad"
            assert "CheckpointCorrupt" in skipped["reason"]
            fresh.resolve("good")
            with pytest.raises(KeyError):
                fresh.resolve("bad")
        assert "skipped bad@v1" in report.summary()

    def test_missing_checkpoint_is_skipped_not_fatal(self, tmp_path):
        manifest = ServeManifest(tmp_path)
        manifest.record_deploy("ghost", "v1", tmp_path / "nowhere.npz")
        with _registry() as fresh:
            report = restore_registry(fresh, tmp_path)
        [skipped] = report.skipped
        assert "FileNotFoundError" in skipped["reason"]

    def test_corrupt_journal_tail_is_dropped_and_flagged(self, tmp_path):
        checkpoint = tmp_path / "m.npz"
        save_model(_tiny_model(), checkpoint)
        with _registry(manifest_dir=tmp_path / "mf") as registry:
            registry.deploy("m", "v1", checkpoint=checkpoint)
        journal_path = tmp_path / "mf" / MANIFEST_NAME
        with open(journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"crc": 0, "record": {"event": "deploy"}}\n')

        with _registry() as fresh:
            report = restore_registry(fresh, tmp_path / "mf")
            assert report.journal_truncated
            assert [e["name"] for e in report.restored] == ["m"]
        assert "corrupt tail" in report.summary()

    def test_report_as_dict_is_json_shaped(self, tmp_path):
        with _registry(manifest_dir=tmp_path) as registry:
            registry.deploy("m", "v1", model=_tiny_model(),
                            input_shape=(3, 8, 8))
        with _registry() as fresh:
            report = restore_registry(fresh, tmp_path)
        payload = report.as_dict()
        assert payload["restored"][0]["name"] == "m"
        assert payload["skipped"] == []
        assert payload["journal_truncated"] is False
        import json
        json.dumps(payload)     # serialisable as-is


class TestEagerReference:
    def test_eager_reference_is_deterministic(self):
        # The round-trip test compares eager outputs across registries;
        # that only proves restoration if eager inference is itself
        # deterministic for one model. Pin that assumption.
        model = _tiny_model()
        sample = np.random.default_rng(9).normal(
            size=(1, 3, 8, 8)).astype(np.float32)
        with inference_mode():
            a = model(Tensor(sample)).data
            b = model(Tensor(sample)).data
        np.testing.assert_array_equal(a, b)
