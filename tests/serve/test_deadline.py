"""Deadline propagation: admission shed, queue eviction, await expiry.

The unit half drives :class:`AdmissionController` directly (pure state,
no clock). The e2e half holds a real engine hostage behind a gate so a
deadlined request *provably* cannot be served in time — no sleeps racing
the scheduler, the gate decides.
"""

import threading

import numpy as np
import pytest

from repro.models import build_model
from repro.serve import AdmissionController, ModelRegistry, SheddingConfig
from repro.serve.client import Expired, Overloaded, ServeClient
from repro.serve.server import ServeConfig, ServerThread
from repro.verify.invariants import perturb_batchnorm_stats


def _tiny_model(seed=0):
    model = build_model("vgg11", num_classes=3, image_size=8, width=0.125,
                        seed=seed)
    perturb_batchnorm_stats(model, seed=seed)
    model.eval()
    return model


class _GatedEngine:
    """Engine proxy that blocks every batch until the test releases it."""

    def __init__(self, engine):
        self._engine = engine
        self.max_batch = engine.max_batch
        self.entered = threading.Event()
        self.release = threading.Event()

    def run(self, x):
        self.entered.set()
        self.release.wait(timeout=30)
        return self._engine.run(x)


class TestAdmissionDeadline:
    def test_spent_budget_is_shed_with_reason_deadline(self):
        ctrl = AdmissionController(SheddingConfig(p99_budget_ms=None))
        ok, reason = ctrl.try_admit(remaining_ms=0.0)
        assert (ok, reason) == (False, "deadline")
        ok, reason = ctrl.try_admit(remaining_ms=-5.0)
        assert (ok, reason) == (False, "deadline")
        assert ctrl.rejected["deadline"] == 2
        assert ctrl.pending == 0            # shed before taking a slot

    def test_budget_below_recent_median_is_infeasible(self):
        ctrl = AdmissionController(SheddingConfig(p99_budget_ms=None))
        admitted, _ = ctrl.try_admit()
        assert admitted
        ctrl.on_complete(50.0)              # median service time: 50ms
        ok, reason = ctrl.try_admit(remaining_ms=10.0)
        assert (ok, reason) == (False, "deadline")
        ok, reason = ctrl.try_admit(remaining_ms=60.0)
        assert ok and reason is None

    def test_no_history_admits_any_positive_budget(self):
        # Without latency history there is no feasibility floor; only a
        # spent budget sheds.
        ctrl = AdmissionController(SheddingConfig(p99_budget_ms=None))
        ok, _ = ctrl.try_admit(remaining_ms=0.001)
        assert ok

    def test_deadline_gate_runs_before_queue_full(self):
        ctrl = AdmissionController(
            SheddingConfig(max_pending=1, p99_budget_ms=None))
        assert ctrl.try_admit()[0]
        ok, reason = ctrl.try_admit(remaining_ms=0.0)
        assert reason == "deadline"         # not "queue-full"
        ok, reason = ctrl.try_admit()
        assert reason == "queue-full"

    def test_snapshot_counts_deadline_sheds(self):
        ctrl = AdmissionController(SheddingConfig(p99_budget_ms=None))
        ctrl.try_admit(remaining_ms=0.0)
        assert ctrl.snapshot()["rejected"] == {"deadline": 1}


@pytest.fixture()
def gated_service():
    registry = ModelRegistry(
        max_batch=8, shedding=SheddingConfig(max_pending=64,
                                             p99_budget_ms=None))
    registry.deploy("m", "v1", model=_tiny_model(), input_shape=(3, 8, 8))
    _, version = registry.resolve("m")
    gate = _GatedEngine(version.engine)
    version.runner.engine = gate
    with registry, ServerThread(registry, ServeConfig()) as srv:
        yield {"srv": srv, "gate": gate, "registry": registry}
        gate.release.set()


class TestDeadlineE2E:
    def test_request_expires_while_the_engine_is_busy(self, gated_service):
        srv, gate = gated_service["srv"], gated_service["gate"]
        sample = np.random.default_rng(0).normal(
            size=(3, 8, 8)).astype(np.float32)
        blocker_out = {}

        def blocker():
            with ServeClient("127.0.0.1", srv.port) as client:
                blocker_out["value"] = client.infer("m", sample)

        t = threading.Thread(target=blocker)
        t.start()
        assert gate.entered.wait(timeout=10)    # engine is now occupied
        with ServeClient("127.0.0.1", srv.port) as client:
            with pytest.raises(Expired):
                client.infer("m", sample, deadline_ms=50.0)
            # The expiry is an answer, not a hangup: the connection and
            # the server both keep working.
            assert client.ping()
        gate.release.set()
        t.join(timeout=10)
        assert "value" in blocker_out           # blocker was never harmed
        stats = srv.server.stats()
        assert stats["counters"]["expired"] >= 1

    def test_infeasible_deadline_is_shed_at_admission(self, gated_service):
        srv, registry = gated_service["srv"], gated_service["registry"]
        line, _ = registry.resolve("m")
        for _ in range(4):
            line.admission.on_complete(1000.0)  # recent median: 1s
        sample = np.zeros((3, 8, 8), dtype=np.float32)
        with ServeClient("127.0.0.1", srv.port) as client:
            with pytest.raises(Overloaded) as excinfo:
                client.infer("m", sample, deadline_ms=1.0)
            assert excinfo.value.reason == "deadline"
        stats = srv.server.stats()
        assert stats["reject_reasons"].get("deadline", 0) >= 1
        # Shed at admission, not expired in flight.
        assert stats["counters"]["expired"] == 0

    def test_invalid_deadline_is_a_bad_request(self, gated_service):
        srv = gated_service["srv"]
        from repro.serve.client import ServerError
        with ServeClient("127.0.0.1", srv.port) as client:
            for bad in (0, -10, "soon", True):
                with pytest.raises(ServerError) as excinfo:
                    client.request({"op": "infer", "model": "m",
                                    "input": [[0.0]], "deadline_ms": bad})
                assert excinfo.value.error == "bad-request"
