"""Latency reservoirs and the server's metrics roll-up."""

import pytest

from repro.serve import LatencyReservoir, ServerMetrics, sum_counters


class TestLatencyReservoir:
    def test_empty_reservoir_has_no_percentiles(self):
        reservoir = LatencyReservoir(8)
        assert reservoir.percentile(99.0) is None
        assert reservoir.summary() == {"count": 0, "p50_ms": None,
                                       "p99_ms": None, "max_ms": None}

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LatencyReservoir(0)

    def test_percentile_is_nearest_rank(self):
        reservoir = LatencyReservoir(8)
        for v in (40.0, 10.0, 30.0, 20.0):
            reservoir.record(v)
        assert reservoir.percentile(0.0) == 10.0
        assert reservoir.percentile(50.0) == 20.0
        assert reservoir.percentile(100.0) == 40.0

    def test_percentile_range_is_validated(self):
        reservoir = LatencyReservoir(8)
        reservoir.record(1.0)
        with pytest.raises(ValueError):
            reservoir.percentile(101.0)

    def test_single_sample_dominates_every_percentile(self):
        reservoir = LatencyReservoir(8)
        reservoir.record(7.5)
        for p in (0.0, 50.0, 99.0, 100.0):
            assert reservoir.percentile(p) == 7.5
        assert reservoir.summary() == {"count": 1, "p50_ms": 7.5,
                                       "p99_ms": 7.5, "max_ms": 7.5}

    def test_exact_ring_wrap_boundary(self):
        # Filling to exactly capacity keeps every sample; the very next
        # record evicts the oldest, one at a time, in arrival order.
        reservoir = LatencyReservoir(4)
        for v in (1.0, 2.0, 3.0, 4.0):
            reservoir.record(v)
        assert reservoir.count == 4
        assert reservoir.percentile(0.0) == 1.0     # nothing evicted yet
        reservoir.record(5.0)                       # first wrap
        assert reservoir.percentile(0.0) == 2.0
        assert reservoir.percentile(100.0) == 5.0
        reservoir.record(6.0)                       # second slot wraps
        assert reservoir.percentile(0.0) == 3.0
        assert reservoir.count == 6                 # lifetime keeps counting

    def test_ring_keeps_only_the_most_recent_window(self):
        reservoir = LatencyReservoir(3)
        for v in (1.0, 2.0, 3.0, 4.0, 5.0):
            reservoir.record(v)
        assert reservoir.count == 5                 # lifetime
        assert reservoir.percentile(0.0) == 3.0     # 1.0 and 2.0 evicted
        assert reservoir.percentile(100.0) == 5.0

    def test_summary_reports_the_window(self):
        reservoir = LatencyReservoir(8)
        for v in (5.0, 1.0, 9.0):
            reservoir.record(v)
        summary = reservoir.summary()
        assert summary["count"] == 3
        assert summary["p50_ms"] == 5.0
        assert summary["max_ms"] == 9.0


class TestCrossReplicaAggregation:
    """Fleet-wide stats: per-replica reservoirs merge, counters sum."""

    def test_samples_unwraps_the_ring_in_arrival_order(self):
        reservoir = LatencyReservoir(3)
        for v in (1.0, 2.0, 3.0, 4.0, 5.0):
            reservoir.record(v)
        assert reservoir.samples() == [3.0, 4.0, 5.0]

    def test_from_samples_round_trips_window_and_lifetime(self):
        original = LatencyReservoir(4)
        for v in (10.0, 20.0, 30.0, 40.0, 50.0):
            original.record(v)
        rebuilt = LatencyReservoir.from_samples(original.samples(),
                                                lifetime=original.count)
        assert rebuilt.samples() == original.samples()
        assert rebuilt.count == original.count
        assert rebuilt.summary() == original.summary()

    def test_merged_percentiles_cover_every_replica_window(self):
        # Two replicas with disjoint latency regimes: the fleet p50/p99
        # must be computed over the union, not either window alone.
        fast = LatencyReservoir.from_samples([1.0, 2.0, 3.0, 4.0])
        slow = LatencyReservoir.from_samples([100.0, 200.0])
        fleet = LatencyReservoir.merged([fast, slow])
        assert fleet.count == 6
        assert fleet.percentile(100.0) == 200.0
        assert fleet.percentile(0.0) == 1.0
        # p50 sits inside the fast replica's window (4 of 6 samples).
        assert fleet.percentile(50.0) in (3.0, 4.0)

    def test_merged_preserves_lifetime_counts_past_the_window(self):
        a = LatencyReservoir(2)
        for v in (1.0, 2.0, 3.0):            # lifetime 3, window 2
            a.record(v)
        b = LatencyReservoir.from_samples([5.0])
        fleet = LatencyReservoir.merged(
            [LatencyReservoir.from_samples(a.samples(), lifetime=a.count),
             b])
        assert fleet.count == 4              # 3 + 1 lifetime, not 2 + 1
        assert fleet.summary()["max_ms"] == 5.0

    def test_merged_of_nothing_is_an_empty_reservoir(self):
        fleet = LatencyReservoir.merged([])
        assert fleet.percentile(99.0) is None
        assert fleet.summary()["count"] == 0

    def test_sum_counters_unions_keys_and_sums_values(self):
        fleet = sum_counters([
            {"completed": 3, "errors": 1},
            {"completed": 4, "expired": 2},
            {},
        ])
        assert fleet == {"completed": 7, "errors": 1, "expired": 2}

    def test_server_metrics_exports_its_sample_window(self):
        metrics = ServerMetrics()
        metrics.record_completion("m@v1", 10.0)
        metrics.record_completion("m@v1", 30.0)
        samples = metrics.latency_samples()
        assert samples == [10.0, 30.0]
        # The export is what a replica ships over the wire; rebuilding
        # from it reproduces the summary the replica would report.
        rebuilt = LatencyReservoir.from_samples(samples, lifetime=2)
        assert rebuilt.summary()["p50_ms"] == (
            metrics.snapshot()["latency"]["p50_ms"])


class TestServerMetrics:
    def test_counters_and_rejection_reasons(self):
        metrics = ServerMetrics()
        metrics.incr("received", 3)
        metrics.record_rejection("queue-full")
        metrics.record_rejection("queue-full")
        metrics.record_rejection("slo")
        snap = metrics.snapshot()
        assert snap["counters"]["received"] == 3
        assert snap["counters"]["rejected"] == 3
        assert snap["reject_reasons"] == {"queue-full": 2, "slo": 1}

    def test_completions_feed_global_and_per_model_reservoirs(self):
        metrics = ServerMetrics()
        metrics.record_completion("m@v1", 10.0, queue_wait_ms=2.0)
        metrics.record_completion("m@v1", 30.0, queue_wait_ms=4.0)
        metrics.record_completion("n@v1", 50.0)
        snap = metrics.snapshot()
        assert snap["counters"]["completed"] == 3
        assert snap["latency"]["count"] == 3
        assert snap["latency"]["max_ms"] == 50.0
        assert snap["queue_wait"]["count"] == 2
        assert snap["per_model"]["m@v1"]["count"] == 2
        assert snap["per_model"]["n@v1"]["p50_ms"] == 50.0

    def test_cancelled_and_expired_are_first_class_counters(self):
        # The request-lifecycle outcomes are stock keys — present (at
        # zero) before anything happens, so dashboards never KeyError.
        fresh = ServerMetrics().snapshot()["counters"]
        assert fresh["cancelled"] == 0
        assert fresh["expired"] == 0
        assert fresh["replayed"] == 0
        metrics = ServerMetrics()
        metrics.incr("cancelled")
        metrics.incr("expired", 2)
        metrics.incr("replayed")
        snap = metrics.snapshot()["counters"]
        assert snap["cancelled"] == 1
        assert snap["expired"] == 2
        assert snap["replayed"] == 1
        # Neither path touches the completion reservoirs.
        assert metrics.snapshot()["latency"]["count"] == 0

    def test_snapshot_merges_extra_payload(self):
        metrics = ServerMetrics()
        snap = metrics.snapshot(extra={"models": {"m": {}}})
        assert snap["models"] == {"m": {}}
        # And the stock sections are still present alongside.
        assert set(snap) >= {"counters", "reject_reasons", "latency",
                             "queue_wait", "per_model", "models"}
