"""Registry lifecycle: deploy, routing, hot-swap, validation, degrade."""

import numpy as np
import pytest

from repro.io import save_model
from repro.models import build_model
from repro.serve import (ModelRegistry, NoSuchModelError, SheddingConfig,
                         SwapValidationError)
from repro.serve import registry as registry_module
from repro.tensor import Tensor, inference_mode
from repro.verify.invariants import perturb_batchnorm_stats


def _tiny_model(seed=0):
    model = build_model("vgg11", num_classes=3, image_size=8, width=0.125,
                        seed=seed)
    perturb_batchnorm_stats(model, seed=seed)
    model.eval()
    return model


def _registry(**kw):
    kw.setdefault("max_batch", 8)
    kw.setdefault("shedding", SheddingConfig(p99_budget_ms=None))
    return ModelRegistry(**kw)


class TestDeploy:
    def test_exactly_one_source_is_required(self):
        with _registry() as registry:
            with pytest.raises(ValueError, match="exactly one"):
                registry.deploy("m", "v1")
            with pytest.raises(ValueError, match="exactly one"):
                registry.deploy("m", "v1", model=_tiny_model(),
                                checkpoint="x.npz")

    def test_fresh_deploy_serves_and_reports(self):
        with _registry() as registry:
            report = registry.deploy("m", "v1", model=_tiny_model(),
                                    input_shape=(3, 8, 8))
            assert report.swapped_from is None
            assert report.drained_samples == 0
            assert np.isfinite(report.probe_max_abs_diff)
            line, version = registry.resolve("m")
            assert version.ref == "m@v1"
            assert not line.degraded
            assert registry.models()["m"]["active"] == "m@v1"

    def test_deploy_from_checkpoint_uses_recorded_arch(self, tmp_path):
        path = tmp_path / "model.npz"
        save_model(_tiny_model(), path)
        with _registry() as registry:
            # No input_shape: the probe comes from the checkpoint's arch.
            report = registry.deploy("m", "v1", checkpoint=path)
            assert report.as_dict()["name"] == "m"
            _, version = registry.resolve("m@v1")
            assert version.engine.max_batch == 8

    def test_deploy_with_explicit_probe_batch(self):
        probe = np.random.default_rng(0).normal(
            size=(2, 3, 8, 8)).astype(np.float32)
        with _registry() as registry:
            registry.deploy("m", "v1", model=_tiny_model(), probe=probe)
            registry.resolve("m")

    def test_deploy_without_any_shape_hint_fails_clearly(self):
        model = _tiny_model()
        model.arch = {}
        with _registry() as registry:
            with pytest.raises(ValueError, match="image_size"):
                registry.deploy("m", "v1", model=model)


class TestResolve:
    def test_unknown_name_is_explicit(self):
        with _registry() as registry:
            with pytest.raises(NoSuchModelError, match="no model"):
                registry.resolve("ghost")

    def test_pinned_active_version_resolves(self):
        with _registry() as registry:
            registry.deploy("m", "v1", model=_tiny_model(),
                            input_shape=(3, 8, 8))
            _, version = registry.resolve("m@v1")
            assert version.ref == "m@v1"

    def test_pinned_retired_version_is_rejected_not_rerouted(self):
        with _registry() as registry:
            registry.deploy("m", "v1", model=_tiny_model(),
                            input_shape=(3, 8, 8))
            registry.deploy("m", "v2", model=_tiny_model(seed=1),
                            input_shape=(3, 8, 8))
            with pytest.raises(NoSuchModelError, match="not active"):
                registry.resolve("m@v1")


class TestHotSwap:
    def test_swap_reroutes_and_drains_the_old_runner(self):
        with _registry() as registry:
            registry.deploy("m", "v1", model=_tiny_model(),
                            input_shape=(3, 8, 8))
            _, old = registry.resolve("m")
            report = registry.deploy("m", "v2", model=_tiny_model(seed=1),
                                     input_shape=(3, 8, 8))
            assert report.swapped_from == "v1"
            _, version = registry.resolve("m")
            assert version.ref == "m@v2"
            assert registry.models()["m"]["retired"] == ["v1"]
            # The old runner is closed (drained): submissions must fail
            # loudly instead of queueing into a dead engine.
            with pytest.raises(RuntimeError, match="closed"):
                old.runner.submit(np.zeros((3, 8, 8), dtype=np.float32))

    def test_failed_validation_keeps_the_old_version(self, monkeypatch):
        from repro.infer import CompileValidationError

        with _registry() as registry:
            registry.deploy("m", "v1", model=_tiny_model(),
                            input_shape=(3, 8, 8))

            def broken_compile(*args, **kwargs):
                raise CompileValidationError("probe divergence")

            monkeypatch.setattr(registry_module, "compile_model",
                                broken_compile)
            with pytest.raises(SwapValidationError, match="m@v2"):
                registry.deploy("m", "v2", model=_tiny_model(seed=1),
                                input_shape=(3, 8, 8))
            _, version = registry.resolve("m")
            assert version.ref == "m@v1"            # old line untouched
            version.runner.submit(
                np.zeros((3, 8, 8), dtype=np.float32)).result(timeout=10.0)

    def test_swap_clears_a_degraded_line(self):
        with _registry(max_fallbacks=1) as registry:
            registry.deploy("m", "v1", model=_tiny_model(),
                            input_shape=(3, 8, 8))
            line, version = registry.resolve("m")
            registry.note_fallback(line, version)
            assert line.degraded
            registry.deploy("m", "v2", model=_tiny_model(seed=1),
                            input_shape=(3, 8, 8))
            assert not line.degraded and line.fallbacks == 0


class TestDegrade:
    def test_fallback_budget_flips_the_line(self):
        with _registry(max_fallbacks=2) as registry:
            registry.deploy("m", "v1", model=_tiny_model(),
                            input_shape=(3, 8, 8))
            line, version = registry.resolve("m")
            registry.note_fallback(line, version)
            assert not line.degraded and line.fallbacks == 1
            registry.note_fallback(line, version)
            assert line.degraded

    def test_eager_infer_matches_the_model(self):
        with _registry() as registry:
            model = _tiny_model()
            registry.deploy("m", "v1", model=model, input_shape=(3, 8, 8))
            line, version = registry.resolve("m")
            sample = np.random.default_rng(3).normal(
                size=(3, 8, 8)).astype(np.float32)
            with inference_mode():
                want = model(Tensor(sample[None])).data[0]
            np.testing.assert_array_equal(
                registry.eager_infer(line, version, sample), want)


class TestObserveBatch:
    def test_adaptive_window_retunes_the_runner(self):
        trace = []
        with _registry(on_batch=lambda *a: trace.append(a)) as registry:
            registry.deploy("m", "v1", model=_tiny_model(),
                            input_shape=(3, 8, 8))
            _, version = registry.resolve("m")
            before = version.runner.max_wait
            batch = np.zeros((8, 3, 8, 8), dtype=np.float32)
            outputs = np.zeros((8, 3), dtype=np.float32)
            registry._observe_batch(version, batch, outputs)   # full batch
            assert version.runner.max_wait > before            # widened
            assert version.runner.max_wait == version.window.current()
            name, ver, seen_batch, seen_outputs = trace[-1]
            assert (name, ver) == ("m", "v1")
            assert seen_batch is batch and seen_outputs is outputs
