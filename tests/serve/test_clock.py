"""The injectable time source: system and fake clocks agree on semantics."""

import queue

import pytest

from repro.clock import SYSTEM_CLOCK, FakeClock, SystemClock


class TestSystemClock:
    def test_monotonic_moves_forward(self):
        clock = SystemClock()
        assert clock.monotonic() <= clock.monotonic()

    def test_get_returns_queued_item(self):
        q = queue.SimpleQueue()
        q.put("x")
        assert SYSTEM_CLOCK.get(q, 1.0) == "x"

    def test_get_with_nonpositive_timeout_is_nonblocking(self):
        q = queue.SimpleQueue()
        with pytest.raises(queue.Empty):
            SYSTEM_CLOCK.get(q, 0.0)
        q.put("y")
        assert SYSTEM_CLOCK.get(q, -1.0) == "y"


class TestFakeClock:
    def test_time_only_moves_when_told(self):
        clock = FakeClock(start=100.0)
        assert clock.monotonic() == 100.0
        assert clock.monotonic() == 100.0
        clock.advance(2.5)
        assert clock.monotonic() == 102.5

    def test_time_cannot_move_backwards(self):
        clock = FakeClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_sleep_advances_and_is_recorded(self):
        clock = FakeClock()
        clock.sleep(0.25)
        clock.sleep(0.75)
        assert clock.monotonic() == pytest.approx(1.0)
        assert clock.slept == [0.25, 0.75]

    def test_get_pops_for_free_when_item_is_ready(self):
        clock = FakeClock()
        q = queue.SimpleQueue()
        q.put("x")
        assert clock.get(q, 5.0) == "x"
        assert clock.monotonic() == 0.0

    def test_get_charges_full_timeout_on_empty_queue(self):
        # This is what lets a FakeClock expire a batching window
        # deterministically: an empty wait costs exactly its timeout.
        clock = FakeClock()
        q = queue.SimpleQueue()
        with pytest.raises(queue.Empty):
            clock.get(q, 0.01)
        assert clock.monotonic() == pytest.approx(0.01)

    def test_negative_timeout_charges_nothing(self):
        clock = FakeClock()
        q = queue.SimpleQueue()
        with pytest.raises(queue.Empty):
            clock.get(q, -1.0)
        assert clock.monotonic() == 0.0
