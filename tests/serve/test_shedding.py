"""Admission control: exact admit/reject sequences, pure state machine."""

import pytest

from repro.serve import AdmissionController, SheddingConfig


class TestSheddingConfig:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            SheddingConfig(max_pending=0)
        with pytest.raises(ValueError):
            SheddingConfig(p99_budget_ms=0.0)
        with pytest.raises(ValueError):
            SheddingConfig(probe_pending=0)

    def test_none_budget_disables_the_slo_gate(self):
        admission = AdmissionController(
            SheddingConfig(max_pending=4, p99_budget_ms=None))
        ok, _ = admission.try_admit()
        assert ok
        admission.on_complete(10_000.0)     # horrendous latency
        for _ in range(3):
            ok, reason = admission.try_admit()
            assert ok and reason is None    # only the depth bound applies


class TestDepthBound:
    def test_queue_full_at_exact_depth(self):
        admission = AdmissionController(
            SheddingConfig(max_pending=2, p99_budget_ms=None))
        assert admission.try_admit() == (True, None)
        assert admission.try_admit() == (True, None)
        assert admission.try_admit() == (False, "queue-full")
        assert admission.pending == 2
        assert admission.rejected == {"queue-full": 1}

    def test_completion_frees_a_slot(self):
        admission = AdmissionController(
            SheddingConfig(max_pending=1, p99_budget_ms=None))
        assert admission.try_admit() == (True, None)
        assert admission.try_admit() == (False, "queue-full")
        admission.on_complete(1.0)
        assert admission.try_admit() == (True, None)

    def test_pending_never_goes_negative(self):
        admission = AdmissionController()
        admission.on_complete(1.0)
        assert admission.pending == 0


class TestSloGate:
    def _congested(self, **kw):
        cfg = dict(max_pending=64, p99_budget_ms=10.0, probe_pending=2,
                   reservoir=4)
        cfg.update(kw)
        admission = AdmissionController(SheddingConfig(**cfg))
        # Fill the latency reservoir with budget-busting completions.
        for _ in range(4):
            ok, _ = admission.try_admit()
            assert ok
            admission.on_complete(500.0)
        return admission

    def test_sheds_on_blown_p99_once_past_probe_depth(self):
        admission = self._congested()
        assert admission.try_admit() == (True, None)    # pending 1 < probe
        assert admission.try_admit() == (True, None)    # pending 2 == probe?
        # probe_pending=2: depths 0 and 1 are probe traffic, depth 2 sheds.
        assert admission.try_admit() == (False, "slo")
        assert admission.rejected == {"slo": 1}

    def test_probe_traffic_flows_below_probe_depth(self):
        admission = self._congested()
        ok, reason = admission.try_admit()
        assert ok and reason is None

    def test_fast_probes_lift_the_gate(self):
        admission = self._congested()
        # Probe completions refresh the (4-deep) reservoir with healthy
        # latencies; the controller must rediscover recovery by itself.
        for _ in range(4):
            ok, _ = admission.try_admit()
            assert ok
            admission.on_complete(1.0)
        assert admission.try_admit() == (True, None)
        assert admission.try_admit() == (True, None)
        assert admission.try_admit() == (True, None)    # gate fully open

    def test_snapshot_names_the_whole_policy(self):
        admission = self._congested()
        admission.try_admit()
        snap = admission.snapshot()
        assert snap["pending"] == 1
        assert snap["max_pending"] == 64
        assert snap["p99_budget_ms"] == 10.0
        assert snap["recent_p99_ms"] == 500.0
        assert snap["admitted"] == 5
        assert snap["rejected"] == {}
