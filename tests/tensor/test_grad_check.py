"""The gradient checker must itself be trustworthy: it has to *fail* on
deliberately wrong gradients, not just pass on right ones."""

import numpy as np
import pytest

from repro.tensor import Tensor, check_gradients, numerical_grad, ops
from repro.tensor.tensor import _unbroadcast


class TestNumericalGrad:
    def test_matches_analytic_for_square(self):
        x = Tensor(np.array([1.0, 2.0, 3.0], dtype=np.float32),
                   requires_grad=True)
        num = numerical_grad(lambda a: ops.mul(a, a), [x], wrt=0)
        np.testing.assert_allclose(num, 2 * x.data, rtol=1e-3, atol=1e-3)

    def test_restores_input_data(self):
        x = Tensor(np.array([1.0, 2.0], dtype=np.float32),
                   requires_grad=True)
        original = x.data.copy()
        numerical_grad(lambda a: ops.mul(a, a), [x], wrt=0)
        np.testing.assert_allclose(x.data, original, atol=1e-6)


class TestCheckGradients:
    def test_detects_wrong_gradient(self):
        def buggy_double(a):
            # Forward computes 2a but the registered backward claims 3.
            out = Tensor._make(2 * a.data, (a,), "buggy",
                               lambda grad: (3 * grad,))
            return out

        x = Tensor(np.array([1.0, -2.0], dtype=np.float32),
                   requires_grad=True)
        with pytest.raises(AssertionError):
            check_gradients(buggy_double, [x])

    def test_detects_missing_gradient(self):
        def dropping(a):
            return Tensor._make(a.data * 2, (a,), "dropping",
                                lambda grad: (None,))

        x = Tensor(np.array([1.0], dtype=np.float32), requires_grad=True)
        with pytest.raises(AssertionError):
            check_gradients(dropping, [x])

    def test_skips_inputs_without_grad(self):
        a = Tensor(np.array([1.0], dtype=np.float32), requires_grad=True)
        b = Tensor(np.array([2.0], dtype=np.float32))  # constant
        check_gradients(lambda a, b: ops.mul(a, b), [a, b])


class TestUnbroadcast:
    def test_no_op_when_shapes_match(self):
        g = np.ones((2, 3))
        assert _unbroadcast(g, (2, 3)) is g

    def test_sums_leading_axes(self):
        g = np.ones((4, 2, 3))
        out = _unbroadcast(g, (2, 3))
        np.testing.assert_array_equal(out, np.full((2, 3), 4.0))

    def test_sums_stretched_axes(self):
        g = np.ones((2, 5))
        out = _unbroadcast(g, (2, 1))
        np.testing.assert_array_equal(out, np.full((2, 1), 5.0))

    def test_combined(self):
        g = np.ones((4, 2, 5))
        out = _unbroadcast(g, (1, 5))
        np.testing.assert_array_equal(out, np.full((1, 5), 8.0))
