"""Convolution and pooling: correctness vs naive loops + gradient checks."""

import numpy as np
import pytest

from repro.tensor import (Tensor, avg_pool2d, check_gradients, conv2d,
                          conv_output_size, max_pool2d)
from repro.tensor.conv import col2im, im2col


def naive_conv2d(x, w, b=None, stride=1, padding=0):
    """Reference convolution with explicit loops."""
    n, c, h, wid = x.shape
    o, _, kh, kw = w.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (wid + 2 * padding - kw) // stride + 1
    out = np.zeros((n, o, oh, ow), dtype=np.float64)
    for ni in range(n):
        for oi in range(o):
            for yi in range(oh):
                for xi in range(ow):
                    patch = x[ni, :, yi * stride:yi * stride + kh,
                              xi * stride:xi * stride + kw]
                    out[ni, oi, yi, xi] = (patch * w[oi]).sum()
            if b is not None:
                out[ni, oi] += b[oi]
    return out


class TestConvOutputSize:
    @pytest.mark.parametrize("size,k,s,p,expected", [
        (8, 3, 1, 1, 8), (8, 3, 2, 1, 4), (8, 2, 2, 0, 4), (5, 5, 1, 0, 1),
        (7, 3, 1, 0, 5),
    ])
    def test_known_sizes(self, size, k, s, p, expected):
        assert conv_output_size(size, k, s, p) == expected


class TestIm2Col:
    def test_round_trip_is_multiplicity_weighted(self):
        # col2im(im2col(x)) adds each pixel once per window covering it;
        # with kernel=stride (non-overlapping) it is the identity.
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
        cols = im2col(x, 2, 2, stride=2, padding=0)
        back = col2im(cols, x.shape, 2, 2, stride=2, padding=0)
        np.testing.assert_allclose(back, x, rtol=1e-6)

    def test_adjointness(self):
        # <im2col(x), y> == <x, col2im(y)> — the defining adjoint property
        # that makes the conv backward pass correct.
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 2, 5, 5)).astype(np.float64)
        cols = im2col(x, 3, 3, stride=1, padding=1)
        y = rng.normal(size=cols.shape)
        lhs = (cols * y).sum()
        rhs = (x * col2im(y, x.shape, 3, 3, stride=1, padding=1)).sum()
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_column_count(self):
        x = np.zeros((1, 2, 6, 6), dtype=np.float32)
        cols = im2col(x, 3, 3, stride=1, padding=0)
        assert cols.shape == (1, 2 * 9, 4 * 4)


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 0), (2, 1)])
    def test_matches_naive(self, stride, padding):
        rng = np.random.default_rng(2)
        x = Tensor(rng.normal(size=(2, 3, 7, 7)))
        w = Tensor(rng.normal(size=(4, 3, 3, 3)))
        b = Tensor(rng.normal(size=(4,)))
        out = conv2d(x, w, b, stride=stride, padding=padding)
        ref = naive_conv2d(x.data, w.data, b.data, stride, padding)
        np.testing.assert_allclose(out.data, ref, rtol=1e-4, atol=1e-4)

    def test_1x1_conv(self):
        rng = np.random.default_rng(3)
        x = Tensor(rng.normal(size=(1, 4, 5, 5)))
        w = Tensor(rng.normal(size=(2, 4, 1, 1)))
        out = conv2d(x, w)
        ref = naive_conv2d(x.data, w.data)
        np.testing.assert_allclose(out.data, ref, rtol=1e-4, atol=1e-4)

    def test_channel_mismatch_raises(self):
        x = Tensor(np.zeros((1, 3, 5, 5)))
        w = Tensor(np.zeros((2, 4, 3, 3)))
        with pytest.raises(ValueError, match="channel mismatch"):
            conv2d(x, w)

    @pytest.mark.parametrize("stride,padding", [(1, 1), (2, 1)])
    def test_gradients(self, stride, padding):
        rng = np.random.default_rng(4)
        x = Tensor(rng.normal(size=(2, 2, 5, 5)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2, 3, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        check_gradients(
            lambda x, w, b: conv2d(x, w, b, stride=stride, padding=padding),
            [x, w, b])

    def test_gradients_without_bias(self):
        rng = np.random.default_rng(5)
        x = Tensor(rng.normal(size=(1, 2, 4, 4)), requires_grad=True)
        w = Tensor(rng.normal(size=(2, 2, 2, 2)), requires_grad=True)
        check_gradients(lambda x, w: conv2d(x, w, stride=2), [x, w])


class TestPooling:
    def test_max_pool_values(self):
        x = Tensor(np.array([[[[1.0, 2.0], [3.0, 4.0]]]]))
        out = max_pool2d(x, 2)
        np.testing.assert_allclose(out.data, [[[[4.0]]]])

    def test_max_pool_gradient_goes_to_argmax(self):
        x = Tensor(np.array([[[[1.0, 2.0], [3.0, 4.0]]]]), requires_grad=True)
        max_pool2d(x, 2).sum().backward()
        np.testing.assert_allclose(x.grad, [[[[0, 0], [0, 1.0]]]])

    def test_max_pool_gradcheck(self):
        rng = np.random.default_rng(6)
        x = Tensor(rng.normal(size=(2, 3, 6, 6)), requires_grad=True)
        check_gradients(lambda a: max_pool2d(a, 2), [x])

    def test_max_pool_with_stride(self):
        rng = np.random.default_rng(7)
        x = Tensor(rng.normal(size=(1, 1, 6, 6)), requires_grad=True)
        out = max_pool2d(x, 2, stride=3)
        assert out.shape == (1, 1, 2, 2)
        check_gradients(lambda a: max_pool2d(a, 2, stride=3), [x])

    def test_avg_pool_values(self):
        x = Tensor(np.array([[[[1.0, 2.0], [3.0, 4.0]]]]))
        np.testing.assert_allclose(avg_pool2d(x, 2).data, [[[[2.5]]]])

    def test_avg_pool_gradcheck(self):
        rng = np.random.default_rng(8)
        x = Tensor(rng.normal(size=(2, 2, 4, 4)), requires_grad=True)
        check_gradients(lambda a: avg_pool2d(a, 2), [x])

    def test_global_avg_pool(self):
        from repro.tensor import global_avg_pool2d
        rng = np.random.default_rng(9)
        x = Tensor(rng.normal(size=(2, 3, 4, 4)), requires_grad=True)
        out = global_avg_pool2d(x)
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out.data, x.data.mean(axis=(2, 3)), rtol=1e-5)
