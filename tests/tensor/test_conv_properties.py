"""Hypothesis property tests on convolution and pooling."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import Tensor, avg_pool2d, conv2d, conv_output_size, max_pool2d


def data(shape, seed):
    return np.random.default_rng(seed).normal(size=shape).astype(np.float32)


@settings(max_examples=30, deadline=None)
@given(st.integers(4, 9), st.integers(1, 3), st.integers(1, 2),
       st.integers(0, 2))
def test_output_shape_formula(size, kernel, stride, padding):
    if kernel > size + 2 * padding:
        return
    x = Tensor(data((1, 2, size, size), 0))
    w = Tensor(data((3, 2, kernel, kernel), 1))
    out = conv2d(x, w, stride=stride, padding=padding)
    expected = conv_output_size(size, kernel, stride, padding)
    assert out.shape == (1, 3, expected, expected)


@settings(max_examples=25, deadline=None)
@given(st.floats(min_value=-3, max_value=3), st.integers(0, 1000))
def test_conv_is_linear_in_input(scale, seed):
    x = data((1, 2, 5, 5), seed)
    w = Tensor(data((2, 2, 3, 3), seed + 1))
    base = conv2d(Tensor(x), w, padding=1).data
    scaled = conv2d(Tensor(x * np.float32(scale)), w, padding=1).data
    np.testing.assert_allclose(scaled, scale * base, rtol=1e-3, atol=1e-4)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 1000))
def test_conv_is_additive_in_weights(seed):
    x = Tensor(data((1, 2, 5, 5), seed))
    w1 = data((2, 2, 3, 3), seed + 1)
    w2 = data((2, 2, 3, 3), seed + 2)
    combined = conv2d(x, Tensor(w1 + w2), padding=1).data
    separate = (conv2d(x, Tensor(w1), padding=1).data
                + conv2d(x, Tensor(w2), padding=1).data)
    np.testing.assert_allclose(combined, separate, rtol=1e-3, atol=1e-4)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 1000))
def test_max_pool_dominates_avg_pool(seed):
    x = Tensor(data((2, 3, 6, 6), seed))
    mx = max_pool2d(x, 2).data
    avg = avg_pool2d(x, 2).data
    assert (mx >= avg - 1e-6).all()


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 1000))
def test_pooling_commutes_with_positive_scaling(seed):
    x = data((1, 2, 6, 6), seed)
    np.testing.assert_allclose(
        max_pool2d(Tensor(2.0 * x), 2).data,
        2.0 * max_pool2d(Tensor(x), 2).data, rtol=1e-5)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 1000))
def test_conv_translation_covariance(seed):
    # Shifting the input by the stride shifts the output by one (valid
    # region): conv with no padding, stride 1.
    x = data((1, 1, 6, 6), seed)
    w = Tensor(data((1, 1, 3, 3), seed + 1))
    out = conv2d(Tensor(x), w).data            # (1,1,4,4)
    shifted = np.roll(x, 1, axis=3)
    out_shifted = conv2d(Tensor(shifted), w).data
    np.testing.assert_allclose(out_shifted[..., 1:], out[..., :-1],
                               rtol=1e-4, atol=1e-5)
