"""Hypothesis property tests on the autograd engine.

These check structural invariants that must hold for *any* input, rather
than hand-picked examples: linearity of the gradient, adjoint consistency,
probability-simplex outputs, shape algebra.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.tensor import Tensor, ops

FLOAT = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False,
                  width=32)


def small_arrays(max_dims=3, max_side=5):
    return arrays(np.float32,
                  array_shapes(min_dims=1, max_dims=max_dims,
                               min_side=1, max_side=max_side),
                  elements=FLOAT)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_sum_grad_is_ones(data):
    x = Tensor(data, requires_grad=True)
    x.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(data))


@settings(max_examples=40, deadline=None)
@given(small_arrays(), st.floats(min_value=-5, max_value=5, width=32))
def test_scalar_mul_grad_is_scalar(data, c):
    x = Tensor(data, requires_grad=True)
    (x * float(c)).sum().backward()
    np.testing.assert_allclose(x.grad, np.full_like(data, c), rtol=1e-5,
                               atol=1e-6)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_add_commutes_in_value(data):
    a = Tensor(data)
    b = Tensor(data[::-1].copy() if data.ndim == 1 else data * 0.5)
    np.testing.assert_allclose(ops.add(a, b).data, ops.add(b, a).data)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_mean_equals_sum_over_size(data):
    x = Tensor(data)
    np.testing.assert_allclose(ops.mean(x).data,
                               ops.sum(x).data / data.size, rtol=1e-4,
                               atol=1e-5)


@settings(max_examples=40, deadline=None)
@given(arrays(np.float32, array_shapes(min_dims=2, max_dims=2,
                                       min_side=1, max_side=6),
              elements=FLOAT))
def test_softmax_is_probability_simplex(data):
    s = ops.softmax(Tensor(data), axis=1).data
    assert (s >= 0).all()
    np.testing.assert_allclose(s.sum(axis=1), np.ones(len(data)), rtol=1e-4)


@settings(max_examples=40, deadline=None)
@given(arrays(np.float32, array_shapes(min_dims=2, max_dims=2,
                                       min_side=1, max_side=6),
              elements=FLOAT))
def test_logsumexp_bounds_max(data):
    # max(x) <= logsumexp(x) <= max(x) + log(n)
    lse = ops.logsumexp(Tensor(data), axis=1).data
    mx = data.max(axis=1)
    n = data.shape[1]
    assert (lse >= mx - 1e-4).all()
    assert (lse <= mx + np.log(n) + 1e-4).all()


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_relu_output_nonnegative_and_idempotent(data):
    x = Tensor(data)
    y = ops.relu(x)
    assert (y.data >= 0).all()
    np.testing.assert_allclose(ops.relu(y).data, y.data)


@settings(max_examples=40, deadline=None)
@given(small_arrays(max_dims=2))
def test_reshape_preserves_sum_gradient(data):
    x = Tensor(data, requires_grad=True)
    ops.reshape(x, (-1,)).sum().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(data))


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_abs_is_nonnegative_and_even(data):
    x = Tensor(data)
    np.testing.assert_allclose(ops.abs(x).data, ops.abs(ops.neg(x)).data)
    assert (ops.abs(x).data >= 0).all()


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=4),
       st.integers(min_value=1, max_value=4),
       st.integers(min_value=1, max_value=4))
def test_matmul_shape_algebra(m, k, n):
    a = Tensor(np.zeros((m, k), dtype=np.float32))
    b = Tensor(np.zeros((k, n), dtype=np.float32))
    assert ops.matmul(a, b).shape == (m, n)


@settings(max_examples=30, deadline=None)
@given(small_arrays(max_dims=2))
def test_backward_is_linear_in_upstream_gradient(data):
    # grad(2·L) == 2·grad(L): run backward with doubled seed gradient.
    x1 = Tensor(data, requires_grad=True)
    y1 = (x1 * x1)
    y1.sum().backward()
    x2 = Tensor(data, requires_grad=True)
    y2 = (x2 * x2)
    (y2.sum() * 2.0).backward()
    np.testing.assert_allclose(x2.grad, 2 * x1.grad, rtol=1e-4, atol=1e-5)
