"""Tensor engine basics: construction, graph bookkeeping, backward rules."""

import numpy as np
import pytest

from repro.tensor import Tensor, is_grad_enabled, no_grad, ops, tensor


class TestConstruction:
    def test_default_dtype_is_float32(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.dtype == np.float32

    def test_shape_size_ndim(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.shape == (2, 3, 4)
        assert t.size == 24
        assert t.ndim == 3

    def test_factory_function(self):
        t = tensor([1.0], requires_grad=True, name="w")
        assert t.requires_grad
        assert t.name == "w"

    def test_leaf_has_no_parents(self):
        t = Tensor([1.0], requires_grad=True)
        assert t.is_leaf

    def test_repr_mentions_requires_grad(self):
        t = Tensor([1.0], requires_grad=True)
        assert "requires_grad=True" in repr(t)

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_len(self):
        assert len(Tensor(np.zeros((5, 2)))) == 5


class TestBackward:
    def test_scalar_backward_default_grad(self):
        x = Tensor([2.0, 3.0], requires_grad=True)
        y = (x * x).sum()
        y.backward()
        np.testing.assert_allclose(x.grad, [4.0, 6.0])

    def test_backward_requires_grad_error(self):
        x = Tensor([1.0])
        with pytest.raises(RuntimeError):
            x.backward()

    def test_non_scalar_backward_needs_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2
        with pytest.raises(RuntimeError):
            y.backward()

    def test_grad_accumulates_across_backwards(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        (x * 2).sum().backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph_accumulates_once_per_path(self):
        # y = x*x + x*x uses x through two paths.
        x = Tensor([3.0], requires_grad=True)
        a = x * x
        b = x * x
        (a + b).sum().backward()
        np.testing.assert_allclose(x.grad, [12.0])

    def test_same_tensor_used_twice_in_one_op(self):
        x = Tensor([3.0], requires_grad=True)
        (x * x).sum().backward()
        np.testing.assert_allclose(x.grad, [6.0])

    def test_deep_chain_does_not_recurse(self):
        # The topo sort is iterative; 5000 ops would blow Python's stack
        # with a recursive implementation.
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(5000):
            y = y + 1.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_retain_grad_on_interior_node(self):
        x = Tensor([2.0], requires_grad=True)
        mid = x * 3
        mid.retain_grad()
        (mid * 2).sum().backward()
        np.testing.assert_allclose(mid.grad, [2.0])
        np.testing.assert_allclose(x.grad, [6.0])

    def test_interior_node_grad_not_kept_by_default(self):
        x = Tensor([2.0], requires_grad=True)
        mid = x * 3
        (mid * 2).sum().backward()
        assert mid.grad is None


class TestNoGrad:
    def test_no_grad_disables_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad
        assert y.is_leaf

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        assert is_grad_enabled()

    def test_tensor_created_under_no_grad_never_requires(self):
        with no_grad():
            t = Tensor([1.0], requires_grad=True)
        assert not t.requires_grad


class TestDetach:
    def test_detach_shares_data(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        d = x.detach()
        assert d.data is x.data
        assert not d.requires_grad

    def test_detach_blocks_gradient(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 2
        z = y.detach() * 3
        assert not z.requires_grad
