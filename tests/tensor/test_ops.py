"""Gradient checks and semantics for every primitive op."""

import numpy as np
import pytest

from repro.tensor import Tensor, check_gradients, ops


def t(shape, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return Tensor(scale * rng.normal(size=shape), requires_grad=True)


class TestBinaryOps:
    def test_add_values(self):
        out = ops.add(Tensor([1.0, 2.0]), Tensor([3.0, 4.0]))
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    @pytest.mark.parametrize("fn", [ops.add, ops.sub, ops.mul, ops.div,
                                    ops.maximum, ops.minimum])
    def test_binary_gradients(self, fn):
        a = t((3, 4), seed=1)
        b = t((3, 4), seed=2, scale=1.5)
        b.data += 3.0  # keep div well-conditioned and avoid min/max ties
        check_gradients(fn, [a, b])

    @pytest.mark.parametrize("fn", [ops.add, ops.sub, ops.mul, ops.div])
    def test_broadcast_gradients(self, fn):
        a = t((2, 3, 4), seed=3)
        b = t((4,), seed=4)
        b.data += 3.0
        check_gradients(fn, [a, b])

    def test_broadcast_leading_axis(self):
        a = t((5, 3), seed=5)
        b = t((1, 3), seed=6)
        check_gradients(ops.mul, [a, b])

    def test_scalar_operand_promotion(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = (x + 1.0) * 2.0 - 3.0
        np.testing.assert_allclose(y.data, [1.0, 3.0])
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 2.0])

    def test_reflected_operators(self):
        x = Tensor([2.0], requires_grad=True)
        y = 1.0 - x
        z = 6.0 / x
        np.testing.assert_allclose(y.data, [-1.0])
        np.testing.assert_allclose(z.data, [3.0])

    def test_where_selects_and_routes_gradient(self):
        cond = np.array([True, False, True])
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        b = Tensor([10.0, 20.0, 30.0], requires_grad=True)
        out = ops.where(cond, a, b)
        np.testing.assert_allclose(out.data, [1.0, 20.0, 3.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0, 1.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0, 0.0])


class TestUnaryOps:
    @pytest.mark.parametrize("fn", [ops.neg, ops.exp, ops.tanh, ops.sigmoid])
    def test_smooth_unary_gradients(self, fn):
        check_gradients(fn, [t((4, 5), seed=7, scale=0.5)])

    def test_log_gradient(self):
        x = t((3, 3), seed=8)
        x.data = np.abs(x.data) + 1.0
        check_gradients(ops.log, [x])

    def test_sqrt_gradient(self):
        x = t((3, 3), seed=9)
        x.data = np.abs(x.data) + 1.0
        check_gradients(ops.sqrt, [x])

    def test_abs_gradient_away_from_zero(self):
        x = t((3, 3), seed=10)
        x.data += np.sign(x.data) * 0.5  # keep away from the kink
        check_gradients(ops.abs, [x])

    def test_pow_gradient(self):
        x = t((3,), seed=11)
        x.data = np.abs(x.data) + 0.5
        check_gradients(lambda a: ops.pow(a, 3.0), [x])

    def test_relu_values_and_grad(self):
        x = Tensor([-1.0, 0.5, 2.0], requires_grad=True)
        y = ops.relu(x)
        np.testing.assert_allclose(y.data, [0.0, 0.5, 2.0])
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 1.0])

    def test_clip_gradient_mask(self):
        x = Tensor([-2.0, 0.0, 2.0], requires_grad=True)
        y = ops.clip(x, -1.0, 1.0)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_dropout_mask_scales_gradient(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        mask = np.array([0.0, 2.0], dtype=np.float32)
        y = ops.dropout_mask(x, mask)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, mask)


class TestMatmul:
    def test_matmul_2d_gradients(self):
        check_gradients(ops.matmul, [t((3, 4), seed=12), t((4, 5), seed=13)])

    def test_matmul_matrix_vector(self):
        check_gradients(ops.matmul, [t((3, 4), seed=14), t((4,), seed=15)])

    def test_matmul_batched(self):
        check_gradients(ops.matmul, [t((2, 3, 4), seed=16), t((2, 4, 5), seed=17)])

    def test_matmul_broadcast_weights(self):
        # (B, M, K) @ (K, N): weight shared across batch.
        check_gradients(ops.matmul, [t((2, 3, 4), seed=18), t((4, 5), seed=19)])

    @pytest.mark.parametrize("shape_a,shape_b", [
        ((3,), (3,)),            # inner product
        ((4,), (4, 5)),          # row vector times matrix
        ((2, 3, 4), (4,)),       # batched matrix times vector
        ((4,), (2, 4, 5)),       # vector broadcast against a batch
        ((3, 4), (2, 4, 5)),     # matrix broadcast against a batch
        ((1, 3, 4), (2, 4, 5)),  # broadcast along the batch axis
    ])
    def test_matmul_vector_and_broadcast_gradients(self, shape_a, shape_b):
        # Regression: the 1-D promote/squeeze cases used to crash or mix
        # batch entries in backward (e.g. vec @ vec raised a reshape error).
        check_gradients(ops.matmul, [t(shape_a, seed=30), t(shape_b, seed=31)])


class TestReductions:
    @pytest.mark.parametrize("axis,keepdims", [(None, False), (0, False),
                                               (1, True), ((0, 2), False)])
    def test_sum_gradients(self, axis, keepdims):
        check_gradients(lambda a: ops.sum(a, axis=axis, keepdims=keepdims),
                        [t((2, 3, 4), seed=20)])

    @pytest.mark.parametrize("axis,keepdims", [(None, False), (0, False),
                                               (1, True), ((1, 2), True)])
    def test_mean_gradients(self, axis, keepdims):
        check_gradients(lambda a: ops.mean(a, axis=axis, keepdims=keepdims),
                        [t((2, 3, 4), seed=21)])

    def test_max_gradient_no_ties(self):
        x = Tensor(np.arange(12, dtype=np.float32).reshape(3, 4),
                   requires_grad=True)
        y = ops.max(x, axis=1)
        y.sum().backward()
        expected = np.zeros((3, 4))
        expected[:, 3] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_max_splits_gradient_among_ties(self):
        x = Tensor([[2.0, 2.0, 1.0]], requires_grad=True)
        ops.max(x, axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.5, 0.5, 0.0]])

    def test_negative_axis(self):
        x = t((2, 3), seed=22)
        out = ops.sum(x, axis=-1)
        assert out.shape == (2,)

    def test_logsumexp_matches_naive(self):
        x = t((4, 6), seed=23)
        out = ops.logsumexp(x, axis=1)
        naive = np.log(np.exp(x.data).sum(axis=1))
        np.testing.assert_allclose(out.data, naive, rtol=1e-5)

    def test_logsumexp_stable_for_large_inputs(self):
        x = Tensor([[1000.0, 1000.0]])
        out = ops.logsumexp(x, axis=1)
        assert np.isfinite(out.data).all()

    def test_logsumexp_gradient(self):
        check_gradients(lambda a: ops.logsumexp(a, axis=1), [t((3, 5), seed=24)])


class TestSoftmax:
    def test_softmax_sums_to_one(self):
        x = t((4, 7), seed=25)
        s = ops.softmax(x, axis=1)
        np.testing.assert_allclose(s.data.sum(axis=1), np.ones(4), rtol=1e-5)

    def test_log_softmax_gradient(self):
        check_gradients(lambda a: ops.log_softmax(a, axis=1), [t((3, 5), seed=26)])

    def test_log_softmax_matches_log_of_softmax(self):
        x = t((2, 5), seed=27)
        np.testing.assert_allclose(ops.log_softmax(x).data,
                                   np.log(ops.softmax(x).data), atol=1e-5)


class TestShapeOps:
    def test_reshape_roundtrip_gradient(self):
        check_gradients(lambda a: ops.reshape(a, (6, 2)), [t((3, 4), seed=28)])

    def test_transpose_gradient(self):
        check_gradients(lambda a: ops.transpose(a, (2, 0, 1)),
                        [t((2, 3, 4), seed=29)])

    def test_transpose_default_reverses(self):
        x = t((2, 3, 4), seed=30)
        assert ops.transpose(x).shape == (4, 3, 2)

    def test_flatten_keeps_batch(self):
        x = t((2, 3, 4, 5), seed=31)
        assert ops.flatten(x, start_dim=1).shape == (2, 60)

    def test_getitem_gradient_scatter(self):
        x = Tensor(np.arange(6, dtype=np.float32), requires_grad=True)
        y = x[np.array([0, 0, 3])]
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 0, 0, 1.0, 0, 0])

    def test_getitem_slice(self):
        x = t((4, 5), seed=32)
        y = x[1:3]
        assert y.shape == (2, 5)
        check_gradients(lambda a: a[1:3], [x])

    def test_concat_values_and_gradients(self):
        a, b = t((2, 3), seed=33), t((2, 2), seed=34)
        out = ops.concat([a, b], axis=1)
        assert out.shape == (2, 5)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))
        np.testing.assert_allclose(b.grad, np.ones((2, 2)))

    def test_stack_gradients(self):
        a, b = t((2, 3), seed=35), t((2, 3), seed=36)
        out = ops.stack([a, b], axis=0)
        assert out.shape == (2, 2, 3)
        (out * 2).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * np.ones((2, 3)))

    def test_pad2d_shape_and_gradient(self):
        x = t((1, 2, 3, 3), seed=37)
        y = ops.pad2d(x, 2)
        assert y.shape == (1, 2, 7, 7)
        check_gradients(lambda a: ops.pad2d(a, 2), [x])

    def test_pad2d_zero_padding_is_identity(self):
        x = t((1, 1, 2, 2), seed=38)
        assert ops.pad2d(x, 0) is x
