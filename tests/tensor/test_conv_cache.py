"""im2col signature cache and the inference-mode tape fast paths."""

import numpy as np
import pytest

from repro.tensor import Tensor, inference_mode, no_grad, ops
from repro.tensor.conv import (IM2COL_CACHE_SIZE, _SIGNATURE_CACHE,
                               clear_im2col_cache, conv2d, im2col,
                               im2col_gather, im2col_signature)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_im2col_cache()
    yield
    clear_im2col_cache()


class TestSignatureCache:
    def test_signature_is_memoized(self):
        a = im2col_signature(3, 8, 8, 3, 3, 1, 1)
        b = im2col_signature(3, 8, 8, 3, 3, 1, 1)
        assert a is b
        assert len(_SIGNATURE_CACHE) == 1

    def test_indices_built_lazily_and_once(self):
        sig = im2col_signature(3, 8, 8, 3, 3, 1, 1)
        assert sig._indices is None
        first = sig.indices
        assert sig.indices is first
        assert first.shape == (3 * 3 * 3, sig.oh * sig.ow)

    def test_cache_is_bounded(self):
        for size in range(IM2COL_CACHE_SIZE + 10):
            im2col_signature(1, 8 + size, 8, 3, 3, 1, 1)
        assert len(_SIGNATURE_CACHE) == IM2COL_CACHE_SIZE

    def test_lru_keeps_recently_used(self):
        keep = im2col_signature(3, 8, 8, 3, 3, 1, 1)
        for size in range(IM2COL_CACHE_SIZE - 1):
            im2col_signature(1, 9 + size, 8, 3, 3, 1, 1)
        # Touch the first signature, then overflow by one: the oldest
        # *untouched* entry must be evicted, not the one we refreshed.
        assert im2col_signature(3, 8, 8, 3, 3, 1, 1) is keep
        im2col_signature(2, 200, 8, 3, 3, 1, 1)
        assert im2col_signature(3, 8, 8, 3, 3, 1, 1) is keep

    def test_gather_matches_strided_im2col(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        for stride, padding in ((1, 1), (2, 0), (2, 1)):
            np.testing.assert_array_equal(
                im2col_gather(x, 3, 3, stride, padding),
                im2col(x, 3, 3, stride, padding))

    def test_gather_supports_out_buffer(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        expected = im2col(x, 3, 3, 1, 1)
        out = np.empty_like(expected)
        result = im2col_gather(x, 3, 3, 1, 1, out=out)
        assert result.base is out or result is out
        np.testing.assert_array_equal(result, expected)


class TestInferenceModeFastPaths:
    def test_no_grad_conv_builds_no_graph(self):
        x = Tensor(np.random.rand(2, 3, 8, 8).astype(np.float32),
                   requires_grad=True)
        w = Tensor(np.random.rand(4, 3, 3, 3).astype(np.float32),
                   requires_grad=True)
        with no_grad():
            out = conv2d(x, w, padding=1)
        assert out._parents == ()
        assert out._backward is None

    def test_inference_mode_is_forward_only(self):
        x = Tensor(np.random.rand(2, 5).astype(np.float32),
                   requires_grad=True)
        with inference_mode():
            out = ops.relu(ops.mul(x, x))
        assert out._parents == ()

    def test_fast_path_matches_taped_forward(self):
        rng = np.random.default_rng(2)
        x = Tensor(rng.normal(size=(2, 3, 8, 8)).astype(np.float32),
                   requires_grad=True)
        w = Tensor(rng.normal(size=(4, 3, 3, 3)).astype(np.float32),
                   requires_grad=True)
        taped = conv2d(x, w, padding=1)
        with no_grad():
            untaped = conv2d(x, w, padding=1)
        np.testing.assert_array_equal(taped.data, untaped.data)

    def test_constant_inputs_skip_tape_outside_no_grad(self):
        # No tensor requires grad => no backward closure even when the
        # global grad switch is on.
        a = Tensor(np.ones((2, 2), dtype=np.float32))
        b = Tensor(np.ones((2, 2), dtype=np.float32))
        out = ops.add(a, b)
        assert out._parents == ()


class TestDtypeInSignature:
    """The int8 engine lowers through the same geometries as float32;
    sharing a signature across dtypes would alias per-dtype derived
    state, so the dtype is part of the cache key."""

    def test_distinct_dtypes_get_distinct_signatures(self):
        f32 = im2col_signature(3, 8, 8, 3, 3, 1, 1, dtype=np.float32)
        i8 = im2col_signature(3, 8, 8, 3, 3, 1, 1, dtype=np.int8)
        assert f32 is not i8
        assert f32.dtype == np.float32 and i8.dtype == np.int8
        assert len(_SIGNATURE_CACHE) == 2

    def test_same_dtype_still_memoizes(self):
        a = im2col_signature(3, 8, 8, 3, 3, 1, 1, dtype=np.int8)
        b = im2col_signature(3, 8, 8, 3, 3, 1, 1, dtype=np.int8)
        assert a is b

    def test_im2col_keys_cache_by_input_dtype(self):
        rng = np.random.default_rng(0)
        xf = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        xi = rng.integers(-127, 128, size=(2, 3, 8, 8), dtype=np.int8)
        cols_f = im2col(xf, 3, 3, 1, 1)
        cols_i = im2col(xi, 3, 3, 1, 1)
        assert cols_f.dtype == np.float32
        assert cols_i.dtype == np.int8
        keys = {(sig.dtype) for sig in _SIGNATURE_CACHE.values()}
        assert np.dtype(np.float32) in keys and np.dtype(np.int8) in keys

    def test_int8_gather_matches_strided(self):
        rng = np.random.default_rng(1)
        x = rng.integers(-127, 128, size=(2, 3, 8, 8), dtype=np.int8)
        np.testing.assert_array_equal(im2col(x, 3, 3, 1, 1),
                                      im2col_gather(x, 3, 3, 1, 1))
