"""Example scripts must at least be importable and syntactically sound.

Full example runs take minutes each (they are demonstration workloads, not
tests); the end-to-end behaviour they exercise is covered by
``tests/integration`` at a smaller scale. Here we guarantee the shipped
scripts compile and expose a ``main`` entry point.
"""

import ast
import py_compile
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(script):
    py_compile.compile(str(script), doraise=True)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_has_main_guard(script):
    tree = ast.parse(script.read_text())
    has_main = any(isinstance(node, ast.FunctionDef) and node.name == "main"
                   for node in tree.body)
    assert has_main, f"{script.name} should define main()"
    assert 'if __name__ == "__main__":' in script.read_text()


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_docstring_mentions_usage(script):
    tree = ast.parse(script.read_text())
    doc = ast.get_docstring(tree) or ""
    assert "Usage" in doc, f"{script.name} should document its usage"


def test_expected_examples_present():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "resnet_pruning.py", "baseline_comparison.py",
            "regularizer_ablation.py", "mlp_neuron_pruning.py",
            "hardware_cost.py"} <= names
