"""CLI workflow: train -> prune -> profile -> compare -> specialize."""

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def base_checkpoint(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "base.npz"
    code = main([
        "train", "--model", "vgg11", "--width", "0.125",
        "--num-classes", "3", "--image-size", "8",
        "--samples-per-class", "20", "--epochs", "8", "--quiet",
        "--out", str(path),
    ])
    assert code == 0
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["transmogrify"])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train", "--out", "x.npz"])
        assert args.model == "vgg16"
        assert args.lambda1 == pytest.approx(1e-4)
        assert args.lambda2 == pytest.approx(1e-2)

    def test_prune_strategy_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["prune", "--checkpoint", "a",
                                       "--out", "b", "--strategy", "magic"])

    def test_serve_defaults_and_repeatable_models(self):
        args = build_parser().parse_args(
            ["serve", "--model", "a=a.npz", "--model", "b@v2=b.npz"])
        assert args.model == ["a=a.npz", "b@v2=b.npz"]
        assert args.port == 7071
        assert args.max_pending == 64
        assert args.p99_budget_ms == pytest.approx(200.0)

    def test_serve_requires_a_model_or_resume(self):
        # --model is no longer parser-mandatory (a manifest via --resume
        # is an alternative source of deployments); a bare `serve` is
        # refused at runtime instead.
        from repro.cli import main
        assert main(["serve"]) == 1

    def test_serve_lifecycle_flag_defaults(self):
        args = build_parser().parse_args(["serve", "--resume", "mf"])
        assert args.resume == "mf"
        assert args.drain_grace == pytest.approx(30.0)
        assert args.request_timeout == pytest.approx(30.0)

    def test_serve_rejects_malformed_model_spec(self):
        from repro.cli import main
        assert main(["serve", "--model", "no-checkpoint-here"]) == 1

    def test_serve_bench_defaults(self):
        args = build_parser().parse_args(["serve-bench"])
        assert args.connections == "1,4,16"
        assert args.requests == 40
        assert not args.smoke


class TestWorkflow:
    def test_train_writes_checkpoint(self, base_checkpoint):
        assert base_checkpoint.exists()
        from repro.io import load_model
        model = load_model(base_checkpoint)
        assert model.arch["name"] == "vgg11"

    def test_prune(self, base_checkpoint, tmp_path, capsys):
        out = tmp_path / "pruned.npz"
        code = main([
            "prune", "--checkpoint", str(base_checkpoint),
            "--out", str(out), "--samples-per-class", "20",
            "--finetune-epochs", "1", "--max-iterations", "2",
            "--images-per-class", "4", "--tolerance", "0.5",
            "--epochs", "1", "--quiet",
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "ratio=" in captured
        from repro.io import load_model
        pruned = load_model(out)
        assert pruned.num_parameters() > 0

    def test_profile(self, base_checkpoint, capsys):
        code = main(["profile", "--checkpoint", str(base_checkpoint)])
        assert code == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out
        assert "total FLOPs" in out

    def test_compare(self, base_checkpoint, capsys):
        code = main([
            "compare", "--checkpoint", str(base_checkpoint),
            "--methods", "l1,random", "--samples-per-class", "20",
            "--target-ratio", "0.15", "--finetune-epochs", "1",
            "--max-iterations", "3", "--epochs", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "L1 [23]" in out
        assert "Random" in out

    def test_specialize(self, base_checkpoint, tmp_path, capsys):
        out = tmp_path / "spec.npz"
        code = main([
            "specialize", "--checkpoint", str(base_checkpoint),
            "--classes", "0,2", "--out", str(out),
            "--samples-per-class", "20", "--finetune-epochs", "2",
            "--images-per-class", "4", "--epochs", "2",
        ])
        assert code == 0
        from repro.io import load_model
        model = load_model(out)
        assert model.classifier.out_features == 2


class TestRun:
    RUN_ARGS = ["--samples-per-class", "20", "--finetune-epochs", "1",
                "--max-iterations", "1", "--images-per-class", "4",
                "--tolerance", "0.5", "--epochs", "1", "--quiet"]

    def test_journaled_run_and_resume(self, base_checkpoint, tmp_path,
                                      capsys):
        run_dir = tmp_path / "run"
        code = main(["run", "--checkpoint", str(base_checkpoint),
                     "--run-dir", str(run_dir)] + self.RUN_ARGS)
        assert code == 0
        out = capsys.readouterr().out
        assert "stopped because:" in out
        assert (run_dir / "journal.jsonl").exists()
        assert (run_dir / "checkpoints" / "baseline.npz").exists()
        # Resuming a finished run reconstructs without CLI-side state.
        export = tmp_path / "resumed.npz"
        code = main(["run", "--run-dir", str(run_dir), "--resume",
                     "--out", str(export), "--quiet"])
        assert code == 0
        from repro.io import load_model
        assert load_model(export).num_parameters() > 0

    def test_fresh_run_requires_checkpoint(self, tmp_path):
        with pytest.raises(SystemExit, match="checkpoint"):
            main(["run", "--run-dir", str(tmp_path / "r"), "--quiet"])

    def test_resume_without_journal_fails(self, tmp_path):
        empty = tmp_path / "none"
        empty.mkdir()
        with pytest.raises((SystemExit, FileNotFoundError)):
            main(["run", "--run-dir", str(empty), "--resume", "--quiet"])
