"""Quantized artifacts through the serving deploy gate."""

import numpy as np
import pytest

from repro.infer import compile_model
from repro.models import build_model
from repro.qinfer import save_plan
from repro.serve.manifest import restore_registry
from repro.serve.registry import ModelRegistry, SwapValidationError
from repro.verify.invariants import perturb_batchnorm_stats


@pytest.fixture()
def setup(tmp_path):
    rng = np.random.default_rng(0)
    loader = [rng.normal(size=(16, 3, 8, 8)).astype(np.float32)
              for _ in range(3)]
    model = build_model("vgg11", num_classes=3, image_size=8, width=0.25,
                        seed=0)
    perturb_batchnorm_stats(model, seed=0)
    model.eval()
    engine = compile_model(model, loader[0], max_batch=16,
                           quantize="int8", calibrate=loader)
    artifact = tmp_path / "model.rplan"
    save_plan(engine.plan, artifact)
    return model, loader, engine, artifact, tmp_path


class TestQuantizedModelDeploy:
    def test_deploy_reports_gate_metrics(self, setup):
        model, loader, _, _, _ = setup
        with ModelRegistry(max_batch=16) as registry:
            report = registry.deploy("m", "v1", model=model,
                                     quantize="int8", calibrate=loader)
            assert report.quantized
            assert report.top1_agreement >= 0.9

    def test_low_agreement_gate_rejects(self, setup):
        model, loader, _, _, _ = setup
        with ModelRegistry(max_batch=16) as registry:
            with pytest.raises(SwapValidationError):
                registry.deploy("m", "v1", model=model, quantize="int8",
                                calibrate=loader, min_top1_agreement=1.01)

    def test_quantized_deploy_journals_an_artifact(self, setup, tmp_path):
        model, loader, _, _, _ = setup
        manifest_dir = tmp_path / "manifest"
        with ModelRegistry(max_batch=16,
                           manifest_dir=manifest_dir) as registry:
            registry.deploy("m", "v1", model=model,
                            quantize="int8", calibrate=loader)
            expected = registry.resolve("m")[1].engine.run(loader[0][:4])
        # Restart: the journaled plan artifact restores the same engine
        # without requantizing (no calibration data at restore time).
        with ModelRegistry(max_batch=16,
                           manifest_dir=manifest_dir) as restored:
            report = restore_registry(restored, manifest_dir)
            assert [e["name"] for e in report.restored] == ["m"]
            assert report.restored[0]["checkpoint"].endswith(".rplan")
            out = restored.resolve("m")[1].engine.run(loader[0][:4])
            np.testing.assert_array_equal(out, expected)


class TestArtifactDeploy:
    def test_artifact_swap_over_float_line(self, setup):
        model, loader, engine, artifact, _ = setup
        with ModelRegistry(max_batch=16) as registry:
            registry.deploy("m", "v1", model=model, input_shape=(3, 8, 8))
            report = registry.deploy("m", "v2", artifact=artifact)
            assert report.quantized
            assert report.swapped_from == "v1"
            assert report.top1_agreement >= 0.9
            out = registry.resolve("m")[1].engine.run(loader[0][:4])
            np.testing.assert_array_equal(out, engine.run(loader[0][:4]))

    def test_corrupted_artifact_rejected_old_version_serves(self, setup,
                                                            tmp_path):
        model, loader, _, artifact, _ = setup
        raw = bytearray(artifact.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        doomed = tmp_path / "doomed.rplan"
        doomed.write_bytes(bytes(raw))
        with ModelRegistry(max_batch=16) as registry:
            registry.deploy("m", "v1", artifact=artifact)
            before = registry.resolve("m")[1].engine.run(loader[0][:4])
            with pytest.raises(SwapValidationError):
                registry.deploy("m", "v2", artifact=doomed)
            assert registry.models()["m"]["active"] == "m@v1"
            after = registry.resolve("m")[1].engine.run(loader[0][:4])
            np.testing.assert_array_equal(before, after)

    def test_artifact_deploy_has_no_eager_fallback(self, setup):
        _, loader, _, artifact, _ = setup
        with ModelRegistry(max_batch=16) as registry:
            registry.deploy("m", "v1", artifact=artifact)
            line, version = registry.resolve("m")
            assert version.model is None
            with pytest.raises(RuntimeError):
                registry.eager_infer(line, version, loader[0][0])

    def test_exactly_one_source_required(self, setup):
        model, _, _, artifact, _ = setup
        with ModelRegistry(max_batch=16) as registry:
            with pytest.raises(ValueError):
                registry.deploy("m", "v1", model=model, artifact=artifact)
            with pytest.raises(ValueError):
                registry.deploy("m", "v1")
