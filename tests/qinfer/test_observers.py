"""Calibration observers: determinism, edge cases, scale semantics."""

import numpy as np
import pytest

from repro.qinfer.observers import (OBSERVERS, CalibrationError,
                                    MinMaxObserver, PercentileObserver,
                                    make_observer)


def _batches(seed, n=5, shape=(16, 8)):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=shape).astype(np.float32) for _ in range(n)]


class TestMinMax:
    def test_scale_is_amax_over_qmax(self):
        ob = MinMaxObserver()
        ob.update(np.array([-2.54, 1.0], dtype=np.float32))
        assert ob.scale() == pytest.approx(2.54 / 127)

    def test_empty_observer_raises(self):
        with pytest.raises(CalibrationError):
            MinMaxObserver().scale()

    def test_all_zero_activations_get_unit_grid(self):
        ob = MinMaxObserver()
        ob.update(np.zeros(8, dtype=np.float32))
        assert ob.scale() == pytest.approx(1.0 / 127)

    def test_non_finite_activations_raise(self):
        # max() silently drops NaN (NaN comparisons are False), so the
        # observer must check the batch itself rather than the running max.
        ob = MinMaxObserver()
        with pytest.raises(CalibrationError):
            ob.update(np.array([1.0, np.nan], dtype=np.float32))


class TestPercentile:
    def test_ignores_a_single_outlier(self):
        bulk = np.ones(100_000, dtype=np.float32)
        outlier = np.array([1000.0], dtype=np.float32)
        minmax, pct = MinMaxObserver(), PercentileObserver()
        for ob in (minmax, pct):
            ob.update(bulk)
            ob.update(outlier)
        assert minmax.scale() == pytest.approx(1000.0 / 127)
        assert pct.scale() < 10 / 127

    def test_range_growth_preserves_counts(self):
        # Feed small values first so the histogram range is tight, then a
        # much larger batch: the range-doubling rebin must keep the small
        # values inside the histogram (the quantile still sees them).
        ob = PercentileObserver(percentile=50.0)
        ob.update(np.full(1000, 0.1, dtype=np.float32))
        ob.update(np.full(10, 100.0, dtype=np.float32))
        # Median of 1010 samples is still ~0.1, far below 100.
        assert ob.scale() < 1.0 / 127

    def test_full_percentile_matches_minmax(self):
        data = _batches(3)
        minmax, pct = MinMaxObserver(), PercentileObserver(percentile=100.0)
        for batch in data:
            minmax.update(batch)
            pct.update(batch)
        # Histogram edges quantize the max upward by at most one bin.
        assert pct.scale() >= minmax.scale()
        assert pct.scale() <= minmax.scale() * 1.01


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(OBSERVERS))
    def test_same_stream_same_scale(self, name):
        scales = []
        for _ in range(2):
            ob = make_observer(name)
            for batch in _batches(11):
                ob.update(batch)
            scales.append(ob.scale())
        assert scales[0] == scales[1]

    def test_minmax_and_percentile_agree_on_tame_data(self):
        # Without outliers the two observers see (nearly) the same range —
        # a sanity anchor that percentile clipping is not distorting scales.
        data = _batches(17)
        minmax, pct = MinMaxObserver(), PercentileObserver()
        for batch in data:
            minmax.update(batch)
            pct.update(batch)
        assert pct.scale() == pytest.approx(minmax.scale(), rel=0.05)


class TestMakeObserver:
    def test_by_name_class_and_instance(self):
        assert isinstance(make_observer("minmax"), MinMaxObserver)
        assert isinstance(make_observer(PercentileObserver),
                          PercentileObserver)
        proto = PercentileObserver(percentile=99.0)
        assert make_observer(proto) is proto

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_observer("does-not-exist")
