"""Calibration over a loader: targets, determinism, failure modes."""

import numpy as np
import pytest

from repro.infer import compile_model
from repro.models import build_model
from repro.qinfer import collect_scales, observation_targets
from repro.qinfer.observers import CalibrationError, PercentileObserver
from repro.verify.invariants import perturb_batchnorm_stats


def _model(seed=0):
    model = build_model("vgg11", num_classes=3, image_size=8, width=0.25,
                        seed=seed)
    perturb_batchnorm_stats(model, seed=seed)
    model.eval()
    return model


def _loader(seed=0, n=3):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=(16, 3, 8, 8)).astype(np.float32)
            for _ in range(n)]


def _float_plan(model, example):
    return compile_model(model, example, max_batch=16).plan


class TestTargets:
    def test_targets_cover_conv_and_linear_boundaries(self):
        model = _model()
        plan = _float_plan(model, _loader()[0])
        targets = observation_targets(plan)
        assert plan.input_id in targets
        for step in plan.steps:
            if step.op in ("conv2d", "conv2d_relu", "linear"):
                assert step.output in targets
        assert not any(vid in plan.constants for vid in targets)


class TestCollectScales:
    def test_empty_loader_raises(self):
        model = _model()
        plan = _float_plan(model, _loader()[0])
        with pytest.raises(CalibrationError):
            collect_scales(plan, [])

    def test_deterministic_for_fixed_loader(self):
        model = _model()
        plan = _float_plan(model, _loader()[0])
        first = collect_scales(plan, _loader(3), observer="percentile")
        second = collect_scales(plan, _loader(3), observer="percentile")
        assert first == second
        third = collect_scales(plan, _loader(3), observer="minmax")
        assert set(third) == set(first)

    def test_observer_prototype_not_shared_between_values(self):
        # Passing an *instance* must act as a prototype: every observed
        # value gets its own copy, not a shared accumulator.
        model = _model()
        plan = _float_plan(model, _loader()[0])
        proto = PercentileObserver(percentile=99.0)
        scales = collect_scales(plan, _loader(5), observer=proto)
        assert len(set(scales.values())) > 1
        with pytest.raises(CalibrationError):
            proto.scale()   # the prototype itself saw no batches

    def test_max_batches_caps_the_pass(self):
        model = _model()
        plan = _float_plan(model, _loader()[0])
        batches = _loader(7, n=6)
        capped = collect_scales(plan, batches, observer="minmax",
                                max_batches=2)
        full = collect_scales(plan, batches[:2], observer="minmax")
        assert capped == full

    def test_labelled_batches_accepted(self):
        model = _model()
        plan = _float_plan(model, _loader()[0])
        labelled = [(x, np.zeros(len(x), np.int64)) for x in _loader(1)]
        scales = collect_scales(plan, labelled)
        assert all(s > 0 for s in scales.values())


class TestCompileModelQuantize:
    def test_requires_calibration_loader(self):
        model = _model()
        with pytest.raises(ValueError):
            compile_model(model, _loader()[0], quantize="int8")

    def test_rejects_unknown_mode(self):
        model = _model()
        with pytest.raises(ValueError):
            compile_model(model, _loader()[0], quantize="int4",
                          calibrate=_loader())

    def test_validation_compares_native_to_reference(self):
        model = _model()
        engine = compile_model(model, _loader()[0], max_batch=16,
                               quantize="int8", calibrate=_loader())
        assert engine.quantized
        report = engine.optimization
        assert report is not None
        assert any("int8" in note for note in report.notes)
