"""Int8 kernel exactness: certificates, chunking, float-reference accuracy."""

import numpy as np
import pytest

from repro.infer import compile_model
from repro.models import build_model
from repro.qinfer import F32_EXACT_LIMIT, QMAX, accumulation_chunks
from repro.qinfer.kernels import gemm_matrices, quantize_bias
from repro.qinfer.reference import run_reference
from repro.verify.invariants import perturb_batchnorm_stats


def _calibration(seed, shape=(16, 3, 8, 8), n=3):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=shape).astype(np.float32) for _ in range(n)]


def _quantized_engine(name="vgg11", seed=0, **kwargs):
    kwargs.setdefault("num_classes", 3)
    kwargs.setdefault("image_size", 8)
    kwargs.setdefault("width", 0.25)
    model = build_model(name, seed=seed, **kwargs)
    perturb_batchnorm_stats(model, seed=seed)
    model.eval()
    loader = _calibration(seed)
    return model, compile_model(model, loader[0], max_batch=16,
                                quantize="int8", calibrate=loader)


class TestCertificate:
    def test_single_chunk_when_bound_is_small(self):
        wq = np.ones((9, 4), dtype=np.int64)      # bound = 9 * 127 << 2^24
        assert accumulation_chunks(QMAX * np.abs(wq)) == [(0, 9)]

    def test_chunks_split_before_the_exactness_limit(self):
        # Adversarial: every tap contributes the maximum 127*127 product,
        # so only floor(2^24 / 127^2) = 1040 taps fit in one exact chunk.
        k = 4000
        rows = np.full((k, 1), QMAX * QMAX, dtype=np.int64)
        chunks = accumulation_chunks(rows)
        assert len(chunks) > 1
        assert chunks[0] == (0, F32_EXACT_LIMIT // (QMAX * QMAX))
        assert chunks[-1][1] == k
        for (a, b), (c, d) in zip(chunks, chunks[1:]):
            assert b == c and a < b
        for a, b in chunks:
            assert int(rows[a:b].sum(axis=0).max()) < F32_EXACT_LIMIT

    def test_bias_row_counts_toward_the_bound(self):
        wq = np.zeros((4, 2, 1, 1), dtype=np.int32)
        bias_q = np.array([F32_EXACT_LIMIT - 1, 0, 0, 0], dtype=np.int64)
        rows = gemm_matrices(wq, bias_q)[1]
        assert rows.shape == (2 * 1 * 1 + 1, 4)
        # Any weight contribution at all must now force a split.
        rows[0] = 1
        assert len(accumulation_chunks(rows)) > 1

    def test_degenerate_bias_rejected(self):
        wq = np.zeros((1, 1), dtype=np.int32)
        with pytest.raises(ValueError):
            gemm_matrices(wq, np.array([2 ** 25], dtype=np.int64))


class TestQuantizeBias:
    def test_integer_grid(self):
        bias = np.array([0.5, -1.25], dtype=np.float32)
        bq = quantize_bias(bias, np.array([0.1], np.float32), 0.05)
        assert bq.dtype == np.int64
        np.testing.assert_array_equal(bq, [100, -250])


class TestChunkedPathExactness:
    def test_adversarial_weights_stay_bitwise_exact(self):
        # A linear layer wide enough that saturated codes overflow the f32
        # bound: in_features * 127^2 >= 2^24 forces the chunked (f64
        # cross-chunk) accumulator, which must still match the exact
        # int64 reference bit for bit.
        from repro.nn import Linear, Module

        in_features = 1200  # 1200 * 127^2 ≈ 19.3M > 2^24: must chunk
        rng = np.random.default_rng(0)

        class Head(Module):
            def __init__(self):
                super().__init__()
                self.fc = Linear(in_features, 8)

            def forward(self, x):
                return self.fc(x)

        model = Head()
        # Constant-magnitude weights quantize to saturated codes, the
        # worst case for the accumulator bound.
        signs = rng.choice([-1.0, 1.0], size=model.fc.weight.data.shape)
        model.fc.weight.data = (0.01 * signs).astype(np.float32)
        model.eval()

        loader = [(10.0 * rng.choice([-1.0, 1.0],
                                     size=(8, in_features))).astype(
                                         np.float32) for _ in range(2)]
        engine = compile_model(model, loader[0], max_batch=8,
                               quantize="int8", calibrate=loader,
                               observer="minmax")
        assert engine.quantized
        qlinear = [s for s in engine.plan.steps if s.op == "qlinear"]
        assert qlinear, "linear layer was not quantized"
        wq = qlinear[0].params["weight_q"]
        rows = gemm_matrices(wq, None)[1]
        assert len(accumulation_chunks(rows)) > 1, \
            "test is not exercising the chunked accumulator"
        x = (10.0 * rng.choice([-1.0, 1.0],
                               size=(8, in_features))).astype(np.float32)
        native = engine.run(x)
        reference = run_reference(engine.plan, x)
        np.testing.assert_array_equal(native, reference)


class TestFloatReferenceAccuracy:
    """Documented tolerance: quantized logits track eager float logits.

    int8 per-channel weights + per-tensor activations keep logits within
    1.0 absolute of eager on these models (residual adds accumulate the
    most requantization error), and top-1 decisions agree on >= 90% of
    random probes — the same threshold the deploy gate enforces
    (``ModelRegistry.deploy(min_top1_agreement=0.9)``).
    """

    @pytest.mark.parametrize("name,width", [("vgg11", 0.25),
                                            ("resnet20", 0.25),
                                            ("mlp", 0.25)])
    def test_quantized_close_to_eager(self, name, width):
        from repro.tensor import Tensor, no_grad

        model, engine = _quantized_engine(name, width=width)
        x = _calibration(99)[0]
        with no_grad():
            eager = model(Tensor(x)).data
        out = engine.run(x)
        assert np.max(np.abs(out - eager)) < 1.0
        top1 = np.mean(np.argmax(out, -1) == np.argmax(eager, -1))
        assert top1 >= 0.9

    def test_engine_matches_reference_bitwise(self):
        _, engine = _quantized_engine("vgg11")
        x = _calibration(5)[0]
        native = engine.run(x)
        reference = run_reference(engine.plan, x)
        assert native.dtype == reference.dtype
        np.testing.assert_array_equal(native, reference)

    def test_quantized_plan_contains_int8_steps(self):
        _, engine = _quantized_engine("vgg11")
        ops = {s.op for s in engine.plan.steps}
        assert "qconv2d" in ops
        # Boundaries: activations enter the int8 domain explicitly; the
        # final quantized op emits float32 from its epilogue (no separate
        # dequantize step needed), so the engine's output stays float.
        assert "quantize" in ops
        out = engine.run(_calibration(1)[0])
        assert out.dtype == np.float32
        assert engine.quantized

    def test_batch_chunking_matches_single_shot(self):
        _, engine = _quantized_engine("vgg11")
        x = np.concatenate([_calibration(7)[0]] * 3)  # 48 > max_batch=16
        full = engine.run(x)
        parts = np.concatenate([engine.run(x[i:i + 16])
                                for i in range(0, 48, 16)])
        np.testing.assert_array_equal(full, parts)
