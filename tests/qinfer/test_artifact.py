"""Plan artifacts: round-trip fidelity, corruption detection, honest bytes."""

from pathlib import Path

import numpy as np
import pytest

from repro.infer import compile_model
from repro.models import build_model
from repro.qinfer import (ArtifactCorruptError, load_plan, plan_size_bytes,
                          save_plan, run_reference)
from repro.verify.invariants import perturb_batchnorm_stats


@pytest.fixture(scope="module")
def engines():
    rng = np.random.default_rng(0)
    loader = [rng.normal(size=(16, 3, 8, 8)).astype(np.float32)
              for _ in range(3)]
    model = build_model("vgg11", num_classes=3, image_size=8, width=0.25,
                        seed=0)
    perturb_batchnorm_stats(model, seed=0)
    model.eval()
    fp32 = compile_model(model, loader[0], max_batch=16)
    int8 = compile_model(model, loader[0], max_batch=16,
                         quantize="int8", calibrate=loader)
    return fp32, int8, loader[0]


class TestRoundTrip:
    def test_quantized_plan_round_trips_bitwise(self, engines, tmp_path):
        _, int8, x = engines
        path = tmp_path / "plan.rplan"
        digest = save_plan(int8.plan, path)
        assert isinstance(digest, str) and len(digest) == 64
        restored = load_plan(path)
        from repro.infer.runtime import InferenceEngine
        engine = InferenceEngine(restored, max_batch=16)
        assert engine.quantized
        np.testing.assert_array_equal(engine.run(x), int8.run(x))

    def test_weight_codes_stay_int8_on_disk(self, engines, tmp_path):
        _, int8, _ = engines
        path = tmp_path / "plan.rplan"
        save_plan(int8.plan, path)
        restored = load_plan(path)
        codes = [s.params["weight_q"] for s in restored.steps
                 if "weight_q" in s.params]
        assert codes and all(c.dtype == np.int8 for c in codes)

    def test_reference_runs_on_loaded_plan(self, engines, tmp_path):
        _, int8, x = engines
        path = tmp_path / "plan.rplan"
        save_plan(int8.plan, path)
        np.testing.assert_array_equal(run_reference(load_plan(path), x),
                                      int8.run(x))


class TestSizeAccounting:
    def test_int8_artifact_is_at_least_3x_smaller(self, engines, tmp_path):
        fp32, int8, _ = engines
        a = tmp_path / "fp32.rplan"
        b = tmp_path / "int8.rplan"
        save_plan(fp32.plan, a)
        save_plan(int8.plan, b)
        ratio = a.stat().st_size / b.stat().st_size
        assert ratio >= 3.0, f"artifact only shrank {ratio:.2f}x"

    def test_plan_size_bytes_tracks_native_dtypes(self, engines):
        fp32, int8, _ = engines
        assert plan_size_bytes(int8.plan) * 3 < plan_size_bytes(fp32.plan)


class TestCorruption:
    def test_payload_bit_flip_detected(self, engines, tmp_path):
        _, int8, _ = engines
        path = tmp_path / "plan.rplan"
        save_plan(int8.plan, path)
        raw = bytearray(path.read_bytes())
        for offset in (len(raw) - 1, len(raw) // 2, len(raw) - len(raw) // 4):
            doomed = bytearray(raw)
            doomed[offset] ^= 0x01
            bad = tmp_path / "bad.rplan"
            bad.write_bytes(bytes(doomed))
            with pytest.raises(ArtifactCorruptError):
                load_plan(bad)

    def test_truncation_detected(self, engines, tmp_path):
        _, int8, _ = engines
        path = tmp_path / "plan.rplan"
        save_plan(int8.plan, path)
        raw = path.read_bytes()
        bad = tmp_path / "bad.rplan"
        bad.write_bytes(raw[:len(raw) - 64])
        with pytest.raises(ArtifactCorruptError):
            load_plan(bad)

    def test_wrong_magic_and_missing_file(self, tmp_path):
        bad = tmp_path / "bad.rplan"
        bad.write_bytes(b"NOTAPLAN" + b"\x00" * 128)
        with pytest.raises(ArtifactCorruptError):
            load_plan(bad)
        with pytest.raises(ArtifactCorruptError):
            load_plan(tmp_path / "never-written.rplan")
