"""quantize_plan rewrite: layer selection, scale propagation, storage."""

import numpy as np
import pytest

from repro.infer import compile_model
from repro.infer.optimize import (_MIN_LINEAR_FEATURES,
                                  _conv_worth_quantizing)
from repro.models import build_model
from repro.verify.invariants import perturb_batchnorm_stats


def _loader(seed=0, shape=(16, 3, 8, 8), n=3):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=shape).astype(np.float32) for _ in range(n)]


def _quantized(name, width=0.25, image_size=8, seed=0):
    model = build_model(name, num_classes=3, image_size=image_size,
                        width=width, seed=seed)
    perturb_batchnorm_stats(model, seed=seed)
    model.eval()
    loader = _loader(seed, shape=(16, 3, image_size, image_size))
    return compile_model(model, loader[0], max_batch=16,
                         quantize="int8", calibrate=loader)


class TestSelectionHeuristic:
    def test_first_conv_never_quantized(self):
        # C_in=3: the im2col-cast overhead swamps any int8 GEMM win.
        assert not _conv_worth_quantizing(3, 32)
        engine = _quantized("vgg11")
        first_conv = next(s for s in engine.plan.steps
                          if s.op.startswith(("conv2d", "qconv2d")))
        assert first_conv.op.startswith("conv2d")

    def test_wide_and_deep_small_convs_quantize(self):
        assert _conv_worth_quantizing(16, 32)
        assert _conv_worth_quantizing(8, 8)
        assert not _conv_worth_quantizing(8, 16)

    def test_linear_floor(self):
        assert _MIN_LINEAR_FEATURES == 32

    def test_vgg_quantizes_most_convs(self):
        engine = _quantized("vgg11")
        counts = engine.plan.op_counts()
        assert counts.get("qconv2d", 0) >= 6
        assert counts.get("qlinear", 0) == 1


class TestWeightOnlyStorage:
    def test_kept_float_layers_store_int8_codes(self):
        # Layers the heuristic keeps on the float engine still ship int8
        # weights (dequantized once at engine build): full fp32 speed,
        # one byte per weight on disk.
        engine = _quantized("vgg11")
        float_convs = [s for s in engine.plan.steps
                       if s.op in ("conv2d", "conv2d_relu")]
        assert float_convs
        for step in float_convs:
            assert "weight" not in step.params
            assert step.params["weight_q"].dtype == np.int8
            assert step.params["w_scale"].dtype == np.float32

    def test_no_float32_weight_arrays_remain(self):
        engine = _quantized("vgg11")
        for step in engine.plan.steps:
            for key, value in step.params.items():
                if key in ("weight", "weight_q"):
                    assert value.dtype == np.int8, \
                        f"{step.op}.{key} stored at {value.dtype}"


class TestScaleConsistency:
    def test_consumer_in_scale_matches_producer_grid(self):
        # qmax_pool2d/qrelu pass int8 codes through untouched, so every
        # quantized consumer's in_scale must equal the grid its codes
        # were *emitted* on, traced back through the passthrough ops.
        engine = _quantized("vgg11")
        steps = {s.output: s for s in engine.plan.steps}

        def emission_scale(vid):
            step = steps.get(vid)
            if step is None:
                return None
            if step.op in ("qmax_pool2d", "qrelu"):
                return emission_scale(step.inputs[0])
            return step.params.get("out_scale", step.params.get("scale"))

        checked = 0
        for step in engine.plan.steps:
            if step.op not in ("qconv2d", "qlinear"):
                continue
            produced = emission_scale(step.inputs[0])
            if produced is not None:
                assert step.params["in_scale"] == pytest.approx(produced)
                checked += 1
        assert checked >= 2

    def test_residual_add_quantizes_on_resnet(self):
        engine = _quantized("resnet20")
        counts = engine.plan.op_counts()
        assert counts.get("qadd", 0) + counts.get("qadd_relu", 0) >= 1

    def test_output_is_float32(self):
        for name in ("vgg11", "resnet20", "mlp"):
            engine = _quantized(name)
            out = engine.run(_loader(1)[0])
            assert out.dtype == np.float32
            assert np.all(np.isfinite(out))
