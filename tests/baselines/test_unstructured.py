"""Unstructured weight pruning (the Background-section comparator)."""

import numpy as np
import pytest

from repro.baselines import (UnstructuredPruner, apply_masks, gradient_masks,
                             magnitude_masks, sparsity_report)
from repro.core import TrainingConfig, Trainer


class TestMagnitudeMasks:
    def test_global_sparsity_achieved(self, tiny_vgg):
        masks = magnitude_masks(tiny_vgg, 0.7, scope="global")
        kept = sum(m.sum() for m in masks.values())
        total = sum(m.size for m in masks.values())
        assert kept / total == pytest.approx(0.3, abs=0.02)

    def test_layer_scope_uniform(self, tiny_vgg):
        masks = magnitude_masks(tiny_vgg, 0.5, scope="layer")
        for mask in masks.values():
            assert mask.mean() == pytest.approx(0.5, abs=0.05)

    def test_global_scope_is_nonuniform(self, tiny_vgg):
        masks = magnitude_masks(tiny_vgg, 0.5, scope="global")
        rates = [m.mean() for m in masks.values()]
        assert max(rates) - min(rates) > 0.01

    def test_zero_sparsity_keeps_everything(self, tiny_vgg):
        masks = magnitude_masks(tiny_vgg, 0.0)
        assert all((m == 1).all() for m in masks.values())

    def test_smallest_weights_removed_first(self, tiny_mlp):
        lin = tiny_mlp.get_module("body.0")
        lin.weight.data[0, 0] = 100.0   # largest magnitude
        lin.weight.data[0, 1] = 1e-8    # smallest
        masks = magnitude_masks(tiny_mlp, 0.5, scope="global")
        assert masks["body.0"][0, 0] == 1.0
        assert masks["body.0"][0, 1] == 0.0

    def test_invalid_args(self, tiny_vgg):
        with pytest.raises(ValueError):
            magnitude_masks(tiny_vgg, 1.0)
        with pytest.raises(ValueError):
            magnitude_masks(tiny_vgg, 0.5, scope="cosmic")


class TestGradientMasks:
    def test_shape_and_sparsity(self, tiny_vgg, tiny_dataset):
        masks = gradient_masks(tiny_vgg, tiny_dataset, 0.6, num_images=12)
        kept = sum(m.sum() for m in masks.values())
        total = sum(m.size for m in masks.values())
        assert kept / total == pytest.approx(0.4, abs=0.02)

    def test_restores_model_state(self, tiny_vgg, tiny_dataset):
        tiny_vgg.train()
        gradient_masks(tiny_vgg, tiny_dataset, 0.5, num_images=6)
        assert tiny_vgg.training
        assert all(p.grad is None for p in tiny_vgg.parameters())


class TestApplyAndReport:
    def test_apply_masks_zeroes_weights(self, tiny_mlp):
        masks = magnitude_masks(tiny_mlp, 0.5)
        apply_masks(tiny_mlp, masks)
        report = sparsity_report(tiny_mlp)
        assert report["total"] == pytest.approx(0.5, abs=0.02)

    def test_shape_mismatch_rejected(self, tiny_mlp):
        with pytest.raises(ValueError):
            apply_masks(tiny_mlp, {"body.0": np.ones((2, 2),
                                                     dtype=np.float32)})

    def test_report_covers_all_layers(self, tiny_vgg):
        report = sparsity_report(tiny_vgg)
        assert "total" in report
        assert len(report) == len(tiny_vgg.conv_layer_paths()) + 2


class TestPrunerEndToEnd:
    @pytest.fixture
    def trained_mlp(self, tiny_dataset, tiny_test_dataset):
        from repro.models import MLP
        model = MLP(3 * 8 * 8, [32, 16], 3, seed=2)
        cfg = TrainingConfig(epochs=10, batch_size=32, lr=0.05,
                             lambda1=0.0, lambda2=0.0, weight_decay=0.0)
        Trainer(model, tiny_dataset, tiny_test_dataset, cfg).train()
        return model, cfg

    def test_masks_survive_finetuning(self, trained_mlp, tiny_dataset,
                                      tiny_test_dataset):
        model, cfg = trained_mlp
        pruner = UnstructuredPruner(model, tiny_dataset, tiny_test_dataset,
                                    training=cfg)
        result = pruner.run(sparsity=0.6, finetune_epochs=3)
        # The defining property: fine-tuning must not resurrect masked
        # weights.
        assert result.achieved_sparsity >= 0.58

    def test_high_sparsity_beats_chance_after_finetune(self, trained_mlp,
                                                       tiny_dataset,
                                                       tiny_test_dataset):
        model, cfg = trained_mlp
        pruner = UnstructuredPruner(model, tiny_dataset, tiny_test_dataset,
                                    training=cfg)
        result = pruner.run(sparsity=0.7, finetune_epochs=4)
        assert result.final_accuracy > 0.5   # chance = 1/3

    def test_gradient_criterion_runs(self, trained_mlp, tiny_dataset,
                                     tiny_test_dataset):
        model, cfg = trained_mlp
        pruner = UnstructuredPruner(model, tiny_dataset, tiny_test_dataset,
                                    criterion="gradient", training=cfg)
        result = pruner.run(sparsity=0.4, finetune_epochs=1)
        assert result.criterion == "gradient"
        assert result.achieved_sparsity >= 0.35

    def test_unknown_criterion_rejected(self, trained_mlp, tiny_dataset,
                                        tiny_test_dataset):
        model, cfg = trained_mlp
        with pytest.raises(ValueError):
            UnstructuredPruner(model, tiny_dataset, tiny_test_dataset,
                               criterion="tea-leaves")
