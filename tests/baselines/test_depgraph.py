"""DepGraph trace: auto-derived dependencies must match the hand metadata."""

import numpy as np
import pytest

from repro.baselines import (CoupledGroup, DepGraphScorer,
                             build_operation_graph, prune_coupled_group,
                             trace_coupled_groups)
from repro.models import MLP, resnet20, vgg11
from repro.tensor import Tensor, no_grad


def forward(model, size=8):
    x = Tensor(np.random.default_rng(0).normal(size=(2, 3, size, size))
               .astype(np.float32))
    model.eval()
    with no_grad():
        return model(x).data


class TestOperationGraph:
    def test_graph_contains_all_producer_weights(self, tiny_vgg):
        graph, output, param_owner = build_operation_graph(tiny_vgg, (3, 8, 8))
        conv_paths = {p for p, m in param_owner.values()
                      if type(m).__name__ == "Conv2d"}
        assert set(tiny_vgg.conv_layer_paths()) <= conv_paths

    def test_output_node_in_graph(self, tiny_vgg):
        graph, output, _ = build_operation_graph(tiny_vgg, (3, 8, 8))
        assert id(output) in graph.nodes


class TestVGGTrace:
    def test_matches_hand_written_metadata(self, tiny_vgg):
        traced = {g.producers[0]: g for g in trace_coupled_groups(tiny_vgg, (3, 8, 8))
                  if not g.terminal}
        for manual in tiny_vgg.prunable_groups():
            auto = traced[manual.conv]
            assert auto.producers == [manual.conv]
            assert auto.bns == [manual.bn]
            assert len(auto.consumers) == 1
            assert auto.consumers[0].path == manual.consumers[0].path
            assert auto.consumers[0].kind == manual.consumers[0].kind
            assert auto.consumers[0].group_size == manual.consumers[0].group_size

    def test_classifier_group_is_terminal(self, tiny_vgg):
        groups = trace_coupled_groups(tiny_vgg, (3, 8, 8))
        terminal = [g for g in groups if g.terminal]
        assert len(terminal) == 1
        assert terminal[0].producers == ["classifier"]
        assert not terminal[0].prunable()

    def test_flatten_head_group_size_traced(self):
        model = vgg11(num_classes=3, image_size=16, width=0.125,
                      head="flatten", seed=1)
        traced = {g.producers[0]: g
                  for g in trace_coupled_groups(model, (3, 16, 16))}
        last_conv = model.conv_layer_paths()[-1]
        consumer = traced[last_conv].consumers[0]
        assert consumer.kind == "linear"
        assert consumer.group_size == model.final_spatial ** 2


class TestResNetTrace:
    def test_residual_stages_coupled(self, tiny_resnet):
        groups = trace_coupled_groups(tiny_resnet, (3, 8, 8))
        # The stem couples with every stage-1 conv2 through the identity
        # shortcuts.
        stem_group = next(g for g in groups if "conv1" in g.producers)
        assert "stage1.0.conv2" in stem_group.producers
        assert "stage1.2.conv2" in stem_group.producers

    def test_projection_shortcuts_join_their_stage_group(self, tiny_resnet):
        groups = trace_coupled_groups(tiny_resnet, (3, 8, 8))
        stage2 = next(g for g in groups
                      if "stage2.0.conv2" in g.producers)
        assert "stage2.0.shortcut.0" in stage2.producers
        assert "stage2.1.conv2" in stage2.producers

    def test_block_conv1_groups_match_metadata(self, tiny_resnet):
        traced = {g.producers[0]: g
                  for g in trace_coupled_groups(tiny_resnet, (3, 8, 8))
                  if len(g.producers) == 1}
        for manual in tiny_resnet.prunable_groups():
            auto = traced[manual.conv]
            assert auto.bns == [manual.bn]
            assert auto.consumers[0].path == manual.consumers[0].path

    def test_coupled_group_has_consistent_sizes(self, tiny_resnet):
        for group in trace_coupled_groups(tiny_resnet, (3, 8, 8)):
            for path in group.producers:
                module = tiny_resnet.get_module(path)
                out = getattr(module, "out_channels",
                              getattr(module, "out_features", None))
                assert out == group.size


class TestCoupledSurgery:
    def test_prune_residual_group_keeps_network_runnable(self, tiny_resnet):
        groups = trace_coupled_groups(tiny_resnet, (3, 8, 8))
        stage3 = next(g for g in groups if "stage3.0.conv2" in g.producers)
        keep = np.arange(stage3.size // 2)
        prune_coupled_group(tiny_resnet, stage3, keep)
        out = forward(tiny_resnet)
        assert out.shape == (2, 3)

    def test_functional_equivalence_for_zeroed_channels(self, tiny_resnet):
        """Zero a channel everywhere it is produced, then prune the whole
        coupled group: the network function must not change."""
        groups = trace_coupled_groups(tiny_resnet, (3, 8, 8))
        group = next(g for g in groups if "stage3.0.conv2" in g.producers)
        victim = group.size - 1
        for path in group.producers:
            module = tiny_resnet.get_module(path)
            module.weight.data[victim] = 0.0
            if getattr(module, "bias", None) is not None:
                module.bias.data[victim] = 0.0
        for bn_path in group.bns:
            bn = tiny_resnet.get_module(bn_path)
            bn.weight.data[victim] = 0.0
            bn.bias.data[victim] = 0.0
        before = forward(tiny_resnet)
        keep = np.setdiff1d(np.arange(group.size), [victim])
        prune_coupled_group(tiny_resnet, group, keep)
        after = forward(tiny_resnet)
        np.testing.assert_allclose(before, after, rtol=1e-4, atol=1e-5)

    def test_terminal_group_refuses_pruning(self, tiny_vgg):
        groups = trace_coupled_groups(tiny_vgg, (3, 8, 8))
        terminal = next(g for g in groups if g.terminal)
        with pytest.raises(ValueError):
            prune_coupled_group(tiny_vgg, terminal, np.array([0]))

    def test_empty_keep_rejected(self, tiny_resnet):
        groups = trace_coupled_groups(tiny_resnet, (3, 8, 8))
        group = next(g for g in groups if g.prunable())
        with pytest.raises(ValueError):
            prune_coupled_group(tiny_resnet, group, np.array([], dtype=int))


class TestMLPTrace:
    def test_mlp_groups(self, tiny_mlp):
        traced = {g.producers[0]: g
                  for g in trace_coupled_groups(tiny_mlp, (3, 8, 8))}
        for manual in tiny_mlp.prunable_groups():
            auto = traced[manual.conv]
            assert auto.consumers[0].path == manual.consumers[0].path
            assert auto.consumers[0].kind == "linear"


class TestDepGraphScorer:
    def test_full_grouping_aggregates_more_than_none(self, tiny_resnet):
        groups = trace_coupled_groups(tiny_resnet, (3, 8, 8))
        group = next(g for g in groups if len(g.producers) > 1)
        full = DepGraphScorer("full").group_scores(tiny_resnet, group)
        none = DepGraphScorer("none").group_scores(tiny_resnet, group)
        assert (full >= none - 1e-9).all()
        assert full.shape == none.shape == (group.size,)

    def test_invalid_grouping_rejected(self):
        with pytest.raises(ValueError):
            DepGraphScorer("partial")
