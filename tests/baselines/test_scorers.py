"""Baseline filter-importance criteria."""

import numpy as np
import pytest

from repro.baselines import (APoZScorer, HRankScorer, L1NormScorer,
                             L2NormScorer, RandomScorer, SCORER_REGISTRY,
                             SSSScorer, ScoringContext, TaylorScorer,
                             WeightGradScorer, build_scorer)


@pytest.fixture
def ctx(tiny_dataset):
    return ScoringContext(dataset=tiny_dataset, num_images=12, seed=0)


def scores_for(scorer, model, ctx):
    groups = model.prunable_groups()
    return scorer.scores(model, groups, ctx), groups


class TestShapesAndBounds:
    @pytest.mark.parametrize("name", sorted(SCORER_REGISTRY))
    def test_every_scorer_covers_every_group(self, name, tiny_vgg, ctx):
        scorer = build_scorer(name)
        scores, groups = scores_for(scorer, tiny_vgg, ctx)
        for g in groups:
            n = tiny_vgg.get_module(g.conv).out_channels
            assert scores[g.name].shape == (n,)
            assert np.isfinite(scores[g.name]).all()

    @pytest.mark.parametrize("name", ["l1", "l2", "taylor", "apoz",
                                      "weightgrad", "random"])
    def test_scorers_work_on_mlp(self, name, tiny_mlp, ctx):
        scorer = build_scorer(name)
        scores, groups = scores_for(scorer, tiny_mlp, ctx)
        assert scores[groups[0].name].shape == (16,)

    def test_unknown_scorer_raises(self):
        with pytest.raises(KeyError):
            build_scorer("psychic")


class TestNormScorers:
    def test_l1_matches_manual(self, tiny_vgg, ctx):
        scores, groups = scores_for(L1NormScorer(), tiny_vgg, ctx)
        g = groups[0]
        w = tiny_vgg.get_module(g.conv).weight.data
        np.testing.assert_allclose(scores[g.name],
                                   np.abs(w.reshape(w.shape[0], -1)).sum(1),
                                   rtol=1e-6)

    def test_zero_filter_scores_zero(self, tiny_vgg, ctx):
        g = tiny_vgg.prunable_groups()[0]
        tiny_vgg.get_module(g.conv).weight.data[2] = 0.0
        for scorer in (L1NormScorer(), L2NormScorer()):
            scores, _ = scores_for(scorer, tiny_vgg, ctx)
            assert scores[g.name][2] == 0.0

    def test_l2_is_sqrt_of_squared_sum(self, tiny_vgg, ctx):
        scores, groups = scores_for(L2NormScorer(), tiny_vgg, ctx)
        g = groups[0]
        w = tiny_vgg.get_module(g.conv).weight.data
        np.testing.assert_allclose(
            scores[g.name],
            np.sqrt((w.reshape(w.shape[0], -1) ** 2).sum(1)), rtol=1e-5)


class TestSSSScorer:
    def test_uses_bn_scale(self, tiny_vgg, ctx):
        g = tiny_vgg.prunable_groups()[0]
        bn = tiny_vgg.get_module(g.bn)
        bn.weight.data[:] = np.arange(bn.num_features, dtype=np.float32)
        scores, _ = scores_for(SSSScorer(), tiny_vgg, ctx)
        np.testing.assert_allclose(scores[g.name],
                                   np.arange(bn.num_features))

    def test_falls_back_to_weight_norm_without_bn(self, tiny_mlp, ctx):
        scores, groups = scores_for(SSSScorer(), tiny_mlp, ctx)
        assert (scores[groups[0].name] > 0).any()


class TestDataDrivenScorers:
    def test_hrank_bounded_by_spatial_size(self, tiny_vgg, ctx):
        scores, groups = scores_for(HRankScorer(), tiny_vgg, ctx)
        # Rank of an 8x8 feature map is at most 8.
        assert scores[groups[0].name].max() <= 8.0

    def test_apoz_scores_in_unit_interval(self, tiny_vgg, ctx):
        scores, groups = scores_for(APoZScorer(), tiny_vgg, ctx)
        for g in groups:
            assert (scores[g.name] >= 0).all()
            assert (scores[g.name] <= 1).all()

    def test_taylor_zero_for_zeroed_channel(self, tiny_vgg, ctx):
        g = tiny_vgg.prunable_groups()[0]
        conv = tiny_vgg.get_module(g.conv)
        bn = tiny_vgg.get_module(g.bn)
        conv.weight.data[1] = 0.0
        bn.weight.data[1] = 0.0
        bn.bias.data[1] = 0.0
        scores, _ = scores_for(TaylorScorer(), tiny_vgg, ctx)
        assert scores[g.name][1] == pytest.approx(0.0, abs=1e-10)

    def test_weightgrad_zero_when_weights_zero(self, tiny_vgg, ctx):
        g = tiny_vgg.prunable_groups()[0]
        tiny_vgg.get_module(g.conv).weight.data[3] = 0.0
        scores, _ = scores_for(WeightGradScorer(), tiny_vgg, ctx)
        assert scores[g.name][3] == pytest.approx(0.0, abs=1e-12)

    def test_scorer_restores_model_state(self, tiny_vgg, ctx):
        tiny_vgg.train()
        scores_for(TaylorScorer(), tiny_vgg, ctx)
        assert tiny_vgg.training
        assert all(p.grad is None for p in tiny_vgg.parameters())

    def test_missing_dataset_raises(self, tiny_vgg):
        with pytest.raises(ValueError):
            scores_for(TaylorScorer(), tiny_vgg, ScoringContext())


class TestRandomScorer:
    def test_deterministic_per_seed(self, tiny_vgg, ctx):
        s1, _ = scores_for(RandomScorer(), tiny_vgg, ctx)
        s2, _ = scores_for(RandomScorer(), tiny_vgg, ctx)
        for k in s1:
            np.testing.assert_array_equal(s1[k], s2[k])

    def test_differs_across_seeds(self, tiny_vgg, tiny_dataset):
        s1, _ = scores_for(RandomScorer(), tiny_vgg,
                           ScoringContext(tiny_dataset, seed=0))
        s2, _ = scores_for(RandomScorer(), tiny_vgg,
                           ScoringContext(tiny_dataset, seed=1))
        any_diff = any(not np.array_equal(s1[k], s2[k]) for k in s1)
        assert any_diff
