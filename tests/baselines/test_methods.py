"""Composition layer of the baseline methods (run_method and friends)."""

import numpy as np
import pytest

from repro.baselines import (BaselineConfig, METHOD_NAMES,
                             method_display_name, run_method)
from repro.core import TrainingConfig


def fast_cfg():
    return BaselineConfig(target_ratio=0.15, fraction_per_iteration=0.15,
                          finetune_epochs=1, max_iterations=3, num_images=10)


def fast_training():
    return TrainingConfig(epochs=1, batch_size=32, lr=0.05, lambda1=0.0,
                          lambda2=0.0, weight_decay=0.0)


class TestDisplayNames:
    def test_known_methods_have_citations(self):
        assert "[23]" in method_display_name("l1")
        assert "[13]" in method_display_name("depgraph-full")
        assert "ours" in method_display_name("class-aware")

    def test_unknown_method_passes_through(self):
        assert method_display_name("future-method") == "future-method"

    def test_all_method_names_displayable(self):
        for name in METHOD_NAMES:
            assert method_display_name(name)


class TestRunMethodComposition:
    def test_l2_method_available_beyond_fig6_list(self, tiny_vgg,
                                                  tiny_dataset,
                                                  tiny_test_dataset):
        result = run_method("l2", tiny_vgg, tiny_dataset, tiny_test_dataset,
                            (3, 8, 8), fast_cfg(), fast_training())
        assert result.method == "l2"

    def test_tpp_uses_orth_finetuning(self, tiny_vgg, tiny_dataset,
                                      tiny_test_dataset):
        # TPP's defining behaviour here: fine-tunes with an orthogonality
        # penalty even when the training config has lambda2 = 0.
        result = run_method("tpp", tiny_vgg, tiny_dataset,
                            tiny_test_dataset, (3, 8, 8), fast_cfg(),
                            fast_training())
        assert result.method == "tpp"
        assert result.pruning_ratio > 0

    def test_depgraph_full_prunes_residual_groups(self, tiny_resnet,
                                                  tiny_dataset,
                                                  tiny_test_dataset):
        stem = tiny_resnet.get_module("conv1")
        width_before = stem.out_channels
        run_method("depgraph-full", tiny_resnet, tiny_dataset,
                   tiny_test_dataset, (3, 8, 8),
                   BaselineConfig(target_ratio=0.4,
                                  fraction_per_iteration=0.25,
                                  finetune_epochs=1, max_iterations=4,
                                  num_images=10),
                   fast_training())
        # Full grouping is allowed to shrink the residual-coupled stem,
        # which metadata-based methods never touch.
        assert stem.out_channels <= width_before

    def test_methods_are_independent_runs(self, tiny_dataset,
                                          tiny_test_dataset):
        # Two methods on copies of the same model must not interfere.
        import copy
        from repro.models import vgg11
        base = vgg11(num_classes=3, image_size=8, width=0.125, seed=5)
        m1, m2 = copy.deepcopy(base), copy.deepcopy(base)
        run_method("l1", m1, tiny_dataset, tiny_test_dataset, (3, 8, 8),
                   fast_cfg(), fast_training())
        np.testing.assert_array_equal(
            m2.get_module("features.0").weight.data,
            base.get_module("features.0").weight.data)
