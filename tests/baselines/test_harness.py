"""Baseline pruning harness and end-to-end method runs."""

import numpy as np
import pytest

from repro.baselines import (BaselineConfig, DepGraphPruner, METHOD_NAMES,
                             ScorerPruner, SSSLoss, L1NormScorer,
                             method_display_name, run_method)
from repro.core import TrainingConfig, Trainer
from repro.models import resnet20, vgg11
from repro.tensor import Tensor


def fast_training():
    return TrainingConfig(epochs=1, batch_size=32, lr=0.05, lambda1=0.0,
                          lambda2=0.0, weight_decay=0.0)


def fast_config(**over):
    defaults = dict(target_ratio=0.25, fraction_per_iteration=0.15,
                    finetune_epochs=1, max_iterations=5, num_images=12)
    defaults.update(over)
    return BaselineConfig(**defaults)


class TestScorerPruner:
    def test_reaches_target_ratio(self, tiny_vgg, tiny_dataset,
                                  tiny_test_dataset):
        pruner = ScorerPruner(tiny_vgg, tiny_dataset, tiny_test_dataset,
                              (3, 8, 8), L1NormScorer(),
                              config=fast_config(),
                              training=fast_training())
        result = pruner.run()
        assert result.pruning_ratio >= 0.25
        assert result.iterations >= 1
        assert len(result.accuracies) == result.iterations

    def test_model_still_runs_after_pruning(self, tiny_vgg, tiny_dataset,
                                            tiny_test_dataset):
        ScorerPruner(tiny_vgg, tiny_dataset, tiny_test_dataset, (3, 8, 8),
                     L1NormScorer(), config=fast_config(),
                     training=fast_training()).run()
        x = Tensor(np.zeros((1, 3, 8, 8), dtype=np.float32))
        assert tiny_vgg(x).shape == (1, 3)

    def test_result_row_renders(self, tiny_mlp, tiny_dataset,
                                tiny_test_dataset):
        result = ScorerPruner(tiny_mlp, tiny_dataset, tiny_test_dataset,
                              (3, 8, 8), L1NormScorer(),
                              config=fast_config(max_iterations=2),
                              training=fast_training()).run()
        assert "ratio=" in result.row()

    def test_rejects_plain_module(self, tiny_dataset, tiny_test_dataset):
        from repro.nn import Linear, Sequential
        with pytest.raises(TypeError):
            ScorerPruner(Sequential(Linear(2, 2)), tiny_dataset,
                         tiny_test_dataset, (3, 8, 8), L1NormScorer())


class TestDepGraphPruner:
    def test_full_grouping_prunes_residual_channels(self, tiny_resnet,
                                                    tiny_dataset,
                                                    tiny_test_dataset):
        stem_before = tiny_resnet.get_module("conv1").out_channels
        pruner = DepGraphPruner(tiny_resnet, tiny_dataset, tiny_test_dataset,
                                (3, 8, 8), grouping="full",
                                config=fast_config(target_ratio=0.3),
                                training=fast_training())
        result = pruner.run()
        assert result.pruning_ratio > 0.0
        x = Tensor(np.zeros((1, 3, 8, 8), dtype=np.float32))
        assert tiny_resnet(x).shape == (1, 3)

    def test_output_width_never_changes(self, tiny_resnet, tiny_dataset,
                                        tiny_test_dataset):
        DepGraphPruner(tiny_resnet, tiny_dataset, tiny_test_dataset,
                       (3, 8, 8), config=fast_config(max_iterations=2),
                       training=fast_training()).run()
        assert tiny_resnet.classifier.out_features == 3


class TestRunMethod:
    @pytest.mark.parametrize("name", ["l1", "sss", "random"])
    def test_named_methods_run(self, name, tiny_vgg, tiny_dataset,
                               tiny_test_dataset):
        result = run_method(name, tiny_vgg, tiny_dataset, tiny_test_dataset,
                            (3, 8, 8), fast_config(max_iterations=2),
                            fast_training())
        assert result.pruning_ratio > 0

    def test_unknown_method_raises(self, tiny_vgg, tiny_dataset,
                                   tiny_test_dataset):
        with pytest.raises(KeyError):
            run_method("alchemy", tiny_vgg, tiny_dataset, tiny_test_dataset,
                       (3, 8, 8))

    def test_method_names_all_resolvable(self):
        for name in METHOD_NAMES:
            assert method_display_name(name) != ""


class TestSSSLoss:
    def test_penalises_bn_scales(self, tiny_vgg, tiny_dataset):
        loss = SSSLoss(gamma_l1=1.0)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3, 8, 8))
                   .astype(np.float32))
        logits = tiny_vgg(x)
        terms = loss(tiny_vgg, logits, np.array([0, 1]))
        from repro.nn import BatchNorm2d
        gamma_mass = sum(float(np.abs(m.weight.data).sum())
                         for m in tiny_vgg.modules()
                         if isinstance(m, BatchNorm2d))
        assert float(terms.total.data) == pytest.approx(
            terms.cross_entropy + gamma_mass, rel=1e-4)

    def test_training_with_sss_loss_shrinks_scales(self, tiny_vgg,
                                                   tiny_dataset):
        from repro.nn import BatchNorm2d

        def gamma_mass(model):
            return sum(float(np.abs(m.weight.data).sum())
                       for m in model.modules()
                       if isinstance(m, BatchNorm2d))

        before = gamma_mass(tiny_vgg)
        Trainer(tiny_vgg, tiny_dataset, config=fast_training(),
                loss_fn=SSSLoss(gamma_l1=0.05)).train(epochs=3)
        assert gamma_mass(tiny_vgg) < before
