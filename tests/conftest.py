"""Shared fixtures: tiny deterministic datasets and models.

Everything here is sized for CPU speed: 8×8 images, narrow networks. The
behaviours under test (gradients, surgery consistency, score aggregation)
are size-independent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SyntheticConfig, SyntheticImageClassification
from repro.models import MLP, resnet20, vgg11


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_dataset():
    """60-image, 3-class, 8×8 synthetic dataset."""
    cfg = SyntheticConfig(num_classes=3, image_size=8, samples_per_class=20,
                          seed=7)
    return SyntheticImageClassification(cfg, train=True)


@pytest.fixture
def tiny_test_dataset():
    cfg = SyntheticConfig(num_classes=3, image_size=8, samples_per_class=10,
                          seed=7)
    return SyntheticImageClassification(cfg, train=False)


@pytest.fixture
def ten_class_dataset():
    cfg = SyntheticConfig(num_classes=10, image_size=8, samples_per_class=12,
                          seed=3)
    return SyntheticImageClassification(cfg, train=True)


@pytest.fixture
def tiny_vgg():
    """Narrow VGG-11 for 8×8 inputs (about 20 k parameters)."""
    return vgg11(num_classes=3, image_size=8, width=0.125, seed=0)


@pytest.fixture
def tiny_resnet():
    return resnet20(num_classes=3, width=0.25, seed=0)


@pytest.fixture
def tiny_mlp():
    return MLP(3 * 8 * 8, [16, 12], 3, seed=0)
