"""Post-training quantization."""

import numpy as np
import pytest

from repro.core import evaluate_model
from repro.models import MLP, vgg11
from repro.quant import (dequantize_array, model_size_bytes, quantize_array,
                         quantize_model)


class TestQuantizeArray:
    def test_roundtrip_error_bounded_by_half_step(self):
        rng = np.random.default_rng(0)
        w = rng.normal(size=(8, 16)).astype(np.float32)
        q, scale = quantize_array(w, bits=8)
        back = dequantize_array(q, scale)
        assert np.abs(back - w).max() <= float(scale) / 2 + 1e-7

    def test_grid_is_symmetric(self):
        w = np.array([-1.0, 1.0], dtype=np.float32)
        q, scale = quantize_array(w, bits=8)
        assert q[0] == -q[1]

    def test_codes_within_range(self):
        rng = np.random.default_rng(1)
        w = rng.normal(size=(100,)).astype(np.float32)
        for bits in (2, 4, 8):
            q, _ = quantize_array(w, bits=bits)
            qmax = 2 ** (bits - 1) - 1
            assert q.max() <= qmax and q.min() >= -qmax

    def test_per_channel_scales_adapt(self):
        w = np.stack([np.full((4,), 0.01), np.full((4,), 10.0)]).astype(np.float32)
        q, scale = quantize_array(w, bits=8, per_channel=True)
        assert scale.reshape(-1)[1] > scale.reshape(-1)[0]
        back = dequantize_array(q, scale)
        np.testing.assert_allclose(back, w, rtol=0.02)

    def test_zero_tensor_safe(self):
        q, scale = quantize_array(np.zeros(5, dtype=np.float32), bits=8)
        np.testing.assert_array_equal(dequantize_array(q, scale), np.zeros(5))

    def test_high_bits_nearly_lossless(self):
        rng = np.random.default_rng(2)
        w = rng.normal(size=(32,)).astype(np.float32)
        q, scale = quantize_array(w, bits=16)
        np.testing.assert_allclose(dequantize_array(q, scale), w, atol=1e-4)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            quantize_array(np.ones(3), bits=1)

    def test_empty_array_raises(self):
        with pytest.raises(ValueError):
            quantize_array(np.empty((0, 4), dtype=np.float32), bits=8)

    def test_nan_and_inf_raise_with_count(self):
        w = np.array([1.0, np.nan, np.inf, 2.0], dtype=np.float32)
        with pytest.raises(ValueError, match="2 NaN/inf"):
            quantize_array(w, bits=8)

    def test_all_zero_channel_gets_unit_scale(self):
        # A dead (fully pruned-around) channel must not produce a 0 or
        # NaN scale; its codes are exactly zero under any finite scale.
        w = np.stack([np.zeros(4), np.full(4, 2.0)]).astype(np.float32)
        q, scale = quantize_array(w, bits=8, per_channel=True)
        assert scale.reshape(-1)[0] == 1.0
        np.testing.assert_array_equal(q[0], 0)
        np.testing.assert_allclose(dequantize_array(q, scale)[1], w[1],
                                   rtol=0.01)

    def test_asymmetric_range_clamps_instead_of_wrapping(self):
        # Scale comes from max |x| (the negative side here), so the
        # dominant side lands exactly on -qmax and nothing can wrap past
        # the symmetric grid's edges.
        w = np.array([10.0, -10.4], dtype=np.float32)
        q, scale = quantize_array(w, bits=8)
        assert scale == pytest.approx(10.4 / 127)
        assert q[1] == -127
        assert q.min() >= -127 and q.max() <= 127
        np.testing.assert_allclose(dequantize_array(q, scale)[1], -10.4,
                                   rtol=1e-6)
        with pytest.raises(ValueError):
            quantize_array(np.ones(3), bits=17)


class TestQuantizeModel:
    def test_compression_ratio_approaches_32_over_bits(self, tiny_vgg):
        report = quantize_model(tiny_vgg, bits=8)
        assert report.compression == pytest.approx(4.0, rel=0.1)

    def test_weights_on_grid(self, tiny_mlp):
        quantize_model(tiny_mlp, bits=4, per_channel=False)
        w = tiny_mlp.get_module("body.0").weight.data
        # All values must be integer multiples of a common scale.
        nonzero = np.abs(w[np.abs(w) > 0])
        step = nonzero.min()
        ratios = nonzero / step
        np.testing.assert_allclose(ratios, np.round(ratios), atol=1e-3)

    def test_8bit_accuracy_preserved(self, tiny_dataset, tiny_test_dataset):
        from repro.core import Trainer, TrainingConfig
        model = MLP(3 * 8 * 8, [32, 16], 3, seed=8)
        cfg = TrainingConfig(epochs=10, batch_size=32, lr=0.05,
                             lambda1=0, lambda2=0, weight_decay=0.0)
        Trainer(model, tiny_dataset, tiny_test_dataset, cfg).train()
        _, before = evaluate_model(model, tiny_test_dataset)
        quantize_model(model, bits=8)
        _, after = evaluate_model(model, tiny_test_dataset)
        assert after >= before - 0.05

    def test_rejects_model_without_layers(self):
        from repro.nn import ReLU, Sequential
        with pytest.raises(ValueError):
            quantize_model(Sequential(ReLU()))


class TestModelSize:
    def test_size_shrinks_with_bits(self, tiny_vgg):
        full = model_size_bytes(tiny_vgg, bits=32)
        eight = model_size_bytes(tiny_vgg, bits=8)
        assert eight < full
        # BN affines stay 32-bit, so the ratio is slightly under 4x.
        assert full / eight == pytest.approx(4.0, rel=0.15)

    def test_composes_with_pruning(self, tiny_vgg):
        from repro.core import prune_groups
        before = model_size_bytes(tiny_vgg, bits=8)
        groups = tiny_vgg.prunable_groups()
        keep = {groups[0].name: np.array([0, 1])}
        prune_groups(tiny_vgg, groups, keep)
        after = model_size_bytes(tiny_vgg, bits=8)
        assert after < before
