"""Loss functions and metrics."""

import numpy as np
import pytest

from repro.nn import CrossEntropyLoss, MSELoss, accuracy, cross_entropy
from repro.tensor import Tensor, check_gradients


class TestCrossEntropy:
    def test_matches_manual_computation(self):
        logits = np.array([[2.0, 1.0, 0.1], [0.5, 2.5, 0.0]], dtype=np.float32)
        targets = np.array([0, 1])
        out = cross_entropy(Tensor(logits), targets)
        probs = np.exp(logits) / np.exp(logits).sum(axis=1, keepdims=True)
        expected = -np.log(probs[np.arange(2), targets]).mean()
        assert float(out.data) == pytest.approx(expected, rel=1e-5)

    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]], dtype=np.float32)
        out = cross_entropy(Tensor(logits), np.array([0, 1]))
        assert float(out.data) < 1e-4

    def test_uniform_prediction_log_c(self):
        logits = np.zeros((4, 10), dtype=np.float32)
        out = cross_entropy(Tensor(logits), np.zeros(4, dtype=np.intp))
        assert float(out.data) == pytest.approx(np.log(10), rel=1e-5)

    @pytest.mark.parametrize("reduction", ["mean", "sum", "none"])
    def test_reductions(self, reduction):
        logits = Tensor(np.random.default_rng(0).normal(size=(5, 3)))
        out = cross_entropy(logits, np.array([0, 1, 2, 0, 1]),
                            reduction=reduction)
        if reduction == "none":
            assert out.shape == (5,)
        else:
            assert out.size == 1

    def test_sum_reduction_gives_per_sample_gradients(self):
        # The importance engine relies on summed CE making each sample's
        # activation gradient independent of the batch.
        rng = np.random.default_rng(1)
        logits_data = rng.normal(size=(3, 4)).astype(np.float32)
        targets = np.array([0, 1, 2])

        joint = Tensor(logits_data, requires_grad=True)
        cross_entropy(joint, targets, reduction="sum").backward()

        for j in range(3):
            single = Tensor(logits_data[j:j + 1], requires_grad=True)
            cross_entropy(single, targets[j:j + 1], reduction="sum").backward()
            np.testing.assert_allclose(joint.grad[j], single.grad[0],
                                       rtol=1e-5, atol=1e-6)

    def test_gradient_check(self):
        logits = Tensor(np.random.default_rng(2).normal(size=(4, 5)),
                        requires_grad=True)
        check_gradients(lambda l: cross_entropy(l, np.array([0, 1, 2, 3])),
                        [logits])

    def test_rejects_wrong_shapes(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3, 4))), np.array([0, 1]))
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([0, 1, 2]))

    def test_invalid_reduction(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((1, 2))), np.array([0]),
                          reduction="median")

    def test_module_wrapper(self):
        loss = CrossEntropyLoss()
        out = loss(Tensor(np.zeros((2, 3), dtype=np.float32)), np.array([0, 1]))
        assert out.size == 1


class TestMSE:
    def test_value(self):
        loss = MSELoss()
        out = loss(Tensor([1.0, 2.0]), np.array([0.0, 0.0], dtype=np.float32))
        assert float(out.data) == pytest.approx(2.5)

    def test_sum_reduction(self):
        loss = MSELoss(reduction="sum")
        out = loss(Tensor([1.0, 2.0]), np.array([0.0, 0.0], dtype=np.float32))
        assert float(out.data) == pytest.approx(5.0)

    def test_gradient(self):
        target = np.array([1.0, -1.0], dtype=np.float32)
        x = Tensor([0.0, 0.0], requires_grad=True)
        MSELoss()(x, target).backward()
        np.testing.assert_allclose(x.grad, [-1.0, 1.0])


class TestAccuracy:
    def test_perfect(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert accuracy(logits, np.array([0, 1])) == 1.0

    def test_half(self):
        logits = np.array([[1.0, 0.0], [1.0, 0.0]])
        assert accuracy(logits, np.array([0, 1])) == 0.5

    def test_accepts_tensor(self):
        logits = Tensor(np.array([[1.0, 0.0]]))
        assert accuracy(logits, np.array([0])) == 1.0
