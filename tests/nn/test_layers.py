"""Layer semantics: forward values, gradients, surgery methods."""

import numpy as np
import pytest

from repro.nn import (AvgPool2d, BatchNorm2d, Conv2d, Dropout, Flatten,
                      GlobalAvgPool2d, Identity, Linear, MaxPool2d, ReLU)
from repro.tensor import Tensor, check_gradients


def rand(shape, seed=0):
    return np.random.default_rng(seed).normal(size=shape).astype(np.float32)


class TestLinear:
    def test_forward_matches_manual(self):
        layer = Linear(3, 2, rng=np.random.default_rng(1))
        x = rand((4, 3), seed=2)
        out = layer(Tensor(x))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(out.data, expected, rtol=1e-5)

    def test_no_bias(self):
        layer = Linear(3, 2, bias=False)
        assert layer.bias is None
        assert layer.num_parameters() == 6

    def test_gradients(self):
        layer = Linear(3, 2, rng=np.random.default_rng(3))
        x = Tensor(rand((2, 3), seed=4), requires_grad=True)
        check_gradients(lambda x: layer(x), [x])

    def test_select_output_channels(self):
        layer = Linear(4, 6, rng=np.random.default_rng(5))
        original = layer.weight.data.copy()
        layer.select_output_channels(np.array([1, 3, 5]))
        assert layer.out_features == 3
        np.testing.assert_allclose(layer.weight.data, original[[1, 3, 5]])

    def test_select_input_channels_plain(self):
        layer = Linear(4, 2, rng=np.random.default_rng(6))
        original = layer.weight.data.copy()
        layer.select_input_channels(np.array([0, 2]))
        assert layer.in_features == 2
        np.testing.assert_allclose(layer.weight.data, original[:, [0, 2]])

    def test_select_input_channels_grouped(self):
        # 2 channels × 3 spatial positions = 6 inputs; keep channel 1.
        layer = Linear(6, 2, rng=np.random.default_rng(7))
        original = layer.weight.data.copy()
        layer.select_input_channels(np.array([1]), group_size=3)
        assert layer.in_features == 3
        np.testing.assert_allclose(layer.weight.data, original[:, 3:6])


class TestConv2d:
    def test_output_shape(self):
        layer = Conv2d(3, 8, kernel_size=3, padding=1)
        out = layer(Tensor(rand((2, 3, 8, 8))))
        assert out.shape == (2, 8, 8, 8)

    def test_strided_shape(self):
        layer = Conv2d(3, 4, kernel_size=3, stride=2, padding=1)
        assert layer(Tensor(rand((1, 3, 8, 8)))).shape == (1, 4, 4, 4)

    def test_gradients_through_layer(self):
        layer = Conv2d(2, 3, kernel_size=3, padding=1,
                       rng=np.random.default_rng(8))
        x = Tensor(rand((1, 2, 4, 4), seed=9), requires_grad=True)
        check_gradients(lambda x: layer(x), [x])

    def test_select_output_channels_updates_bias(self):
        layer = Conv2d(2, 4, kernel_size=3)
        layer.bias.data[:] = np.arange(4)
        layer.select_output_channels(np.array([0, 3]))
        assert layer.out_channels == 2
        np.testing.assert_allclose(layer.bias.data, [0.0, 3.0])

    def test_select_input_channels(self):
        layer = Conv2d(3, 2, kernel_size=3)
        original = layer.weight.data.copy()
        layer.select_input_channels(np.array([2]))
        assert layer.in_channels == 1
        np.testing.assert_allclose(layer.weight.data, original[:, [2]])

    def test_surgery_clears_stale_grads(self):
        layer = Conv2d(2, 4, kernel_size=3, padding=1)
        out = layer(Tensor(rand((1, 2, 4, 4))))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.select_output_channels(np.array([0, 1]))
        assert layer.weight.grad is None


class TestBatchNorm2d:
    def test_train_mode_normalises_batch(self):
        bn = BatchNorm2d(3)
        x = rand((8, 3, 4, 4), seed=10) * 5 + 2
        out = bn(Tensor(x))
        mean = out.data.mean(axis=(0, 2, 3))
        std = out.data.std(axis=(0, 2, 3))
        np.testing.assert_allclose(mean, np.zeros(3), atol=1e-4)
        np.testing.assert_allclose(std, np.ones(3), atol=1e-2)

    def test_running_stats_update_in_train_only(self):
        bn = BatchNorm2d(2)
        x = Tensor(rand((4, 2, 3, 3), seed=11) + 10.0)
        bn(x)
        assert bn.running_mean.mean() > 0.5
        frozen = bn.running_mean.copy()
        bn.eval()
        bn(x)
        np.testing.assert_allclose(bn.running_mean, frozen)

    def test_eval_uses_running_stats(self):
        bn = BatchNorm2d(2)
        rng = np.random.default_rng(12)
        for _ in range(50):
            bn(Tensor(rng.normal(2.0, 3.0, size=(16, 2, 4, 4)).astype(np.float32)))
        bn.eval()
        x = rng.normal(2.0, 3.0, size=(16, 2, 4, 4)).astype(np.float32)
        out = bn(Tensor(x))
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)),
                                   np.zeros(2), atol=0.3)

    def test_gradients_train_mode(self):
        bn = BatchNorm2d(2)
        x = Tensor(rand((3, 2, 3, 3), seed=13), requires_grad=True)
        check_gradients(lambda x: bn(x), [x])

    def test_affine_parameters_receive_gradients(self):
        bn = BatchNorm2d(2)
        bn(Tensor(rand((3, 2, 3, 3), seed=14))).sum().backward()
        assert bn.weight.grad is not None
        assert bn.bias.grad is not None

    def test_rejects_non_4d(self):
        bn = BatchNorm2d(2)
        with pytest.raises(ValueError):
            bn(Tensor(np.zeros((3, 2))))

    def test_select_channels(self):
        bn = BatchNorm2d(4)
        bn.running_mean[:] = np.arange(4)
        bn.weight.data[:] = np.arange(4) + 1
        bn.select_channels(np.array([1, 2]))
        assert bn.num_features == 2
        np.testing.assert_allclose(bn.running_mean, [1.0, 2.0])
        np.testing.assert_allclose(bn.weight.data, [2.0, 3.0])


class TestDropout:
    def test_eval_mode_is_identity(self):
        d = Dropout(0.5)
        d.eval()
        x = Tensor(rand((4, 4), seed=15))
        np.testing.assert_allclose(d(x).data, x.data)

    def test_p_zero_is_identity_in_train(self):
        d = Dropout(0.0)
        x = Tensor(rand((4, 4), seed=16))
        np.testing.assert_allclose(d(x).data, x.data)

    def test_train_mode_zeroes_and_scales(self):
        d = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((100, 100), dtype=np.float32))
        out = d(x).data
        zero_fraction = (out == 0).mean()
        assert 0.4 < zero_fraction < 0.6
        # Inverted dropout preserves the expectation.
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestSimpleLayers:
    def test_identity(self):
        x = Tensor(rand((2, 3)))
        assert Identity()(x) is x

    def test_relu_layer(self):
        out = ReLU()(Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_allclose(out.data, [0.0, 2.0])

    def test_flatten_layer(self):
        out = Flatten()(Tensor(np.zeros((2, 3, 4, 5))))
        assert out.shape == (2, 60)

    def test_max_pool_layer_defaults_stride_to_kernel(self):
        layer = MaxPool2d(2)
        assert layer.stride == 2
        assert layer(Tensor(rand((1, 2, 6, 6)))).shape == (1, 2, 3, 3)

    def test_avg_pool_layer(self):
        layer = AvgPool2d(3)
        assert layer(Tensor(rand((1, 2, 6, 6)))).shape == (1, 2, 2, 2)

    def test_global_avg_pool_layer(self):
        out = GlobalAvgPool2d()(Tensor(rand((2, 5, 4, 4))))
        assert out.shape == (2, 5)
