"""Weight initialisers."""

import numpy as np
import pytest

from repro.nn import init


class TestFanComputation:
    def test_linear_shape(self):
        # (out, in) = (20, 10): fan_in 10.
        w = init.kaiming_normal((20, 10), np.random.default_rng(0))
        assert w.shape == (20, 10)
        assert w.std() == pytest.approx(np.sqrt(2 / 10), rel=0.2)

    def test_conv_shape(self):
        # fan_in = in_channels * k * k = 3*9 = 27.
        w = init.kaiming_normal((64, 3, 3, 3), np.random.default_rng(0))
        assert w.std() == pytest.approx(np.sqrt(2 / 27), rel=0.15)

    def test_unsupported_shape(self):
        with pytest.raises(ValueError):
            init.kaiming_normal((3, 3, 3), np.random.default_rng(0))


class TestBounds:
    def test_kaiming_uniform_within_bound(self):
        w = init.kaiming_uniform((32, 16), np.random.default_rng(1))
        bound = np.sqrt(6 / 16)
        assert np.abs(w).max() <= bound

    def test_xavier_uniform_within_bound(self):
        w = init.xavier_uniform((32, 16), np.random.default_rng(2))
        bound = np.sqrt(6 / (16 + 32))
        assert np.abs(w).max() <= bound

    def test_dtype_is_float32(self):
        for fn in (init.kaiming_normal, init.kaiming_uniform,
                   init.xavier_uniform):
            assert fn((4, 4), np.random.default_rng(0)).dtype == np.float32

    def test_zeros_and_ones(self):
        assert (init.zeros((3, 3)) == 0).all()
        assert (init.ones((3,)) == 1).all()

    def test_determinism_per_rng(self):
        a = init.kaiming_normal((8, 8), np.random.default_rng(7))
        b = init.kaiming_normal((8, 8), np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)
