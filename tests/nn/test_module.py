"""Module system: registration, traversal, hooks, serialisation."""

import numpy as np
import pytest

from repro.nn import Conv2d, Linear, Module, ReLU, Sequential
from repro.tensor import Tensor


class Net(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 3)
        self.act = ReLU()
        self.fc2 = Linear(3, 2)

    def forward(self, x):
        return self.fc2(self.act(self.fc1(x)))


class TestRegistration:
    def test_parameters_are_discovered(self):
        net = Net()
        names = dict(net.named_parameters())
        assert set(names) == {"fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"}

    def test_num_parameters(self):
        net = Net()
        assert net.num_parameters() == 4 * 3 + 3 + 3 * 2 + 2

    def test_reassigning_attribute_unregisters(self):
        net = Net()
        net.fc1 = "not a module"
        assert "fc1" not in dict(net.named_children())

    def test_named_modules_includes_self(self):
        net = Net()
        paths = [p for p, _ in net.named_modules()]
        assert "" in paths
        assert "fc1" in paths

    def test_get_module_resolves_nested_path(self):
        seq = Sequential(Sequential(Linear(2, 2)))
        inner = seq.get_module("0.0")
        assert isinstance(inner, Linear)

    def test_get_module_bad_path_raises(self):
        net = Net()
        with pytest.raises(KeyError):
            net.get_module("does.not.exist")

    def test_get_module_empty_path_returns_self(self):
        net = Net()
        assert net.get_module("") is net

    def test_register_buffer_in_state_dict(self):
        net = Net()
        net.register_buffer("stats", np.array([1.0, 2.0]))
        assert "stats" in net.state_dict()


class TestModes:
    def test_train_eval_propagates(self):
        net = Net()
        net.eval()
        assert not net.fc1.training
        net.train()
        assert net.fc1.training

    def test_zero_grad_clears_all(self):
        net = Net()
        x = Tensor(np.ones((2, 4), dtype=np.float32))
        net(x).sum().backward()
        assert net.fc1.weight.grad is not None
        net.zero_grad()
        assert net.fc1.weight.grad is None


class TestHooks:
    def test_forward_hook_sees_output(self):
        net = Net()
        captured = []
        handle = net.fc1.register_forward_hook(
            lambda mod, args, out: captured.append(out.shape))
        net(Tensor(np.ones((2, 4), dtype=np.float32)))
        assert captured == [(2, 3)]
        handle.remove()

    def test_hook_removal(self):
        net = Net()
        captured = []
        handle = net.fc1.register_forward_hook(
            lambda mod, args, out: captured.append(1))
        handle.remove()
        net(Tensor(np.ones((2, 4), dtype=np.float32)))
        assert captured == []

    def test_hook_can_replace_output(self):
        net = Net()

        def zeroing_hook(mod, args, out):
            return out * 0.0

        handle = net.fc1.register_forward_hook(zeroing_hook)
        out = net(Tensor(np.ones((2, 4), dtype=np.float32)))
        # fc1 output zeroed -> fc2 sees zeros -> output is fc2 bias.
        np.testing.assert_allclose(out.data,
                                   np.tile(net.fc2.bias.data, (2, 1)),
                                   rtol=1e-5)
        handle.remove()

    def test_multiple_hooks_run_in_order(self):
        net = Net()
        order = []
        net.fc1.register_forward_hook(lambda m, a, o: order.append("first"))
        net.fc1.register_forward_hook(lambda m, a, o: order.append("second"))
        net(Tensor(np.ones((1, 4), dtype=np.float32)))
        assert order == ["first", "second"]


class TestStateDict:
    def test_roundtrip(self):
        net1, net2 = Net(), Net()
        net1.fc1.weight.data += 1.0
        net2.load_state_dict(net1.state_dict())
        np.testing.assert_allclose(net2.fc1.weight.data, net1.fc1.weight.data)

    def test_state_dict_is_a_copy(self):
        net = Net()
        state = net.state_dict()
        state["fc1.weight"] += 100.0
        assert not np.allclose(net.fc1.weight.data, state["fc1.weight"])

    def test_missing_key_raises(self):
        net = Net()
        state = net.state_dict()
        del state["fc1.weight"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        net = Net()
        state = net.state_dict()
        state["fc1.weight"] = np.zeros((9, 9), dtype=np.float32)
        with pytest.raises(ValueError, match="shape mismatch"):
            net.load_state_dict(state)

    def test_batchnorm_running_stats_serialised(self):
        from repro.nn import BatchNorm2d
        bn = BatchNorm2d(4)
        bn(Tensor(np.random.default_rng(0).normal(size=(2, 4, 3, 3))))
        state = bn.state_dict()
        assert "running_mean" in state
        bn2 = BatchNorm2d(4)
        bn2.load_state_dict(state)
        np.testing.assert_allclose(bn2.running_mean, bn.running_mean)


class TestSequential:
    def test_iteration_and_indexing(self):
        seq = Sequential(Linear(2, 3), ReLU(), Linear(3, 1))
        assert len(seq) == 3
        assert isinstance(seq[0], Linear)
        assert isinstance(seq[1], ReLU)

    def test_append(self):
        seq = Sequential(Linear(2, 2))
        seq.append(ReLU())
        assert len(seq) == 2

    def test_forward_chains(self):
        seq = Sequential(Linear(2, 2), ReLU())
        out = seq(Tensor(np.ones((1, 2), dtype=np.float32)))
        assert out.shape == (1, 2)
        assert (out.data >= 0).all()
