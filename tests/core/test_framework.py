"""The iterative class-aware pruning framework (Fig. 5)."""

import numpy as np
import pytest

from repro.core import (ClassAwarePruningFramework, FrameworkConfig,
                        ImportanceConfig, TrainingConfig)
from repro.flops import profile_model
from repro.models import MLP, vgg11


def make_framework(model, train, test, **overrides):
    fw_kwargs = dict(
        score_threshold=overrides.pop("score_threshold", 1.0),
        max_fraction_per_iteration=overrides.pop("max_fraction", 0.2),
        finetune_epochs=overrides.pop("finetune_epochs", 1),
        accuracy_drop_tolerance=overrides.pop("tolerance", 0.5),
        max_iterations=overrides.pop("max_iterations", 2),
        importance=ImportanceConfig(images_per_class=3),
    )
    training = TrainingConfig(epochs=overrides.pop("epochs", 2),
                              batch_size=32, lr=0.05, lambda1=1e-4,
                              lambda2=1e-2, weight_decay=0.0)
    return ClassAwarePruningFramework(model, train, test, num_classes=3,
                                      input_shape=(3, 8, 8),
                                      config=FrameworkConfig(**fw_kwargs),
                                      training=training)


class TestFrameworkRun:
    def test_end_to_end_reduces_parameters(self, tiny_vgg, tiny_dataset,
                                           tiny_test_dataset):
        fw = make_framework(tiny_vgg, tiny_dataset, tiny_test_dataset)
        fw.pretrain(epochs=2)
        result = fw.run()
        assert result.final_profile.total_params < \
            result.original_profile.total_params
        assert 0 < result.pruning_ratio < 1
        assert 0 < result.flops_reduction < 1

    def test_result_metrics_consistent(self, tiny_vgg, tiny_dataset,
                                       tiny_test_dataset):
        fw = make_framework(tiny_vgg, tiny_dataset, tiny_test_dataset)
        fw.pretrain(epochs=2)
        result = fw.run()
        expected_ratio = 1 - (result.final_profile.total_params
                              / result.original_profile.total_params)
        assert result.pruning_ratio == pytest.approx(expected_ratio)
        assert result.accuracy_drop == pytest.approx(
            result.baseline_accuracy - result.final_accuracy)

    def test_reports_before_and_after(self, tiny_vgg, tiny_dataset,
                                      tiny_test_dataset):
        fw = make_framework(tiny_vgg, tiny_dataset, tiny_test_dataset)
        fw.pretrain(epochs=1)
        result = fw.run()
        assert result.report_before is not None
        assert result.report_after is not None
        # After surgery the per-group score arrays match the new sizes.
        for g in result.model.prunable_groups():
            n = result.model.get_module(g.conv).out_channels
            assert len(result.report_after.total[g.conv]) == n

    def test_iteration_records(self, tiny_vgg, tiny_dataset,
                               tiny_test_dataset):
        fw = make_framework(tiny_vgg, tiny_dataset, tiny_test_dataset)
        fw.pretrain(epochs=1)
        result = fw.run()
        assert len(result.iterations) >= 1
        first = result.iterations[0]
        assert first.num_removed == sum(first.removed_per_group.values())
        assert first.params > 0

    def test_converged_stop_when_no_filter_below_threshold(
            self, tiny_vgg, tiny_dataset, tiny_test_dataset):
        # With a threshold below any attainable positive score, only
        # exactly-dead filters (score 0) are candidates; with frozen
        # weights (no fine-tuning) that set drains in a few iterations and
        # the loop must report convergence.
        fw = make_framework(tiny_vgg, tiny_dataset, tiny_test_dataset,
                            score_threshold=1e-9, finetune_epochs=0,
                            max_iterations=30)
        fw.pretrain(epochs=1)
        result = fw.run()
        assert result.stop_reason == "converged"

    def test_accuracy_guard_restores_model(self, tiny_dataset,
                                           tiny_test_dataset):
        # Zero tolerance and aggressive pruning with no fine-tuning budget:
        # the framework must stop on the accuracy rule and hand back a
        # model no worse than the tolerance (the restored snapshot).
        model = vgg11(num_classes=3, image_size=8, width=0.25, seed=3)
        fw = make_framework(model, tiny_dataset, tiny_test_dataset,
                            score_threshold=3.1, max_fraction=0.5,
                            tolerance=-1.0,  # any drop is fatal
                            finetune_epochs=1, max_iterations=3)
        fw.pretrain(epochs=3)
        result = fw.run()
        assert result.stop_reason == "accuracy"
        # The returned model is the snapshot from before the bad iteration.
        profile = profile_model(result.model, (3, 8, 8))
        assert profile.total_params == result.final_profile.total_params

    def test_max_iterations_stop(self, tiny_vgg, tiny_dataset,
                                 tiny_test_dataset):
        fw = make_framework(tiny_vgg, tiny_dataset, tiny_test_dataset,
                            score_threshold=3.1, max_iterations=1)
        fw.pretrain(epochs=1)
        result = fw.run()
        assert result.stop_reason in ("max_iterations", "accuracy",
                                      "converged")
        assert len(result.iterations) <= 1

    def test_works_on_mlp(self, tiny_mlp, tiny_dataset, tiny_test_dataset):
        fw = make_framework(tiny_mlp, tiny_dataset, tiny_test_dataset)
        fw.pretrain(epochs=2)
        result = fw.run()
        assert result.final_profile.total_params <= \
            result.original_profile.total_params

    def test_summary_row_format(self, tiny_mlp, tiny_dataset,
                                tiny_test_dataset):
        fw = make_framework(tiny_mlp, tiny_dataset, tiny_test_dataset)
        fw.pretrain(epochs=1)
        result = fw.run()
        row = result.summary_row("mlp-test")
        assert "mlp-test" in row
        assert "ratio=" in row

    def test_rejects_non_prunable_model(self, tiny_dataset,
                                        tiny_test_dataset):
        from repro.nn import Linear, Sequential
        model = Sequential(Linear(192, 3))
        with pytest.raises(TypeError):
            ClassAwarePruningFramework(model, tiny_dataset, tiny_test_dataset,
                                       num_classes=3, input_shape=(3, 8, 8))


class TestStrategySelection:
    @pytest.mark.parametrize("name", ["percentage", "threshold",
                                      "percentage+threshold"])
    def test_table2_strategies_all_runnable(self, name, tiny_vgg,
                                            tiny_dataset, tiny_test_dataset):
        fw = ClassAwarePruningFramework(
            tiny_vgg, tiny_dataset, tiny_test_dataset, num_classes=3,
            input_shape=(3, 8, 8),
            config=FrameworkConfig(score_threshold=1.0,
                                   max_fraction_per_iteration=0.2,
                                   strategy=name, finetune_epochs=1,
                                   accuracy_drop_tolerance=0.5,
                                   max_iterations=1,
                                   importance=ImportanceConfig(images_per_class=2)),
            training=TrainingConfig(epochs=1, batch_size=32, lr=0.05))
        fw.pretrain(epochs=1)
        result = fw.run()
        assert result.stop_reason in ("max_iterations", "converged",
                                      "accuracy")


class TestFinetuneLR:
    def test_finetune_lr_overrides_training_lr(self, tiny_vgg, tiny_dataset,
                                               tiny_test_dataset):
        fw = ClassAwarePruningFramework(
            tiny_vgg, tiny_dataset, tiny_test_dataset, num_classes=3,
            input_shape=(3, 8, 8),
            config=FrameworkConfig(finetune_lr=0.001,
                                   importance=ImportanceConfig(
                                       images_per_class=2)),
            training=TrainingConfig(epochs=1, lr=0.5))
        assert fw.finetune_training.lr == pytest.approx(0.001)
        # The pretraining configuration keeps the full rate.
        assert fw.training.lr == pytest.approx(0.5)

    def test_default_keeps_training_lr(self, tiny_vgg, tiny_dataset,
                                       tiny_test_dataset):
        fw = ClassAwarePruningFramework(
            tiny_vgg, tiny_dataset, tiny_test_dataset, num_classes=3,
            input_shape=(3, 8, 8),
            training=TrainingConfig(epochs=1, lr=0.5))
        assert fw.finetune_training is fw.training
