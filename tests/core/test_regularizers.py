"""Modified cost function (Eq. 1–2): L1 and orthogonality terms."""

import numpy as np
import pytest

from repro.core import (ModifiedLoss, l1_regularizer, orthogonality_term)
from repro.core.regularizers import _orth_conv, _orth_kernel
from repro.models import MLP, vgg11
from repro.nn import Conv2d, Linear, Sequential
from repro.tensor import Tensor


class TestL1:
    def test_value_matches_manual_sum(self):
        model = Sequential(Linear(3, 2), Conv2d(1, 1, 2))
        expected = (np.abs(model[0].weight.data).sum()
                    + np.abs(model[1].weight.data).sum())
        assert float(l1_regularizer(model).data) == pytest.approx(expected,
                                                                  rel=1e-5)

    def test_biases_excluded(self):
        model = Sequential(Linear(3, 2))
        model[0].weight.data[:] = 0.0
        model[0].bias.data[:] = 100.0
        assert float(l1_regularizer(model).data) == 0.0

    def test_gradient_is_sign(self):
        model = Sequential(Linear(2, 2, bias=False))
        model[0].weight.data = np.array([[1.0, -2.0], [3.0, -4.0]],
                                        dtype=np.float32)
        l1_regularizer(model).backward()
        np.testing.assert_allclose(model[0].weight.grad,
                                   np.sign(model[0].weight.data))

    def test_no_layers_raises(self):
        from repro.nn import ReLU
        with pytest.raises(ValueError):
            l1_regularizer(Sequential(ReLU()))


class TestOrthKernel:
    def test_zero_for_orthonormal_filters(self):
        # 4 filters forming an identity over a 4-dim flattened kernel.
        w = Tensor(np.eye(4, dtype=np.float32).reshape(4, 1, 2, 2))
        assert float(_orth_kernel(w).data) == pytest.approx(0.0, abs=1e-5)

    def test_positive_for_duplicate_filters(self):
        w = np.zeros((2, 1, 2, 2), dtype=np.float32)
        w[0, 0, 0, 0] = 1.0
        w[1, 0, 0, 0] = 1.0  # identical to filter 0
        value = float(_orth_kernel(Tensor(w)).data)
        # Gram = [[1,1],[1,1]]; ||G - I||_F = sqrt(2).
        assert value == pytest.approx(np.sqrt(2.0), rel=1e-4)

    def test_gradient_flows(self):
        w = Tensor(np.random.default_rng(0).normal(size=(3, 2, 2, 2)),
                   requires_grad=True)
        _orth_kernel(w).backward()
        assert w.grad is not None
        assert np.abs(w.grad).max() > 0


class TestOrthConv:
    def test_zero_for_delta_filter(self):
        # A single 1x1 identity filter is trivially self-orthogonal.
        w = Tensor(np.ones((1, 1, 1, 1), dtype=np.float32))
        assert float(_orth_conv(w).data) == pytest.approx(0.0, abs=1e-5)

    def test_detects_shifted_self_correlation(self):
        # A constant 2x2 filter overlaps itself at every shift: loss > 0
        # even though its kernel-Gram diagonal could be normalised.
        w = Tensor(np.full((1, 1, 2, 2), 0.5, dtype=np.float32))
        assert float(_orth_conv(w).data) > 0.1

    def test_agrees_with_kernel_gram_for_stride_equal_kernel(self):
        # With stride = kernel (non-overlapping windows), the Toeplitz rows
        # are disjoint shifted kernels, so self-convolution at shift 0 is
        # the kernel Gram and all other taps vanish from the row overlap.
        rng = np.random.default_rng(1)
        w = Tensor(rng.normal(size=(3, 2, 2, 2)).astype(np.float32))
        conv_loss = float(_orth_conv(w, stride=2).data)
        gram_loss = float(_orth_kernel(w).data)
        assert conv_loss == pytest.approx(gram_loss, rel=1e-4)


class TestOrthogonalityTerm:
    def test_sums_over_all_layers(self):
        model = vgg11(num_classes=3, image_size=8, width=0.125)
        total = float(orthogonality_term(model).data)
        manual = sum(float(_orth_kernel(m.weight).data)
                     for m in model.modules()
                     if isinstance(m, (Conv2d, Linear)))
        assert total == pytest.approx(manual, rel=1e-4)

    def test_toeplitz_mode_needs_input_sizes(self):
        model = vgg11(num_classes=3, image_size=8, width=0.125)
        with pytest.raises(ValueError):
            orthogonality_term(model, mode="toeplitz")

    def test_unknown_mode_rejected(self):
        model = vgg11(num_classes=3, image_size=8, width=0.125)
        with pytest.raises(ValueError):
            orthogonality_term(model, mode="qr")

    def test_kernel_mode_covers_mlp_rows(self):
        # Kernel mode treats linear rows as filters (paper Fig. 1 applies
        # the class-aware story to MLP neurons).
        value = float(orthogonality_term(MLP(8, [4], 2)).data)
        assert value > 0

    def test_conv_mode_rejects_pure_mlp(self):
        with pytest.raises(ValueError):
            orthogonality_term(MLP(8, [4], 2), mode="conv")


class TestModifiedLoss:
    def test_reduces_to_ce_with_zero_coefficients(self, tiny_vgg):
        from repro.nn import cross_entropy
        loss = ModifiedLoss(lambda1=0.0, lambda2=0.0)
        x = Tensor(np.random.default_rng(0).normal(size=(4, 3, 8, 8))
                   .astype(np.float32))
        logits = tiny_vgg(x)
        targets = np.array([0, 1, 2, 0])
        terms = loss(tiny_vgg, logits, targets)
        assert float(terms.total.data) == pytest.approx(
            float(cross_entropy(logits, targets).data), rel=1e-6)
        assert terms.l1 == 0.0
        assert terms.orth == 0.0

    def test_total_includes_weighted_terms(self, tiny_vgg):
        loss = ModifiedLoss(lambda1=0.1, lambda2=0.2)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3, 8, 8))
                   .astype(np.float32))
        logits = tiny_vgg(x)
        terms = loss(tiny_vgg, logits, np.array([0, 1]))
        assert float(terms.total.data) == pytest.approx(
            terms.cross_entropy + 0.1 * terms.l1 + 0.2 * terms.orth, rel=1e-4)

    def test_negative_coefficients_rejected(self):
        with pytest.raises(ValueError):
            ModifiedLoss(lambda1=-1.0)

    def test_l1_training_shrinks_weights(self, tiny_dataset):
        # The mechanism Fig. 8 relies on: heavier L1 -> smaller weights.
        from repro.core import Trainer, TrainingConfig
        from repro.models import vgg11

        def final_weight_mass(lambda1):
            model = vgg11(num_classes=3, image_size=8, width=0.125, seed=4)
            cfg = TrainingConfig(epochs=3, batch_size=32, lr=0.05,
                                 lambda1=lambda1, lambda2=0.0,
                                 weight_decay=0.0)
            Trainer(model, tiny_dataset, config=cfg).train()
            return float(l1_regularizer(model).data)

        assert final_weight_mass(0.01) < final_weight_mass(0.0)

    def test_orth_training_reduces_orth_penalty(self, tiny_dataset):
        from repro.core import Trainer, TrainingConfig
        from repro.models import vgg11

        def final_orth(lambda2):
            model = vgg11(num_classes=3, image_size=8, width=0.125, seed=5)
            cfg = TrainingConfig(epochs=3, batch_size=32, lr=0.05,
                                 lambda1=0.0, lambda2=lambda2,
                                 weight_decay=0.0)
            Trainer(model, tiny_dataset, config=cfg).train()
            return float(orthogonality_term(model).data)

        assert final_orth(0.05) < final_orth(0.0)
