"""Knowledge-distillation-assisted recovery."""

import copy

import numpy as np
import pytest

from repro.core import (DistillationLoss, Trainer, TrainingConfig,
                        distill_finetune, evaluate_model, kl_divergence,
                        prune_groups)
from repro.models import MLP
from repro.tensor import Tensor


class TestKLDivergence:
    def test_identical_logits_give_zero(self):
        logits = np.random.default_rng(0).normal(size=(4, 5)).astype(np.float32)
        kl = kl_divergence(logits, Tensor(logits))
        assert float(kl.data) == pytest.approx(0.0, abs=1e-6)

    def test_nonnegative(self):
        rng = np.random.default_rng(1)
        t = rng.normal(size=(6, 4)).astype(np.float32)
        s = rng.normal(size=(6, 4)).astype(np.float32)
        assert float(kl_divergence(t, Tensor(s)).data) >= -1e-7

    def test_gradient_pulls_student_towards_teacher(self):
        rng = np.random.default_rng(2)
        teacher = rng.normal(size=(3, 4)).astype(np.float32)
        student = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        kl_divergence(teacher, student).backward()
        # One gradient step must decrease the KL.
        stepped = Tensor(student.data - 0.5 * student.grad)
        before = float(kl_divergence(teacher, Tensor(student.data)).data)
        after = float(kl_divergence(teacher, stepped).data)
        assert after < before

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            kl_divergence(np.zeros((1, 2)), Tensor(np.zeros((1, 2))),
                          temperature=0.0)


class TestDistillationLoss:
    def test_requires_bound_inputs(self, tiny_mlp):
        loss = DistillationLoss(copy.deepcopy(tiny_mlp), lambda1=0,
                                lambda2=0)
        logits = Tensor(np.zeros((2, 3), dtype=np.float32))
        with pytest.raises(RuntimeError, match="bind_inputs"):
            loss(tiny_mlp, logits, np.array([0, 1]))

    def test_alpha_zero_matches_plain_ce(self, tiny_mlp):
        from repro.nn import cross_entropy
        teacher = copy.deepcopy(tiny_mlp)
        loss = DistillationLoss(teacher, alpha=0.0, lambda1=0, lambda2=0)
        x = Tensor(np.random.default_rng(3).normal(size=(2, 3, 8, 8))
                   .astype(np.float32))
        loss.bind_inputs(x)
        logits = tiny_mlp(x)
        targets = np.array([0, 1])
        terms = loss(tiny_mlp, logits, targets)
        expected = float(cross_entropy(logits, targets).data)
        assert float(terms.total.data) == pytest.approx(expected, rel=1e-5)

    def test_invalid_alpha(self, tiny_mlp):
        with pytest.raises(ValueError):
            DistillationLoss(tiny_mlp, alpha=1.5)


class TestDistillFinetune:
    def test_recovers_pruned_student(self, tiny_dataset, tiny_test_dataset):
        cfg = TrainingConfig(epochs=12, batch_size=32, lr=0.05,
                             lambda1=0.0, lambda2=0.0, weight_decay=0.0)
        teacher = MLP(3 * 8 * 8, [32, 16], 3, seed=3)
        Trainer(teacher, tiny_dataset, tiny_test_dataset, cfg).train()
        _, teacher_acc = evaluate_model(teacher, tiny_test_dataset)

        student = copy.deepcopy(teacher)
        groups = student.prunable_groups()
        prune_groups(student, groups,
                     {groups[0].name: np.arange(16),
                      groups[1].name: np.arange(8)})
        _, pruned_acc = evaluate_model(student, tiny_test_dataset)

        distill_finetune(student, teacher, tiny_dataset, tiny_test_dataset,
                         cfg, epochs=5, alpha=0.5)
        _, recovered_acc = evaluate_model(student, tiny_test_dataset)
        assert recovered_acc >= pruned_acc - 0.05
        assert recovered_acc > 0.5  # chance = 1/3

    def test_student_parameters_are_updated_in_place(self, tiny_dataset):
        cfg = TrainingConfig(epochs=1, batch_size=32, lr=0.05,
                             lambda1=0.0, lambda2=0.0, weight_decay=0.0)
        teacher = MLP(3 * 8 * 8, [16], 3, seed=4)
        student = copy.deepcopy(teacher)
        before = student.get_module("body.0").weight.data.copy()
        distill_finetune(student, teacher, tiny_dataset, None, cfg,
                         epochs=1)
        assert not np.allclose(student.get_module("body.0").weight.data,
                               before)
