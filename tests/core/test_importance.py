"""Class-aware importance aggregation (Eq. 5–7) and the evaluator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (ImportanceConfig, ImportanceEvaluator,
                        ImportanceReport, aggregate_scores)
from repro.models import MLP, vgg11


class TestAggregateScores:
    def test_eq5_binarisation(self):
        # One image, one filter, two activations around the threshold.
        taylor = np.array([[[1e-60, 1e-3]]])  # (M=1, C=1, Z=2)
        out = aggregate_scores(taylor, tau=1e-50)
        np.testing.assert_allclose(out, [1.0])  # max over activations

    def test_eq6_average_over_images(self):
        # Activation important for 1 of 2 images -> s_ave = 0.5.
        taylor = np.array([[[1.0]], [[0.0]]])   # (M=2, C=1, Z=1)
        out = aggregate_scores(taylor, tau=1e-50)
        np.testing.assert_allclose(out, [0.5])

    def test_eq7_max_over_activations(self):
        # Filter with one always-important activation scores 1 even when
        # the others are dead.
        taylor = np.zeros((3, 1, 5))
        taylor[:, 0, 2] = 1.0
        out = aggregate_scores(taylor, tau=1e-50)
        np.testing.assert_allclose(out, [1.0])

    def test_mean_aggregation_option(self):
        taylor = np.zeros((1, 1, 4))
        taylor[0, 0, 0] = 1.0
        out = aggregate_scores(taylor, tau=1e-50, aggregation="mean")
        np.testing.assert_allclose(out, [0.25])

    def test_linear_layer_scores(self):
        # (M, F) scores: each unit has exactly one activation.
        taylor = np.array([[1.0, 0.0], [1.0, 0.0]])
        out = aggregate_scores(taylor, tau=1e-50)
        np.testing.assert_allclose(out, [1.0, 0.0])

    def test_spatial_scores(self):
        taylor = np.random.default_rng(0).random((2, 3, 4, 4))
        out = aggregate_scores(taylor, tau=0.5)
        assert out.shape == (3,)

    def test_rejects_scalar_input(self):
        with pytest.raises(ValueError):
            aggregate_scores(np.array([1.0]), tau=0.1)

    @settings(max_examples=50, deadline=None)
    @given(arrays(np.float64, (4, 3, 5),
                  elements=st.floats(min_value=0, max_value=1)),
           st.floats(min_value=1e-6, max_value=0.9))
    def test_scores_bounded_in_unit_interval(self, taylor, tau):
        out = aggregate_scores(taylor, tau=tau)
        assert (out >= 0).all() and (out <= 1).all()

    @settings(max_examples=50, deadline=None)
    @given(arrays(np.float64, (3, 2, 4),
                  elements=st.floats(min_value=0, max_value=1)))
    def test_monotone_in_tau(self, taylor):
        # Raising the threshold can only lower scores.
        low = aggregate_scores(taylor, tau=0.1)
        high = aggregate_scores(taylor, tau=0.5)
        assert (high <= low + 1e-12).all()

    @settings(max_examples=50, deadline=None)
    @given(arrays(np.float64, (3, 2, 4),
                  elements=st.floats(min_value=0, max_value=1)))
    def test_max_dominates_mean(self, taylor):
        mx = aggregate_scores(taylor, tau=0.3, aggregation="max")
        mn = aggregate_scores(taylor, tau=0.3, aggregation="mean")
        assert (mx >= mn - 1e-12).all()


class TestImportanceConfig:
    def test_defaults_follow_paper(self):
        cfg = ImportanceConfig()
        assert cfg.images_per_class == 10
        assert cfg.tau == 1e-50
        assert cfg.aggregation == "max"

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            ImportanceConfig(images_per_class=0)
        with pytest.raises(ValueError):
            ImportanceConfig(aggregation="median")


class TestEvaluator:
    def test_report_structure(self, tiny_vgg, tiny_dataset):
        groups = tiny_vgg.prunable_groups()
        evaluator = ImportanceEvaluator(
            tiny_vgg, tiny_dataset, num_classes=3,
            config=ImportanceConfig(images_per_class=3))
        report = evaluator.evaluate([g.conv for g in groups])
        assert report.num_classes == 3
        for g in groups:
            n = tiny_vgg.get_module(g.conv).out_channels
            assert report.total[g.conv].shape == (n,)
            assert report.per_class[g.conv].shape == (n, 3)

    def test_total_is_sum_of_per_class(self, tiny_vgg, tiny_dataset):
        path = tiny_vgg.conv_layer_paths()[0]
        evaluator = ImportanceEvaluator(
            tiny_vgg, tiny_dataset, num_classes=3,
            config=ImportanceConfig(images_per_class=3))
        report = evaluator.evaluate([path])
        np.testing.assert_allclose(report.total[path],
                                   report.per_class[path].sum(axis=1))

    def test_scores_bounded_by_num_classes(self, tiny_vgg, tiny_dataset):
        path = tiny_vgg.conv_layer_paths()[0]
        evaluator = ImportanceEvaluator(
            tiny_vgg, tiny_dataset, num_classes=3,
            config=ImportanceConfig(images_per_class=2))
        report = evaluator.evaluate([path])
        assert (report.total[path] >= 0).all()
        assert (report.total[path] <= 3.0 + 1e-9).all()

    def test_deterministic_given_seed(self, tiny_vgg, tiny_dataset):
        path = tiny_vgg.conv_layer_paths()[0]
        cfg = ImportanceConfig(images_per_class=2, seed=9)
        r1 = ImportanceEvaluator(tiny_vgg, tiny_dataset, 3, cfg).evaluate([path])
        r2 = ImportanceEvaluator(tiny_vgg, tiny_dataset, 3, cfg).evaluate([path])
        np.testing.assert_array_equal(r1.total[path], r2.total[path])

    def test_works_on_mlp_units(self, tiny_mlp, tiny_dataset):
        groups = tiny_mlp.prunable_groups()
        evaluator = ImportanceEvaluator(
            tiny_mlp, tiny_dataset, num_classes=3,
            config=ImportanceConfig(images_per_class=2))
        report = evaluator.evaluate([g.conv for g in groups])
        assert report.total[groups[0].conv].shape == (16,)

    def test_zeroed_filter_gets_zero_score(self, tiny_dataset):
        # A filter whose weights are zero produces constant-zero activations
        # -> Taylor scores 0 -> importance 0 for every class.
        model = vgg11(num_classes=3, image_size=8, width=0.125, seed=2)
        path = model.conv_layer_paths()[0]
        conv = model.get_module(path)
        conv.weight.data[1] = 0.0
        if conv.bias is not None:
            conv.bias.data[1] = 0.0
        # Also kill the BN affine response of that channel so downstream
        # activation is exactly zero.
        bn = model.get_module(model.prunable_groups()[0].bn)
        bn.weight.data[1] = 0.0
        bn.bias.data[1] = 0.0
        evaluator = ImportanceEvaluator(
            model, tiny_dataset, num_classes=3,
            config=ImportanceConfig(images_per_class=2))
        report = evaluator.evaluate([path])
        assert report.total[path][1] == pytest.approx(0.0, abs=1e-9)


class TestReport:
    def test_all_scores_concatenates(self):
        report = ImportanceReport(num_classes=5)
        report.total = {"a": np.array([1.0, 2.0]), "b": np.array([3.0])}
        np.testing.assert_array_equal(report.all_scores(), [1.0, 2.0, 3.0])

    def test_layer_means(self):
        report = ImportanceReport(num_classes=5)
        report.total = {"a": np.array([1.0, 3.0])}
        assert report.layer_means() == {"a": 2.0}

    def test_empty_report(self):
        report = ImportanceReport()
        assert report.all_scores().size == 0
