"""Pruning strategies (Sec. III-C, Table II axes)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (CombinedStrategy, PercentageStrategy,
                        ThresholdStrategy, strategy_from_name)


def scores_fixture():
    return {
        "layer1": np.array([0.5, 2.0, 5.0, 9.0]),
        "layer2": np.array([1.0, 1.5, 8.0]),
    }


MIN1 = {"layer1": 1, "layer2": 1}


class TestThresholdStrategy:
    def test_selects_all_below_threshold(self):
        decision = ThresholdStrategy(3.0).select(scores_fixture(), MIN1)
        np.testing.assert_array_equal(decision.remove["layer1"], [0, 1])
        np.testing.assert_array_equal(decision.remove["layer2"], [0, 1])

    def test_no_filter_below_returns_empty(self):
        decision = ThresholdStrategy(0.1).select(scores_fixture(), MIN1)
        assert decision.is_empty()

    def test_min_channels_protected(self):
        scores = {"l": np.array([0.1, 0.2, 0.3])}
        decision = ThresholdStrategy(10.0).select(scores, {"l": 2})
        # Only one filter may go; the lowest-scoring one.
        np.testing.assert_array_equal(decision.remove["l"], [0])

    def test_never_empties_group(self):
        scores = {"l": np.array([0.1, 0.2])}
        decision = ThresholdStrategy(10.0).select(scores, {"l": 1})
        assert len(decision.remove["l"]) == 1

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ThresholdStrategy(0.0)


class TestPercentageStrategy:
    def test_removes_global_bottom_fraction(self):
        # 7 filters, 30% -> floor(2.1) = 2 lowest: layer1[0]=0.5, layer2[0]=1.0.
        decision = PercentageStrategy(0.3).select(scores_fixture(), MIN1)
        assert decision.num_selected == 2
        np.testing.assert_array_equal(decision.remove["layer1"], [0])
        np.testing.assert_array_equal(decision.remove["layer2"], [0])

    def test_tiny_fraction_selects_nothing(self):
        decision = PercentageStrategy(0.05).select(scores_fixture(), MIN1)
        assert decision.is_empty()

    def test_respects_min_channels_per_group(self):
        scores = {"small": np.array([0.0, 0.1]), "big": np.array([5.0] * 8)}
        decision = PercentageStrategy(0.5).select(scores, {"small": 2, "big": 1})
        # Both "small" filters are globally lowest but protected.
        assert "small" not in decision.remove

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            PercentageStrategy(0.0)
        with pytest.raises(ValueError):
            PercentageStrategy(1.0)


class TestCombinedStrategy:
    def test_threshold_filters_then_percentage_caps(self):
        # Below threshold 3: 4 filters; cap 30% of 7 = 2 -> two lowest.
        decision = CombinedStrategy(3.0, 0.3).select(scores_fixture(), MIN1)
        assert decision.num_selected == 2
        np.testing.assert_array_equal(decision.remove["layer1"], [0])
        np.testing.assert_array_equal(decision.remove["layer2"], [0])

    def test_fewer_candidates_than_budget(self):
        decision = CombinedStrategy(1.2, 0.9).select(scores_fixture(), MIN1)
        # Only scores 0.5 and 1.0 fall below 1.2.
        assert decision.num_selected == 2

    def test_empty_when_nothing_below_threshold(self):
        decision = CombinedStrategy(0.2, 0.5).select(scores_fixture(), MIN1)
        assert decision.is_empty()

    def test_budget_at_least_one(self):
        scores = {"l": np.array([0.1] + [9.0] * 3)}
        decision = CombinedStrategy(1.0, 0.01).select(scores, {"l": 1})
        assert decision.num_selected == 1

    def test_prunes_less_or_equal_than_components(self):
        # The combination is the intersection-with-cap: never more than
        # the pure threshold strategy selects.
        scores = scores_fixture()
        combined = CombinedStrategy(3.0, 0.3).select(scores, MIN1)
        threshold = ThresholdStrategy(3.0).select(scores, MIN1)
        assert combined.num_selected <= threshold.num_selected


class TestStrategyFromName:
    @pytest.mark.parametrize("name,cls", [
        ("percentage", PercentageStrategy),
        ("threshold", ThresholdStrategy),
        ("percentage+threshold", CombinedStrategy),
        ("combined", CombinedStrategy),
    ])
    def test_names(self, name, cls):
        assert isinstance(strategy_from_name(name, 3.0, 0.1), cls)

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            strategy_from_name("magic", 3.0, 0.1)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=10), min_size=2,
                max_size=30),
       st.floats(min_value=0.01, max_value=0.99),
       st.floats(min_value=0.1, max_value=9.9))
def test_combined_invariants(score_list, fraction, threshold):
    """For any inputs: budget respected, min_channels respected, victims
    all scored below threshold."""
    scores = {"g": np.array(score_list)}
    decision = CombinedStrategy(threshold, fraction).select(scores, {"g": 1})
    n = len(score_list)
    budget = max(int(np.floor(n * fraction)), 1)
    removed = decision.remove.get("g", np.array([], dtype=int))
    assert len(removed) <= budget
    assert len(removed) <= n - 1
    assert all(scores["g"][i] < threshold for i in removed)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=10), min_size=3,
                max_size=30),
       st.floats(min_value=0.05, max_value=0.95))
def test_percentage_removes_lowest(score_list, fraction):
    scores = {"g": np.array(score_list)}
    decision = PercentageStrategy(fraction).select(scores, {"g": 1})
    removed = decision.remove.get("g", np.array([], dtype=int))
    if len(removed):
        kept = np.setdiff1d(np.arange(len(score_list)), removed)
        assert scores["g"][removed].max() <= scores["g"][kept].min() + 1e-12
