"""Filter surgery: structural consistency and functional equivalence."""

import numpy as np
import pytest

from repro.core import apply_pruning, group_sizes, prune_groups
from repro.core.importance import ImportanceReport
from repro.core.pruner import PercentageStrategy
from repro.models import MLP, resnet20, vgg11
from repro.tensor import Tensor, no_grad


def forward(model, size=8, n=3, seed=0):
    x = Tensor(np.random.default_rng(seed).normal(size=(n, 3, size, size))
               .astype(np.float32))
    model.eval()
    with no_grad():
        return model(x).data


class TestVGGSurgery:
    def test_structure_consistent_after_pruning(self, tiny_vgg):
        groups = tiny_vgg.prunable_groups()
        keep = {groups[0].name: np.array([0, 2, 4])}
        prune_groups(tiny_vgg, groups, keep)
        conv = tiny_vgg.get_module(groups[0].conv)
        bn = tiny_vgg.get_module(groups[0].bn)
        nxt = tiny_vgg.get_module(groups[0].consumers[0].path)
        assert conv.out_channels == 3
        assert bn.num_features == 3
        assert nxt.in_channels == 3
        forward(tiny_vgg)  # must still run

    def test_prune_last_conv_updates_classifier(self, tiny_vgg):
        groups = tiny_vgg.prunable_groups()
        last = groups[-1]
        total = tiny_vgg.get_module(last.conv).out_channels
        keep = {last.name: np.arange(total // 2)}
        prune_groups(tiny_vgg, groups, keep)
        assert tiny_vgg.classifier.in_features == total // 2
        forward(tiny_vgg)

    def test_flatten_head_grouped_columns(self):
        model = vgg11(num_classes=3, image_size=16, width=0.125,
                      head="flatten", seed=1)
        groups = model.prunable_groups()
        last = groups[-1]
        total = model.get_module(last.conv).out_channels
        spatial = model.final_spatial ** 2
        keep = {last.name: np.arange(total - 2)}
        prune_groups(model, groups, keep)
        assert model.classifier.in_features == (total - 2) * spatial
        forward(model, size=16)

    def test_zeroed_filters_prune_without_output_change(self, tiny_vgg):
        """Pruning filters whose entire influence is zero must leave the
        network function exactly unchanged — the core correctness property
        of structured pruning surgery."""
        groups = tiny_vgg.prunable_groups()
        g = groups[1]
        conv = tiny_vgg.get_module(g.conv)
        bn = tiny_vgg.get_module(g.bn)
        victims = [1, 3]
        # Zero the filter and its BN affine response so the channel
        # contributes nothing downstream.
        for v in victims:
            conv.weight.data[v] = 0.0
            bn.weight.data[v] = 0.0
            bn.bias.data[v] = 0.0
        before = forward(tiny_vgg)
        keep = {g.name: np.setdiff1d(np.arange(conv.out_channels), victims)}
        prune_groups(tiny_vgg, groups, keep)
        after = forward(tiny_vgg)
        np.testing.assert_allclose(before, after, rtol=1e-4, atol=1e-5)

    def test_keep_order_preserved(self, tiny_vgg):
        groups = tiny_vgg.prunable_groups()
        g = groups[0]
        conv = tiny_vgg.get_module(g.conv)
        original = conv.weight.data.copy()
        prune_groups(tiny_vgg, groups, {g.name: np.array([4, 0, 2])})
        # Keep indices are normalised to sorted order.
        np.testing.assert_allclose(conv.weight.data, original[[0, 2, 4]])


class TestResNetSurgery:
    def test_block_internal_pruning(self, tiny_resnet):
        groups = tiny_resnet.prunable_groups()
        g = groups[0]
        conv1 = tiny_resnet.get_module(g.conv)
        conv2 = tiny_resnet.get_module(g.consumers[0].path)
        out_before = conv2.out_channels
        keep = {g.name: np.arange(conv1.out_channels - 1)}
        prune_groups(tiny_resnet, groups, keep)
        assert conv2.in_channels == conv1.out_channels
        assert conv2.out_channels == out_before  # block output unchanged
        forward(tiny_resnet)

    def test_all_blocks_prunable_simultaneously(self, tiny_resnet):
        groups = tiny_resnet.prunable_groups()
        sizes = group_sizes(tiny_resnet, groups)
        keep = {g.name: np.arange(max(sizes[g.name] // 2, 1)) for g in groups}
        prune_groups(tiny_resnet, groups, keep)
        forward(tiny_resnet)

    def test_zeroed_filter_equivalence_resnet(self, tiny_resnet):
        groups = tiny_resnet.prunable_groups()
        g = groups[4]
        conv1 = tiny_resnet.get_module(g.conv)
        bn1 = tiny_resnet.get_module(g.bn)
        conv1.weight.data[0] = 0.0
        bn1.weight.data[0] = 0.0
        bn1.bias.data[0] = 0.0
        before = forward(tiny_resnet)
        keep = {g.name: np.arange(1, conv1.out_channels)}
        prune_groups(tiny_resnet, groups, keep)
        after = forward(tiny_resnet)
        np.testing.assert_allclose(before, after, rtol=1e-4, atol=1e-5)


class TestMLPSurgery:
    def test_unit_pruning(self, tiny_mlp):
        groups = tiny_mlp.prunable_groups()
        first = tiny_mlp.get_module(groups[0].conv)
        second = tiny_mlp.get_module(groups[0].consumers[0].path)
        keep = {groups[0].name: np.arange(8)}
        prune_groups(tiny_mlp, groups, keep)
        assert first.out_features == 8
        assert second.in_features == 8
        forward(tiny_mlp)

    def test_zeroed_unit_equivalence(self, tiny_mlp):
        groups = tiny_mlp.prunable_groups()
        g = groups[0]
        lin = tiny_mlp.get_module(g.conv)
        lin.weight.data[5] = 0.0
        lin.bias.data[5] = 0.0
        before = forward(tiny_mlp)
        keep = {g.name: np.setdiff1d(np.arange(lin.out_features), [5])}
        prune_groups(tiny_mlp, groups, keep)
        np.testing.assert_allclose(forward(tiny_mlp), before, rtol=1e-4,
                                   atol=1e-5)


class TestValidation:
    def test_cannot_remove_every_filter(self, tiny_vgg):
        groups = tiny_vgg.prunable_groups()
        with pytest.raises(ValueError, match="cannot remove every filter"):
            prune_groups(tiny_vgg, groups, {groups[0].name: np.array([], dtype=int)})

    def test_out_of_range_indices(self, tiny_vgg):
        groups = tiny_vgg.prunable_groups()
        with pytest.raises(ValueError, match="out of range"):
            prune_groups(tiny_vgg, groups, {groups[0].name: np.array([999])})

    def test_unknown_group_name(self, tiny_vgg):
        groups = tiny_vgg.prunable_groups()
        with pytest.raises(KeyError):
            prune_groups(tiny_vgg, groups, {"nope": np.array([0])})

    def test_duplicate_keep_indices_deduplicated(self, tiny_vgg):
        groups = tiny_vgg.prunable_groups()
        g = groups[0]
        prune_groups(tiny_vgg, groups, {g.name: np.array([0, 0, 1, 1])})
        assert tiny_vgg.get_module(g.conv).out_channels == 2

    def test_record_contents(self, tiny_vgg):
        groups = tiny_vgg.prunable_groups()
        g = groups[0]
        total = tiny_vgg.get_module(g.conv).out_channels
        record = prune_groups(tiny_vgg, groups, {g.name: np.array([0, 1])})
        assert record.num_removed == total - 2
        np.testing.assert_array_equal(record.kept[g.name], [0, 1])
        np.testing.assert_array_equal(record.removed[g.name],
                                      np.arange(2, total))


class TestApplyPruning:
    def test_stale_report_rejected(self, tiny_vgg):
        groups = tiny_vgg.prunable_groups()
        report = ImportanceReport(num_classes=3)
        report.total = {g.name: np.zeros(99) for g in groups}
        with pytest.raises(ValueError, match="stale"):
            apply_pruning(tiny_vgg, groups, report, PercentageStrategy(0.2))

    def test_empty_decision_returns_empty_record(self, tiny_vgg):
        groups = tiny_vgg.prunable_groups()
        sizes = group_sizes(tiny_vgg, groups)
        report = ImportanceReport(num_classes=3)
        # All filters maximally important, tiny percentage -> nothing goes.
        report.total = {g.name: np.full(sizes[g.name], 3.0) for g in groups}
        record = apply_pruning(tiny_vgg, groups, report,
                               PercentageStrategy(0.001))
        assert record.num_removed == 0
