"""Soft pruning (masking) — what-if analysis equivalence."""

import copy

import numpy as np
import pytest

from repro.core import (FilterMasks, evaluate_model, group_mask_paths,
                        masked_accuracy, prune_groups, simulate_decision)
from repro.core.pruner import PercentageStrategy
from repro.nn import BatchNorm2d
from repro.tensor import Tensor, no_grad


def perturb_batchnorm(model, seed=0):
    """Give every BN non-trivial statistics, as after real training."""
    rng = np.random.default_rng(seed)
    for _, mod in model.named_modules():
        if isinstance(mod, BatchNorm2d):
            mod.running_mean += rng.normal(
                size=mod.running_mean.shape).astype(np.float32)
            mod.running_var *= np.exp(rng.normal(
                scale=0.3, size=mod.running_var.shape)).astype(np.float32)
            mod.bias.data += rng.normal(
                size=mod.bias.data.shape).astype(np.float32)


def forward(model, size=8, seed=0):
    x = Tensor(np.random.default_rng(seed).normal(size=(3, 3, size, size))
               .astype(np.float32))
    model.eval()
    with no_grad():
        return model(x).data


class TestFilterMasks:
    def test_masks_zero_the_channels(self, tiny_vgg):
        path = tiny_vgg.conv_layer_paths()[0]
        from repro.core import ActivationRecorder
        with FilterMasks(tiny_vgg, {path: np.array([1, 2])}):
            # Record the *consumer's view* by re-reading the masked output
            # through a second forward with a recorder downstream.
            bn_path = tiny_vgg.prunable_groups()[0].bn
            with ActivationRecorder(tiny_vgg, [bn_path]) as rec:
                forward(tiny_vgg)
                # BN of a zeroed channel in eval mode is an affine constant,
                # but in the recorded conv output itself channels are 0:
            with ActivationRecorder(tiny_vgg, [path]) as rec2:
                forward(tiny_vgg)
                act = rec2.activations[path].data
        assert np.abs(act[:, [1, 2]]).max() == 0.0
        assert np.abs(act[:, 0]).max() > 0.0

    def test_hooks_removed_on_exit(self, tiny_vgg):
        path = tiny_vgg.conv_layer_paths()[0]
        before = forward(tiny_vgg)
        with FilterMasks(tiny_vgg, {path: np.array([0])}):
            masked = forward(tiny_vgg)
        after = forward(tiny_vgg)
        np.testing.assert_allclose(after, before, rtol=1e-6)
        assert not np.allclose(masked, before)

    def test_mask_on_linear_layer(self, tiny_mlp):
        group = tiny_mlp.prunable_groups()[0]
        with FilterMasks(tiny_mlp, {group.conv: np.array([0, 1, 2])}):
            out = forward(tiny_mlp)
        assert out.shape == (3, 3)


class TestEquivalenceWithSurgery:
    def test_masking_equals_pruning_for_mlp(self, tiny_mlp):
        """Masking unit outputs must equal physically removing them."""
        group = tiny_mlp.prunable_groups()[0]
        victims = np.array([3, 7])
        with FilterMasks(tiny_mlp, {group.conv: victims}):
            masked_out = forward(tiny_mlp)
        pruned = copy.deepcopy(tiny_mlp)
        groups = pruned.prunable_groups()
        lin = pruned.get_module(group.conv)
        keep = np.setdiff1d(np.arange(lin.out_features), victims)
        prune_groups(pruned, groups, {group.name: keep})
        pruned_out = forward(pruned)
        np.testing.assert_allclose(masked_out, pruned_out, rtol=1e-4,
                                   atol=1e-5)

    def test_group_masking_equals_pruning_for_conv_groups(self, tiny_vgg):
        """Group-aware masks (after BN) match surgery on conv groups.

        Regression: masking the conv output itself is NOT equivalent once
        BN statistics are non-trivial — BN maps zeroed channels to an
        affine constant that leaks into the consumers.
        """
        perturb_batchnorm(tiny_vgg)
        group = tiny_vgg.prunable_groups()[0]
        victims = np.array([1, 3])
        with FilterMasks.for_groups(tiny_vgg, tiny_vgg.prunable_groups(),
                                    {group.name: victims}):
            masked_out = forward(tiny_vgg)
        pruned = copy.deepcopy(tiny_vgg)
        conv = pruned.get_module(group.conv)
        keep = np.setdiff1d(np.arange(conv.out_channels), victims)
        prune_groups(pruned, pruned.prunable_groups(), {group.name: keep})
        pruned_out = forward(pruned)
        np.testing.assert_allclose(masked_out, pruned_out, rtol=1e-4,
                                   atol=1e-5)

    def test_conv_output_masking_is_not_equivalent(self, tiny_vgg):
        """Documents the bug the group-aware path fixes."""
        perturb_batchnorm(tiny_vgg)
        group = tiny_vgg.prunable_groups()[0]
        victims = np.array([1, 3])
        with FilterMasks(tiny_vgg, {group.conv: victims}):
            masked_out = forward(tiny_vgg)
        pruned = copy.deepcopy(tiny_vgg)
        conv = pruned.get_module(group.conv)
        keep = np.setdiff1d(np.arange(conv.out_channels), victims)
        prune_groups(pruned, pruned.prunable_groups(), {group.name: keep})
        pruned_out = forward(pruned)
        assert np.abs(masked_out - pruned_out).max() > 1e-6

    def test_group_mask_paths_prefers_bn(self, tiny_vgg, tiny_mlp):
        vgg_paths = group_mask_paths(tiny_vgg.prunable_groups())
        for g in tiny_vgg.prunable_groups():
            assert vgg_paths[g.name] == g.bn
        mlp_paths = group_mask_paths(tiny_mlp.prunable_groups())
        for g in tiny_mlp.prunable_groups():
            assert mlp_paths[g.name] == g.conv


class TestAccuracyHelpers:
    def test_masked_accuracy_bounded(self, tiny_mlp, tiny_dataset):
        group = tiny_mlp.prunable_groups()[0]
        acc = masked_accuracy(tiny_mlp, tiny_dataset,
                              {group.conv: np.array([0])})
        assert 0.0 <= acc <= 1.0

    def test_simulate_decision_runs(self, tiny_mlp, tiny_dataset):
        groups = tiny_mlp.prunable_groups()
        scores = {g.name: np.random.default_rng(0).random(
            tiny_mlp.get_module(g.conv).out_features) for g in groups}
        decision = PercentageStrategy(0.2).select(
            scores, {g.name: 1 for g in groups})
        acc = simulate_decision(tiny_mlp, tiny_dataset, decision)
        assert 0.0 <= acc <= 1.0

    def test_unmasked_equals_plain_evaluation(self, tiny_mlp, tiny_dataset):
        _, plain = evaluate_model(tiny_mlp, tiny_dataset)
        masked = masked_accuracy(tiny_mlp, tiny_dataset, {})
        assert masked == pytest.approx(plain)
