"""Property tests on filter surgery: any valid keep-set leaves a working net."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import group_sizes, prune_groups
from repro.models import MLP, vgg11
from repro.tensor import Tensor, no_grad


def forward_ok(model, num_classes):
    x = Tensor(np.random.default_rng(0).normal(size=(2, 3, 8, 8))
               .astype(np.float32))
    model.eval()
    with no_grad():
        out = model(x)
    assert out.shape == (2, num_classes)
    assert np.isfinite(out.data).all()


@settings(max_examples=12, deadline=None)
@given(st.data())
def test_any_valid_keepset_keeps_vgg_runnable(data):
    model = vgg11(num_classes=3, image_size=8, width=0.125, seed=1)
    groups = model.prunable_groups()
    sizes = group_sizes(model, groups)
    keep = {}
    for g in groups:
        n = sizes[g.name]
        count = data.draw(st.integers(min_value=1, max_value=n),
                          label=f"keep count {g.name}")
        idx = data.draw(
            st.sets(st.integers(0, n - 1), min_size=count, max_size=count),
            label=f"keep idx {g.name}")
        keep[g.name] = np.asarray(sorted(idx))
    prune_groups(model, groups, keep)
    for g in groups:
        assert model.get_module(g.conv).out_channels == len(keep[g.name])
    forward_ok(model, 3)


@settings(max_examples=12, deadline=None)
@given(st.integers(1, 15), st.integers(1, 11))
def test_any_valid_keepset_keeps_mlp_runnable(k1, k2):
    model = MLP(3 * 8 * 8, [16, 12], 3, seed=2)
    groups = model.prunable_groups()
    keep = {groups[0].name: np.arange(k1), groups[1].name: np.arange(k2)}
    prune_groups(model, groups, keep)
    assert model.get_module(groups[0].conv).out_features == k1
    assert model.get_module(groups[1].conv).out_features == k2
    forward_ok(model, 3)


@settings(max_examples=10, deadline=None)
@given(st.integers(2, 8))
def test_pruning_is_idempotent_on_full_keep(n_keep):
    model = vgg11(num_classes=3, image_size=8, width=0.125, seed=3)
    groups = model.prunable_groups()
    g = groups[0]
    prune_groups(model, groups, {g.name: np.arange(n_keep)})
    weights_once = model.get_module(g.conv).weight.data.copy()
    # Keeping everything that's left must be a no-op.
    groups2 = model.prunable_groups()
    prune_groups(model, groups2, {g.name: np.arange(n_keep)})
    np.testing.assert_array_equal(model.get_module(g.conv).weight.data,
                                  weights_once)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 1000))
def test_param_count_matches_profile_after_random_surgery(seed):
    from repro.flops import profile_model
    rng = np.random.default_rng(seed)
    model = vgg11(num_classes=3, image_size=8, width=0.125, seed=4)
    groups = model.prunable_groups()
    sizes = group_sizes(model, groups)
    keep = {g.name: np.sort(rng.choice(
        sizes[g.name], size=rng.integers(1, sizes[g.name] + 1),
        replace=False)) for g in groups}
    prune_groups(model, groups, keep)
    profile = profile_model(model, (3, 8, 8))
    assert profile.total_params == model.num_parameters()
