"""Trainer: learning progress, evaluation, history bookkeeping."""

import numpy as np
import pytest

from repro.core import Trainer, TrainingConfig, evaluate_model
from repro.models import MLP, vgg11


def small_config(**overrides):
    defaults = dict(epochs=3, batch_size=32, lr=0.05, lambda1=0.0,
                    lambda2=0.0, weight_decay=0.0)
    defaults.update(overrides)
    return TrainingConfig(**defaults)


class TestTraining:
    def test_loss_decreases(self, tiny_vgg, tiny_dataset):
        trainer = Trainer(tiny_vgg, tiny_dataset, config=small_config())
        history = trainer.train()
        assert history.epochs[-1].train_loss < history.epochs[0].train_loss

    def test_accuracy_beats_chance(self, tiny_dataset, tiny_test_dataset):
        # Enough epochs for the BN running statistics to converge (each
        # epoch is only two batches on the tiny dataset).
        model = vgg11(num_classes=3, image_size=8, width=0.25, seed=0)
        trainer = Trainer(model, tiny_dataset, tiny_test_dataset,
                          config=small_config(epochs=25))
        history = trainer.train()
        assert history.final_test_accuracy > 0.6   # chance is 1/3

    def test_history_has_one_entry_per_epoch(self, tiny_mlp, tiny_dataset):
        history = Trainer(tiny_mlp, tiny_dataset,
                          config=small_config(epochs=4)).train()
        assert len(history.epochs) == 4
        assert [e.epoch for e in history.epochs] == [0, 1, 2, 3]

    def test_no_test_set_leaves_accuracy_none(self, tiny_mlp, tiny_dataset):
        history = Trainer(tiny_mlp, tiny_dataset,
                          config=small_config(epochs=1)).train()
        assert history.epochs[0].test_accuracy is None
        assert history.final_test_accuracy is None

    def test_epochs_override(self, tiny_mlp, tiny_dataset):
        trainer = Trainer(tiny_mlp, tiny_dataset, config=small_config(epochs=9))
        history = trainer.train(epochs=2)
        assert len(history.epochs) == 2

    def test_regulariser_terms_logged(self, tiny_vgg, tiny_dataset):
        cfg = small_config(epochs=1, lambda1=1e-4, lambda2=1e-2)
        history = Trainer(tiny_vgg, tiny_dataset, config=cfg).train()
        assert history.epochs[0].l1 > 0
        assert history.epochs[0].orth > 0

    def test_lr_milestones_decay(self, tiny_mlp, tiny_dataset):
        cfg = small_config(epochs=4, lr_milestones=(2,), lr_gamma=0.1)
        history = Trainer(tiny_mlp, tiny_dataset, config=cfg).train()
        assert history.epochs[0].lr == pytest.approx(0.05)
        assert history.epochs[3].lr == pytest.approx(0.005)

    def test_custom_loss_fn_used(self, tiny_mlp, tiny_dataset):
        from repro.core import ModifiedLoss

        calls = []

        class SpyLoss(ModifiedLoss):
            def __call__(self, model, logits, targets):
                calls.append(1)
                return super().__call__(model, logits, targets)

        Trainer(tiny_mlp, tiny_dataset, config=small_config(epochs=1),
                loss_fn=SpyLoss(lambda1=0, lambda2=0)).train()
        assert len(calls) == 2  # 60 samples / 32 batch = 2 batches

    def test_best_test_accuracy(self, tiny_dataset, tiny_test_dataset):
        model = MLP(3 * 8 * 8, [16], 3, seed=0)
        history = Trainer(model, tiny_dataset, tiny_test_dataset,
                          config=small_config(epochs=3)).train()
        best = history.best_test_accuracy
        assert best == max(e.test_accuracy for e in history.epochs)


class TestEvaluateModel:
    def test_returns_loss_and_accuracy(self, tiny_mlp, tiny_dataset):
        loss, acc = evaluate_model(tiny_mlp, tiny_dataset)
        assert loss > 0
        assert 0.0 <= acc <= 1.0

    def test_restores_training_mode(self, tiny_mlp, tiny_dataset):
        tiny_mlp.train()
        evaluate_model(tiny_mlp, tiny_dataset)
        assert tiny_mlp.training

    def test_deterministic(self, tiny_mlp, tiny_dataset):
        a = evaluate_model(tiny_mlp, tiny_dataset)
        b = evaluate_model(tiny_mlp, tiny_dataset)
        assert a == b

    def test_does_not_touch_bn_running_stats(self, tiny_vgg, tiny_dataset):
        bn = tiny_vgg.get_module(tiny_vgg.prunable_groups()[0].bn)
        before = bn.running_mean.copy()
        evaluate_model(tiny_vgg, tiny_dataset)
        np.testing.assert_array_equal(bn.running_mean, before)
