"""Taylor scores (Eq. 4) and their agreement with exact zeroing (Eq. 3)."""

import numpy as np
import pytest

from repro.core import ExactZeroingEngine, TaylorScoreEngine
from repro.core.hooks import ActivationRecorder, activation_mask
from repro.models import MLP, vgg11
from repro.nn import Linear, Module, ReLU, Sequential
from repro.tensor import Tensor


class TinyNet(Module):
    """Two-layer net small enough for exhaustive exact zeroing."""

    def __init__(self, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.fc1 = Linear(6, 4, rng=rng)
        self.act = ReLU()
        self.fc2 = Linear(4, 3, rng=rng)

    def forward(self, x):
        from repro.tensor import ops
        return self.fc2(self.act(self.fc1(ops.flatten(x, 1))))


def tiny_batch(n=4, seed=0):
    rng = np.random.default_rng(seed)
    images = rng.normal(size=(n, 6)).astype(np.float32)
    targets = rng.integers(0, 3, size=n)
    return images, targets


class TestHooks:
    def test_recorder_captures_and_reads_gradients(self):
        net = TinyNet()
        images, targets = tiny_batch()
        from repro.nn import cross_entropy
        with ActivationRecorder(net, ["fc1"]) as rec:
            logits = net(Tensor(images))
            cross_entropy(logits, targets, reduction="sum").backward()
            assert rec.activations["fc1"].shape == (4, 4)
            assert rec.gradients["fc1"].shape == (4, 4)

    def test_gradients_before_backward_raise(self):
        net = TinyNet()
        images, _ = tiny_batch()
        with ActivationRecorder(net, ["fc1"]) as rec:
            net(Tensor(images))
            with pytest.raises(RuntimeError):
                rec.gradients

    def test_hooks_removed_after_context(self):
        net = TinyNet()
        with ActivationRecorder(net, ["fc1"]):
            pass
        assert not net.fc1._forward_hooks

    def test_activation_mask_zeroes_selected_output(self):
        net = TinyNet()
        images, _ = tiny_batch(n=1)
        mask = np.ones((1, 4), dtype=np.float32)
        mask[0, 2] = 0.0
        with ActivationRecorder(net, ["fc1"]) as rec:
            with activation_mask(net, "fc1", mask):
                net(Tensor(images))
            # The recorder hook runs before the mask hook, so inspect the
            # downstream effect instead: fc2 input of unit 2 is zero.
        with activation_mask(net, "fc1", mask):
            out_masked = net(Tensor(images)).data
        out_plain = net(Tensor(images)).data
        assert not np.allclose(out_masked, out_plain)


class TestTaylorEngine:
    def test_score_shapes(self):
        net = TinyNet()
        images, targets = tiny_batch(n=5)
        engine = TaylorScoreEngine(net, ["fc1", "fc2"])
        scores = engine.scores(images, targets)
        assert scores["fc1"].shape == (5, 4)
        assert scores["fc2"].shape == (5, 3)

    def test_scores_nonnegative(self):
        net = TinyNet()
        images, targets = tiny_batch(n=5)
        scores = TaylorScoreEngine(net, ["fc1"]).scores(images, targets)
        assert (scores["fc1"] >= 0).all()

    def test_per_sample_independence(self):
        # The batched computation must equal per-image evaluation (the
        # property that makes one backward pass per class sufficient).
        net = TinyNet(seed=3)
        images, targets = tiny_batch(n=4, seed=3)
        engine = TaylorScoreEngine(net, ["fc1"])
        batched = engine.scores(images, targets)["fc1"]
        for j in range(4):
            single = engine.scores(images[j:j + 1], targets[j:j + 1])["fc1"]
            np.testing.assert_allclose(batched[j], single[0], rtol=1e-4,
                                       atol=1e-6)

    def test_model_mode_and_grads_restored(self):
        net = TinyNet()
        net.train()
        images, targets = tiny_batch()
        TaylorScoreEngine(net, ["fc1"]).scores(images, targets)
        assert net.training
        assert net.fc1.weight.grad is None

    def test_conv_model_scores(self):
        model = vgg11(num_classes=3, image_size=8, width=0.125)
        rng = np.random.default_rng(0)
        images = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        targets = np.array([0, 1])
        path = model.conv_layer_paths()[0]
        scores = TaylorScoreEngine(model, [path]).scores(images, targets)
        out_channels = model.get_module(path).out_channels
        assert scores[path].shape == (2, out_channels, 8, 8)


class TestTaylorAgainstExact:
    def test_first_order_agreement_on_tiny_net(self):
        """Eq. 4 must approximate Eq. 3 (the paper's justification).

        For activations with small scores both engines should agree that
        they are small; we check rank correlation rather than values since
        Taylor is only first-order.
        """
        net = TinyNet(seed=7)
        images, targets = tiny_batch(n=6, seed=7)
        taylor = TaylorScoreEngine(net, ["fc1"]).scores(images, targets)["fc1"]
        exact = ExactZeroingEngine(net, ["fc1"]).scores(images, targets)["fc1"]
        assert exact.shape == taylor.shape
        # Spearman rank correlation across all (image, unit) pairs.
        from scipy.stats import spearmanr
        rho, _ = spearmanr(taylor.reshape(-1), exact.reshape(-1))
        assert rho > 0.8

    def test_exact_zero_activation_scores_zero_in_both(self):
        # A ReLU-dead activation has a == 0 -> Taylor score 0; zeroing it
        # changes nothing -> exact score 0.
        net = TinyNet(seed=1)
        net.fc1.bias.data[:] = -100.0  # kill every hidden unit
        images, targets = tiny_batch(n=2, seed=1)
        taylor = TaylorScoreEngine(net, ["fc1"]).scores(images, targets)["fc1"]
        # scores are of the *pre-ReLU* fc1 output; dead units still have
        # nonzero pre-activations, but the exact engine agrees once the
        # mask is applied on fc1 itself. Check instead on the post-ReLU
        # equivalent: gradient through dead ReLUs is zero.
        assert taylor.max() == pytest.approx(0.0, abs=1e-8)

    def test_exact_engine_is_deterministic(self):
        net = TinyNet(seed=2)
        images, targets = tiny_batch(n=2, seed=2)
        engine = ExactZeroingEngine(net, ["fc1"])
        a = engine.scores(images, targets)["fc1"]
        b = engine.scores(images, targets)["fc1"]
        np.testing.assert_array_equal(a, b)
