"""Class-subset specialisation (extension of the class-aware scores)."""

import numpy as np
import pytest

from repro.core import (ImportanceConfig, SpecializationConfig, Trainer,
                        TrainingConfig, class_subset, specialize)
from repro.models import MLP, vgg11
from repro.tensor import Tensor, no_grad


class TestClassSubset:
    def test_filters_and_remaps_labels(self, tiny_dataset):
        subset = class_subset(tiny_dataset, [2, 0])
        assert set(subset.labels) <= {0, 1}
        # Class 2 maps to 0, class 0 maps to 1.
        full_labels = tiny_dataset.labels[subset.indices]
        expected = np.where(full_labels == 2, 0, 1)
        np.testing.assert_array_equal(subset.labels, expected)

    def test_item_labels_match_labels_property(self, tiny_dataset):
        subset = class_subset(tiny_dataset, [1, 2])
        for i in range(len(subset)):
            assert subset[i][1] == subset.labels[i]

    def test_size(self, tiny_dataset):
        subset = class_subset(tiny_dataset, [0])
        assert len(subset) == int((tiny_dataset.labels == 0).sum())


@pytest.fixture
def trained_vgg(tiny_dataset, tiny_test_dataset):
    model = vgg11(num_classes=3, image_size=8, width=0.25, seed=9)
    cfg = TrainingConfig(epochs=20, batch_size=32, lr=0.05, lambda1=1e-4,
                         lambda2=1e-2, weight_decay=0.0)
    Trainer(model, tiny_dataset, tiny_test_dataset, cfg).train()
    return model, cfg


class TestSpecialize:
    def test_end_to_end(self, trained_vgg, tiny_dataset, tiny_test_dataset):
        model, cfg = trained_vgg
        result = specialize(
            model, tiny_dataset, tiny_test_dataset, num_classes=3,
            classes=[0, 2], input_shape=(3, 8, 8),
            config=SpecializationConfig(
                min_class_score=0.3, finetune_epochs=5,
                importance=ImportanceConfig(images_per_class=5,
                                            tau_mode="quantile",
                                            tau_quantile=0.9)),
            training=cfg)
        # Classifier now has two logits, in subset order.
        assert model.classifier.out_features == 2
        x = Tensor(np.zeros((1, 3, 8, 8), dtype=np.float32))
        model.eval()
        with no_grad():
            assert model(x).shape == (1, 2)
        # Specialisation sheds a large share of the parameters while the
        # subset task stays well above chance (0.5 for two classes).
        assert result.pruning_ratio > 0.3
        assert result.accuracy > 0.7

    def test_validation(self, trained_vgg, tiny_dataset, tiny_test_dataset):
        model, cfg = trained_vgg
        with pytest.raises(ValueError):
            specialize(model, tiny_dataset, tiny_test_dataset, 3, [],
                       (3, 8, 8))
        with pytest.raises(ValueError):
            specialize(model, tiny_dataset, tiny_test_dataset, 3, [0, 0],
                       (3, 8, 8))
        with pytest.raises(ValueError):
            specialize(model, tiny_dataset, tiny_test_dataset, 3, [5],
                       (3, 8, 8))

    def test_rejects_plain_module(self, tiny_dataset, tiny_test_dataset):
        from repro.nn import Linear, Sequential
        with pytest.raises(TypeError):
            specialize(Sequential(Linear(2, 2)), tiny_dataset,
                       tiny_test_dataset, 3, [0], (3, 8, 8))

    def test_works_on_mlp(self, tiny_dataset, tiny_test_dataset):
        model = MLP(3 * 8 * 8, [32, 16], 3, seed=1)
        cfg = TrainingConfig(epochs=10, batch_size=32, lr=0.05,
                             lambda1=1e-4, lambda2=0.0, weight_decay=0.0)
        Trainer(model, tiny_dataset, tiny_test_dataset, cfg).train()
        result = specialize(
            model, tiny_dataset, tiny_test_dataset, num_classes=3,
            classes=[1, 2], input_shape=(3, 8, 8),
            config=SpecializationConfig(
                min_class_score=0.4, finetune_epochs=2,
                importance=ImportanceConfig(images_per_class=5,
                                            tau_mode="quantile",
                                            tau_quantile=0.9)),
            training=cfg)
        assert model.classifier.out_features == 2
        assert result.final_profile.total_params < \
            result.original_profile.total_params or result.accuracy >= 0.5
