"""Toeplitz expansion: must reproduce convolution exactly (paper Fig. 2)."""

import numpy as np
import pytest

from repro.core import toeplitz_indices, toeplitz_matrix, toeplitz_matrix_tensor
from repro.tensor import Tensor, conv2d, conv_output_size


class TestPaperExample:
    def test_figure2_dimensions(self):
        # Paper: a 1x2x2 filter over a 3x3 input with stride 1 expands to
        # a 4x9 sparse matrix.
        weight = np.arange(1, 5, dtype=np.float32).reshape(1, 1, 2, 2)
        matrix = toeplitz_matrix(weight, input_size=3)
        assert matrix.shape == (4, 9)

    def test_figure2_row_structure(self):
        weight = np.array([[[[1.0, 2.0], [3.0, 4.0]]]], dtype=np.float32)
        matrix = toeplitz_matrix(weight, input_size=3)
        # First row: filter at the top-left position of the 3x3 input.
        np.testing.assert_allclose(matrix[0],
                                   [1, 2, 0, 3, 4, 0, 0, 0, 0])
        # Second row shifts by one column (stride 1).
        np.testing.assert_allclose(matrix[1],
                                   [0, 1, 2, 0, 3, 4, 0, 0, 0])

    def test_nonzero_count(self):
        weight = np.ones((1, 1, 2, 2), dtype=np.float32)
        matrix = toeplitz_matrix(weight, input_size=3)
        assert (matrix != 0).sum() == 4 * 4  # 4 positions x 4 taps


class TestEquivalenceWithConvolution:
    @pytest.mark.parametrize("o,c,k,size,stride,padding", [
        (1, 1, 2, 3, 1, 0), (2, 3, 3, 5, 1, 0), (2, 2, 3, 5, 2, 0),
        (1, 2, 3, 4, 1, 1), (3, 1, 1, 4, 1, 0),
    ])
    def test_matrix_times_flat_input_equals_conv(self, o, c, k, size, stride,
                                                 padding):
        rng = np.random.default_rng(o * 100 + c * 10 + k)
        weight = rng.normal(size=(o, c, k, k)).astype(np.float32)
        x = rng.normal(size=(1, c, size, size)).astype(np.float32)
        matrix = toeplitz_matrix(weight, size, stride=stride, padding=padding)
        x_padded = np.pad(x, ((0, 0), (0, 0), (padding, padding),
                              (padding, padding)))
        flat = matrix @ x_padded.reshape(-1)
        conv = conv2d(Tensor(x), Tensor(weight), stride=stride,
                      padding=padding)
        np.testing.assert_allclose(flat, conv.data.reshape(-1), rtol=1e-4,
                                   atol=1e-5)

    def test_kernel_too_large_rejected(self):
        with pytest.raises(ValueError):
            toeplitz_indices(1, 1, 5, input_size=3)

    def test_non_square_kernel_rejected(self):
        with pytest.raises(ValueError):
            toeplitz_matrix(np.zeros((1, 1, 2, 3), dtype=np.float32), 4)


class TestDifferentiableExpansion:
    def test_tensor_version_matches_numpy(self):
        rng = np.random.default_rng(0)
        weight = rng.normal(size=(2, 2, 2, 2)).astype(np.float32)
        expected = toeplitz_matrix(weight, 4)
        got = toeplitz_matrix_tensor(Tensor(weight), 4)
        np.testing.assert_allclose(got.data, expected)

    def test_gradient_flows_to_weight(self):
        weight = Tensor(np.random.default_rng(1).normal(size=(1, 1, 2, 2)),
                        requires_grad=True)
        matrix = toeplitz_matrix_tensor(weight, 3)
        matrix.sum().backward()
        assert weight.grad is not None
        # Each tap appears once per sliding position (4 positions here).
        np.testing.assert_allclose(weight.grad, np.full((1, 1, 2, 2), 4.0))
