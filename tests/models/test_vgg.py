"""VGG zoo: shapes, configs, pruning metadata."""

import numpy as np
import pytest

from repro.models import VGG, VGG_CONFIGS, vgg11, vgg13, vgg16, vgg19
from repro.nn import Conv2d
from repro.tensor import Tensor


def fwd(model, size=8, n=2):
    x = Tensor(np.random.default_rng(0).normal(size=(n, 3, size, size))
               .astype(np.float32))
    return model(x)


class TestConstruction:
    @pytest.mark.parametrize("factory,conv_count", [
        (vgg11, 8), (vgg13, 10), (vgg16, 13), (vgg19, 16)])
    def test_depth(self, factory, conv_count):
        model = factory(num_classes=10, image_size=32, width=0.125)
        assert len(model.conv_layer_paths()) == conv_count

    def test_forward_shape(self):
        model = vgg16(num_classes=7, image_size=8, width=0.125)
        assert fwd(model).shape == (2, 7)

    def test_width_multiplier_scales_channels(self):
        narrow = vgg11(image_size=8, width=0.125)
        wide = vgg11(image_size=8, width=0.25)
        assert wide.num_parameters() > narrow.num_parameters()
        first = narrow.get_module(narrow.conv_layer_paths()[0])
        assert first.out_channels == 8  # 64 * 0.125

    def test_small_image_skips_late_pools(self):
        # At 8x8 only three pools fit before the spatial size reaches 1.
        model = vgg16(num_classes=10, image_size=8, width=0.125)
        assert model.final_spatial >= 1
        assert fwd(model, size=8).shape == (2, 10)

    def test_flatten_head(self):
        model = vgg11(num_classes=5, image_size=16, width=0.125,
                      head="flatten")
        assert fwd(model, size=16).shape == (2, 5)
        assert model.classifier.in_features == (
            model.get_module(model.conv_layer_paths()[-1]).out_channels
            * model.final_spatial ** 2)

    def test_invalid_head_rejected(self):
        with pytest.raises(ValueError):
            VGG(VGG_CONFIGS["vgg11"], head="bogus")

    def test_seed_determinism(self):
        a = vgg11(image_size=8, width=0.125, seed=5)
        b = vgg11(image_size=8, width=0.125, seed=5)
        np.testing.assert_array_equal(
            a.get_module("features.0").weight.data,
            b.get_module("features.0").weight.data)


class TestPruningMetadata:
    def test_one_group_per_conv(self):
        model = vgg16(image_size=8, width=0.125)
        groups = model.prunable_groups()
        assert len(groups) == 13
        assert [g.conv for g in groups] == model.conv_layer_paths()

    def test_groups_chain_consumers(self):
        model = vgg11(image_size=8, width=0.125)
        groups = model.prunable_groups()
        for g, nxt in zip(groups, groups[1:]):
            assert g.consumers[0].path == nxt.conv
            assert g.consumers[0].kind == "conv"

    def test_last_group_feeds_classifier(self):
        model = vgg11(image_size=8, width=0.125)
        last = model.prunable_groups()[-1]
        assert last.consumers[0].path == "classifier"
        assert last.consumers[0].kind == "linear"
        assert last.consumers[0].group_size == 1  # GAP head

    def test_flatten_head_group_size(self):
        model = vgg11(image_size=16, width=0.125, head="flatten")
        last = model.prunable_groups()[-1]
        assert last.consumers[0].group_size == model.final_spatial ** 2

    def test_every_group_has_bn(self):
        model = vgg13(image_size=8, width=0.125)
        from repro.nn import BatchNorm2d
        for g in model.prunable_groups():
            assert g.bn is not None
            assert isinstance(model.get_module(g.bn), BatchNorm2d)

    def test_group_paths_resolve_to_convs(self):
        model = vgg16(image_size=8, width=0.125)
        for g in model.prunable_groups():
            assert isinstance(model.get_module(g.conv), Conv2d)
