"""ResNet zoo: depth arithmetic, shortcut handling, pruning constraint."""

import numpy as np
import pytest

from repro.models import BasicBlock, ResNet, resnet20, resnet32, resnet56
from repro.nn import Conv2d, Sequential
from repro.tensor import Tensor


def fwd(model, size=8, n=2):
    x = Tensor(np.random.default_rng(0).normal(size=(n, 3, size, size))
               .astype(np.float32))
    return model(x)


class TestConstruction:
    @pytest.mark.parametrize("factory,depth,blocks", [
        (resnet20, 20, 3), (resnet32, 32, 5), (resnet56, 56, 9)])
    def test_depth_formula(self, factory, depth, blocks):
        model = factory(width=0.25)
        assert model.depth == depth
        assert model.blocks_per_stage == blocks
        assert len(model.block_paths()) == 3 * blocks

    def test_forward_shape(self):
        model = resnet20(num_classes=6, width=0.25)
        assert fwd(model).shape == (2, 6)

    def test_stage_widths_scale(self):
        model = resnet20(width=0.5)
        assert model.get_module("stage1.0.conv1").out_channels == 8
        assert model.get_module("stage3.0.conv1").out_channels == 32

    def test_downsampling_blocks_have_projection(self):
        model = resnet20(width=0.25)
        assert model.get_module("stage1.0").shortcut is None
        assert isinstance(model.get_module("stage2.0").shortcut, Sequential)
        assert isinstance(model.get_module("stage3.0").shortcut, Sequential)
        assert model.get_module("stage2.1").shortcut is None

    def test_spatial_resolution_halves_per_stage(self):
        model = resnet20(width=0.25)
        from repro.core import ActivationRecorder
        with ActivationRecorder(model, ["stage1.2.conv2", "stage2.2.conv2",
                                        "stage3.2.conv2"]) as rec:
            fwd(model, size=16)
            s1 = rec.activations["stage1.2.conv2"].shape
            s2 = rec.activations["stage2.2.conv2"].shape
            s3 = rec.activations["stage3.2.conv2"].shape
        assert s1[2] == 16 and s2[2] == 8 and s3[2] == 4


class TestBasicBlock:
    def test_identity_shortcut_preserves_shape(self):
        block = BasicBlock(4, 4)
        x = Tensor(np.random.default_rng(1).normal(size=(2, 4, 6, 6))
                   .astype(np.float32))
        assert block(x).shape == (2, 4, 6, 6)

    def test_strided_block_downsamples(self):
        block = BasicBlock(4, 8, stride=2)
        x = Tensor(np.random.default_rng(2).normal(size=(2, 4, 6, 6))
                   .astype(np.float32))
        assert block(x).shape == (2, 8, 3, 3)

    def test_residual_path_contributes(self):
        # Zero both convs: the block must still pass the shortcut through.
        block = BasicBlock(4, 4)
        block.conv1.weight.data[:] = 0
        block.conv2.weight.data[:] = 0
        block.eval()
        x = Tensor(np.abs(np.random.default_rng(3).normal(size=(1, 4, 4, 4)))
                   .astype(np.float32))
        out = block(x)
        # relu(0 + x) == x for non-negative input (bn of zeros is bias=0).
        np.testing.assert_allclose(out.data, x.data, atol=1e-5)


class TestPruningMetadata:
    def test_only_first_conv_of_each_block_is_prunable(self):
        # The paper's rule: shortcut-safe pruning touches conv1 only.
        model = resnet56(width=0.25)
        groups = model.prunable_groups()
        assert len(groups) == 27  # 3 stages x 9 blocks
        for g in groups:
            assert g.conv.endswith(".conv1")
            assert len(g.consumers) == 1
            assert g.consumers[0].path == g.conv.replace("conv1", "conv2")

    def test_shortcut_convs_not_in_groups(self):
        model = resnet20(width=0.25)
        prunable = {g.conv for g in model.prunable_groups()}
        assert "stage2.0.shortcut.0" not in prunable
        assert "conv1" not in prunable

    def test_groups_resolve(self):
        model = resnet20(width=0.25)
        for g in model.prunable_groups():
            assert isinstance(model.get_module(g.conv), Conv2d)
            assert model.get_module(g.bn).num_features == \
                model.get_module(g.conv).out_channels
