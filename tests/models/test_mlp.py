"""MLP model and registry."""

import numpy as np
import pytest

from repro.models import MLP, available_models, build_model
from repro.tensor import Tensor


class TestMLP:
    def test_forward_flattens_images(self):
        model = MLP(3 * 8 * 8, [16], 5)
        x = Tensor(np.zeros((2, 3, 8, 8), dtype=np.float32))
        assert model(x).shape == (2, 5)

    def test_forward_accepts_flat_input(self):
        model = MLP(12, [8], 3)
        x = Tensor(np.zeros((4, 12), dtype=np.float32))
        assert model(x).shape == (4, 3)

    def test_requires_hidden_layer(self):
        with pytest.raises(ValueError):
            MLP(10, [], 2)

    def test_groups_are_linear_kind(self):
        model = MLP(12, [8, 6], 3)
        groups = model.prunable_groups()
        assert len(groups) == 2
        assert all(g.kind == "linear" for g in groups)

    def test_groups_chain_to_classifier(self):
        model = MLP(12, [8, 6], 3)
        groups = model.prunable_groups()
        assert groups[0].consumers[0].path == groups[1].conv
        assert groups[1].consumers[0].path == "classifier"

    def test_hidden_widths(self):
        model = MLP(12, [8, 6], 3)
        assert model.get_module("body.0").out_features == 8
        assert model.get_module("body.2").out_features == 6


class TestRegistry:
    def test_available_models(self):
        names = available_models()
        assert "vgg16" in names
        assert "resnet56" in names

    def test_build_model(self):
        model = build_model("resnet20", num_classes=4, width=0.25)
        assert model.num_classes == 4

    def test_unknown_name_raises_with_listing(self):
        with pytest.raises(KeyError, match="available"):
            build_model("alexnet")
