"""Setup shim for environments without the `wheel` package.

All metadata lives in pyproject.toml; this file only enables
`pip install -e . --no-use-pep517` (legacy editable install), which is the
only editable path available in this offline environment.
"""
from setuptools import setup

setup()
