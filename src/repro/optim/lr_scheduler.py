"""Learning-rate schedules driving :class:`repro.optim.SGD`."""

from __future__ import annotations

import math

from .sgd import SGD

__all__ = ["StepLR", "MultiStepLR", "CosineAnnealingLR"]


class _Scheduler:
    def __init__(self, optimizer: SGD):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        """Advance one epoch and update the optimizer's learning rate."""
        self.epoch += 1
        self.optimizer.lr = self.get_lr(self.epoch)

    def get_lr(self, epoch: int) -> float:
        raise NotImplementedError


class StepLR(_Scheduler):
    """Decay by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: SGD, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class MultiStepLR(_Scheduler):
    """Decay by ``gamma`` at each listed milestone epoch."""

    def __init__(self, optimizer: SGD, milestones: list[int], gamma: float = 0.1):
        super().__init__(optimizer)
        self.milestones = sorted(milestones)
        self.gamma = gamma

    def get_lr(self, epoch: int) -> float:
        passed = sum(1 for m in self.milestones if epoch >= m)
        return self.base_lr * self.gamma ** passed


class CosineAnnealingLR(_Scheduler):
    """Cosine decay from the base learning rate to ``eta_min``."""

    def __init__(self, optimizer: SGD, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self, epoch: int) -> float:
        t = min(epoch, self.t_max)
        cos = (1 + math.cos(math.pi * t / self.t_max)) / 2
        return self.eta_min + (self.base_lr - self.eta_min) * cos
