"""Optimisers and learning-rate schedules."""

from .lr_scheduler import CosineAnnealingLR, MultiStepLR, StepLR
from .sgd import SGD

__all__ = ["SGD", "StepLR", "MultiStepLR", "CosineAnnealingLR"]
