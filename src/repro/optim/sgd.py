"""Stochastic gradient descent, matching the paper's training recipe.

The paper trains with SGD, initial learning rate 0.01, momentum 0.9 and
weight decay 5e-4 (Sec. IV). Weight decay is applied as the classic L2 term
added to the gradient (PyTorch semantics), independent of the explicit L1
regulariser that belongs to the modified cost function itself.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..tensor import Tensor

__all__ = ["SGD"]


class SGD:
    """SGD with momentum and (decoupled-from-loss) L2 weight decay.

    Parameters
    ----------
    params:
        Iterable of trainable tensors (typically ``model.parameters()``).
    lr:
        Learning rate; mutable through :attr:`lr` (used by schedulers).
    momentum:
        Classical momentum coefficient; 0 disables the velocity buffer.
    weight_decay:
        L2 penalty coefficient added to gradients before the update.
    """

    def __init__(self, params: Iterable[Tensor], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        self.params: list[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"invalid learning rate {lr}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        #: When True, :meth:`step` writes the update into ``p.data``
        #: in place instead of rebinding it to a fresh array. Bitwise the
        #: same values; required when parameters are bound to
        #: shared-memory views that worker processes read (the sharded
        #: trainer flips this on while a session is live, so the update
        #: itself *is* the weight broadcast).
        self.in_place = False
        self._velocity: dict[int, np.ndarray] = {}

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update to every parameter that received a gradient.

        Parameters whose shape changed since the last step (filter surgery
        rebuilds weight arrays) automatically get a fresh velocity buffer.
        """
        for p in self.params:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                vel = self._velocity.get(id(p))
                if vel is None or vel.shape != grad.shape:
                    vel = np.zeros_like(p.data)
                vel = self.momentum * vel + grad
                self._velocity[id(p)] = vel
                update = vel
            else:
                update = grad
            if self.in_place:
                np.subtract(p.data, self.lr * update, out=p.data)
            else:
                p.data = p.data - self.lr * update

    def reset_state(self) -> None:
        """Drop all velocity buffers.

        Used by the numerical-health rewind: after restoring the last
        healthy weights, momentum accumulated on the poisoned trajectory
        must not steer the retry.
        """
        self._velocity.clear()

    def rebind(self, params: Iterable[Tensor]) -> None:
        """Point the optimizer at a new parameter list (after surgery).

        Velocity buffers for retained tensors survive when their shapes are
        unchanged; everything else is reset.
        """
        self.params = list(params)
        live = {id(p) for p in self.params}
        self._velocity = {k: v for k, v in self._velocity.items() if k in live}
