"""DepGraph-style automatic dependency grouping (Fang et al. [13]).

DepGraph's insight is that structurally-coupled parameters must be pruned
together, and that the coupling can be *derived automatically* instead of
hand-written per architecture. This module reimplements that idea on top of
the autograd tape:

1. run one forward pass and collect the recorded operation graph;
2. start a channel "tag" at the output of every conv/linear producer;
3. propagate tags forward through channel-preserving ops (ReLU, pooling,
   batch-norm arithmetic, padding, flatten — tracked with a column group
   size — and global average pooling);
4. a tag entering the *data* input of a convolution or linear marks that
   layer as a consumer and stops;
5. two tags meeting at an elementwise ``add``/``mul`` (residual
   connections) merge their producers into one coupled group (union-find);
6. a tag reaching the network output marks the group terminal
   (unprunable — its channels are the logits).

The resulting :class:`CoupledGroup` records support the two Fig. 6
variants: **full-grouping** (norm aggregated over every coupled parameter)
and **no-grouping** (producer-only norm), and the generic surgery needed to
prune a coupled group consistently.

The trace is validated in the test suite against the hand-written
``prunable_groups()`` metadata of every zoo model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from ..models.pruning_spec import ConsumerRef
from ..nn import BatchNorm2d, Conv2d, Linear, Module
from ..tensor import Tensor
from .scorers import FilterScorer

__all__ = ["CoupledGroup", "trace_coupled_groups", "prune_coupled_group",
           "DepGraphScorer", "build_operation_graph"]


@dataclass
class CoupledGroup:
    """A set of layers whose output channels must be pruned in lockstep.

    Attributes
    ----------
    producers:
        Paths of conv/linear layers whose *output* channels are tied.
    bns:
        Batch norms normalising any producer in the group.
    consumers:
        Layers consuming the shared channels on their input side.
    size:
        The common channel count.
    terminal:
        True when the channels reach the network output (classifier
        logits) — such a group must never be pruned.
    """

    producers: list[str] = field(default_factory=list)
    bns: list[str] = field(default_factory=list)
    consumers: list[ConsumerRef] = field(default_factory=list)
    size: int = 0
    terminal: bool = False

    @property
    def name(self) -> str:
        return "+".join(sorted(self.producers))

    def prunable(self) -> bool:
        return not self.terminal and bool(self.consumers)


# ----------------------------------------------------------------------
# Trace machinery
# ----------------------------------------------------------------------

_PRESERVING_OPS = {"relu", "max_pool2d", "avg_pool2d", "pad2d", "dropout",
                   "neg", "clip", "abs", "sigmoid", "tanh", "exp", "log",
                   "sqrt", "maximum", "minimum", "where"}


def build_operation_graph(model: Module, input_shape: tuple[int, int, int]
                          ) -> tuple[nx.DiGraph, Tensor, dict[int, tuple[str, Module]]]:
    """Trace one forward pass into a networkx DiGraph.

    Returns
    -------
    (graph, output, param_owner):
        ``graph`` has one node per recorded tensor (keyed by ``id``), with
        the tensor stored as attribute ``t``; edges run parent → child with
        the parent's position stored as ``index``. ``param_owner`` maps a
        parameter tensor's id to ``(module path, module)``.
    """
    param_owner: dict[int, tuple[str, Module]] = {}
    for path, module in model.named_modules():
        if isinstance(module, (Conv2d, Linear, BatchNorm2d)):
            param_owner[id(module.weight)] = (path, module)

    was_training = model.training
    model.eval()
    try:
        x = Tensor(np.zeros((2,) + tuple(input_shape), dtype=np.float32))
        output = model(x)
    finally:
        model.train(was_training)

    graph = nx.DiGraph()
    stack = [output]
    seen = {id(output)}
    graph.add_node(id(output), t=output)
    while stack:
        node = stack.pop()
        for index, parent in enumerate(node._parents):
            if id(parent) not in seen:
                seen.add(id(parent))
                graph.add_node(id(parent), t=parent)
                stack.append(parent)
            graph.add_edge(id(parent), id(node), index=index)
    return graph, output, param_owner


class _UnionFind:
    def __init__(self):
        self.parent: dict[str, str] = {}

    def add(self, item: str) -> None:
        self.parent.setdefault(item, item)

    def find(self, item: str) -> str:
        root = item
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[item] != root:
            self.parent[item], item = root, self.parent[item]
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def _producer_output_nodes(graph: nx.DiGraph,
                           param_owner: dict[int, tuple[str, Module]]
                           ) -> dict[int, str]:
    """Map op-node id → producer path for conv2d/matmul nodes using a weight."""
    result: dict[int, str] = {}
    for node_id in graph.nodes:
        t: Tensor = graph.nodes[node_id]["t"]
        if t._op == "conv2d" and len(t._parents) >= 2:
            wid = id(t._parents[1])
            if wid in param_owner and isinstance(param_owner[wid][1], Conv2d):
                result[node_id] = param_owner[wid][0]
        elif t._op == "matmul" and len(t._parents) == 2:
            transposed = t._parents[1]
            if transposed._op == "transpose" and transposed._parents:
                wid = id(transposed._parents[0])
                if wid in param_owner and isinstance(param_owner[wid][1], Linear):
                    result[node_id] = param_owner[wid][0]
    return result


def _bn_of_node(t: Tensor, param_owner: dict[int, tuple[str, Module]]) -> str | None:
    """If ``t`` is (a reshape of) a batch-norm affine parameter, its path."""
    probe = t
    if probe._op == "reshape" and probe._parents:
        probe = probe._parents[0]
    owner = param_owner.get(id(probe))
    if owner is not None and isinstance(owner[1], BatchNorm2d):
        return owner[0]
    return None


def trace_coupled_groups(model: Module,
                         input_shape: tuple[int, int, int]) -> list[CoupledGroup]:
    """Derive all coupled channel groups of a model automatically."""
    graph, output, param_owner = build_operation_graph(model, input_shape)
    producer_nodes = _producer_output_nodes(graph, param_owner)

    uf = _UnionFind()
    for path in producer_nodes.values():
        uf.add(path)

    consumers: dict[str, list[ConsumerRef]] = {p: [] for p in producer_nodes.values()}
    bns: dict[str, set[str]] = {p: set() for p in producer_nodes.values()}
    terminal: set[str] = set()

    # tag state: (node_id, producer_root_path, group_size)
    tags: dict[int, tuple[str, int]] = {}
    worklist: list[tuple[int, str, int]] = [
        (node_id, path, 1) for node_id, path in producer_nodes.items()]

    def merge_into(existing_root: str, new_root: str) -> None:
        uf.union(existing_root, new_root)

    while worklist:
        node_id, root, group_size = worklist.pop()
        root = uf.find(root)
        if node_id in tags:
            other_root, _ = tags[node_id]
            other_root = uf.find(other_root)
            if other_root != root:
                merge_into(other_root, root)
            continue
        tags[node_id] = (root, group_size)
        if node_id == id(output):
            terminal.add(root)
        for _, child_id, edge in graph.out_edges(node_id, data=True):
            child: Tensor = graph.nodes[child_id]["t"]
            op = child._op
            index = edge["index"]
            if child_id in producer_nodes and index == 0:
                # Channel tag feeds the data input of a conv/linear:
                # that layer is a consumer; the tag stops here (the layer's
                # own output starts a fresh tag).
                path = producer_nodes[child_id]
                module = model.get_module(path)
                kind = "conv" if isinstance(module, Conv2d) else "linear"
                consumers[root].append(
                    ConsumerRef(path, kind, group_size=group_size))
                continue
            if op in _PRESERVING_OPS:
                worklist.append((child_id, root, group_size))
            elif op in ("add", "sub"):
                other = child._parents[1 - index] if len(child._parents) == 2 else None
                if other is not None:
                    bn_path = _bn_of_node(other, param_owner)
                    if bn_path is not None:
                        bns[root].add(bn_path)
                worklist.append((child_id, root, group_size))
            elif op == "mul":
                other = child._parents[1 - index] if len(child._parents) == 2 else None
                if other is not None:
                    bn_path = _bn_of_node(other, param_owner)
                    if bn_path is not None:
                        bns[root].add(bn_path)
                worklist.append((child_id, root, group_size))
            elif op == "mean":
                # Global average pooling collapses the spatial axes but
                # keeps channels; other means (BN statistics) feed back
                # into preserving arithmetic with the same channel axis.
                worklist.append((child_id, root, group_size))
            elif op == "reshape":
                parent_t: Tensor = graph.nodes[node_id]["t"]
                if (parent_t.ndim == 4 and child.ndim == 2
                        and child.shape[0] == parent_t.shape[0]):
                    # Flatten (N, C, H, W) → (N, C·H·W): each channel now
                    # spans H·W consecutive columns.
                    spatial = parent_t.shape[2] * parent_t.shape[3]
                    worklist.append((child_id, root, group_size * spatial))
                else:
                    worklist.append((child_id, root, group_size))
            elif op.startswith("pow"):
                worklist.append((child_id, root, group_size))
            # Any other op (matmul against constants, reductions to the
            # loss, …) ends the tag conservatively.

    # Assemble groups per union-find root.
    grouped: dict[str, CoupledGroup] = {}
    for path in producer_nodes.values():
        root = uf.find(path)
        group = grouped.setdefault(root, CoupledGroup())
        if path not in group.producers:
            group.producers.append(path)
    for root, refs in consumers.items():
        group = grouped[uf.find(root)]
        for ref in refs:
            if ref not in group.consumers:
                group.consumers.append(ref)
    for root, paths in bns.items():
        group = grouped[uf.find(root)]
        for bn in sorted(paths):
            if bn not in group.bns:
                group.bns.append(bn)
    for root in terminal:
        grouped[uf.find(root)].terminal = True

    result = []
    for group in grouped.values():
        group.producers.sort()
        first = model.get_module(group.producers[0])
        group.size = (first.out_channels if isinstance(first, Conv2d)
                      else first.out_features)
        # A producer that also appears as a consumer (coupled stage) keeps
        # both roles; drop self-references where a layer consumes its own
        # group's channels on the output side only.
        result.append(group)
    result.sort(key=lambda g: g.name)
    return result


# ----------------------------------------------------------------------
# Surgery and scoring on coupled groups
# ----------------------------------------------------------------------

def prune_coupled_group(model: Module, group: CoupledGroup,
                        keep: np.ndarray) -> None:
    """Keep only the listed channels in every member of a coupled group."""
    if not group.prunable():
        raise ValueError(f"group {group.name!r} is terminal/unconsumered; "
                         "pruning it would change the network output shape")
    keep = np.asarray(sorted(set(int(i) for i in keep)), dtype=np.intp)
    if len(keep) == 0:
        raise ValueError("cannot remove every channel of a group")
    if keep[0] < 0 or keep[-1] >= group.size:
        raise ValueError(f"keep indices out of range [0, {group.size})")
    for path in group.producers:
        model.get_module(path).select_output_channels(keep)
    for bn_path in group.bns:
        model.get_module(bn_path).select_channels(keep)
    for ref in group.consumers:
        target = model.get_module(ref.path)
        if ref.kind == "conv":
            target.select_input_channels(keep)
        else:
            target.select_input_channels(keep, group_size=ref.group_size)
    group.size = len(keep)


class DepGraphScorer(FilterScorer):
    """Group-norm importance over coupled groups ([13]).

    ``grouping="full"`` aggregates the L2 norm of *all* coupled parameter
    slices per channel (producer filters, BN scales, consumer input
    slices); ``grouping="none"`` uses only each group's first producer —
    the two variants compared in the paper's Fig. 6.

    This scorer operates on :class:`CoupledGroup` objects; see
    :class:`~repro.baselines.methods.DepGraphPruner` for the driver.
    """

    def __init__(self, grouping: str = "full"):
        if grouping not in ("full", "none"):
            raise ValueError(f"grouping must be 'full' or 'none', got {grouping!r}")
        self.grouping = grouping
        self.name = f"depgraph-{grouping}"

    def group_scores(self, model: Module, group: CoupledGroup) -> np.ndarray:
        """Per-channel importance of one coupled group."""
        total = np.zeros(group.size, dtype=np.float64)
        producers = (group.producers if self.grouping == "full"
                     else group.producers[:1])
        for path in producers:
            w = model.get_module(path).weight.data
            total += (w.reshape(w.shape[0], -1) ** 2).sum(axis=1)
        if self.grouping == "full":
            for bn_path in group.bns:
                total += model.get_module(bn_path).weight.data.astype(np.float64) ** 2
            for ref in group.consumers:
                w = model.get_module(ref.path).weight.data
                if ref.kind == "conv":
                    total += (w ** 2).sum(axis=(0, 2, 3))
                else:
                    cols = w.reshape(w.shape[0], -1, ref.group_size)
                    per_channel = (cols ** 2).sum(axis=(0, 2))
                    total += per_channel
        return np.sqrt(total)
