"""Filter-importance criteria from the literature the paper compares with.

Each scorer maps ``(model, groups, context)`` to per-filter scores where
**higher means more important** (keep). The shared iterative harness in
:mod:`repro.baselines.harness` turns any scorer into a pruning method, so
all baselines run under identical pruning/fine-tuning budgets — the setup
behind the paper's Fig. 6 comparison.

Implemented criteria and their sources:

=================  ====================================================
``L1NormScorer``    magnitude pruning, Li et al. [23]
``L2NormScorer``    squared-norm variant (DepGraph's base criterion [13])
``SSSScorer``       scaling-factor magnitude, Huang & Wang [27]
``HRankScorer``     feature-map rank, Lin et al. [19]
``APoZScorer``      1 − average-percentage-of-zeros, Hu et al. [24]
``TaylorScorer``    |activation · gradient|, Molchanov et al. [25]
``WeightGradScorer``|w · ∂L/∂w| per filter, Molchanov et al. [28]
``RandomScorer``    random control
=================  ====================================================

TPP [18] and OrthConv [31] differ from the paper's other comparators in the
*training* they prescribe rather than the scoring rule; they are composed in
:mod:`repro.baselines.methods` from these scorers plus regularised
fine-tuning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data import DataLoader, Dataset
from ..models.pruning_spec import FilterGroup
from ..nn import BatchNorm2d, Conv2d, Linear, Module, cross_entropy
from ..tensor import Tensor, no_grad
from ..core.hooks import ActivationRecorder
from ..core.taylor import TaylorScoreEngine

__all__ = [
    "ScoringContext", "FilterScorer", "L1NormScorer", "L2NormScorer",
    "SSSScorer", "HRankScorer", "APoZScorer", "TaylorScorer",
    "WeightGradScorer", "RandomScorer", "SCORER_REGISTRY", "build_scorer",
]


@dataclass
class ScoringContext:
    """Data made available to data-driven criteria.

    Attributes
    ----------
    dataset:
        Training dataset for activation/gradient statistics.
    num_images:
        Sample budget for data-driven scorers.
    seed:
        Randomness seed (sampling and the random control).
    """

    dataset: Dataset | None = None
    num_images: int = 64
    seed: int = 0

    def sample_batch(self) -> tuple[np.ndarray, np.ndarray]:
        if self.dataset is None:
            raise ValueError("this scorer needs a dataset in the ScoringContext")
        rng = np.random.default_rng(self.seed)
        n = len(self.dataset)
        idx = rng.choice(n, size=min(self.num_images, n), replace=False)
        images = np.stack([self.dataset[int(i)][0] for i in idx])
        labels = np.array([self.dataset[int(i)][1] for i in idx], dtype=np.intp)
        return images, labels


class FilterScorer:
    """Base criterion; subclasses implement :meth:`scores`."""

    name = "base"

    def scores(self, model: Module, groups: list[FilterGroup],
               ctx: ScoringContext) -> dict[str, np.ndarray]:
        """Per-filter importance for each group (higher = keep)."""
        raise NotImplementedError

    @staticmethod
    def _producer_weight(model: Module, group: FilterGroup) -> np.ndarray:
        producer = model.get_module(group.conv)
        if not isinstance(producer, (Conv2d, Linear)):
            raise TypeError(f"group {group.name!r} has non-prunable producer")
        return producer.weight.data


class L1NormScorer(FilterScorer):
    """Σ|w| per filter (magnitude pruning, [23])."""

    name = "l1"

    def scores(self, model, groups, ctx):
        out = {}
        for g in groups:
            w = self._producer_weight(model, g)
            out[g.name] = np.abs(w.reshape(w.shape[0], -1)).sum(axis=1)
        return out


class L2NormScorer(FilterScorer):
    """‖w‖₂ per filter (DepGraph's default criterion, no grouping)."""

    name = "l2"

    def scores(self, model, groups, ctx):
        out = {}
        for g in groups:
            w = self._producer_weight(model, g)
            out[g.name] = np.sqrt((w.reshape(w.shape[0], -1) ** 2).sum(axis=1))
        return out


class SSSScorer(FilterScorer):
    """|scaling factor| per filter (SSS [27]).

    The batch-norm scale plays the role of the per-filter scaling factor;
    sparsity on the factors is induced during training/fine-tuning by the
    harness's optional scale-L1 penalty. Falls back to the weight norm when
    a group carries no batch norm (e.g. MLP groups).
    """

    name = "sss"

    def scores(self, model, groups, ctx):
        out = {}
        fallback = L2NormScorer()
        for g in groups:
            if g.bn is None:
                out[g.name] = fallback.scores(model, [g], ctx)[g.name]
                continue
            bn = model.get_module(g.bn)
            if not isinstance(bn, BatchNorm2d):
                raise TypeError(f"group {g.name!r}: {g.bn!r} is not BatchNorm2d")
            out[g.name] = np.abs(bn.weight.data)
        return out


class HRankScorer(FilterScorer):
    """Average rank of each filter's feature map over a batch (HRank [19])."""

    name = "hrank"

    def scores(self, model, groups, ctx):
        images, labels = ctx.sample_batch()
        paths = [g.conv for g in groups]
        was_training = model.training
        model.eval()
        try:
            with no_grad(), ActivationRecorder(model, paths) as rec:
                model(Tensor(images))
                out = {}
                for g in groups:
                    act = rec.activations[g.conv].data
                    if act.ndim == 2:
                        # Linear units have scalar outputs; rank degenerates
                        # to "is the activation nonzero".
                        out[g.name] = (np.abs(act) > 1e-12).mean(axis=0).astype(np.float64)
                        continue
                    m, c = act.shape[:2]
                    ranks = np.zeros(c, dtype=np.float64)
                    for f in range(c):
                        maps = act[:, f]          # (M, H, W)
                        ranks[f] = np.mean([np.linalg.matrix_rank(fm) for fm in maps])
                    out[g.name] = ranks
            return out
        finally:
            model.train(was_training)


class APoZScorer(FilterScorer):
    """1 − average percentage of zeros after the ReLU (network trimming [24]).

    Zeros of the post-ReLU activation are exactly the non-positive entries
    of the pre-ReLU tensor, so the batch-norm output (or the producer output
    when no BN exists) is inspected directly.
    """

    name = "apoz"

    def scores(self, model, groups, ctx):
        images, labels = ctx.sample_batch()
        paths = [g.bn if g.bn is not None else g.conv for g in groups]
        was_training = model.training
        model.eval()
        try:
            with no_grad(), ActivationRecorder(model, paths) as rec:
                model(Tensor(images))
                out = {}
                for g, path in zip(groups, paths):
                    act = rec.activations[path].data
                    axes = (0,) + tuple(range(2, act.ndim))
                    apoz = (act <= 0).mean(axis=axes)
                    out[g.name] = 1.0 - apoz
            return out
        finally:
            model.train(was_training)


class TaylorScorer(FilterScorer):
    """Mean |a · ∂L/∂a| per filter (Molchanov et al. [25]).

    Identical machinery to the paper's Eq. 4, but aggregated by averaging
    instead of the class-aware binarise/max/sum pipeline — the closest
    non-class-aware ancestor of the paper's method.
    """

    name = "taylor"

    def scores(self, model, groups, ctx):
        images, labels = ctx.sample_batch()
        engine = TaylorScoreEngine(model, [g.conv for g in groups])
        taylor = engine.scores(images, labels)
        out = {}
        for g in groups:
            t = taylor[g.conv]                       # (M, C, ...) or (M, F)
            axes = (0,) + tuple(range(2, t.ndim))
            out[g.name] = t.mean(axis=axes).astype(np.float64)
        return out


class WeightGradScorer(FilterScorer):
    """Mean |w · ∂L/∂w| within each filter (Molchanov et al. [28])."""

    name = "weightgrad"

    def scores(self, model, groups, ctx):
        images, labels = ctx.sample_batch()
        was_training = model.training
        model.eval()
        try:
            model.zero_grad()
            logits = model(Tensor(images))
            loss = cross_entropy(logits, labels, reduction="sum")
            loss.backward()
            out = {}
            for g in groups:
                producer = model.get_module(g.conv)
                w = producer.weight
                if w.grad is None:
                    raise RuntimeError(f"no gradient on {g.conv!r}")
                prod = np.abs(w.data * w.grad).reshape(w.shape[0], -1)
                out[g.name] = prod.mean(axis=1).astype(np.float64)
            model.zero_grad()
            return out
        finally:
            model.train(was_training)


class RandomScorer(FilterScorer):
    """Uniform random scores — the sanity-check control."""

    name = "random"

    def scores(self, model, groups, ctx):
        rng = np.random.default_rng(ctx.seed)
        out = {}
        for g in groups:
            w = self._producer_weight(model, g)
            out[g.name] = rng.random(w.shape[0])
        return out


SCORER_REGISTRY: dict[str, type[FilterScorer]] = {
    cls.name: cls for cls in (
        L1NormScorer, L2NormScorer, SSSScorer, HRankScorer, APoZScorer,
        TaylorScorer, WeightGradScorer, RandomScorer,
    )
}


def build_scorer(name: str) -> FilterScorer:
    """Instantiate a scorer by registry name."""
    try:
        return SCORER_REGISTRY[name]()
    except KeyError:
        raise KeyError(f"unknown scorer {name!r}; available: "
                       f"{', '.join(sorted(SCORER_REGISTRY))}") from None
