"""Baseline pruning methods the paper compares against (Fig. 6)."""

from .depgraph import (CoupledGroup, DepGraphScorer, build_operation_graph,
                       prune_coupled_group, trace_coupled_groups)
from .harness import BaselineConfig, BaselineRunResult, ScorerPruner
from .methods import (DepGraphPruner, METHOD_NAMES, SSSLoss,
                      method_display_name, run_method)
from .scorers import (APoZScorer, FilterScorer, HRankScorer, L1NormScorer,
                      L2NormScorer, RandomScorer, SCORER_REGISTRY, SSSScorer,
                      ScoringContext, TaylorScorer, WeightGradScorer,
                      build_scorer)
from .unstructured import (UnstructuredPruner, UnstructuredResult,
                           apply_masks, gradient_masks, magnitude_masks,
                           sparsity_report)

__all__ = [
    "FilterScorer", "ScoringContext", "L1NormScorer", "L2NormScorer",
    "SSSScorer", "HRankScorer", "APoZScorer", "TaylorScorer",
    "WeightGradScorer", "RandomScorer", "SCORER_REGISTRY", "build_scorer",
    "BaselineConfig", "BaselineRunResult", "ScorerPruner",
    "CoupledGroup", "trace_coupled_groups", "prune_coupled_group",
    "DepGraphScorer", "DepGraphPruner", "build_operation_graph",
    "run_method", "METHOD_NAMES", "SSSLoss", "method_display_name",
    "UnstructuredPruner", "UnstructuredResult", "magnitude_masks",
    "gradient_masks", "apply_masks", "sparsity_report",
]
