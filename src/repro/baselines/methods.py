"""Complete baseline pruning methods (the Fig. 6 comparators).

Composes the scoring criteria in :mod:`repro.baselines.scorers` and the
DepGraph machinery into runnable methods sharing one interface::

    result = run_method("hrank", model, train, test, input_shape,
                        baseline_cfg, training_cfg)

Methods whose originals prescribe special *training* are composed as
documented substitutions (see DESIGN.md):

* **SSS [27]** — scaling-factor (BN-γ) scoring + an L1 penalty on the
  scaling factors during fine-tuning (their sparse-structure-selection
  objective, without the accelerated proximal step).
* **TPP [18]** — trainability-preserving: weight-norm scoring with the
  Gram-orthogonality penalty on surviving filters during fine-tuning
  (the mechanism TPP argues preserves trainability).
* **OrthConv [31]** — not a pruning method per se; the comparator trains
  with the orthogonality regulariser and prunes by filter magnitude.
* **DepGraph [13]** — group-norm over automatically traced coupled groups,
  in full-grouping and no-grouping variants.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..core.regularizers import ModifiedLoss
from ..core.trainer import Trainer, TrainingConfig, evaluate_model
from ..data import Dataset
from ..flops import flops_reduction, profile_model, pruning_ratio
from ..nn import BatchNorm2d, Module
from ..tensor import Tensor, ops
from .depgraph import DepGraphScorer, prune_coupled_group, trace_coupled_groups
from .harness import BaselineConfig, BaselineRunResult, ScorerPruner
from .scorers import (APoZScorer, HRankScorer, L1NormScorer, L2NormScorer,
                      RandomScorer, SSSScorer, TaylorScorer, WeightGradScorer)

__all__ = ["DepGraphPruner", "run_method", "METHOD_NAMES",
           "SSSLoss", "method_display_name"]


class SSSLoss(ModifiedLoss):
    """Cross entropy + L1 sparsity on the per-filter scaling factors (BN γ).

    The sparse-structure-selection objective of [27] adapted to this code
    base: the γ parameters are the scaling factors, and the L1 term pushes
    unimportant filters' factors to zero so magnitude scoring finds them.
    """

    def __init__(self, gamma_l1: float = 1e-3):
        super().__init__(lambda1=0.0, lambda2=0.0)
        self.gamma_l1 = gamma_l1

    def __call__(self, model, logits, targets):
        terms = super().__call__(model, logits, targets)
        penalty: Tensor | None = None
        for module in model.modules():
            if isinstance(module, BatchNorm2d):
                term = ops.sum(ops.abs(module.weight))
                penalty = term if penalty is None else ops.add(penalty, term)
        if penalty is not None:
            terms.total = ops.add(
                terms.total,
                ops.mul(Tensor(np.float32(self.gamma_l1)), penalty))
            terms.l1 = float(penalty.data)
        return terms


class DepGraphPruner:
    """Iterative pruning over automatically traced coupled groups.

    Unlike :class:`~repro.baselines.harness.ScorerPruner`, which uses the
    hand-written per-model metadata, this driver re-traces the dependency
    graph each iteration and prunes whole coupled groups — including
    residual-coupled stages that the metadata-based methods leave alone.
    """

    def __init__(self, model: Module, train_dataset: Dataset,
                 test_dataset: Dataset, input_shape: tuple[int, int, int],
                 grouping: str = "full", config: BaselineConfig | None = None,
                 training: TrainingConfig | None = None):
        self.model = model
        self.train_dataset = train_dataset
        self.test_dataset = test_dataset
        self.input_shape = tuple(input_shape)
        self.scorer = DepGraphScorer(grouping)
        self.config = config or BaselineConfig()
        self.training = training or TrainingConfig()
        if self.config.finetune_lr is not None:
            self.training = replace(self.training,
                                    lr=self.config.finetune_lr)

    def run(self, log: bool = False) -> BaselineRunResult:
        cfg = self.config
        original = profile_model(self.model, self.input_shape)
        _, baseline_acc = evaluate_model(self.model, self.test_dataset,
                                         self.training.batch_size)
        accuracies: list[float] = []
        iterations = 0
        for iteration in range(cfg.max_iterations):
            groups = [g for g in trace_coupled_groups(self.model, self.input_shape)
                      if g.prunable()]
            if not groups:
                break
            # Global bottom-fraction selection across all coupled channels.
            entries = []   # (score, group_idx, channel)
            for gi, group in enumerate(groups):
                scores = self.scorer.group_scores(self.model, group)
                for ch, s in enumerate(scores):
                    entries.append((float(s), gi, ch))
            entries.sort(key=lambda e: e[0])
            budget = max(int(len(entries) * cfg.fraction_per_iteration), 1)
            victims: dict[int, set[int]] = {}
            taken = 0
            remaining = {gi: groups[gi].size for gi in range(len(groups))}
            for score, gi, ch in entries:
                if taken >= budget:
                    break
                if remaining[gi] <= 1:
                    continue   # never empty a coupled group
                victims.setdefault(gi, set()).add(ch)
                remaining[gi] -= 1
                taken += 1
            if taken == 0:
                break
            for gi, chans in victims.items():
                keep = np.setdiff1d(np.arange(groups[gi].size),
                                    np.asarray(sorted(chans)))
                prune_coupled_group(self.model, groups[gi], keep)
            trainer = Trainer(self.model, self.train_dataset,
                              self.test_dataset, self.training)
            trainer.train(epochs=cfg.finetune_epochs)
            _, acc = evaluate_model(self.model, self.test_dataset,
                                    self.training.batch_size)
            accuracies.append(acc)
            iterations = iteration + 1
            profile = profile_model(self.model, self.input_shape)
            ratio = pruning_ratio(original, profile)
            if log:
                print(f"[{self.scorer.name}] iter {iteration}: "
                      f"acc={acc:.3f} ratio={ratio:.3f}")
            if ratio >= cfg.target_ratio:
                break
        final_profile = profile_model(self.model, self.input_shape)
        _, final_acc = evaluate_model(self.model, self.test_dataset,
                                      self.training.batch_size)
        return BaselineRunResult(
            method=self.scorer.name,
            baseline_accuracy=baseline_acc,
            final_accuracy=final_acc,
            pruning_ratio=pruning_ratio(original, final_profile),
            flops_reduction=flops_reduction(original, final_profile),
            iterations=iterations,
            accuracies=accuracies,
        )


METHOD_NAMES = ["l1", "sss", "hrank", "tpp", "orthconv", "depgraph-full",
                "depgraph-none", "taylor", "apoz", "weightgrad", "random"]

_DISPLAY = {
    "l1": "L1 [23]", "sss": "SSS [27]", "hrank": "HRank [19]",
    "tpp": "TPP [18]", "orthconv": "OrthConv [31]",
    "depgraph-full": "DepGraph full [13]", "depgraph-none": "DepGraph none [13]",
    "taylor": "Taylor [25]", "apoz": "APoZ [24]",
    "weightgrad": "WeightGrad [28]", "random": "Random",
    "class-aware": "Class-aware (ours)",
}


def method_display_name(name: str) -> str:
    """Paper-style label (with citation) for a method name."""
    return _DISPLAY.get(name, name)


def run_method(name: str, model: Module, train_dataset: Dataset,
               test_dataset: Dataset, input_shape: tuple[int, int, int],
               config: BaselineConfig | None = None,
               training: TrainingConfig | None = None,
               log: bool = False) -> BaselineRunResult:
    """Run one named baseline method end to end (model mutated in place)."""
    config = config or BaselineConfig()
    training = training or TrainingConfig()
    if name in ("depgraph-full", "depgraph-none"):
        grouping = name.split("-", 1)[1]
        return DepGraphPruner(model, train_dataset, test_dataset, input_shape,
                              grouping=grouping, config=config,
                              training=training).run(log=log)
    loss_fn = None
    if name == "l1":
        scorer = L1NormScorer()
    elif name == "l2":
        scorer = L2NormScorer()
    elif name == "sss":
        scorer = SSSScorer()
        loss_fn = SSSLoss()
    elif name == "hrank":
        scorer = HRankScorer()
    elif name == "tpp":
        scorer = L2NormScorer()
        scorer.name = "tpp"
        # Trainability preservation: keep surviving filters orthogonal
        # while fine-tuning.
        loss_fn = ModifiedLoss(lambda1=0.0, lambda2=training.lambda2 or 1e-2,
                               orth_mode="kernel")
    elif name == "orthconv":
        scorer = L1NormScorer()
        scorer.name = "orthconv"
        loss_fn = ModifiedLoss(lambda1=0.0, lambda2=training.lambda2 or 1e-2,
                               orth_mode="conv")
    elif name == "taylor":
        scorer = TaylorScorer()
    elif name == "apoz":
        scorer = APoZScorer()
    elif name == "weightgrad":
        scorer = WeightGradScorer()
    elif name == "random":
        scorer = RandomScorer()
    else:
        raise KeyError(f"unknown method {name!r}; available: {METHOD_NAMES}")
    pruner = ScorerPruner(model, train_dataset, test_dataset, input_shape,
                          scorer, config=config, training=training,
                          loss_fn=loss_fn)
    result = pruner.run(log=log)
    result.method = scorer.name
    return result
