"""Unstructured (individual-weight) pruning.

The paper's Background (Sec. II-A) contrasts its structured approach with
unstructured pruning [9]–[12]: removing individual weights reaches higher
sparsity at equal accuracy, but "the resulting sparse weight matrix is not
friendly for hardware platforms". This module supplies that comparator:

* magnitude masking (Han et al. [9]) — global or per-layer;
* gradient-magnitude masking (|w·∂L/∂w|, the criterion family of [10]/[12]);
* mask-preserving fine-tuning (masks re-applied after every optimizer
  step via the trainer's ``post_step`` hook);
* sparsity accounting.

``benchmarks/bench_hardware.py`` combines this with the systolic-array
cost model to reproduce the paper's motivating claim quantitatively:
unstructured sparsity barely reduces array cycles without zero-skipping
hardware, while structured pruning's reduction tracks its ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.trainer import Trainer, TrainingConfig, evaluate_model
from ..data import Dataset
from ..nn import Conv2d, Linear, Module, cross_entropy
from ..tensor import Tensor

__all__ = ["magnitude_masks", "gradient_masks", "apply_masks",
           "sparsity_report", "UnstructuredResult", "UnstructuredPruner"]


def _prunable_layers(model: Module) -> list[tuple[str, Module]]:
    return [(path, m) for path, m in model.named_modules()
            if isinstance(m, (Conv2d, Linear))]


def _masks_from_scores(scores: dict[str, np.ndarray],
                       sparsity: float) -> dict[str, np.ndarray]:
    """Remove exactly ``floor(total · sparsity)`` lowest-scoring weights.

    Rank-based rather than quantile-threshold-based so heavy score ties
    (e.g. many exactly-zero gradient products) cannot overshoot the target.
    """
    paths = list(scores)
    flat = np.concatenate([scores[p].reshape(-1) for p in paths])
    total = flat.size
    remove = int(np.floor(total * sparsity))
    keep_flat = np.ones(total, dtype=np.float32)
    if remove > 0:
        victims = np.argpartition(flat, remove - 1)[:remove]
        keep_flat[victims] = 0.0
    masks: dict[str, np.ndarray] = {}
    offset = 0
    for path in paths:
        size = scores[path].size
        masks[path] = keep_flat[offset:offset + size].reshape(
            scores[path].shape)
        offset += size
    return masks


def magnitude_masks(model: Module, sparsity: float,
                    scope: str = "global") -> dict[str, np.ndarray]:
    """Binary keep-masks zeroing the smallest-magnitude weights.

    Parameters
    ----------
    sparsity:
        Target fraction of weights to remove, in ``[0, 1)``.
    scope:
        ``"global"`` ranks all weights together (Han et al. style);
        ``"layer"`` removes the same fraction from every layer.
    """
    if not 0 <= sparsity < 1:
        raise ValueError("sparsity must be in [0, 1)")
    if scope not in ("global", "layer"):
        raise ValueError(f"unknown scope {scope!r}")
    layers = _prunable_layers(model)
    if scope == "global":
        return _masks_from_scores(
            {path: np.abs(m.weight.data) for path, m in layers}, sparsity)
    masks: dict[str, np.ndarray] = {}
    for path, module in layers:
        masks.update(_masks_from_scores(
            {path: np.abs(module.weight.data)}, sparsity))
    return masks


def gradient_masks(model: Module, dataset: Dataset, sparsity: float,
                   num_images: int = 64, seed: int = 0) -> dict[str, np.ndarray]:
    """Keep-masks ranking weights by ``|w · ∂L/∂w|`` on a data batch."""
    if not 0 <= sparsity < 1:
        raise ValueError("sparsity must be in [0, 1)")
    rng = np.random.default_rng(seed)
    idx = rng.choice(len(dataset), size=min(num_images, len(dataset)),
                     replace=False)
    images = np.stack([dataset[int(i)][0] for i in idx])
    labels = np.array([dataset[int(i)][1] for i in idx], dtype=np.intp)
    was_training = model.training
    model.eval()
    try:
        model.zero_grad()
        logits = model(Tensor(images))
        cross_entropy(logits, labels, reduction="sum").backward()
        layers = _prunable_layers(model)
        scores = {path: np.abs(m.weight.data * m.weight.grad)
                  for path, m in layers}
    finally:
        model.zero_grad()
        model.train(was_training)
    return _masks_from_scores(scores, sparsity)


def apply_masks(model: Module, masks: dict[str, np.ndarray]) -> None:
    """Zero masked weights in place (mask 0 = removed)."""
    for path, mask in masks.items():
        module = model.get_module(path)
        if mask.shape != module.weight.data.shape:
            raise ValueError(f"mask shape {mask.shape} does not match "
                             f"{path!r} weights {module.weight.data.shape}")
        module.weight.data = module.weight.data * mask


def sparsity_report(model: Module) -> dict[str, float]:
    """Fraction of exactly-zero weights per prunable layer plus 'total'."""
    report = {}
    zeros = 0
    total = 0
    for path, module in _prunable_layers(model):
        w = module.weight.data
        layer_zeros = int((w == 0).sum())
        report[path] = layer_zeros / w.size
        zeros += layer_zeros
        total += w.size
    report["total"] = zeros / total if total else 0.0
    return report


@dataclass
class UnstructuredResult:
    """Outcome of one unstructured pruning run."""

    criterion: str
    target_sparsity: float
    achieved_sparsity: float
    baseline_accuracy: float
    final_accuracy: float
    per_layer_sparsity: dict[str, float] = field(default_factory=dict)

    @property
    def accuracy_drop(self) -> float:
        return self.baseline_accuracy - self.final_accuracy


class UnstructuredPruner:
    """One-shot unstructured pruning with mask-preserving fine-tuning."""

    def __init__(self, model: Module, train_dataset: Dataset,
                 test_dataset: Dataset, criterion: str = "magnitude",
                 training: TrainingConfig | None = None):
        if criterion not in ("magnitude", "gradient"):
            raise ValueError(f"unknown criterion {criterion!r}")
        self.model = model
        self.train_dataset = train_dataset
        self.test_dataset = test_dataset
        self.criterion = criterion
        self.training = training or TrainingConfig()

    def run(self, sparsity: float, finetune_epochs: int = 2,
            scope: str = "global") -> UnstructuredResult:
        _, baseline = evaluate_model(self.model, self.test_dataset,
                                     self.training.batch_size)
        if self.criterion == "magnitude":
            masks = magnitude_masks(self.model, sparsity, scope=scope)
        else:
            masks = gradient_masks(self.model, self.train_dataset, sparsity)
        apply_masks(self.model, masks)
        if finetune_epochs > 0:
            trainer = Trainer(self.model, self.train_dataset,
                              self.test_dataset, self.training,
                              post_step=lambda: apply_masks(self.model, masks))
            trainer.train(epochs=finetune_epochs)
        _, final = evaluate_model(self.model, self.test_dataset,
                                  self.training.batch_size)
        per_layer = sparsity_report(self.model)
        return UnstructuredResult(
            criterion=self.criterion,
            target_sparsity=sparsity,
            achieved_sparsity=per_layer["total"],
            baseline_accuracy=baseline,
            final_accuracy=final,
            per_layer_sparsity={k: v for k, v in per_layer.items()
                                if k != "total"},
        )
