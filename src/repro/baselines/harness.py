"""Shared iterative prune-and-fine-tune harness for baseline criteria.

The paper compares against methods whose published numbers come from very
different training pipelines; to compare *criteria* fairly (Fig. 6), every
method here runs through the same loop:

    score → remove the globally lowest fraction → fine-tune → repeat
    until the target parameter-pruning ratio is reached.

This mirrors the class-aware framework's loop but replaces the class-aware
selection with the baseline's criterion, and prunes towards a fixed target
ratio (baselines have no intrinsic stopping rule).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.pruner import PercentageStrategy
from ..core.surgery import group_sizes, prune_groups
from ..core.trainer import Trainer, TrainingConfig, evaluate_model
from ..data import Dataset
from ..flops import flops_reduction, profile_model, pruning_ratio
from ..models.pruning_spec import PrunableModel
from ..nn import Module
from .scorers import FilterScorer, ScoringContext

__all__ = ["BaselineConfig", "BaselineRunResult", "ScorerPruner"]


@dataclass(frozen=True)
class BaselineConfig:
    """Schedule shared by all baseline runs.

    Attributes
    ----------
    target_ratio:
        Parameter pruning ratio to reach (fraction in (0, 1)).
    fraction_per_iteration:
        Fraction of the *remaining* filters removed per iteration.
    finetune_epochs:
        Fine-tuning epochs after each iteration.
    max_iterations:
        Safety bound.
    num_images:
        Sample budget for data-driven criteria.
    finetune_lr:
        Learning rate for post-pruning fine-tuning; ``None`` keeps the
        training config's rate (see FrameworkConfig.finetune_lr for why a
        reduced rate matters).
    """

    target_ratio: float = 0.5
    fraction_per_iteration: float = 0.1
    finetune_epochs: int = 1
    max_iterations: int = 30
    num_images: int = 64
    seed: int = 0
    finetune_lr: float | None = None


@dataclass
class BaselineRunResult:
    """Fig. 6 data point for one method."""

    method: str
    baseline_accuracy: float
    final_accuracy: float
    pruning_ratio: float
    flops_reduction: float
    iterations: int
    accuracies: list[float] = field(default_factory=list)

    @property
    def accuracy_drop(self) -> float:
        return self.baseline_accuracy - self.final_accuracy

    def row(self) -> str:
        return (f"{self.method:<16} acc={self.final_accuracy * 100:6.2f}% "
                f"(drop {self.accuracy_drop * 100:+5.2f}%) "
                f"ratio={self.pruning_ratio * 100:5.1f}% "
                f"flops_red={self.flops_reduction * 100:5.1f}%")


class ScorerPruner:
    """Iteratively prune a model using any :class:`FilterScorer`.

    Parameters
    ----------
    model:
        Trained prunable model (mutated in place).
    scorer:
        The baseline criterion.
    loss_fn:
        Optional custom fine-tuning objective (e.g. SSS's scale penalty);
        defaults to the training config's loss.
    """

    def __init__(self, model: Module, train_dataset: Dataset,
                 test_dataset: Dataset, input_shape: tuple[int, int, int],
                 scorer: FilterScorer, config: BaselineConfig | None = None,
                 training: TrainingConfig | None = None, loss_fn=None):
        if not isinstance(model, PrunableModel):
            raise TypeError(
                f"{type(model).__name__} does not expose prunable_groups()")
        self.model = model
        self.train_dataset = train_dataset
        self.test_dataset = test_dataset
        self.input_shape = tuple(input_shape)
        self.scorer = scorer
        self.config = config or BaselineConfig()
        self.training = training or TrainingConfig()
        if self.config.finetune_lr is not None:
            import dataclasses
            self.training = dataclasses.replace(self.training,
                                                lr=self.config.finetune_lr)
        self.loss_fn = loss_fn

    def run(self, log: bool = False) -> BaselineRunResult:
        cfg = self.config
        original = profile_model(self.model, self.input_shape)
        _, baseline_acc = evaluate_model(self.model, self.test_dataset,
                                         self.training.batch_size)
        ctx = ScoringContext(dataset=self.train_dataset,
                             num_images=cfg.num_images, seed=cfg.seed)
        strategy = PercentageStrategy(cfg.fraction_per_iteration)
        accuracies: list[float] = []
        iterations = 0
        for iteration in range(cfg.max_iterations):
            groups = self.model.prunable_groups()
            sizes = group_sizes(self.model, groups)
            scores = self.scorer.scores(self.model, groups, ctx)
            min_channels = {g.name: g.min_channels for g in groups}
            decision = strategy.select(scores, min_channels)
            if decision.is_empty():
                break
            keep = {name: np.setdiff1d(np.arange(sizes[name]), remove)
                    for name, remove in decision.remove.items()}
            prune_groups(self.model, groups, keep)
            trainer = Trainer(self.model, self.train_dataset,
                              self.test_dataset, self.training,
                              loss_fn=self.loss_fn)
            trainer.train(epochs=cfg.finetune_epochs)
            _, acc = evaluate_model(self.model, self.test_dataset,
                                    self.training.batch_size)
            accuracies.append(acc)
            iterations = iteration + 1
            profile = profile_model(self.model, self.input_shape)
            ratio = pruning_ratio(original, profile)
            if log:
                print(f"[{self.scorer.name}] iter {iteration}: "
                      f"acc={acc:.3f} ratio={ratio:.3f}")
            if ratio >= cfg.target_ratio:
                break
        final_profile = profile_model(self.model, self.input_shape)
        _, final_acc = evaluate_model(self.model, self.test_dataset,
                                      self.training.batch_size)
        return BaselineRunResult(
            method=self.scorer.name,
            baseline_accuracy=baseline_acc,
            final_accuracy=final_acc,
            pruning_ratio=pruning_ratio(original, final_profile),
            flops_reduction=flops_reduction(original, final_profile),
            iterations=iterations,
            accuracies=accuracies,
        )
