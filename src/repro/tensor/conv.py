"""Differentiable 2-D convolution and pooling via im2col.

The im2col transform rewrites convolution as a matrix multiplication, which
is the only way to get acceptable CNN throughput from numpy. The same
lowering is what the paper's Figure 2 illustrates (filters reshaped into a
sparse matrix multiplying the flattened input); :mod:`repro.core.toeplitz`
builds that sparse matrix explicitly for the orthogonality regulariser.

Shapes follow the NCHW convention used by the rest of the code base:
inputs are ``(N, C, H, W)``, convolution weights are ``(O, C, KH, KW)``.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
from numpy.lib.stride_tricks import as_strided

from .tensor import Tensor, _tape_active

__all__ = [
    "conv2d", "max_pool2d", "avg_pool2d", "global_avg_pool2d",
    "im2col", "col2im", "im2col_gather", "im2col_signature",
    "clear_im2col_cache", "conv_output_size", "IM2COL_CACHE_SIZE",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window sweep."""
    return (size + 2 * padding - kernel) // stride + 1


class ColSignature:
    """Precomputed geometry of one im2col lowering.

    Holds the output extent for a ``(C, H, W, kh, kw, stride, padding,
    dtype)`` signature and lazily materialises the flat gather indices that
    map the padded image to the ``(C*kh*kw, OH*OW)`` patch matrix. The
    indices are built at most once per signature; :func:`im2col_signature`
    memoizes the whole object, so repeated forward passes on fixed shapes
    (the training and inference steady state) never recompute either.

    The element dtype is part of the signature: the quantized engine lowers
    int8 activations through the same geometries as the float32 engine, and
    a signature must never be shared between the two — cached per-dtype
    state (scratch layouts, byte strides derived from the element size)
    would silently alias otherwise.
    """

    __slots__ = ("c", "h", "w", "kh", "kw", "stride", "padding", "dtype",
                 "oh", "ow", "_indices")

    def __init__(self, c: int, h: int, w: int, kh: int, kw: int,
                 stride: int, padding: int, dtype=np.float32):
        self.c, self.h, self.w = c, h, w
        self.kh, self.kw = kh, kw
        self.stride, self.padding = stride, padding
        self.dtype = np.dtype(dtype)
        self.oh = conv_output_size(h, kh, stride, padding)
        self.ow = conv_output_size(w, kw, stride, padding)
        self._indices: np.ndarray | None = None

    @property
    def padded_extent(self) -> tuple[int, int]:
        return self.h + 2 * self.padding, self.w + 2 * self.padding

    @property
    def indices(self) -> np.ndarray:
        """``(C*kh*kw, OH*OW)`` indices into the flattened padded image."""
        if self._indices is None:
            hp, wp = self.padded_extent
            ci = np.repeat(np.arange(self.c), self.kh * self.kw)
            ki = np.tile(np.repeat(np.arange(self.kh), self.kw), self.c)
            kj = np.tile(np.tile(np.arange(self.kw), self.kh), self.c)
            oi = self.stride * np.repeat(np.arange(self.oh), self.ow)
            oj = self.stride * np.tile(np.arange(self.ow), self.oh)
            rows = ki[:, None] + oi[None, :]
            cols = kj[:, None] + oj[None, :]
            self._indices = np.ascontiguousarray(
                (ci[:, None] * (hp * wp) + rows * wp + cols).astype(np.intp))
        return self._indices


# Bounded LRU of ColSignature objects. A handful of distinct shapes exist
# per network (one per layer geometry), so the bound is generous; it only
# guards against unbounded growth in long-lived processes that sweep many
# resolutions.
IM2COL_CACHE_SIZE = 128
_SIGNATURE_CACHE: OrderedDict[tuple, ColSignature] = OrderedDict()


def im2col_signature(c: int, h: int, w: int, kh: int, kw: int,
                     stride: int, padding: int,
                     dtype=np.float32) -> ColSignature:
    """Memoized :class:`ColSignature` for an im2col geometry + dtype."""
    dtype = np.dtype(dtype)
    key = (c, h, w, kh, kw, stride, padding, dtype)
    sig = _SIGNATURE_CACHE.get(key)
    if sig is not None:
        _SIGNATURE_CACHE.move_to_end(key)
        return sig
    sig = ColSignature(*key)
    _SIGNATURE_CACHE[key] = sig
    while len(_SIGNATURE_CACHE) > IM2COL_CACHE_SIZE:
        _SIGNATURE_CACHE.popitem(last=False)
    return sig


def clear_im2col_cache() -> None:
    """Drop all memoized im2col signatures (tests and memory pressure)."""
    _SIGNATURE_CACHE.clear()


def im2col_gather(x: np.ndarray, kh: int, kw: int, stride: int, padding: int,
                  out: np.ndarray | None = None) -> np.ndarray:
    """Gather-based im2col using the cached per-signature indices.

    Functionally identical to :func:`im2col`; this variant indexes the
    flattened (padded) image with the memoized gather table and supports an
    ``out`` buffer, which lets the compiled inference runtime reuse one
    preallocated column matrix across calls.
    """
    n, c, h, w = x.shape
    sig = im2col_signature(c, h, w, kh, kw, stride, padding, dtype=x.dtype)
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    flat = np.ascontiguousarray(x).reshape(n, -1)
    k, l = sig.indices.shape
    target = None if out is None else out.reshape(n, k * l)
    cols = np.take(flat, sig.indices.reshape(-1), axis=1, out=target)
    return cols.reshape(n, k, l)


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, padding: int) -> np.ndarray:
    """Lower image patches into columns.

    Parameters
    ----------
    x:
        Input array ``(N, C, H, W)``.

    Returns
    -------
    ``(N, C*kh*kw, OH*OW)`` array of patches, where each column holds one
    receptive field.
    """
    n, c, h, w = x.shape
    sig = im2col_signature(c, h, w, kh, kw, stride, padding, dtype=x.dtype)
    oh, ow = sig.oh, sig.ow
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    sn, sc, sh, sw = x.strides
    patches = as_strided(
        x,
        shape=(n, c, kh, kw, oh, ow),
        strides=(sn, sc, sh, sw, sh * stride, sw * stride),
        writeable=False,
    )
    return np.ascontiguousarray(patches).reshape(n, c * kh * kw, oh * ow)


def col2im(cols: np.ndarray, x_shape: tuple[int, int, int, int],
           kh: int, kw: int, stride: int, padding: int) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back to image layout."""
    n, c, h, w = x_shape
    sig = im2col_signature(c, h, w, kh, kw, stride, padding, dtype=cols.dtype)
    oh, ow = sig.oh, sig.ow
    hp, wp = sig.padded_extent
    x = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    cols6 = cols.reshape(n, c, kh, kw, oh, ow)
    for i in range(kh):
        i_max = i + stride * oh
        for j in range(kw):
            j_max = j + stride * ow
            x[:, :, i:i_max:stride, j:j_max:stride] += cols6[:, :, i, j]
    if padding > 0:
        return x[:, :, padding:hp - padding, padding:wp - padding]
    return x


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None,
           stride: int = 1, padding: int = 0) -> Tensor:
    """2-D cross-correlation (deep-learning style "convolution").

    Parameters
    ----------
    x:
        Input activations ``(N, C, H, W)``.
    weight:
        Filters ``(O, C, KH, KW)``.
    bias:
        Optional per-output-channel bias ``(O,)``.
    """
    n, c, h, w = x.shape
    o, c_w, kh, kw = weight.shape
    if c != c_w:
        raise ValueError(f"channel mismatch: input has {c}, weight expects {c_w}")
    sig = im2col_signature(c, h, w, kh, kw, stride, padding)
    oh, ow = sig.oh, sig.ow

    cols = im2col(x.data, kh, kw, stride, padding)       # (N, C*KH*KW, OH*OW)
    w2d = weight.data.reshape(o, -1)                     # (O, C*KH*KW)
    out = np.einsum("ok,nkl->nol", w2d, cols, optimize=True)
    if bias is not None:
        out = out + bias.data.reshape(1, o, 1)
    out = out.reshape(n, o, oh, ow)

    parents = (x, weight) if bias is None else (x, weight, bias)
    if not _tape_active(*parents):
        return Tensor._make(out, (), "conv2d", None)

    def backward(grad):
        grad2d = grad.reshape(n, o, oh * ow)
        gx = gw = gb = None
        if x.requires_grad:
            dcols = np.einsum("ok,nol->nkl", w2d, grad2d, optimize=True)
            gx = col2im(dcols, (n, c, h, w), kh, kw, stride, padding)
        if weight.requires_grad:
            gw = np.einsum("nol,nkl->ok", grad2d, cols, optimize=True)
            gw = gw.reshape(weight.shape)
        if bias is not None and bias.requires_grad:
            gb = grad2d.sum(axis=(0, 2))
        if bias is None:
            return (gx, gw)
        return (gx, gw, gb)

    return Tensor._make(out, parents, "conv2d", backward)


def max_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Max pooling over non-overlapping (or strided) windows."""
    stride = stride or kernel
    n, c, h, w = x.shape
    oh = conv_output_size(h, kernel, stride, 0)
    ow = conv_output_size(w, kernel, stride, 0)
    sn, sc, sh, sw = x.data.strides
    windows = as_strided(
        x.data,
        shape=(n, c, oh, ow, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    if not _tape_active(x):
        # Forward-only: skip the argmax bookkeeping the backward needs.
        return Tensor._make(np.ascontiguousarray(windows.max(axis=(-2, -1))),
                            (), "max_pool2d", None)
    flat = windows.reshape(n, c, oh, ow, kernel * kernel)
    argmax = flat.argmax(axis=-1)
    out = np.take_along_axis(flat, argmax[..., None], axis=-1)[..., 0]

    def backward(grad):
        gx = np.zeros_like(x.data)
        # Convert flat window argmax back to absolute coordinates.
        ki, kj = np.unravel_index(argmax, (kernel, kernel))
        oy, ox_ = np.meshgrid(np.arange(oh), np.arange(ow), indexing="ij")
        rows = oy[None, None] * stride + ki
        cols_ = ox_[None, None] * stride + kj
        ni = np.arange(n)[:, None, None, None]
        ci = np.arange(c)[None, :, None, None]
        np.add.at(gx, (ni, ci, rows, cols_), grad)
        return (gx,)

    return Tensor._make(np.ascontiguousarray(out), (x,), "max_pool2d", backward)


def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Average pooling over windows."""
    stride = stride or kernel
    n, c, h, w = x.shape
    oh = conv_output_size(h, kernel, stride, 0)
    ow = conv_output_size(w, kernel, stride, 0)
    sn, sc, sh, sw = x.data.strides
    windows = as_strided(
        x.data,
        shape=(n, c, oh, ow, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    out = windows.mean(axis=(-2, -1))
    if not _tape_active(x):
        return Tensor._make(np.ascontiguousarray(out), (), "avg_pool2d", None)
    scale = 1.0 / (kernel * kernel)

    def backward(grad):
        gx = np.zeros_like(x.data)
        g = grad * scale
        for i in range(kernel):
            for j in range(kernel):
                gx[:, :, i:i + oh * stride:stride, j:j + ow * stride:stride] += g
        return (gx,)

    return Tensor._make(np.ascontiguousarray(out), (x,), "avg_pool2d", backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over the full spatial extent, returning ``(N, C)``."""
    from . import ops
    return ops.mean(x, axis=(2, 3))
