"""Reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of the reproduction: the paper's class-aware
pruning criterion needs per-activation gradients (Taylor scores, Eq. 4 of the
paper), which requires a full autograd engine since PyTorch is not available
in this environment.

The design is a define-by-run tape: every operation returns a new
:class:`Tensor` holding references to its parents and a closure that
accumulates gradients into them. Calling :meth:`Tensor.backward` performs a
topological sort of the recorded graph and runs the closures in reverse
order.

All tensors store ``float32`` data by default (matching common deep-learning
practice); gradient checking utilities promote to ``float64`` where needed.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "inference_mode", "is_grad_enabled", "tensor"]


# Grad mode is per-thread (as in torch): an inference thread running under
# no_grad must not switch off tape recording for a training or tracing
# thread that shares the process — the serving layer's eager fallbacks and
# hot-swap compilations run exactly that mix. Fresh threads start with
# gradients enabled.
_GRAD_STATE = threading.local()


def _grad_enabled() -> bool:
    return getattr(_GRAD_STATE, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording (this thread only).

    Used for evaluation loops and for the weight updates inside optimisers,
    exactly like ``torch.no_grad()``.
    """
    previous = _grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def inference_mode():
    """Forward-only context: no graph recording, no backward closures.

    Alias of :func:`no_grad` kept as a distinct name (mirroring
    ``torch.inference_mode``) to mark call sites that are pure inference.
    Inside the context the hot ops in :mod:`repro.tensor.ops` and
    :mod:`repro.tensor.conv` take a fast path that skips building their
    backward closures entirely rather than building and discarding them.
    """
    return no_grad()


def is_grad_enabled() -> bool:
    """Return whether operations are currently recorded on the tape."""
    return _grad_enabled()


def _tape_active(*parents: "Tensor") -> bool:
    """True when an op over ``parents`` would be recorded on the tape.

    Ops use this to skip constructing their backward closure (and any
    arrays it would capture) when the result cannot require gradients.
    """
    if not _grad_enabled():
        return False
    for p in parents:
        if p.requires_grad:
            return True
    return False


def _as_array(value, dtype=np.float32) -> np.ndarray:
    if isinstance(value, np.ndarray):
        if value.dtype != dtype:
            return value.astype(dtype)
        return value
    return np.asarray(value, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``, undoing numpy broadcasting.

    Broadcasting may have added leading axes and/or stretched axes of size
    one; the adjoint of broadcasting is summation over those axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over extra leading dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were stretched from size 1.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed array with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like initial value; converted to ``float32`` unless an ndarray
        of another float dtype is explicitly supplied with ``dtype=None``.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    name:
        Optional label used in debugging and in module parameter registries.
    """

    __slots__ = (
        "data",
        "grad",
        "grad_sink",
        "requires_grad",
        "name",
        "_backward",
        "_parents",
        "_op",
        "_retains_grad",
    )

    def __init__(self, data, requires_grad: bool = False, name: str | None = None,
                 dtype=np.float32):
        self.data: np.ndarray = _as_array(data, dtype) if dtype is not None else np.asarray(data)
        self.grad: np.ndarray | None = None
        self.grad_sink: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _grad_enabled()
        self.name = name
        self._backward: Callable[[np.ndarray], tuple] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self._op: str = "leaf"
        self._retains_grad = False

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def is_leaf(self) -> bool:
        return not self._parents

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, op={self._op}{grad_flag}{label})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new leaf tensor sharing this tensor's data."""
        out = Tensor.__new__(Tensor)
        out.data = self.data
        out.grad = None
        out.grad_sink = None
        out.requires_grad = False
        out.name = self.name
        out._backward = None
        out._parents = ()
        out._op = "detach"
        out._retains_grad = False
        return out

    def retain_grad(self) -> "Tensor":
        """Keep the gradient of this (possibly non-leaf) tensor after backward.

        The Taylor-score evaluation of the paper (Eq. 4) needs gradients with
        respect to *activations*, which are interior nodes of the graph; this
        mirrors ``torch.Tensor.retain_grad``.
        """
        self._retains_grad = True
        return self

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"], op: str,
              backward: Callable[[np.ndarray], tuple] | None) -> "Tensor":
        """Create an interior graph node.

        ``backward`` receives the gradient flowing into the node and must
        return one gradient array (or ``None``) per entry of ``parents``.
        """
        requires = _grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor.__new__(Tensor)
        out.data = data
        out.grad = None
        out.grad_sink = None
        out.requires_grad = requires
        out.name = None
        out._retains_grad = False
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
            out._op = op
        else:
            out._parents = ()
            out._backward = None
            out._op = op
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            if self.grad_sink is not None:
                # Write straight into the preassigned buffer (typically a
                # shared-memory gradient-bucket view, see
                # repro.parallel.bucket): the copy happens while the
                # freshly computed gradient is still cache-hot, replacing
                # the cache-cold publish pass a separate copy would need.
                np.copyto(self.grad_sink, grad)
                self.grad = self.grad_sink
            else:
                self.grad = grad.copy() if grad.base is not None or not grad.flags.owndata else grad
        elif self.grad is self.grad_sink:
            # In-place keeps the sink authoritative; elementwise identical
            # to ``self.grad + grad``.
            np.add(self.grad, grad, out=self.grad)
        else:
            self.grad = self.grad + grad

    def backward(self, grad: np.ndarray | None = None,
                 on_leaf: Callable[["Tensor"], None] | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to ones (only sensible for scalar outputs, which is the
            usual loss case).
        on_leaf:
            Optional callback invoked once per leaf tensor right after its
            gradient has been accumulated. Because the traversal is in
            reverse topological order, every contribution to a leaf has
            been summed by the time the leaf itself is visited, so the
            gradient seen by the callback is final. Used by the sharded
            trainer to publish gradient buckets while backward is still
            running through earlier layers.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = _as_array(grad, self.data.dtype)

        # Topological sort (iterative to avoid recursion limits on deep nets).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.is_leaf or node._retains_grad:
                node._accumulate(node_grad)
                if on_leaf is not None and node.is_leaf:
                    on_leaf(node)
            if node._backward is None:
                continue
            parent_grads = node._backward(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                pid = id(parent)
                if pid in grads:
                    grads[pid] = grads[pid] + pgrad
                else:
                    grads[pid] = pgrad

    # ------------------------------------------------------------------
    # Operator implementations (delegated to repro.tensor.ops)
    # ------------------------------------------------------------------
    def __add__(self, other):
        from . import ops
        return ops.add(self, other)

    __radd__ = __add__

    def __sub__(self, other):
        from . import ops
        return ops.sub(self, other)

    def __rsub__(self, other):
        from . import ops
        return ops.sub(other, self)

    def __mul__(self, other):
        from . import ops
        return ops.mul(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        from . import ops
        return ops.div(self, other)

    def __rtruediv__(self, other):
        from . import ops
        return ops.div(other, self)

    def __neg__(self):
        from . import ops
        return ops.neg(self)

    def __pow__(self, exponent: float):
        from . import ops
        return ops.pow(self, exponent)

    def __matmul__(self, other):
        from . import ops
        return ops.matmul(self, other)

    def __getitem__(self, index):
        from . import ops
        return ops.getitem(self, index)

    # Convenience method forms -----------------------------------------
    def sum(self, axis=None, keepdims: bool = False):
        from . import ops
        return ops.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False):
        from . import ops
        return ops.mean(self, axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False):
        from . import ops
        return ops.max(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        from . import ops
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def transpose(self, *axes):
        from . import ops
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        return ops.transpose(self, axes or None)

    def flatten(self, start_dim: int = 0):
        from . import ops
        return ops.flatten(self, start_dim)

    def relu(self):
        from . import ops
        return ops.relu(self)

    def exp(self):
        from . import ops
        return ops.exp(self)

    def log(self):
        from . import ops
        return ops.log(self)

    def sqrt(self):
        from . import ops
        return ops.sqrt(self)

    def abs(self):
        from . import ops
        return ops.abs(self)


def tensor(data, requires_grad: bool = False, name: str | None = None) -> Tensor:
    """Factory mirroring ``torch.tensor`` for readability at call sites."""
    return Tensor(data, requires_grad=requires_grad, name=name)
