"""Differentiable primitive operations on :class:`repro.tensor.Tensor`.

Every function here builds a graph node whose backward closure returns one
gradient per parent. Broadcasting in binary ops is undone in the backward
pass with :func:`repro.tensor.tensor._unbroadcast`.

Convolution and pooling live in :mod:`repro.tensor.conv` because they carry
substantially more machinery (im2col buffers).
"""

from __future__ import annotations

import builtins
from typing import Sequence

import numpy as np

from .tensor import Tensor, _tape_active, _unbroadcast

__all__ = [
    "add", "sub", "mul", "div", "neg", "pow", "matmul", "exp", "log", "sqrt",
    "abs", "relu", "sigmoid", "tanh", "sum", "mean", "max", "reshape",
    "transpose", "flatten", "getitem", "concat", "stack", "pad2d",
    "log_softmax", "softmax", "logsumexp", "maximum", "minimum", "clip",
    "where", "dropout_mask",
]


def _wrap(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


# ----------------------------------------------------------------------
# Elementwise binary ops
# ----------------------------------------------------------------------

def add(a, b) -> Tensor:
    a, b = _wrap(a), _wrap(b)
    out_data = a.data + b.data
    if not _tape_active(a, b):
        return Tensor._make(out_data, (), "add", None)

    def backward(grad):
        return (_unbroadcast(grad, a.shape), _unbroadcast(grad, b.shape))

    return Tensor._make(out_data, (a, b), "add", backward)


def sub(a, b) -> Tensor:
    a, b = _wrap(a), _wrap(b)
    out_data = a.data - b.data
    if not _tape_active(a, b):
        return Tensor._make(out_data, (), "sub", None)

    def backward(grad):
        return (_unbroadcast(grad, a.shape), _unbroadcast(-grad, b.shape))

    return Tensor._make(out_data, (a, b), "sub", backward)


def mul(a, b) -> Tensor:
    a, b = _wrap(a), _wrap(b)
    out_data = a.data * b.data
    if not _tape_active(a, b):
        return Tensor._make(out_data, (), "mul", None)

    def backward(grad):
        ga = _unbroadcast(grad * b.data, a.shape) if a.requires_grad else None
        gb = _unbroadcast(grad * a.data, b.shape) if b.requires_grad else None
        return (ga, gb)

    return Tensor._make(out_data, (a, b), "mul", backward)


def div(a, b) -> Tensor:
    a, b = _wrap(a), _wrap(b)
    out_data = a.data / b.data
    if not _tape_active(a, b):
        return Tensor._make(out_data, (), "div", None)

    def backward(grad):
        ga = _unbroadcast(grad / b.data, a.shape) if a.requires_grad else None
        gb = (_unbroadcast(-grad * a.data / (b.data * b.data), b.shape)
              if b.requires_grad else None)
        return (ga, gb)

    return Tensor._make(out_data, (a, b), "div", backward)


def maximum(a, b) -> Tensor:
    a, b = _wrap(a), _wrap(b)
    out_data = np.maximum(a.data, b.data)

    def backward(grad):
        mask = (a.data >= b.data)
        ga = _unbroadcast(grad * mask, a.shape) if a.requires_grad else None
        gb = _unbroadcast(grad * (~mask), b.shape) if b.requires_grad else None
        return (ga, gb)

    return Tensor._make(out_data, (a, b), "maximum", backward)


def minimum(a, b) -> Tensor:
    a, b = _wrap(a), _wrap(b)
    out_data = np.minimum(a.data, b.data)

    def backward(grad):
        mask = (a.data <= b.data)
        ga = _unbroadcast(grad * mask, a.shape) if a.requires_grad else None
        gb = _unbroadcast(grad * (~mask), b.shape) if b.requires_grad else None
        return (ga, gb)

    return Tensor._make(out_data, (a, b), "minimum", backward)


def where(condition: np.ndarray, a, b) -> Tensor:
    """Elementwise select; ``condition`` is a plain boolean array."""
    a, b = _wrap(a), _wrap(b)
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a.data, b.data)

    def backward(grad):
        ga = _unbroadcast(grad * cond, a.shape) if a.requires_grad else None
        gb = _unbroadcast(grad * (~cond), b.shape) if b.requires_grad else None
        return (ga, gb)

    return Tensor._make(out_data, (a, b), "where", backward)


# ----------------------------------------------------------------------
# Elementwise unary ops
# ----------------------------------------------------------------------

def neg(a) -> Tensor:
    a = _wrap(a)
    return Tensor._make(-a.data, (a,), "neg", lambda grad: (-grad,))


def pow(a, exponent: float) -> Tensor:
    a = _wrap(a)
    out_data = a.data ** exponent

    def backward(grad):
        return (grad * exponent * a.data ** (exponent - 1),)

    return Tensor._make(out_data, (a,), f"pow{exponent}", backward)


def exp(a) -> Tensor:
    a = _wrap(a)
    out_data = np.exp(a.data)

    def backward(grad):
        return (grad * out_data,)

    return Tensor._make(out_data, (a,), "exp", backward)


def log(a) -> Tensor:
    a = _wrap(a)
    out_data = np.log(a.data)

    def backward(grad):
        return (grad / a.data,)

    return Tensor._make(out_data, (a,), "log", backward)


def sqrt(a) -> Tensor:
    a = _wrap(a)
    out_data = np.sqrt(a.data)

    def backward(grad):
        return (grad * 0.5 / out_data,)

    return Tensor._make(out_data, (a,), "sqrt", backward)


def abs(a) -> Tensor:
    a = _wrap(a)
    out_data = np.abs(a.data)

    def backward(grad):
        return (grad * np.sign(a.data),)

    return Tensor._make(out_data, (a,), "abs", backward)


def relu(a) -> Tensor:
    a = _wrap(a)
    out_data = np.maximum(a.data, 0.0)
    if not _tape_active(a):
        return Tensor._make(out_data, (), "relu", None)

    def backward(grad):
        return (grad * (a.data > 0),)

    return Tensor._make(out_data, (a,), "relu", backward)


def sigmoid(a) -> Tensor:
    a = _wrap(a)
    out_data = 1.0 / (1.0 + np.exp(-a.data))

    def backward(grad):
        return (grad * out_data * (1.0 - out_data),)

    return Tensor._make(out_data, (a,), "sigmoid", backward)


def tanh(a) -> Tensor:
    a = _wrap(a)
    out_data = np.tanh(a.data)

    def backward(grad):
        return (grad * (1.0 - out_data * out_data),)

    return Tensor._make(out_data, (a,), "tanh", backward)


def clip(a, low: float, high: float) -> Tensor:
    a = _wrap(a)
    out_data = np.clip(a.data, low, high)

    def backward(grad):
        mask = (a.data >= low) & (a.data <= high)
        return (grad * mask,)

    return Tensor._make(out_data, (a,), "clip", backward)


def dropout_mask(a, mask: np.ndarray) -> Tensor:
    """Multiply by a fixed (non-differentiable) mask; used by Dropout."""
    a = _wrap(a)
    out_data = a.data * mask

    def backward(grad):
        return (grad * mask,)

    return Tensor._make(out_data, (a,), "dropout", backward)


# ----------------------------------------------------------------------
# Linear algebra
# ----------------------------------------------------------------------

def matmul(a, b) -> Tensor:
    a, b = _wrap(a), _wrap(b)
    out_data = a.data @ b.data
    if not _tape_active(a, b):
        return Tensor._make(out_data, (), "matmul", None)

    def backward(grad):
        # Mirror numpy's matmul semantics exactly: a 1-D left operand is a
        # row vector (axis prepended at -2), a 1-D right operand a column
        # vector (axis appended at -1); both axes are squeezed from the
        # output. Promoting grad the same way makes the adjoint uniform
        # across every vector/matrix/batched combination.
        a2 = a.data[None, :] if a.data.ndim == 1 else a.data
        b2 = b.data[:, None] if b.data.ndim == 1 else b.data
        g2 = grad
        if b.data.ndim == 1:
            g2 = np.expand_dims(g2, -1)
        if a.data.ndim == 1:
            g2 = np.expand_dims(g2, -2)
        ga = gb = None
        if a.requires_grad:
            ga = g2 @ np.swapaxes(b2, -1, -2)
            if a.data.ndim == 1:
                ga = np.squeeze(ga, axis=-2)
            ga = _unbroadcast(ga, a.shape) if ga.shape != a.shape else ga
        if b.requires_grad:
            gb = np.swapaxes(a2, -1, -2) @ g2
            if b.data.ndim == 1:
                gb = np.squeeze(gb, axis=-1)
            gb = _unbroadcast(gb, b.shape) if gb.shape != b.shape else gb
        return (ga, gb)

    return Tensor._make(out_data, (a, b), "matmul", backward)


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------

def _normalize_axis(axis, ndim: int):
    if axis is None:
        return None
    if isinstance(axis, int):
        axis = (axis,)
    return tuple(ax % ndim for ax in axis)


def sum(a, axis=None, keepdims: bool = False) -> Tensor:
    a = _wrap(a)
    axis_n = _normalize_axis(axis, a.ndim)
    out_data = a.data.sum(axis=axis_n, keepdims=keepdims)
    if not _tape_active(a):
        return Tensor._make(out_data, (), "sum", None)

    def backward(grad):
        g = grad
        if axis_n is not None and not keepdims:
            g = np.expand_dims(g, axis_n)
        return (np.broadcast_to(g, a.shape).copy(),)

    return Tensor._make(out_data, (a,), "sum", backward)


def mean(a, axis=None, keepdims: bool = False) -> Tensor:
    a = _wrap(a)
    axis_n = _normalize_axis(axis, a.ndim)
    out_data = a.data.mean(axis=axis_n, keepdims=keepdims)
    if not _tape_active(a):
        return Tensor._make(out_data, (), "mean", None)
    if axis_n is None:
        count = a.data.size
    else:
        count = int(np.prod([a.shape[ax] for ax in axis_n]))

    def backward(grad):
        g = grad / count
        if axis_n is not None and not keepdims:
            g = np.expand_dims(g, axis_n)
        return (np.broadcast_to(g, a.shape).copy(),)

    return Tensor._make(out_data, (a,), "mean", backward)


def max(a, axis=None, keepdims: bool = False) -> Tensor:
    a = _wrap(a)
    axis_n = _normalize_axis(axis, a.ndim)
    out_data = a.data.max(axis=axis_n, keepdims=keepdims)

    def backward(grad):
        expanded = out_data
        g = grad
        if axis_n is not None and not keepdims:
            expanded = np.expand_dims(out_data, axis_n)
            g = np.expand_dims(grad, axis_n)
        mask = (a.data == expanded)
        # Split gradient evenly among ties, matching numerical grad checks.
        counts = mask.sum(axis=axis_n, keepdims=True) if axis_n is not None else mask.sum()
        return (mask * g / counts,)

    return Tensor._make(out_data, (a,), "max", backward)


def logsumexp(a, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Numerically stable log-sum-exp reduction (building block of CE loss)."""
    a = _wrap(a)
    ax = axis % a.ndim
    m = a.data.max(axis=ax, keepdims=True)
    shifted = a.data - m
    sumexp = np.exp(shifted).sum(axis=ax, keepdims=True)
    out_full = m + np.log(sumexp)
    out_data = out_full if keepdims else np.squeeze(out_full, axis=ax)
    softmax_data = np.exp(shifted) / sumexp

    def backward(grad):
        g = grad if keepdims else np.expand_dims(grad, ax)
        return (g * softmax_data,)

    return Tensor._make(out_data, (a,), "logsumexp", backward)


def log_softmax(a, axis: int = -1) -> Tensor:
    a = _wrap(a)
    ax = axis % a.ndim
    m = a.data.max(axis=ax, keepdims=True)
    shifted = a.data - m
    logsum = np.log(np.exp(shifted).sum(axis=ax, keepdims=True))
    out_data = shifted - logsum
    if not _tape_active(a):
        return Tensor._make(out_data, (), "log_softmax", None)
    softmax_data = np.exp(out_data)

    def backward(grad):
        return (grad - softmax_data * grad.sum(axis=ax, keepdims=True),)

    return Tensor._make(out_data, (a,), "log_softmax", backward)


def softmax(a, axis: int = -1) -> Tensor:
    return exp(log_softmax(a, axis=axis))


# ----------------------------------------------------------------------
# Shape manipulation
# ----------------------------------------------------------------------

def reshape(a, shape: Sequence[int]) -> Tensor:
    a = _wrap(a)
    out_data = a.data.reshape(shape)
    if not _tape_active(a):
        return Tensor._make(out_data, (), "reshape", None)

    def backward(grad):
        return (grad.reshape(a.shape),)

    return Tensor._make(out_data, (a,), "reshape", backward)


def transpose(a, axes: Sequence[int] | None = None) -> Tensor:
    a = _wrap(a)
    out_data = a.data.transpose(axes)
    if not _tape_active(a):
        return Tensor._make(out_data, (), "transpose", None)
    if axes is None:
        inverse = None
    else:
        inverse = np.argsort(axes)

    def backward(grad):
        return (grad.transpose(inverse),)

    return Tensor._make(out_data, (a,), "transpose", backward)


def flatten(a, start_dim: int = 0) -> Tensor:
    a = _wrap(a)
    lead = a.shape[:start_dim]
    return reshape(a, lead + (-1,))


def getitem(a, index) -> Tensor:
    a = _wrap(a)
    out_data = a.data[index]

    def backward(grad):
        full = np.zeros_like(a.data)
        np.add.at(full, index, grad)
        return (full,)

    return Tensor._make(out_data, (a,), "getitem", backward)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [_wrap(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        slicer = [slice(None)] * grad.ndim
        grads = []
        for i in range(len(tensors)):
            slicer[axis] = slice(offsets[i], offsets[i + 1])
            grads.append(grad[tuple(slicer)])
        return tuple(grads)

    return Tensor._make(out_data, tuple(tensors), "concat", backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [_wrap(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        return tuple(np.take(grad, i, axis=axis) for i in range(len(tensors)))

    return Tensor._make(out_data, tuple(tensors), "stack", backward)


def pad2d(a, padding: int | tuple[int, int]) -> Tensor:
    """Zero-pad the two trailing (spatial) axes of an NCHW tensor."""
    a = _wrap(a)
    if isinstance(padding, int):
        ph = pw = padding
    else:
        ph, pw = padding
    if ph == 0 and pw == 0:
        return a
    pad_width = [(0, 0)] * (a.ndim - 2) + [(ph, ph), (pw, pw)]
    out_data = np.pad(a.data, pad_width)

    def backward(grad):
        slicer = [slice(None)] * (a.ndim - 2)
        slicer += [slice(ph, grad.shape[-2] - ph), slice(pw, grad.shape[-1] - pw)]
        return (grad[tuple(slicer)],)

    return Tensor._make(out_data, (a,), "pad2d", backward)
