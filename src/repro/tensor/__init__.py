"""Numpy-backed reverse-mode autograd engine.

This subpackage replaces PyTorch as the substrate for the reproduction.
See :mod:`repro.tensor.tensor` for the engine design.
"""

from . import conv, ops
from .conv import (avg_pool2d, conv2d, conv_output_size, global_avg_pool2d,
                   max_pool2d)
from .tensor import Tensor, inference_mode, is_grad_enabled, no_grad, tensor

# Gradient checking lives in the correctness subsystem; re-exported here for
# backwards compatibility. ``repro.verify.gradcheck`` imports only
# ``repro.tensor.tensor``, so the edge stays acyclic.
from ..verify.gradcheck import check_gradients, numerical_grad

__all__ = [
    "Tensor", "tensor", "no_grad", "inference_mode", "is_grad_enabled",
    "ops", "conv",
    "conv2d", "max_pool2d", "avg_pool2d", "global_avg_pool2d",
    "conv_output_size", "check_gradients", "numerical_grad",
]
