"""Reproduction of "Class-Aware Pruning for Efficient Neural Networks".

(M. Jiang et al., DATE 2024.)

The package is self-contained — a numpy autograd engine and CNN stack stand
in for PyTorch, and a seeded synthetic image task stands in for CIFAR (see
DESIGN.md for the substitution rationale). Quick start::

    from repro.data import make_cifar_like
    from repro.models import vgg16
    from repro.core import ClassAwarePruningFramework, FrameworkConfig

    train, test = make_cifar_like(num_classes=10, image_size=16)
    model = vgg16(num_classes=10, image_size=16, width=0.25)
    fw = ClassAwarePruningFramework(model, train, test, num_classes=10,
                                    input_shape=(3, 16, 16))
    fw.pretrain()
    result = fw.run()
    print(result.summary_row("VGG16"))

Subpackages
-----------
``repro.tensor``     numpy autograd engine
``repro.nn``         layers, losses, module system
``repro.optim``      SGD + LR schedules
``repro.data``       loaders + synthetic CIFAR substitute
``repro.models``     VGG / ResNet / MLP zoo with pruning metadata
``repro.flops``      parameter & FLOP accounting
``repro.core``       the class-aware pruning method (the paper)
``repro.infer``      compiled inference engine (capture / fold / fuse)
``repro.serve``      async inference service (batching / shedding / hot-swap)
``repro.baselines``  L1 / SSS / HRank / TPP / OrthConv / DepGraph / ...
``repro.analysis``   histograms, comparisons, experiment records
"""

__version__ = "1.0.0"

from . import (analysis, baselines, core, data, flops, infer, io, models, nn,
               optim, quant, tensor)

__all__ = ["tensor", "nn", "optim", "data", "models", "flops", "core",
           "infer", "baselines", "analysis", "io", "quant", "__version__"]
