"""Post-training quantization (composable with pruning)."""

from .quantize import (QuantizationReport, dequantize_array,
                       model_size_bytes, quantize_array, quantize_model)

__all__ = ["quantize_array", "dequantize_array", "quantize_model",
           "QuantizationReport", "model_size_bytes"]
