"""Post-training weight quantization.

The paper positions pruning among the software-level compression
techniques next to quantization [5][6]. This module provides the minimal
quantization substrate so the two can be *composed* — prune first, then
quantize the survivors — which is how deployments actually stack them.

Implemented: uniform symmetric fake-quantization of conv/linear weights
(per-tensor or per-output-channel scales), with compression accounting.
"Fake" means weights are stored dequantized in float32 so the unmodified
engine executes them; the values are exactly representable on an
``bits``-wide integer grid, which is what determines accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn import Conv2d, Linear, Module

__all__ = ["quantize_array", "dequantize_array", "quantize_model",
           "QuantizationReport", "model_size_bytes"]


def quantize_array(values: np.ndarray, bits: int,
                   per_channel: bool = False,
                   scale: np.ndarray | float | None = None
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Uniform symmetric quantization.

    Parameters
    ----------
    values:
        Weight array; for ``per_channel`` the first axis indexes channels.
    bits:
        Integer width (2–16); one value is reserved for symmetry, so the
        grid is ``[-(2^{b-1}-1), 2^{b-1}-1]``.
    scale:
        Optional externally chosen positive scale overriding the
        max-|x|-derived one (e.g. the power-of-two bucket scales of the
        gradient transport in :mod:`repro.parallel.bucket`, chosen so
        dequantization is exact in float32). Values are still clamped
        onto the symmetric grid.

    Returns
    -------
    (q, scale):
        Integer grid codes (int32) and the per-tensor (scalar array) or
        per-channel scale such that ``values ≈ q * scale``.

    Edge cases are handled explicitly rather than leaking through the
    arithmetic: non-finite inputs raise (a NaN or inf weight would turn
    into a NaN/inf scale and poison every code in its channel), an
    all-zero tensor or channel gets scale 1.0 (its codes are exactly 0, so
    any finite scale round-trips it), and asymmetric ranges are clamped
    onto the symmetric grid — the scale comes from ``max |x|``, so the
    dominant side is exactly representable and the other side saturates
    at ``-qmax`` instead of wrapping.
    """
    if not 2 <= bits <= 16:
        raise ValueError("bits must be in [2, 16]")
    values = np.asarray(values)
    if values.size == 0:
        raise ValueError("cannot quantize an empty array")
    if not np.isfinite(values).all():
        bad = int(np.count_nonzero(~np.isfinite(values)))
        raise ValueError(
            f"cannot quantize non-finite values ({bad} NaN/inf element(s); "
            "a non-finite weight would produce a non-finite scale)")
    qmax = 2 ** (bits - 1) - 1
    if scale is not None:
        scale = np.asarray(scale, dtype=np.float64)
        if scale.size != 1 and per_channel is False:
            raise ValueError("an explicit per-tensor scale must be scalar")
        if not (np.isfinite(scale).all() and (scale > 0).all()):
            raise ValueError("explicit quantization scales must be "
                             "positive and finite")
    elif per_channel:
        flat = np.abs(values.reshape(values.shape[0], -1))
        amax = flat.max(axis=1)
        shape = (-1,) + (1,) * (values.ndim - 1)
        scale = np.where(amax > 0, amax / qmax, 1.0).reshape(shape)
    else:
        amax = float(np.abs(values).max())
        scale = np.array(amax / qmax if amax > 0 else 1.0)
    q = np.clip(np.round(values / scale), -qmax, qmax).astype(np.int32)
    return q, scale.astype(np.float32)


def dequantize_array(q: np.ndarray, scale: np.ndarray) -> np.ndarray:
    """Inverse of :func:`quantize_array`."""
    return (q.astype(np.float32) * scale).astype(np.float32)


@dataclass
class QuantizationReport:
    """What was quantized and what it costs to store."""

    bits: int
    per_channel: bool
    layers: list[str] = field(default_factory=list)
    float_bytes: int = 0
    quant_bytes: int = 0

    @property
    def compression(self) -> float:
        """Storage ratio float32 / quantized (≈ 32 / bits)."""
        if self.quant_bytes == 0:
            raise ValueError("nothing was quantized")
        return self.float_bytes / self.quant_bytes


def quantize_model(model: Module, bits: int = 8,
                   per_channel: bool = True) -> QuantizationReport:
    """Fake-quantize every conv/linear weight in place.

    Biases and batch-norm parameters stay in float32 (their storage is
    negligible and standard practice keeps them high-precision).
    """
    report = QuantizationReport(bits=bits, per_channel=per_channel)
    for path, module in model.named_modules():
        if not isinstance(module, (Conv2d, Linear)):
            continue
        w = module.weight.data
        q, scale = quantize_array(w, bits, per_channel=per_channel)
        module.weight.data = dequantize_array(q, scale)
        report.layers.append(path)
        report.float_bytes += w.size * 4
        report.quant_bytes += (w.size * bits + 7) // 8 + scale.size * 4
    if not report.layers:
        raise ValueError("model contains no quantizable layers")
    return report


def model_size_bytes(model: Module, bits: int = 32) -> int:
    """Storage of all trainable parameters at the given weight width.

    Non-conv/linear parameters (BN affines) are always counted at 32 bits.
    """
    total = 0
    quantizable = set()
    for path, module in model.named_modules():
        if isinstance(module, (Conv2d, Linear)):
            quantizable.add(id(module.weight))
    for p in model.parameters():
        width = bits if id(p) in quantizable else 32
        total += (p.size * width + 7) // 8
    return total
