"""Append-only, checksummed run journal and the run-directory layout.

A journaled framework run writes one JSON line per state-machine event
(``run_start``, ``iteration``, ``rollback``, ``sentinel_abort``,
``resume``, ``run_end``). Each line carries a CRC of its canonical JSON
encoding, so a crash mid-write (a truncated or garbled tail) is detected
and the journal is readable up to the last complete record — exactly the
property resuming needs.

Numpy arrays inside payloads are encoded losslessly (base64 of the raw
bytes plus dtype/shape), so an :class:`~repro.core.ImportanceReport`
reconstructed from the journal is *bit-identical* to the in-memory one.
"""

from __future__ import annotations

import base64
import json
import os
import zlib
from pathlib import Path

import numpy as np

__all__ = ["JournalCorruptError", "RunJournal", "RunDirectory",
           "encode_payload", "decode_payload"]

_ARRAY_TAG = "__ndarray__"


class JournalCorruptError(RuntimeError):
    """A journal line failed its CRC or could not be parsed."""


# ----------------------------------------------------------------------
# Lossless JSON encoding of numpy-bearing payloads
# ----------------------------------------------------------------------
def encode_payload(value):
    """Recursively convert a payload into JSON-serialisable form.

    Arrays become ``{"__ndarray__": <base64>, "dtype": ..., "shape": ...}``
    (raw little-endian bytes, so the round trip is bit-exact); numpy
    scalars collapse to Python numbers; dicts/lists/tuples recurse.
    """
    if isinstance(value, np.ndarray):
        contiguous = np.ascontiguousarray(value)
        return {_ARRAY_TAG: base64.b64encode(contiguous.tobytes()).decode("ascii"),
                "dtype": contiguous.dtype.str,
                "shape": list(contiguous.shape)}
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, dict):
        return {str(k): encode_payload(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_payload(v) for v in value]
    return value


def decode_payload(value):
    """Inverse of :func:`encode_payload`."""
    if isinstance(value, dict):
        if _ARRAY_TAG in value:
            raw = base64.b64decode(value[_ARRAY_TAG])
            array = np.frombuffer(raw, dtype=np.dtype(value["dtype"]))
            return array.reshape(value["shape"]).copy()
        return {k: decode_payload(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_payload(v) for v in value]
    return value


# ----------------------------------------------------------------------
# The journal proper
# ----------------------------------------------------------------------
def _canonical(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class RunJournal:
    """Append-only JSONL journal with per-record CRC framing.

    Every line has the shape ``{"crc": <crc32>, "record": {...}}`` where
    the CRC covers the canonical encoding of ``record``. Reading tolerates
    a corrupt or truncated *tail* (the expected crash artefact): records
    up to the first bad line are returned and the rest are dropped.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.records: list[dict] = []
        self.truncated = False
        if self.path.exists():
            self.records, self.truncated = self._read(self.path)

    # ------------------------------------------------------------------
    @staticmethod
    def _read(path: Path) -> tuple[list[dict], bool]:
        records: list[dict] = []
        truncated = False
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    framed = json.loads(line)
                    record = framed["record"]
                    if zlib.crc32(_canonical(record).encode("utf-8")) != framed["crc"]:
                        raise JournalCorruptError("CRC mismatch")
                except (json.JSONDecodeError, KeyError, TypeError,
                        JournalCorruptError):
                    # A bad line invalidates everything after it: later
                    # records may describe state built on the lost one.
                    truncated = True
                    break
                records.append(record)
        return records, truncated

    @classmethod
    def read(cls, path: str | Path, strict: bool = False) -> list[dict]:
        """Read all valid records; ``strict`` raises on any bad line."""
        records, truncated = cls._read(Path(path))
        if strict and truncated:
            raise JournalCorruptError(
                f"{path}: corrupt or truncated journal line "
                f"after record {len(records) - 1}")
        return records

    # ------------------------------------------------------------------
    def append(self, event: str, **payload) -> dict:
        """Durably append one event record and return it."""
        record = {"seq": len(self.records), "event": event}
        record.update(encode_payload(payload))
        body = _canonical(record)
        line = json.dumps(
            {"crc": zlib.crc32(body.encode("utf-8")), "record": record},
            sort_keys=True, separators=(",", ":"))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self.records.append(record)
        return record

    def events(self, name: str) -> list[dict]:
        """All records of one event type, in append order."""
        return [r for r in self.records if r.get("event") == name]

    def last_event(self, name: str) -> dict | None:
        found = self.events(name)
        return found[-1] if found else None


class RunDirectory:
    """Filesystem layout of one journaled framework run.

    ::

        <run_dir>/
            journal.jsonl
            checkpoints/baseline.npz
            checkpoints/iter_0000.npz
            ...
            checkpoints/final.npz
    """

    JOURNAL_NAME = "journal.jsonl"

    def __init__(self, path: str | Path, create: bool = True):
        self.path = Path(path)
        if create:
            (self.path / "checkpoints").mkdir(parents=True, exist_ok=True)
        elif not self.path.is_dir():
            raise FileNotFoundError(f"run directory {self.path} does not exist")
        self.journal = RunJournal(self.path / self.JOURNAL_NAME)

    def checkpoint_path(self, tag: str) -> Path:
        return self.path / "checkpoints" / f"{tag}.npz"

    @staticmethod
    def iteration_tag(iteration: int) -> str:
        return f"iter_{iteration:04d}"
