"""Transactional model mutation: snapshot, rollback, and the guard.

Filter surgery (:func:`repro.core.prune_groups`) rewrites the parameter
arrays, batch-norm buffers and channel-count attributes of many modules
in sequence. An exception thrown halfway — a consumer of the wrong layer
type, an I/O error inside a hook, an injected chaos fault — would leave
the network half-pruned: producer shrunk, consumers still full width,
forward passes broken. :func:`transactional` makes the whole mutation
all-or-nothing.

The snapshot is *structural*, not a ``deepcopy``: it captures, per module,
copies of every parameter array, every registered buffer, and every
scalar/tuple attribute (channel counts, strides, …). Restoring writes the
saved arrays back into the **same** :class:`~repro.tensor.Tensor` objects,
so optimisers that hold references to the parameters keep working after a
rollback.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

import numpy as np

from ..nn import Module

__all__ = ["ModelSnapshot", "transactional"]

_SCALAR_TYPES = (bool, int, float, str, tuple)


@dataclass
class _ModuleState:
    params: dict[str, np.ndarray]
    buffers: dict[str, np.ndarray]
    attrs: dict[str, object]


class ModelSnapshot:
    """Point-in-time capture of a model's arrays, buffers and shape attrs.

    Unlike :meth:`Module.state_dict`, restoring works even after the
    parameter *shapes* changed (that is its purpose): each saved array is
    assigned back to the live tensor's ``data``, and channel-count
    attributes (``out_channels``, ``num_features``, …) revert with it.
    """

    def __init__(self, model: Module):
        self._modules: dict[str, _ModuleState] = {}
        for name, module in model.named_modules():
            self._modules[name] = _ModuleState(
                params={n: p.data.copy()
                        for n, p in module._parameters.items()},
                buffers={n: np.array(getattr(module, n), copy=True)
                         for n in module._buffers},
                attrs={k: v for k, v in vars(module).items()
                       if isinstance(v, _SCALAR_TYPES)},
            )

    def restore(self, model: Module) -> None:
        """Write the captured state back into ``model`` (same tree shape)."""
        for name, module in model.named_modules():
            saved = self._modules.get(name)
            if saved is None:
                continue
            for pname, param in module._parameters.items():
                if pname in saved.params:
                    param.data = saved.params[pname].copy()
                    param.zero_grad()
            for bname in module._buffers:
                if bname in saved.buffers:
                    object.__setattr__(module, bname,
                                       saved.buffers[bname].copy())
            for aname, value in saved.attrs.items():
                object.__setattr__(module, aname, value)

    def matches(self, model: Module) -> bool:
        """True when the model's arrays equal the snapshot bit-for-bit."""
        for name, module in model.named_modules():
            saved = self._modules.get(name)
            if saved is None:
                return False
            for pname, param in module._parameters.items():
                ref = saved.params.get(pname)
                if ref is None or ref.shape != param.data.shape \
                        or not np.array_equal(ref, param.data):
                    return False
            for bname in module._buffers:
                ref = saved.buffers.get(bname)
                live = np.asarray(getattr(module, bname))
                if ref is None or ref.shape != live.shape \
                        or not np.array_equal(ref, live):
                    return False
        return True


@contextlib.contextmanager
def transactional(model: Module):
    """Roll the model back to its entry state if the body raises.

    >>> with transactional(model):
    ...     mutate_many_modules(model)   # any exception -> full rollback

    The original exception propagates unchanged after the rollback, so
    callers still see *why* the mutation failed.
    """
    snapshot = ModelSnapshot(model)
    try:
        yield snapshot
    except BaseException:
        snapshot.restore(model)
        raise
