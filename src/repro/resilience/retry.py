"""Bounded retries: backoff policies and the flaky-dataset wrapper.

Real systems fail transiently — a network filesystem hiccup, an evicted
cache shard, a worker process killed by the OOM killer. A single fault
should not kill an hours-long prune/fine-tune run, but an *unbounded*
retry loop would hang it forever on a persistent failure. Two tools
bound that trade-off:

* :class:`RetryPolicy` — a deterministic exponential-backoff schedule
  (bounded attempts, multiplicative growth, seeded jitter) used by the
  :mod:`repro.parallel.supervisor` to pace worker respawns and by
  :meth:`RetryPolicy.call` to wrap arbitrary flaky callables;
* :class:`RetryingDataset` — a dataset view that retries transient
  ``__getitem__`` failures and then raises
  :class:`DataUnavailableError` naming the item and the attempt count
  (enabled by ``FrameworkConfig.loader_retries``).

Jitter is *deterministic*: attempt ``k`` of a policy seeded ``s`` always
draws the same jitter fraction, so retried runs stay reproducible and the
supervisor's recovery timeline can be replayed from its journal.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..data import Dataset

__all__ = ["DataUnavailableError", "RetryBudgetExhausted", "RetryPolicy",
           "RetryingDataset"]


class DataUnavailableError(RuntimeError):
    """An item stayed unreadable after exhausting the retry budget."""


class RetryBudgetExhausted(RuntimeError):
    """A retried operation kept failing after its final attempt.

    ``__cause__`` carries the last underlying exception; ``attempts``
    records how many times the operation ran.
    """

    def __init__(self, message: str, attempts: int):
        super().__init__(message)
        self.attempts = attempts


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic bounded exponential backoff.

    Attributes
    ----------
    max_attempts:
        Total tries, including the first one (``max_attempts=3`` means
        one initial attempt plus up to two retries). Must be >= 1.
    base_delay:
        Seconds to wait before the first retry.
    factor:
        Multiplicative growth of the delay per retry.
    max_delay:
        Hard cap on any single delay.
    jitter:
        Fraction of the (capped) delay added as seeded noise in
        ``[0, jitter]`` — staggers simultaneous respawns without
        sacrificing reproducibility.
    seed:
        Jitter seed. A fixed ``(seed, attempt)`` pair always produces the
        same delay, so the whole schedule is a pure function of the
        policy.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    factor: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1 (delays must not shrink)")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")

    # ------------------------------------------------------------------
    def delay(self, attempt: int) -> float:
        """Seconds to sleep before retry number ``attempt`` (0-based).

        Deterministic: the jitter for attempt ``k`` is drawn from an rng
        seeded with ``(seed, k)``, never from global state.
        """
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        raw = min(self.base_delay * self.factor ** attempt, self.max_delay)
        if self.jitter == 0 or raw == 0:
            return raw
        fraction = float(np.random.default_rng((self.seed, attempt)).random())
        return raw * (1.0 + self.jitter * fraction)

    def delays(self) -> list[float]:
        """The full backoff schedule (one entry per possible retry)."""
        return [self.delay(k) for k in range(self.max_attempts - 1)]

    # ------------------------------------------------------------------
    def call(self, fn: Callable, *args,
             retry_on: tuple[type[BaseException], ...] = (Exception,),
             on_retry: Callable[[int, BaseException], None] | None = None,
             sleep: Callable[[float], None] = time.sleep, **kwargs):
        """Run ``fn(*args, **kwargs)`` under this policy.

        Only exceptions matching ``retry_on`` are retried; anything else
        propagates immediately (a programming error must not be masked by
        backoff). ``on_retry(attempt, exc)`` fires before each sleep.
        After the final attempt fails, :class:`RetryBudgetExhausted` is
        raised from the last exception.
        """
        last: BaseException | None = None
        for attempt in range(self.max_attempts):
            try:
                return fn(*args, **kwargs)
            except retry_on as exc:
                last = exc
                if on_retry is not None:
                    on_retry(attempt, exc)
                if attempt + 1 < self.max_attempts:
                    sleep(self.delay(attempt))
        raise RetryBudgetExhausted(
            f"{getattr(fn, '__name__', fn)!r} still failing after "
            f"{self.max_attempts} attempts: {last}",
            attempts=self.max_attempts) from last


class RetryingDataset(Dataset):
    """Dataset view that retries transient ``__getitem__`` failures.

    Parameters
    ----------
    dataset:
        The possibly-flaky source.
    max_retries:
        Additional attempts after the first failure; ``max_retries=3``
        means up to 4 reads per item.
    on_retry:
        Optional callback ``(index, attempt, exception)`` invoked on every
        failed attempt (logging/metrics hook).
    """

    def __init__(self, dataset: Dataset, max_retries: int = 3,
                 on_retry: Callable[[int, int, Exception], None] | None = None):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.dataset = dataset
        self.max_retries = max_retries
        self.on_retry = on_retry
        self.retried = 0  # total failed attempts that were retried

    def __len__(self) -> int:
        return len(self.dataset)

    def __getitem__(self, index: int) -> tuple[np.ndarray, int]:
        last: Exception | None = None
        for attempt in range(self.max_retries + 1):
            try:
                return self.dataset[index]
            except Exception as exc:  # noqa: BLE001 - retry any read fault
                last = exc
                if self.on_retry is not None:
                    self.on_retry(index, attempt, exc)
                if attempt < self.max_retries:
                    self.retried += 1
        raise DataUnavailableError(
            f"item {index} unreadable after {self.max_retries + 1} attempts: "
            f"{last}") from last

    @property
    def labels(self) -> np.ndarray:
        return self.dataset.labels
