"""Bounded-retry wrapper for flaky datasets.

Real training feeds from storage that fails transiently — a network
filesystem hiccup, an evicted cache shard, a racing writer. A single
failed ``__getitem__`` should not kill an hours-long prune/fine-tune run,
but an *unbounded* retry loop would hang it forever on a persistent
failure; this wrapper retries a bounded number of times and then raises a
:class:`DataUnavailableError` that names the item and the attempt count.

The framework enables it via ``FrameworkConfig.loader_retries``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..data import Dataset

__all__ = ["DataUnavailableError", "RetryingDataset"]


class DataUnavailableError(RuntimeError):
    """An item stayed unreadable after exhausting the retry budget."""


class RetryingDataset(Dataset):
    """Dataset view that retries transient ``__getitem__`` failures.

    Parameters
    ----------
    dataset:
        The possibly-flaky source.
    max_retries:
        Additional attempts after the first failure; ``max_retries=3``
        means up to 4 reads per item.
    on_retry:
        Optional callback ``(index, attempt, exception)`` invoked on every
        failed attempt (logging/metrics hook).
    """

    def __init__(self, dataset: Dataset, max_retries: int = 3,
                 on_retry: Callable[[int, int, Exception], None] | None = None):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.dataset = dataset
        self.max_retries = max_retries
        self.on_retry = on_retry
        self.retried = 0  # total failed attempts that were retried

    def __len__(self) -> int:
        return len(self.dataset)

    def __getitem__(self, index: int) -> tuple[np.ndarray, int]:
        last: Exception | None = None
        for attempt in range(self.max_retries + 1):
            try:
                return self.dataset[index]
            except Exception as exc:  # noqa: BLE001 - retry any read fault
                last = exc
                if self.on_retry is not None:
                    self.on_retry(index, attempt, exc)
                if attempt < self.max_retries:
                    self.retried += 1
        raise DataUnavailableError(
            f"item {index} unreadable after {self.max_retries + 1} attempts: "
            f"{last}") from last

    @property
    def labels(self) -> np.ndarray:
        return self.dataset.labels
