"""Resilience drills for ``python -m repro.verify``.

Each drill plants one fault from :mod:`repro.resilience.chaos` and asserts
the matching recovery path actually recovers:

* ``surgery.rollback`` — a consumer raises mid-surgery; the model must come
  back bit-identical and still run forward;
* ``checkpoint.tamper`` — bit-flipped and truncated checkpoints must load
  as :class:`~repro.io.CheckpointCorruptError`, never as silent garbage;
* ``sentinel.recovery`` — a transient NaN activation during training must
  be rewound, leaving finite weights and a recorded sentinel event;
* ``loader.retry`` — a flaky dataset behind the bounded-retry wrapper must
  feed a full epoch;
* ``worker.crash`` — a worker process killed mid-task must surface as a
  clean :class:`~repro.parallel.ParallelExecutionError` in the parent,
  and a fresh pool must work afterwards;
* ``worker.respawn`` — a scoring worker SIGKILLed mid-task under the
  *supervised* pool must be respawned and the importance report must come
  out bit-identical to the fault-free run, without degrading;
* ``worker.hang`` — a hung worker (and a SIGSTOPped one) must be caught
  by the task deadline / heartbeat staleness, killed and replaced;
* ``worker.degrade`` — a poison task that kills every host must drain the
  retry budget and finish *serially* (``degraded`` set, results intact);
* ``worker.bucket`` — a sharded-training worker SIGKILLed *between two
  gradient-bucket publications of one step* must be respawned, the
  supervised re-dispatch must recompute the in-flight step, and the
  final weights must come out bit-identical to the fault-free run (the
  seqlock words keep the half-published buckets invisible);
* ``shm.reaper`` — a shared-memory segment orphaned by a dead process
  must be reclaimed by the next startup sweep;
* ``quant.deploy`` / ``quant.corrupt`` — the int8 deployable: a
  quantized plan artifact must swap in through the serve validation
  gate and come back bit-identical from a warm restart, and an artifact
  with a corrupted scale must be rejected while the old version keeps
  serving (see :mod:`repro.qinfer.drills`);
* ``serve.shed`` / ``serve.swap`` / ``serve.drain`` / ``serve.restart``
  — the serving layer under 2× overload must shed explicitly and fast
  without dropping accepted requests; a mid-traffic checkpoint hot-swap
  must complete with zero drops; a graceful drain must answer every
  accepted request and reject new ones explicitly; and a warm restart
  from the deploy manifest must re-validate every version, skipping
  corrupted ones with a report (see :mod:`repro.serve.drills`);
* ``crash.resume`` (skipped with ``--quick``) — a framework run killed
  after its first committed iteration must resume to a bit-identical final
  state.

This module imports ``repro.core`` and is therefore *not* re-exported by
the :mod:`repro.resilience` package ``__init__`` (which core imports); the
verify runner pulls it in lazily.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core import (ClassAwarePruningFramework, FrameworkConfig,
                    ImportanceConfig, Trainer, TrainingConfig)
from ..core.surgery import prune_groups
from ..data import DataLoader, make_cifar_like
from ..io import CheckpointCorruptError, load_model, save_model
from ..models import build_model
from ..tensor import Tensor
from .chaos import (ChaosError, FlakyDataset, SimulatedCrash,
                    corrupt_checkpoint, plant_numerical_fault,
                    sabotage_method)
from .retry import RetryingDataset
from .sentinels import SentinelConfig
from .transaction import ModelSnapshot

__all__ = ["DrillResult", "run_drills"]


@dataclass
class DrillResult:
    """One drill's outcome, shaped for the verify runner's report table."""

    name: str
    passed: bool = True
    seconds: float = 0.0
    detail: str = ""
    failures: list[str] = field(default_factory=list)

    def fail(self, message: str) -> None:
        self.passed = False
        self.failures.append(message)


def _tiny_model(seed: int):
    return build_model("vgg11", num_classes=3, image_size=8, width=0.25,
                       seed=seed)


def _tiny_data(seed: int):
    return make_cifar_like(num_classes=3, image_size=8,
                           samples_per_class=12, seed=seed)


# ----------------------------------------------------------------------
def _drill_surgery_rollback(seed: int) -> DrillResult:
    result = DrillResult("surgery.rollback")
    model = _tiny_model(seed)
    groups = model.prunable_groups()
    reference = ModelSnapshot(model)
    probe = Tensor(np.random.default_rng(seed).normal(
        size=(2, 3, 8, 8)).astype(np.float32))
    model.eval()
    before = model(probe).data.copy()

    group = groups[0]
    keep = np.arange(model.get_module(group.conv).out_channels - 1)
    victim = model.get_module(group.consumers[0].path)
    method = ("select_input_channels")
    raised = False
    try:
        with sabotage_method(victim, method, after_calls=0):
            prune_groups(model, groups, {group.name: keep})
    except ChaosError:
        raised = True
    if not raised:
        result.fail("injected surgery fault did not raise")
    if not reference.matches(model):
        result.fail("model state changed after rolled-back surgery")
    after = model(probe).data
    if not np.array_equal(before, after):
        result.fail("forward pass differs after rolled-back surgery")
    result.detail = "mid-surgery fault rolled back"
    return result


def _drill_checkpoint_tamper(seed: int) -> DrillResult:
    result = DrillResult("checkpoint.tamper")
    model = _tiny_model(seed)
    with tempfile.TemporaryDirectory() as tmp:
        for mode in ("flip", "truncate"):
            path = Path(tmp) / f"{mode}.npz"
            save_model(model, path)
            load_model(path)  # must be valid before the tampering
            corrupt_checkpoint(path, mode=mode, seed=seed)
            try:
                load_model(path)
            except CheckpointCorruptError:
                continue
            except Exception as exc:  # noqa: BLE001 - report wrong type
                result.fail(f"{mode}: raised {type(exc).__name__}, expected "
                            "CheckpointCorruptError")
            else:
                result.fail(f"{mode}: corrupt checkpoint loaded silently")
    result.detail = "flip+truncate both detected"
    return result


def _drill_sentinel_recovery(seed: int) -> DrillResult:
    result = DrillResult("sentinel.recovery")
    model = _tiny_model(seed)
    train, test = _tiny_data(seed)
    trainer = Trainer(model, train, None,
                      TrainingConfig(epochs=2, batch_size=16, lr=0.05,
                                     seed=seed),
                      sentinel=SentinelConfig(max_retries=3))
    handle = plant_numerical_fault(model.get_module("features.0"),
                                   at_call=1, mode="activation")
    try:
        history = trainer.train(epochs=2)
    finally:
        handle.remove()
    if not history.sentinel_events:
        result.fail("planted NaN produced no sentinel event")
    elif history.sentinel_events[0].action != "rewind":
        result.fail(f"expected rewind, got "
                    f"{history.sentinel_events[0].action!r}")
    if len(history.epochs) != 2:
        result.fail(f"training did not complete: {len(history.epochs)}/2 "
                    "epochs")
    for name, param in model.named_parameters():
        if not np.all(np.isfinite(param.data)):
            result.fail(f"non-finite weights in {name!r} after recovery")
            break
    result.detail = "NaN rewound, run completed"
    return result


def _drill_loader_retry(seed: int) -> DrillResult:
    result = DrillResult("loader.retry")
    train, _ = _tiny_data(seed)
    flaky = RetryingDataset(FlakyDataset(train, failures=2), max_retries=2)
    loader = DataLoader(flaky, batch_size=16, shuffle=True, seed=seed)
    total = sum(len(labels) for _, labels in loader)
    if total != len(train):
        result.fail(f"epoch yielded {total}/{len(train)} samples")
    if flaky.retried == 0:
        result.fail("retry wrapper never retried — fault not exercised")
    result.detail = f"{flaky.retried} transient faults absorbed"
    return result


def _drill_worker_crash(seed: int) -> DrillResult:
    result = DrillResult("worker.crash")
    from ..parallel import (CRASH_TASK, EchoService, ParallelExecutionError,
                            WorkerPool)
    pool = WorkerPool(2, EchoService, ("drill",))
    try:
        try:
            pool.run_tasks(["before", CRASH_TASK, "after"])
        except ParallelExecutionError:
            pass
        else:
            result.fail("killed worker did not raise ParallelExecutionError")
    finally:
        pool.close()
    with WorkerPool(2, EchoService, ("drill",)) as fresh:
        echoed = fresh.run_tasks(["x", "y"])
        if echoed != [("drill", "x"), ("drill", "y")]:
            result.fail(f"fresh pool after the crash returned {echoed!r}")
    result.detail = "crash detected, fresh pool unaffected"
    return result


def _drill_worker_respawn(seed: int) -> DrillResult:
    result = DrillResult("worker.respawn")
    from ..core.importance import ImportanceEvaluator
    from ..parallel import SupervisionConfig
    from ..parallel.scoring import ScoringService
    from .chaos import worker_fault

    model = _tiny_model(seed)
    train, _ = _tiny_data(seed)
    cfg = ImportanceConfig(images_per_class=3)
    groups = [g.conv for g in model.prunable_groups()]

    with ImportanceEvaluator(model, train, 3, cfg, workers=2) as evaluator:
        clean = evaluator.evaluate(groups)

    # task_deadline below the default 120s: on an oversubscribed CI host a
    # respawned worker can miss its start-up deadline, and the drill must
    # not stall a full default deadline before supervision recovers.
    supervision = SupervisionConfig(poll_seconds=0.02, heartbeat_seconds=0.05,
                                    respawn_delay=0.01, respawn_jitter=0.0,
                                    task_deadline_seconds=30.0)
    events = []
    with worker_fault(ScoringService, mode="kill", at_call=0) as marker:
        with ImportanceEvaluator(model, train, 3, cfg, workers=2,
                                 supervision=supervision,
                                 on_worker_event=events.append) as evaluator:
            faulted = evaluator.evaluate(groups)
            degraded = evaluator.degraded
    if not marker.exists():
        result.fail("SIGKILL fault never fired in any worker")
    marker.unlink(missing_ok=True)
    if degraded:
        result.fail("pool degraded on a single transient kill")
    kinds = {e.kind for e in events}
    if "respawn" not in kinds:
        result.fail(f"no respawn event recorded (saw {sorted(kinds)})")
    for path in clean.total:
        if not np.array_equal(clean.total[path], faulted.total[path]):
            result.fail(f"scores differ at {path!r} after kill+respawn")
            break
    from ..parallel import reaper
    if reaper.live_segments():
        result.fail(f"orphaned shm segments: {reaper.live_segments()}")
    result.detail = "kill -9 mid-task healed, report bit-identical"
    return result


def _drill_worker_hang(seed: int) -> DrillResult:
    result = DrillResult("worker.hang")
    from ..parallel import EchoService, SupervisedWorkerPool, SupervisionConfig
    from .chaos import worker_fault

    for mode, knob in (("hang", dict(task_deadline_seconds=1.0)),
                       ("freeze", dict(stale_after_seconds=0.6,
                                       task_deadline_seconds=30.0))):
        supervision = SupervisionConfig(poll_seconds=0.02,
                                        heartbeat_seconds=0.05,
                                        respawn_delay=0.01,
                                        respawn_jitter=0.0, **knob)
        with worker_fault(EchoService, mode=mode) as marker:
            with SupervisedWorkerPool(2, EchoService, ("drill",),
                                      supervision=supervision) as pool:
                out = pool.run_tasks(["a", "b", "c", "d"])
                if pool.degraded:
                    result.fail(f"{mode}: degraded on one transient fault")
                kinds = {e.kind for e in pool.events}
        if not marker.exists():
            result.fail(f"{mode} fault never fired")
        marker.unlink(missing_ok=True)
        if out != [("drill", t) for t in ("a", "b", "c", "d")]:
            result.fail(f"{mode}: wrong results {out!r}")
        if "respawn" not in kinds:
            result.fail(f"{mode}: no respawn event (saw {sorted(kinds)})")
    result.detail = "hang + freeze both detected and healed"
    return result


def _drill_worker_degrade(seed: int) -> DrillResult:
    result = DrillResult("worker.degrade")
    from ..parallel import (CRASH_TASK, EchoService, SupervisedWorkerPool,
                            SupervisionConfig)
    supervision = SupervisionConfig(poll_seconds=0.02, heartbeat_seconds=0.05,
                                    respawn_delay=0.01, respawn_jitter=0.0,
                                    max_respawns=2, max_task_retries=1,
                                    task_deadline_seconds=30.0)
    with SupervisedWorkerPool(2, EchoService, ("drill",),
                              supervision=supervision) as pool:
        out = pool.run_tasks(["a", CRASH_TASK, "b", "c"])
        if not pool.degraded:
            result.fail("poison task did not degrade the pool")
        expected = [("drill", t) for t in ("a", CRASH_TASK, "b", "c")]
        if out != expected:
            result.fail(f"degraded run returned {out!r}")
        # A degraded pool must stay usable (serially) for the rest of
        # the run instead of failing every later batch.
        again = pool.run_tasks(["d", "e"])
        if again != [("drill", "d"), ("drill", "e")]:
            result.fail(f"post-degrade serial execution returned {again!r}")
    result.detail = "budget exhausted -> completed serially"
    return result


def _drill_worker_bucket(seed: int) -> DrillResult:
    result = DrillResult("worker.bucket")
    from ..parallel import SupervisionConfig
    from ..parallel.shard import TrainingService
    from .chaos import worker_fault

    train, _ = _tiny_data(seed)
    cfg = TrainingConfig(epochs=1, batch_size=16, lr=0.05, seed=seed,
                         workers=2, grad_bucket_kb=2)

    clean = _tiny_model(seed)
    trainer = Trainer(clean, train, None, cfg)
    try:
        trainer.train(epochs=1)
    finally:
        trainer.close()

    supervision = SupervisionConfig(poll_seconds=0.02, heartbeat_seconds=0.05,
                                    respawn_delay=0.01, respawn_jitter=0.0,
                                    task_deadline_seconds=30.0)
    events = []
    faulted = _tiny_model(seed)
    # The kill lands inside backward, after the second bucket of the step
    # was sealed and mid-publication of the third: the parent may already
    # have reduced the sealed buckets when the worker dies.
    with worker_fault(TrainingService, mode="kill", at_call=2,
                      method="_publish_bucket") as marker:
        trainer = Trainer(faulted, train, None, cfg,
                          supervision=supervision,
                          on_worker_event=events.append)
        try:
            trainer.train(epochs=1)
            degraded = trainer.degraded
        finally:
            trainer.close()
    if not marker.exists():
        result.fail("mid-publish SIGKILL never fired in any worker")
    marker.unlink(missing_ok=True)
    if degraded:
        result.fail("pool degraded on a single transient kill")
    kinds = {e.kind for e in events}
    if "respawn" not in kinds:
        result.fail(f"no respawn event recorded (saw {sorted(kinds)})")
    ref = clean.state_dict()
    for key, value in faulted.state_dict().items():
        if not np.array_equal(value, ref[key]):
            result.fail(f"weights differ at {key!r} after kill+respawn")
            break
    from ..parallel import reaper
    if reaper.live_segments():
        result.fail(f"orphaned shm segments: {reaper.live_segments()}")
    result.detail = "kill -9 mid-bucket-publish healed, weights bit-identical"
    return result


def _drill_shm_reaper(seed: int) -> DrillResult:
    result = DrillResult("shm.reaper")
    import multiprocessing as mp
    import os

    from multiprocessing import shared_memory

    from ..parallel import reaper
    from ..parallel.shm import SharedArrayBundle

    ctx = mp.get_context("fork")
    queue = ctx.Queue()

    def orphan(queue):
        from multiprocessing import resource_tracker
        bundle = SharedArrayBundle.create({"x": np.ones(8, np.float32)})
        # Model the fault the ledger exists for: kill -9 of the whole
        # process group takes the stdlib resource tracker down with the
        # owner, so nobody unlinks. (A lone SIGKILL is already covered by
        # the tracker; untracking here keeps it from racing the sweep.)
        resource_tracker.unregister("/" + bundle.spec.name, "shared_memory")
        queue.put(bundle.spec.name)
        queue.close()
        queue.join_thread()
        os._exit(0)

    child = ctx.Process(target=orphan, args=(queue,))
    child.start()
    name = queue.get(timeout=10)
    child.join(timeout=10)
    ledger = reaper.ledger_dir() / f"{child.pid}.json"
    if not ledger.exists():
        result.fail(f"orphan ledger {ledger} was not written")
    reaper.sweep_orphans()
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        pass                  # reclaimed, as required
    else:
        segment.close()
        result.fail(f"segment {name!r} survived the orphan sweep")
    if ledger.exists():
        result.fail(f"dead pid's ledger {ledger} survived the sweep")
    result.detail = "orphaned segment reclaimed at startup sweep"
    return result


def _drill_crash_resume(seed: int) -> DrillResult:
    result = DrillResult("crash.resume")

    def framework(run_dir=None):
        model = _tiny_model(seed)
        train, test = _tiny_data(seed)
        return ClassAwarePruningFramework(
            model, train, test, num_classes=3, input_shape=(3, 8, 8),
            config=FrameworkConfig(
                score_threshold=1.0, max_fraction_per_iteration=0.2,
                finetune_epochs=1, accuracy_drop_tolerance=0.5,
                max_iterations=2,
                importance=ImportanceConfig(images_per_class=3)),
            training=TrainingConfig(epochs=1, batch_size=32, lr=0.05,
                                    seed=seed))

    with tempfile.TemporaryDirectory() as tmp:
        straight = framework()
        reference = straight.run(run_dir=Path(tmp) / "reference")

        crashed = framework()
        run_dir = Path(tmp) / "crashed"

        def crash(iteration: int):
            raise SimulatedCrash(f"killed after iteration {iteration}")

        try:
            crashed.run(run_dir=run_dir, post_iteration=crash)
        except SimulatedCrash:
            pass
        else:
            result.fail("simulated crash did not propagate")
            return result

        resumed_fw = framework()
        resumed = resumed_fw.run(resume_from=run_dir)

        if resumed.stop_reason != reference.stop_reason:
            result.fail(f"stop_reason {resumed.stop_reason!r} != "
                        f"{reference.stop_reason!r}")
        if len(resumed.iterations) != len(reference.iterations):
            result.fail(f"{len(resumed.iterations)} iterations != "
                        f"{len(reference.iterations)}")
        ref_state = reference.model.state_dict()
        res_state = resumed.model.state_dict()
        if sorted(ref_state) != sorted(res_state):
            result.fail("resumed model has different parameter names")
        else:
            for key in ref_state:
                if not np.array_equal(ref_state[key], res_state[key]):
                    result.fail(f"weights differ at {key!r} after resume")
                    break
    result.detail = "kill -> resume bit-identical"
    return result


# ----------------------------------------------------------------------
def run_drills(seed: int = 0, quick: bool = False,
               only: str | None = None) -> list[DrillResult]:
    """Run the battery; ``quick`` skips the (slower) crash-resume drill.

    ``only`` filters by substring of the drill name (e.g. ``"worker"``
    selects the whole worker-fault battery) — the CI supervision job uses
    it to run exactly the supervisor drills under a wall-clock guard.
    """
    # Serving drills live next to the serving layer; imported lazily so
    # this module stays importable without pulling repro.serve (and its
    # compiled-engine stack) until the battery actually runs.
    from ..qinfer.drills import QUANT_DRILLS
    from ..serve.drills import SERVE_DRILLS
    drills = [_drill_surgery_rollback, _drill_checkpoint_tamper,
              _drill_sentinel_recovery, _drill_loader_retry,
              _drill_worker_crash, _drill_worker_respawn,
              _drill_worker_hang, _drill_worker_degrade,
              _drill_worker_bucket,
              _drill_shm_reaper, *QUANT_DRILLS, *SERVE_DRILLS]
    if not quick:
        drills.append(_drill_crash_resume)
    if only:
        drills = [d for d in drills
                  if only in d.__name__.replace("_drill_", "")
                  .replace("_", ".")]
    results = []
    for drill in drills:
        start = time.perf_counter()
        try:
            outcome = drill(seed)
        except Exception as exc:  # noqa: BLE001 - a drill crash is a failure
            outcome = DrillResult(drill.__name__.replace("_drill_", "")
                                  .replace("_", "."))
            outcome.fail(f"drill crashed: {type(exc).__name__}: {exc}")
        outcome.seconds = time.perf_counter() - start
        results.append(outcome)
    return results
