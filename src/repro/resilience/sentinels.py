"""Numerical-health sentinels for the training loop.

Hours-long fine-tuning can fail numerically long before it fails loudly:
a single NaN in the loss or a gradient contaminates every weight at the
next optimiser step, and from then on every importance score and pruning
decision is garbage. The sentinels catch the contamination **between the
backward pass and the optimiser step**, so the poisoned update is never
applied, and the :class:`~repro.core.Trainer` rewinds to the last healthy
weights with a learning-rate backoff and a bounded retry budget.

This module is deliberately free of ``repro.core`` imports; the trainer
pulls the monitor in, not the other way around.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from ..tensor import Tensor

__all__ = ["SentinelConfig", "SentinelEvent", "HealthMonitor",
           "NumericalHealthError"]


@dataclass(frozen=True)
class SentinelConfig:
    """Policy knobs of the numerical-health watchdog.

    Attributes
    ----------
    check_loss:
        Flag NaN/Inf losses per training step.
    check_gradients:
        Flag NaN/Inf parameter gradients per training step (checked after
        ``backward`` and before the optimiser step, so a poisoned update
        is never applied).
    explosion_factor:
        A finite loss larger than ``explosion_factor`` times the median of
        the recent healthy losses counts as a loss explosion. ``0``
        disables explosion detection.
    explosion_window:
        Number of recent healthy losses forming the explosion baseline;
        explosions are only flagged once the window holds at least
        ``explosion_window // 2`` samples, so early noisy steps don't trip
        the alarm.
    max_retries:
        How many rewind-and-retry attempts one training run may consume
        before it degrades: the trainer restores the last healthy weights
        and raises :class:`NumericalHealthError`.
    lr_backoff:
        Multiplier applied to the learning rate at every rewind.
    """

    check_loss: bool = True
    check_gradients: bool = True
    explosion_factor: float = 1e3
    explosion_window: int = 16
    max_retries: int = 2
    lr_backoff: float = 0.5

    def __post_init__(self):
        if self.explosion_factor < 0:
            raise ValueError("explosion_factor must be >= 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if not 0 < self.lr_backoff <= 1:
            raise ValueError("lr_backoff must be in (0, 1]")


@dataclass
class SentinelEvent:
    """One tripped sentinel: what, where, and what the trainer did."""

    kind: str            # "nan-loss" | "inf-loss" | "nan-grad" | "loss-explosion"
    epoch: int
    step: int
    detail: str
    action: str = ""     # filled by the trainer: "rewind" | "abort"

    def describe(self) -> str:
        action = f" -> {self.action}" if self.action else ""
        return (f"{self.kind} at epoch {self.epoch} step {self.step} "
                f"({self.detail}){action}")


class NumericalHealthError(RuntimeError):
    """Raised when the retry budget is exhausted.

    The trainer restores the last healthy weights *before* raising, so
    catching this error always leaves the model in the best recoverable
    state (the paper's termination rule: keep the last recoverable model).
    """

    def __init__(self, message: str, events: list[SentinelEvent] | None = None):
        super().__init__(message)
        self.events: list[SentinelEvent] = list(events or [])


@dataclass
class HealthMonitor:
    """Stateful per-run watchdog evaluating the :class:`SentinelConfig`.

    The monitor only *detects* and reports; rewinding and backoff are the
    trainer's job, so the detection logic stays trivially testable.
    """

    config: SentinelConfig
    _recent: deque = field(init=False)

    def __post_init__(self):
        self._recent = deque(maxlen=max(int(self.config.explosion_window), 1))

    def reset(self) -> None:
        """Forget the healthy-loss history (after a rewind)."""
        self._recent.clear()

    # ------------------------------------------------------------------
    def observe_loss(self, value: float, epoch: int,
                     step: int) -> SentinelEvent | None:
        """Inspect one step's loss; returns an event when unhealthy."""
        if not self.config.check_loss:
            return None
        if math.isnan(value):
            return SentinelEvent("nan-loss", epoch, step, "loss is NaN")
        if math.isinf(value):
            return SentinelEvent("inf-loss", epoch, step, "loss is Inf")
        if self.config.explosion_factor > 0 and \
                len(self._recent) >= max(self._recent.maxlen // 2, 2):
            baseline = float(np.median(self._recent))
            if baseline > 0 and value > self.config.explosion_factor * baseline:
                return SentinelEvent(
                    "loss-explosion", epoch, step,
                    f"loss {value:.4g} > {self.config.explosion_factor:g} x "
                    f"median recent loss {baseline:.4g}")
        self._recent.append(value)
        return None

    def observe_gradients(self, named_params: Iterable[tuple[str, Tensor]],
                          epoch: int, step: int) -> SentinelEvent | None:
        """Inspect parameter gradients after a backward pass."""
        if not self.config.check_gradients:
            return None
        for name, param in named_params:
            grad = param.grad
            if grad is not None and not np.all(np.isfinite(grad)):
                bad = int(np.size(grad) - np.count_nonzero(np.isfinite(grad)))
                return SentinelEvent(
                    "nan-grad", epoch, step,
                    f"{bad} non-finite gradient entries in {name!r}")
        return None
