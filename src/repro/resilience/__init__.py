"""Resilience subsystem: journaled runs, rollback, sentinels, chaos.

The paper's framework (Sec. III-D, Fig. 5) is an hours-long iterative
prune/fine-tune loop whose termination rule already demands restoring
"the last recoverable model". This package makes the whole loop survive
the failures that show up at that time scale:

* :mod:`repro.resilience.journal` — append-only, checksummed run journal
  plus the run-directory layout used by
  :meth:`~repro.core.ClassAwarePruningFramework.run` to make interrupted
  runs resumable (``resume_from=...`` / ``repro run --resume``);
* :mod:`repro.resilience.transaction` — structural model snapshots and the
  ``transactional`` guard that makes filter surgery all-or-nothing;
* :mod:`repro.resilience.sentinels` — per-step numerical-health checks
  (NaN/Inf loss, NaN gradients, loss explosion) with rewind + learning-rate
  backoff inside the :class:`~repro.core.Trainer`;
* :mod:`repro.resilience.retry` — deterministic backoff policies
  (:class:`RetryPolicy`, used by the worker-pool supervisor to pace
  respawns) and the bounded-retry dataset wrapper for flaky storage;
* :mod:`repro.resilience.chaos` — deterministic fault injection used by the
  tests and the ``python -m repro.verify`` resilience drills to prove every
  recovery path actually recovers.

:mod:`repro.resilience.drills` (the verify-runner battery) is imported
lazily by the runner to keep this package free of ``repro.core`` imports.
"""

from .chaos import (ChaosError, FlakyDataset, SimulatedCrash,
                    corrupt_checkpoint, plant_numerical_fault,
                    sabotage_method, scribble_shm, worker_fault)
from .journal import (JournalCorruptError, RunDirectory, RunJournal,
                      decode_payload, encode_payload)
from .retry import (DataUnavailableError, RetryBudgetExhausted, RetryPolicy,
                    RetryingDataset)
from .sentinels import (HealthMonitor, NumericalHealthError, SentinelConfig,
                        SentinelEvent)
from .transaction import ModelSnapshot, transactional

__all__ = [
    "RunJournal", "RunDirectory", "JournalCorruptError",
    "encode_payload", "decode_payload",
    "ModelSnapshot", "transactional",
    "SentinelConfig", "SentinelEvent", "HealthMonitor",
    "NumericalHealthError",
    "RetryingDataset", "DataUnavailableError",
    "RetryPolicy", "RetryBudgetExhausted",
    "ChaosError", "SimulatedCrash", "FlakyDataset",
    "plant_numerical_fault", "sabotage_method", "corrupt_checkpoint",
    "worker_fault", "scribble_shm",
]
