"""Deterministic fault injection (the chaos harness).

Every recovery path in this repo is *proven* by planting the fault it
recovers from:

* :func:`plant_numerical_fault` — NaN/Inf in an activation, NaN in the
  gradient stream, or a sudden activation blow-up, at an exact forward
  call — exercises the trainer sentinels;
* :func:`sabotage_method` — make a surgery method raise after N successful
  calls — exercises the transactional rollback;
* :func:`corrupt_checkpoint` — truncate or bit-flip checkpoint bytes —
  exercises tamper detection and resume fallback;
* :class:`FlakyDataset` — items fail the first K reads — exercises the
  bounded-retry loader.

All faults are deterministic (counters, not randomness), so the tests and
the ``python -m repro.verify`` drills are reproducible.
"""

from __future__ import annotations

import contextlib
import os
import signal
import tempfile
import time
import uuid
from pathlib import Path

import numpy as np

from ..data import Dataset
from ..nn import HookHandle, Module
from ..tensor import Tensor

__all__ = ["ChaosError", "SimulatedCrash", "plant_numerical_fault",
           "sabotage_method", "corrupt_checkpoint", "FlakyDataset",
           "worker_fault", "scribble_shm"]


class ChaosError(RuntimeError):
    """Base class of every injected fault."""


class SimulatedCrash(ChaosError):
    """Stand-in for process death (kill -9, OOM, power loss)."""


# ----------------------------------------------------------------------
# Numerical faults
# ----------------------------------------------------------------------
def _poison_gradient(out: Tensor, value: float) -> Tensor:
    """Identity in the forward pass; contaminates the backward stream."""
    def backward(grad: np.ndarray):
        poisoned = np.array(grad, copy=True)
        poisoned.flat[0] = value
        return (poisoned,)
    return Tensor._make(out.data, (out,), "chaos-grad-poison", backward)


def plant_numerical_fault(module: Module, at_call: int = 0,
                          mode: str = "activation",
                          value: float = np.nan) -> HookHandle:
    """Arm a one-shot numerical fault on a module's forward pass.

    Parameters
    ----------
    module:
        Layer to poison.
    at_call:
        Zero-based forward-call index at which the fault fires (exactly
        once; later calls are clean again — a *transient* fault).
    mode:
        ``"activation"`` writes ``value`` (default NaN) into the output
        tensor, so loss and gradients go non-finite;
        ``"gradient"`` leaves the forward clean and plants ``value`` into
        the gradient flowing back through the module — the loss stays
        finite, only the gradient sentinel can catch it;
        ``"scale"`` multiplies the output by ``value`` (pass e.g. ``1e6``)
        to provoke a finite loss explosion.
    """
    if mode not in ("activation", "gradient", "scale"):
        raise ValueError(f"unknown chaos mode {mode!r}")
    state = {"calls": 0}

    def hook(_module, _args, out):
        index = state["calls"]
        state["calls"] += 1
        if index != at_call:
            return None
        if mode == "activation":
            out.data.flat[0] = value
            return None
        if mode == "gradient":
            return _poison_gradient(out, value)
        return out * float(value)  # "scale"

    return module.register_forward_hook(hook)


# ----------------------------------------------------------------------
# Surgery faults
# ----------------------------------------------------------------------
@contextlib.contextmanager
def sabotage_method(module: Module, method: str, after_calls: int = 0,
                    error: type[Exception] = ChaosError):
    """Make ``module.<method>`` raise after ``after_calls`` successes.

    With ``after_calls=1`` on a consumer's surgery method, the producer is
    already shrunk when the fault fires — the exact half-mutated state the
    transactional guard must roll back.
    """
    original = getattr(module, method)
    state = {"calls": 0}

    def saboteur(*args, **kwargs):
        index = state["calls"]
        state["calls"] += 1
        if index >= after_calls:
            raise error(f"injected fault in {method} (call {index})")
        return original(*args, **kwargs)

    object.__setattr__(module, method, saboteur)
    try:
        yield
    finally:
        object.__delattr__(module, method)


# ----------------------------------------------------------------------
# Worker-process faults
# ----------------------------------------------------------------------
def scribble_shm(bundle, seed: int = 0) -> None:
    """Overwrite every array of a :class:`SharedArrayBundle` with garbage.

    Floats become NaN, integers their most-negative value — the loudest
    possible corruption, guaranteed to poison any consumer that reads the
    segment without recomputing it. Used (worker-side, right before a
    kill) to prove that a retried task fully rewrites its output slots
    rather than trusting leftover bytes.
    """
    del seed  # deterministic on purpose; kept for signature stability
    for array in bundle.arrays.values():
        if np.issubdtype(array.dtype, np.floating):
            array[...] = np.nan
        else:
            array[...] = np.iinfo(array.dtype).min


@contextlib.contextmanager
def worker_fault(service_cls, mode: str = "kill", at_call: int = 0,
                 marker: str | Path | None = None, prelude=None,
                 method: str = "handle"):
    """Arm a one-shot fault inside a worker-side service method.

    Monkeypatches ``service_cls.<method>`` (``handle`` by default) so
    that the ``at_call``-th call *in any worker process* triggers the
    fault — exactly once
    across the whole pool, coordinated through an ``O_EXCL`` marker file
    that survives ``fork``. Must be entered *before* the pool is created
    (fork-start workers inherit the patched class); respawned workers
    fork the patch too, but find the marker claimed and behave cleanly,
    which is precisely the transient-fault shape the supervisor recovers
    from.

    Parameters
    ----------
    mode:
        ``"kill"`` — ``SIGKILL`` the worker mid-task (kill -9);
        ``"hang"`` — loop forever with a healthy heartbeat (only the task
        deadline catches it);
        ``"freeze"`` — ``SIGSTOP`` the whole process, heartbeat thread
        included (only heartbeat staleness catches it).
    at_call:
        Zero-based count of ``method`` calls in the faulting process
        before the fault fires.
    marker:
        Claim-file path (auto-generated when ``None``); yielded so tests
        can assert the fault actually fired.
    prelude:
        Optional callable ``(service) -> None`` run in the worker right
        before the fault — e.g. ``lambda s: scribble_shm(s._out)`` to
        model a crash that corrupted its shared output first.
    method:
        Name of the service method to trap. Standing-pipeline services
        call ``handle`` only once per dispatch; trap an inner per-unit
        method (e.g. ``TrainingService.run_shard``) to plant the fault
        mid-stream — killing between two bucket publications of a step.
    """
    if mode not in ("kill", "hang", "freeze"):
        raise ValueError(f"unknown worker fault mode {mode!r}")
    if marker is not None:
        marker = Path(marker)
    else:
        # One shared directory with unique filenames, not mkdtemp per
        # call: an unfired fault then leaves nothing behind at all, and
        # a fired one only its single marker file until the caller
        # unlinks it.
        chaos_dir = Path(tempfile.gettempdir()) / "repro-chaos"
        chaos_dir.mkdir(exist_ok=True)
        marker = chaos_dir / f"worker-fault-{os.getpid()}-{uuid.uuid4().hex}"
    original = getattr(service_cls, method)
    state = {"calls": 0}

    def _claim() -> bool:
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def faulty_method(self, *args, **kwargs):
        index = state["calls"]       # per-process counter (fork copies it)
        state["calls"] += 1
        if index == at_call and _claim():
            if prelude is not None:
                prelude(self)
            if mode == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            elif mode == "freeze":
                os.kill(os.getpid(), signal.SIGSTOP)
            else:                    # "hang"
                while True:
                    time.sleep(3600)
        return original(self, *args, **kwargs)

    setattr(service_cls, method, faulty_method)
    try:
        yield marker
    finally:
        setattr(service_cls, method, original)


# ----------------------------------------------------------------------
# Storage faults
# ----------------------------------------------------------------------
def corrupt_checkpoint(path: str | Path, mode: str = "flip",
                       seed: int = 0) -> None:
    """Damage a checkpoint file in place.

    ``"flip"`` inverts a handful of bytes in the middle of the file (a
    bit-rot / torn-write stand-in); ``"truncate"`` drops the second half
    (a crash during a non-atomic write). Both must be caught by
    :func:`repro.io.load_model` as ``CheckpointCorruptError``.
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    if len(data) < 8:
        raise ValueError(f"{path} too small to corrupt meaningfully")
    if mode == "truncate":
        path.write_bytes(bytes(data[:len(data) // 2]))
    elif mode == "flip":
        rng = np.random.default_rng(seed)
        # Stay away from the zip end-of-central-directory so the damage
        # lands in array payload bytes, the hardest case for detection.
        positions = rng.integers(len(data) // 4, len(data) // 2, size=16)
        for pos in positions:
            data[int(pos)] ^= 0xFF
        path.write_bytes(bytes(data))
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")


class FlakyDataset(Dataset):
    """Dataset whose items fail their first ``failures`` reads.

    Deterministic: every index keeps its own attempt counter, so
    ``failures=2`` means reads 0 and 1 of each item raise ``error`` and
    read 2 succeeds — a transient storage fault. Wrap with
    :class:`~repro.resilience.retry.RetryingDataset` to recover.
    """

    def __init__(self, dataset: Dataset, failures: int = 1,
                 error: type[Exception] = ChaosError):
        if failures < 0:
            raise ValueError("failures must be >= 0")
        self.dataset = dataset
        self.failures = failures
        self.error = error
        self._attempts: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self.dataset)

    def __getitem__(self, index: int):
        seen = self._attempts.get(index, 0)
        if seen < self.failures:
            self._attempts[index] = seen + 1
            raise self.error(f"flaky read of item {index} "
                             f"(attempt {seen + 1}/{self.failures})")
        return self.dataset[index]

    @property
    def labels(self) -> np.ndarray:
        return self.dataset.labels
