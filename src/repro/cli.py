"""Command-line interface.

Drives the full reproduction workflow from the shell on the synthetic
task::

    python -m repro train      --model vgg16 --num-classes 10 --out base.npz
    python -m repro prune      --checkpoint base.npz --out pruned.npz
    python -m repro run        --checkpoint base.npz --run-dir runs/a
    python -m repro run        --run-dir runs/a --resume
    python -m repro profile    --checkpoint pruned.npz
    python -m repro compare    --checkpoint base.npz --methods l1,sss,random
    python -m repro specialize --checkpoint base.npz --classes 0,1 --out s.npz
    python -m repro serve      --model vgg16=pruned.npz --port 7071
    python -m repro verify     --quick

Every subcommand prints a short report; ``train``/``prune``/``specialize``
write checkpoints loadable by :mod:`repro.io`.
"""

from __future__ import annotations

import argparse
import copy
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def _dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--num-classes", type=int, default=10,
                        help="classes in the synthetic task (10 or 100 mirror CIFAR)")
    parser.add_argument("--image-size", type=int, default=12)
    parser.add_argument("--samples-per-class", type=int, default=40)
    parser.add_argument("--data-seed", type=int, default=0)


def _datasets(args):
    from .data import make_cifar_like
    return make_cifar_like(num_classes=args.num_classes,
                           image_size=args.image_size,
                           samples_per_class=args.samples_per_class,
                           seed=args.data_seed)


def _training(args):
    from .core import TrainingConfig
    return TrainingConfig(epochs=args.epochs, batch_size=args.batch_size,
                          lr=args.lr, momentum=0.9, weight_decay=5e-4,
                          lambda1=args.lambda1, lambda2=args.lambda2,
                          workers=getattr(args, "workers", 0),
                          grad_transport=getattr(args, "grad_transport",
                                                 "fp32"),
                          grad_bucket_kb=getattr(args, "grad_bucket_kb", 512))


def _training_args(parser: argparse.ArgumentParser, epochs: int) -> None:
    parser.add_argument("--epochs", type=int, default=epochs)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--lr", type=float, default=0.05)
    parser.add_argument("--lambda1", type=float, default=1e-4,
                        help="L1 coefficient of the modified loss (Eq. 1)")
    parser.add_argument("--lambda2", type=float, default=1e-2,
                        help="orthogonality coefficient of the modified loss")
    parser.add_argument("--workers", type=int, default=0,
                        help="logical worker shards for importance scoring "
                             "and fine-tuning (0 = serial); results are "
                             "reproducible for a fixed worker count")
    parser.add_argument("--grad-transport", choices=("fp32", "int8"),
                        default="fp32",
                        help="gradient wire format for sharded fine-tuning: "
                             "fp32 is bit-exact, int8 trades bounded "
                             "deterministic rounding for 4x less traffic")
    parser.add_argument("--grad-bucket-kb", type=int, default=512,
                        help="target gradient bucket size (KiB) for the "
                             "overlapped all-reduce")


def _load_checkpoint(path: str):
    from .io import load_model
    model = load_model(path)
    return model, model.arch


def cmd_train(args) -> int:
    from .core import Trainer
    from .io import save_model
    from .models import build_model
    train, test = _datasets(args)
    model = build_model(args.model, num_classes=args.num_classes,
                        image_size=args.image_size, width=args.width,
                        seed=args.seed)
    print(f"{args.model}: {model.num_parameters():,} parameters")
    trainer = Trainer(model, train, test, _training(args))
    history = trainer.train(log=not args.quiet)
    save_model(model, args.out)
    print(f"final test accuracy: {history.final_test_accuracy:.4f}")
    print(f"checkpoint written to {args.out}")
    return 0


def _framework_config(args):
    from .core import FrameworkConfig, ImportanceConfig
    from .parallel import SupervisionConfig
    return FrameworkConfig(
        score_threshold=(args.threshold if args.threshold is not None
                         else 0.3 * args.num_classes),
        max_fraction_per_iteration=args.max_fraction,
        strategy=args.strategy,
        finetune_epochs=args.finetune_epochs,
        accuracy_drop_tolerance=args.tolerance,
        max_iterations=args.max_iterations,
        importance=ImportanceConfig(
            images_per_class=args.images_per_class,
            tau=args.tau, tau_mode=args.tau_mode,
            tau_quantile=args.tau_quantile),
        supervision=SupervisionConfig(
            task_deadline_seconds=args.worker_deadline,
            stale_after_seconds=args.worker_stale_after,
            max_respawns=args.worker_respawns,
            max_task_retries=args.worker_task_retries))


def _build_framework(args, model):
    from .core import ClassAwarePruningFramework
    train, test = _datasets(args)
    return ClassAwarePruningFramework(
        model, train, test, num_classes=args.num_classes,
        input_shape=(3, args.image_size, args.image_size),
        config=_framework_config(args), training=_training(args))


def _print_result(result, label: str) -> None:
    print(result.summary_row(label))
    print(f"stopped because: {result.termination or result.stop_reason}")


def cmd_prune(args) -> int:
    from .io import save_model
    model, arch = _load_checkpoint(args.checkpoint)
    args.num_classes = arch.get("num_classes", args.num_classes)
    args.image_size = arch.get("image_size", args.image_size)
    framework = _build_framework(args, model)
    result = framework.run(log=not args.quiet)
    _print_result(result, arch.get("name", "model"))
    save_model(result.model, args.out, arch=arch)
    print(f"pruned checkpoint written to {args.out}")
    return 0


def cmd_run(args) -> int:
    """Journaled (crash-resumable) variant of ``prune``."""
    from .io import save_model
    if args.resume:
        result, arch = _resume_run(args)
    else:
        if args.checkpoint is None:
            raise SystemExit("repro run: --checkpoint is required unless "
                             "--resume is given")
        model, arch = _load_checkpoint(args.checkpoint)
        args.num_classes = arch.get("num_classes", args.num_classes)
        args.image_size = arch.get("image_size", args.image_size)
        framework = _build_framework(args, model)
        result = framework.run(
            log=not args.quiet, run_dir=args.run_dir,
            meta={"image_size": args.image_size,
                  "samples_per_class": args.samples_per_class,
                  "data_seed": args.data_seed})
    _print_result(result, arch.get("name", "model"))
    if args.out:
        save_model(result.model, args.out, arch=arch)
        print(f"pruned checkpoint written to {args.out}")
    print(f"run journal at {args.run_dir}")
    return 0


def _resume_run(args):
    """Rebuild framework + datasets from the run journal, then resume."""
    from pathlib import Path

    from .core import (ClassAwarePruningFramework, FrameworkConfig,
                       ImportanceConfig, TrainingConfig)
    from .data import make_cifar_like
    from .io import load_model
    from .resilience import RunJournal, SentinelConfig
    from .resilience.journal import decode_payload

    run_dir = Path(args.run_dir)
    records = RunJournal.read(run_dir / "journal.jsonl")
    start = next((r for r in records if r.get("event") == "run_start"), None)
    if start is None:
        raise SystemExit(f"repro run: {run_dir} has no run_start record — "
                         "nothing to resume")
    payload = decode_payload(start)
    meta = payload.get("meta") or {}
    num_classes = int(payload["num_classes"])
    input_shape = tuple(payload["input_shape"])

    cfg_dict = dict(payload["config"])
    cfg_dict["importance"] = ImportanceConfig(**cfg_dict["importance"])
    cfg_dict["sentinel"] = (SentinelConfig(**cfg_dict["sentinel"])
                            if cfg_dict.get("sentinel") else None)
    from .parallel import SupervisionConfig
    cfg_dict["supervision"] = (SupervisionConfig(**cfg_dict["supervision"])
                               if cfg_dict.get("supervision") else None)
    config = FrameworkConfig(**cfg_dict)
    tr_dict = dict(payload["training"])
    tr_dict["lr_milestones"] = tuple(tr_dict.get("lr_milestones", ()))
    training = TrainingConfig(**tr_dict)

    train, test = make_cifar_like(
        num_classes=num_classes,
        image_size=meta.get("image_size", args.image_size),
        samples_per_class=meta.get("samples_per_class",
                                   args.samples_per_class),
        seed=meta.get("data_seed", args.data_seed))
    model = load_model(run_dir / "checkpoints" / "baseline.npz",
                       input_shape=input_shape)
    framework = ClassAwarePruningFramework(
        model, train, test, num_classes=num_classes,
        input_shape=input_shape, config=config, training=training)
    result = framework.run(log=not args.quiet, resume_from=run_dir)
    return result, payload["arch"]


def cmd_profile(args) -> int:
    from .flops import profile_model
    model, arch = _load_checkpoint(args.checkpoint)
    size = arch.get("image_size", args.image_size)
    profile = profile_model(model, (3, size, size))
    print(profile.summary())
    print(f"\ntotal FLOPs: {profile.total_flops:,}")
    return 0


def cmd_compare(args) -> int:
    from .analysis import MethodComparison
    from .baselines import BaselineConfig, run_method
    from .core import evaluate_model
    model, arch = _load_checkpoint(args.checkpoint)
    args.num_classes = arch.get("num_classes", args.num_classes)
    args.image_size = arch.get("image_size", args.image_size)
    train, test = _datasets(args)
    _, original = evaluate_model(model, test)
    comparison = MethodComparison(arch.get("name", "model"),
                                  original_accuracy=original)
    config = BaselineConfig(target_ratio=args.target_ratio,
                            fraction_per_iteration=args.max_fraction,
                            finetune_epochs=args.finetune_epochs,
                            max_iterations=args.max_iterations)
    for name in args.methods.split(","):
        candidate = copy.deepcopy(model)
        result = run_method(name.strip(), candidate, train, test,
                            (3, args.image_size, args.image_size),
                            config, _training(args))
        comparison.add(result)
        print(result.row())
    print("\n" + comparison.table())
    return 0


def cmd_specialize(args) -> int:
    from .core import ImportanceConfig, SpecializationConfig, specialize
    from .io import save_model
    model, arch = _load_checkpoint(args.checkpoint)
    args.num_classes = arch.get("num_classes", args.num_classes)
    args.image_size = arch.get("image_size", args.image_size)
    train, test = _datasets(args)
    classes = [int(c) for c in args.classes.split(",")]
    result = specialize(
        model, train, test, num_classes=args.num_classes, classes=classes,
        input_shape=(3, args.image_size, args.image_size),
        config=SpecializationConfig(
            min_class_score=args.min_class_score,
            finetune_epochs=args.finetune_epochs,
            importance=ImportanceConfig(
                images_per_class=args.images_per_class,
                tau_mode="quantile", tau_quantile=args.tau_quantile)),
        training=_training(args))
    print(f"specialised to classes {classes}: accuracy {result.accuracy:.4f} "
          f"ratio {result.pruning_ratio * 100:.1f}% "
          f"flops_red {result.flops_reduction * 100:.1f}%")
    arch = dict(arch)
    arch["num_classes"] = len(classes)
    save_model(result.model, args.out, arch=arch)
    print(f"specialised checkpoint written to {args.out}")
    return 0


def cmd_infer_bench(args) -> int:
    from .infer.bench import (BENCH_MODELS, SMOKE_MODELS, format_table,
                              run_bench, write_bench)

    available = SMOKE_MODELS if args.smoke else BENCH_MODELS
    models = None
    if args.models:
        names = [m.strip() for m in args.models.split(",") if m.strip()]
        unknown = [m for m in names if m not in available]
        if unknown:
            print(f"unknown bench model(s): {', '.join(unknown)} "
                  f"(available: {', '.join(sorted(available))})")
            return 1
        models = {m: available[m] for m in names}
    batch_sizes = tuple(int(b) for b in args.batch_sizes.split(","))
    results = run_bench(models=models, batch_sizes=batch_sizes,
                        repeats=args.repeats, smoke=args.smoke,
                        seed=args.seed, quant=args.quant)
    print(format_table(results))
    if args.out:
        write_bench(results, args.out)
        print(f"results written to {args.out}")
    return 0


def cmd_train_bench(args) -> int:
    from .parallel.bench import format_table, run_bench, write_bench
    results = run_bench(workers=args.workers, repeats=args.repeats,
                        smoke=args.smoke, seed=args.seed,
                        transport=args.grad_transport)
    print(format_table(results))
    if args.out:
        write_bench(results, args.out)
        print(f"results written to {args.out}")
    return 0


def cmd_serve(args) -> int:
    from .serve import (InferenceServer, ModelRegistry, ReplicaConfig,
                        ReplicaRouter, ReplicaSet, ReplicaSpec, ServeConfig,
                        SheddingConfig, restore_registry)

    if not args.model and not args.resume:
        print("serve needs --model and/or --resume")
        return 1
    deployments = []
    for item in args.model or []:
        ref, sep, checkpoint = item.partition("=")
        name, at, version = ref.partition("@")
        if not sep or not name or not checkpoint:
            print(f"--model expects name[@version]=checkpoint.npz, "
                  f"got {item!r}")
            return 1
        deployments.append((name, version if at else "v1", checkpoint))
    budget = args.p99_budget_ms if args.p99_budget_ms > 0 else None
    manifest_dir = args.manifest or args.resume
    registry = ModelRegistry(
        max_batch=args.max_batch,
        shedding=SheddingConfig(max_pending=args.max_pending,
                                p99_budget_ms=budget),
        manifest_dir=manifest_dir)
    with registry:
        if args.resume:
            report = restore_registry(registry, args.resume)
            print(report.summary())
            if not report.restored and not deployments:
                print("nothing restorable in the manifest and no --model "
                      "given; refusing to serve an empty registry")
                return 1
        for name, version, checkpoint in deployments:
            report = registry.deploy(name, version, checkpoint=checkpoint)
            print(f"deployed {name}@{version} from {checkpoint} "
                  f"(probe max|diff| {report.probe_max_abs_diff:.2e})")
        router = rset = None
        if args.replicas > 0:
            if not deployments:
                print("--replicas needs --model checkpoints to deploy "
                      "to the replica fleet")
                return 1
            if args.resume:
                print("note: --replicas serves only the --model specs; "
                      "manifest-restored models stay on the frontend")
            rset = ReplicaSet(ReplicaConfig(
                replicas=args.replicas,
                max_batch=args.max_batch,
                max_respawns=args.replica_respawns,
                hedge_after_ms=args.replica_hedge_ms
                if args.replica_hedge_ms > 0 else None,
                request_timeout_s=args.request_timeout))
            router = ReplicaRouter(rset, [
                ReplicaSpec(name, version, checkpoint=checkpoint)
                for name, version, checkpoint in deployments])
            print(f"replicated tier: {args.replicas} replicas, "
                  f"{len(deployments)} model(s)")
        try:
            server = InferenceServer(
                registry, ServeConfig(host=args.host, port=args.port,
                                      request_timeout_s=args.request_timeout,
                                      drain_grace_s=args.drain_grace),
                router=router)
            server.run_forever()
        finally:
            if rset is not None:
                rset.close()            # idempotent; server closes it too
    return 0


def cmd_serve_bench(args) -> int:
    from .serve.bench import _VARIANTS, format_table, run_bench, write_bench
    connections = tuple(int(c) for c in args.connections.split(","))
    variants = tuple(args.variant) if args.variant else _VARIANTS
    results = run_bench(smoke=args.smoke, seed=args.seed,
                        connections=connections,
                        requests_per_connection=args.requests,
                        max_batch=args.max_batch,
                        variants=variants,
                        replicas=args.replicas)
    print(format_table(results))
    if args.out:
        write_bench(results, args.out)
        print(f"results written to {args.out}")
    return 0


def cmd_verify(args) -> int:
    from .verify.runner import main as verify_main
    forwarded = args.verify_args
    if forwarded and forwarded[0] == "--":
        forwarded = forwarded[1:]
    return verify_main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Class-Aware Pruning (DATE 2024) reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    p_train = sub.add_parser("train", help="train a model with the modified loss")
    p_train.add_argument("--model", default="vgg16")
    p_train.add_argument("--width", type=float, default=0.25)
    p_train.add_argument("--seed", type=int, default=0)
    p_train.add_argument("--out", required=True)
    p_train.add_argument("--quiet", action="store_true")
    _dataset_args(p_train)
    _training_args(p_train, epochs=30)
    p_train.set_defaults(func=cmd_train)

    def _prune_args(p):
        p.add_argument("--threshold", type=float, default=None,
                       help="score threshold (default: 0.3 x classes)")
        p.add_argument("--max-fraction", type=float, default=0.1)
        p.add_argument("--strategy", default="percentage+threshold",
                       choices=["percentage", "threshold",
                                "percentage+threshold"])
        p.add_argument("--finetune-epochs", type=int, default=5)
        p.add_argument("--tolerance", type=float, default=0.05)
        p.add_argument("--max-iterations", type=int, default=8)
        p.add_argument("--images-per-class", type=int, default=10)
        p.add_argument("--tau", type=float, default=1e-50)
        p.add_argument("--tau-mode", default="quantile",
                       choices=["absolute", "quantile"])
        p.add_argument("--tau-quantile", type=float, default=0.9)
        p.add_argument("--worker-deadline", type=float, default=120.0,
                       help="wall-clock seconds one parallel task may run "
                            "before its worker is treated as hung, killed "
                            "and respawned (workers > 0 only)")
        p.add_argument("--worker-stale-after", type=float, default=10.0,
                       help="heartbeat silence after which a worker counts "
                            "as frozen and is killed")
        p.add_argument("--worker-respawns", type=int, default=3,
                       help="pool-lifetime respawn budget; exhausting it "
                            "degrades the run to serial execution "
                            "(stop_reason=parallel-degraded)")
        p.add_argument("--worker-task-retries", type=int, default=2,
                       help="re-dispatch budget per task before the pool "
                            "degrades to serial execution")
        p.add_argument("--quiet", action="store_true")
        _dataset_args(p)
        _training_args(p, epochs=5)

    p_prune = sub.add_parser("prune", help="run the class-aware framework")
    p_prune.add_argument("--checkpoint", required=True)
    p_prune.add_argument("--out", required=True)
    _prune_args(p_prune)
    p_prune.set_defaults(func=cmd_prune)

    p_run = sub.add_parser(
        "run", help="journaled, crash-resumable variant of prune")
    p_run.add_argument("--run-dir", required=True,
                       help="directory for the journal + checkpoints")
    p_run.add_argument("--resume", action="store_true",
                       help="continue an interrupted run from its journal")
    p_run.add_argument("--checkpoint", default=None,
                       help="trained model to prune (fresh runs only)")
    p_run.add_argument("--out", default=None,
                       help="optionally export the final pruned checkpoint")
    _prune_args(p_run)
    p_run.set_defaults(func=cmd_run)

    p_profile = sub.add_parser("profile", help="print params/MACs per layer")
    p_profile.add_argument("--checkpoint", required=True)
    p_profile.add_argument("--image-size", type=int, default=12)
    p_profile.set_defaults(func=cmd_profile)

    p_compare = sub.add_parser("compare", help="run baseline methods")
    p_compare.add_argument("--checkpoint", required=True)
    p_compare.add_argument("--methods", default="l1,sss,random")
    p_compare.add_argument("--target-ratio", type=float, default=0.3)
    p_compare.add_argument("--max-fraction", type=float, default=0.12)
    p_compare.add_argument("--finetune-epochs", type=int, default=2)
    p_compare.add_argument("--max-iterations", type=int, default=8)
    _dataset_args(p_compare)
    _training_args(p_compare, epochs=2)
    p_compare.set_defaults(func=cmd_compare)

    p_spec = sub.add_parser("specialize",
                            help="specialise a model to a class subset")
    p_spec.add_argument("--checkpoint", required=True)
    p_spec.add_argument("--classes", required=True,
                        help="comma-separated retained class ids")
    p_spec.add_argument("--out", required=True)
    p_spec.add_argument("--min-class-score", type=float, default=0.3)
    p_spec.add_argument("--finetune-epochs", type=int, default=5)
    p_spec.add_argument("--images-per-class", type=int, default=10)
    p_spec.add_argument("--tau-quantile", type=float, default=0.9)
    _dataset_args(p_spec)
    _training_args(p_spec, epochs=5)
    p_spec.set_defaults(func=cmd_specialize)

    p_bench = sub.add_parser(
        "infer-bench", help="benchmark eager vs compiled inference")
    p_bench.add_argument("--models", default=None,
                         help="comma-separated subset of bench models")
    p_bench.add_argument("--batch-sizes", default="1,8,32")
    p_bench.add_argument("--repeats", type=int, default=10)
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument("--smoke", action="store_true",
                         help="tiny models / few repeats (CI)")
    p_bench.add_argument("--quant", action="store_true",
                         help="extend the sweep to the int8 engine "
                              "({dense,pruned} x {fp32,int8} grid with "
                              "artifact sizes and top-1 agreement)")
    p_bench.add_argument("--out", default=None,
                         help="write results JSON to this path")
    p_bench.set_defaults(func=cmd_infer_bench)

    p_tbench = sub.add_parser(
        "train-bench",
        help="benchmark parallel scoring + fused/sharded fine-tuning")
    p_tbench.add_argument("--workers", type=int, default=4,
                          help="logical worker shards for the parallel paths")
    p_tbench.add_argument("--repeats", type=int, default=3)
    p_tbench.add_argument("--seed", type=int, default=0)
    p_tbench.add_argument("--smoke", action="store_true",
                          help="tiny models / few repeats (CI); also caps "
                               "workers at 2")
    p_tbench.add_argument("--grad-transport", choices=("fp32", "int8"),
                          default="fp32",
                          help="gradient wire format for the sharded "
                               "fine-tune lane")
    p_tbench.add_argument("--out", default=None,
                          help="write results JSON to this path "
                               "(e.g. BENCH_train.json)")
    p_tbench.set_defaults(func=cmd_train_bench)

    p_serve = sub.add_parser(
        "serve", help="serve checkpoints over the NDJSON socket protocol")
    p_serve.add_argument("--model", action="append", default=None,
                         metavar="NAME[@VERSION]=CHECKPOINT",
                         help="deploy a checkpoint under a serving name; "
                              "repeatable for multi-model serving")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=7071,
                         help="listen port (0 picks an ephemeral one)")
    p_serve.add_argument("--max-batch", type=int, default=32)
    p_serve.add_argument("--max-pending", type=int, default=64,
                         help="admitted-but-unfinished requests per model "
                              "before shedding with reason queue-full")
    p_serve.add_argument("--p99-budget-ms", type=float, default=200.0,
                         help="shed (reason slo) once recent p99 exceeds "
                              "this; <= 0 disables the SLO gate")
    p_serve.add_argument("--request-timeout", type=float, default=30.0,
                         help="seconds before an in-flight request is "
                              "cancelled and answered with a timeout")
    p_serve.add_argument("--drain-grace", type=float, default=30.0,
                         help="seconds SIGTERM waits for in-flight "
                              "requests before closing the loop")
    p_serve.add_argument("--manifest", default=None, metavar="DIR",
                         help="journal every deploy to this directory so "
                              "'--resume DIR' can warm-restart the fleet")
    p_serve.add_argument("--resume", default=None, metavar="DIR",
                         help="redeploy every name@version journaled in "
                              "DIR's manifest (through probe validation) "
                              "before serving; implies --manifest DIR")
    p_serve.add_argument("--replicas", type=int, default=0,
                         help="run N replica worker processes behind the "
                              "health-probed router (0 = in-process "
                              "serving); each --model checkpoint deploys "
                              "to every replica")
    p_serve.add_argument("--replica-respawns", type=int, default=3,
                         help="total crashed-replica respawns before the "
                              "fleet degrades to in-process serving")
    p_serve.add_argument("--replica-hedge-ms", type=float, default=0.0,
                         help="hedge a straggling replica request onto a "
                              "second replica after this many ms "
                              "(<= 0 disables hedging)")
    p_serve.set_defaults(func=cmd_serve)

    p_sbench = sub.add_parser(
        "serve-bench",
        help="closed-loop serving benchmark: latency/throughput vs load")
    p_sbench.add_argument("--connections", default="1,4,16",
                          help="comma-separated offered-load sweep "
                               "(concurrent connections)")
    p_sbench.add_argument("--requests", type=int, default=40,
                          help="requests per connection at each sweep point")
    p_sbench.add_argument("--max-batch", type=int, default=16)
    p_sbench.add_argument("--variant", action="append", default=None,
                          choices=["dense", "pruned", "int8"],
                          help="serve only these variants (repeatable); "
                               "default benches dense, pruned and int8")
    p_sbench.add_argument("--seed", type=int, default=0)
    p_sbench.add_argument("--smoke", action="store_true",
                          help="tiny model / short sweep (CI); asserts the "
                               "zero-drop serving contract")
    p_sbench.add_argument("--replicas", type=int, default=0,
                          help="bench the replicated tier: N replica "
                               "processes behind the router (0 = the "
                               "in-process server)")
    p_sbench.add_argument("--out", default=None,
                          help="write results JSON to this path "
                               "(e.g. BENCH_serve.json)")
    p_sbench.set_defaults(func=cmd_serve_bench)

    p_verify = sub.add_parser(
        "verify", help="gradient fuzzing + pruning invariant checks")
    p_verify.add_argument("verify_args", nargs=argparse.REMAINDER,
                          help="arguments forwarded to python -m repro.verify")
    p_verify.set_defaults(func=cmd_verify)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    argv = sys.argv[1:] if argv is None else list(argv)
    # argparse.REMAINDER cannot capture option-like tokens right after a
    # subcommand (`repro verify --quick`), so forward verify's arguments
    # before the main parse ever sees them.
    if argv[:1] == ["verify"]:
        from .verify.runner import main as verify_main
        forwarded = argv[1:]
        if forwarded and forwarded[0] == "--":
            forwarded = forwarded[1:]
        return verify_main(forwarded)
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
