"""Command-line driver: ``python -m repro.verify``.

Runs the three verification layers in order —

1. coverage audit (every public differentiable op must have a fuzz spec),
2. property-based gradient fuzzing (:mod:`repro.verify.fuzz`),
3. semantic invariants (:mod:`repro.verify.invariants`),
4. golden regression fixtures (:mod:`repro.verify.golden`),
5. resilience drills (:mod:`repro.resilience.drills` — fault injection
   against every recovery path),

prints a per-check report, and exits non-zero on any failure. ``--quick``
is the CI tier: single fuzz round over the representative spec subset,
trimmed invariant trials, all golden fixtures — a few seconds end to end.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import fuzz, golden, invariants

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Property-based gradient fuzzing, pruning invariants "
                    "and golden regression checks.")
    parser.add_argument("--quick", action="store_true",
                        help="fast CI subset (single fuzz round, trimmed "
                             "invariant trials)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed for the fuzzer and invariants")
    def positive_int(value: str) -> int:
        n = int(value)
        if n < 1:
            raise argparse.ArgumentTypeError("must be >= 1")
        return n

    parser.add_argument("--rounds", type=positive_int, default=2,
                        help="fuzz rounds per op spec (ignored with --quick)")
    parser.add_argument("--select", type=str, default=None,
                        help="substring filter on fuzz spec names "
                             "(e.g. 'conv' or 'ops.matmul')")
    parser.add_argument("--skip-fuzz", action="store_true",
                        help="run only invariants and golden checks")
    parser.add_argument("--skip-invariants", action="store_true",
                        help="run only the fuzzer and golden checks")
    parser.add_argument("--skip-golden", action="store_true",
                        help="run only the fuzzer and invariants")
    parser.add_argument("--skip-resilience", action="store_true",
                        help="skip the fault-injection recovery drills")
    parser.add_argument("--drills", type=str, default=None,
                        help="substring filter on resilience drill names "
                             "(e.g. 'worker' runs the worker-fault "
                             "battery, 'shm' the reaper drill, 'serve' "
                             "the serving shed/hot-swap drills)")
    parser.add_argument("--write-golden", action="store_true",
                        help="regenerate the golden fixtures and exit")
    parser.add_argument("--list", action="store_true", dest="list_specs",
                        help="list registered fuzz specs and coverage, "
                             "then exit")
    return parser


def _print_list() -> int:
    required = fuzz.required_coverage()
    gaps = fuzz.coverage_gaps()
    print(f"{len(fuzz.OP_SPECS)} fuzz specs covering "
          f"{len(required) - len(gaps)}/{len(required)} required names\n")
    for name in sorted(fuzz.OP_SPECS):
        spec = fuzz.OP_SPECS[name]
        quick = " [quick]" if name in fuzz.QUICK_SPECS else ""
        covers = ""
        if set(spec.covers) != {name}:
            covers = f" -> {', '.join(spec.covers)}"
        print(f"  {name}{quick}{covers}")
    if gaps:
        print("\nUNCOVERED:")
        for name in sorted(gaps):
            print(f"  {name}")
        return 1
    return 0


def _report(title: str, rows) -> bool:
    """Print one section; returns True when every row passed."""
    print(f"\n== {title} ==")
    ok = True
    for row in rows:
        passed = row.passed
        ok &= passed
        status = "ok  " if passed else "FAIL"
        name = getattr(row, "spec", None) or row.name
        detail = getattr(row, "detail", "") or ""
        cases = getattr(row, "cases", None)
        if cases is not None:
            detail = f"{cases} cases"
        print(f"  [{status}] {name:<34} {detail} ({row.seconds:.2f}s)")
        for failure in row.failures:
            print(f"         - {failure}")
    return ok


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_specs:
        return _print_list()

    if args.write_golden:
        for path in golden.write_golden():
            print(f"wrote {path}")
        return 0

    start = time.perf_counter()
    ok = True

    gaps = fuzz.coverage_gaps()
    print(f"== coverage ==\n  {len(fuzz.OP_SPECS)} specs, "
          f"{len(fuzz.required_coverage())} required names, "
          f"{len(gaps)} uncovered")
    if gaps:
        ok = False
        for name in sorted(gaps):
            print(f"         - uncovered: {name}")

    if not args.skip_fuzz:
        results = fuzz.run_fuzzer(seed=args.seed, rounds=args.rounds,
                                  quick=args.quick, select=args.select)
        if args.select is not None and not results:
            # A typo'd filter must not masquerade as a clean pass.
            print(f"\nerror: --select {args.select!r} matched no fuzz specs "
                  "(see --list)")
            ok = False
        ok &= _report("gradient fuzzing", results)

    if not args.skip_invariants:
        ok &= _report("invariants",
                      invariants.run_invariants(seed=args.seed,
                                                quick=args.quick))

    if not args.skip_golden:
        ok &= _report("golden fixtures", golden.run_golden())

    if not args.skip_resilience:
        # Imported lazily: drills needs repro.core, which the resilience
        # package itself must not import.
        from ..resilience import drills
        ok &= _report("resilience drills",
                      drills.run_drills(seed=args.seed, quick=args.quick,
                                        only=args.drills))

    elapsed = time.perf_counter() - start
    print(f"\n{'PASS' if ok else 'FAIL'} in {elapsed:.1f}s")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
