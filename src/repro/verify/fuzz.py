"""Property-based gradient fuzzing of every differentiable op.

Each :class:`OpSpec` owns a *builder*: a function that, given a seeded
``numpy.random.Generator``, materialises one or more random test cases
(function + input tensors) for the op it covers. The fuzzer sweeps the
registry, drawing fresh shapes/strides/paddings each round, and validates
every case against central finite differences
(:func:`repro.verify.gradcheck.check_gradients`).

Coverage is a first-class contract: :func:`required_coverage` derives the
set of public differentiable names from the ``__all__`` of
``repro.tensor.ops``, ``repro.tensor.conv`` and ``repro.nn`` (plus the
regularizer surface in ``repro.core``), and :func:`coverage_gaps` reports
any name no spec claims. ``tests/verify/test_coverage.py`` asserts the gap
set is empty, so adding a public op without a fuzz spec fails CI.

Builders must respect two numerical ground rules:

* keep inputs away from non-differentiable kinks (|x| at 0, clip bounds,
  max ties) by more than the finite-difference step ``eps``;
* keep tensors tiny — the numerical gradient costs two forwards per input
  element.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from ..tensor import Tensor, conv as tconv, ops
from .gradcheck import check_gradients

__all__ = [
    "FuzzCase", "OpSpec", "FuzzResult", "OP_SPECS", "register_spec",
    "required_coverage", "covered_names", "coverage_gaps", "run_spec",
    "run_fuzzer", "QUICK_SPECS",
]


@dataclass
class FuzzCase:
    """One concrete gradient check: ``fn(*inputs)`` against finite diffs."""

    fn: Callable[..., Tensor]
    inputs: list
    note: str = ""


@dataclass(frozen=True)
class OpSpec:
    """Fuzz recipe for one public op.

    Attributes
    ----------
    name:
        Registry key, namespaced (``ops.matmul``, ``nn.Conv2d``).
    covers:
        Fully-qualified public names this spec certifies; the union over
        the registry must equal :func:`required_coverage`.
    build:
        ``rng -> FuzzCase | list[FuzzCase]`` drawing one round of cases.
    atol / rtol / eps:
        Tolerances forwarded to :func:`check_gradients`.
    quick:
        Whether the spec is part of the fast tier-1 subset.
    """

    name: str
    covers: tuple[str, ...]
    build: Callable[[np.random.Generator], "FuzzCase | list[FuzzCase]"]
    atol: float = 1e-2
    rtol: float = 1e-2
    eps: float = 1e-3
    quick: bool = True


@dataclass
class FuzzResult:
    """Outcome of fuzzing one spec for some number of rounds."""

    spec: str
    cases: int
    failures: list[str] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def passed(self) -> bool:
        return not self.failures


OP_SPECS: dict[str, OpSpec] = {}


def register_spec(name: str, covers: Iterable[str], *, atol: float = 1e-2,
                  rtol: float = 1e-2, eps: float = 1e-3, quick: bool = True):
    """Decorator: register a builder under ``name``."""
    def wrap(build):
        if name in OP_SPECS:
            raise ValueError(f"duplicate fuzz spec {name!r}")
        OP_SPECS[name] = OpSpec(name=name, covers=tuple(covers), build=build,
                                atol=atol, rtol=rtol, eps=eps, quick=quick)
        return build
    return wrap


# ----------------------------------------------------------------------
# Random-input helpers
# ----------------------------------------------------------------------

def _shape(rng: np.random.Generator, min_ndim: int = 1, max_ndim: int = 3,
           max_dim: int = 4) -> tuple[int, ...]:
    nd = int(rng.integers(min_ndim, max_ndim + 1))
    return tuple(int(rng.integers(1, max_dim + 1)) for _ in range(nd))


def _t(rng: np.random.Generator, shape, low: float = -2.0,
       high: float = 2.0) -> Tensor:
    data = rng.uniform(low, high, size=shape).astype(np.float32)
    return Tensor(data, requires_grad=True)


def _t_pos(rng: np.random.Generator, shape, low: float = 0.5,
           high: float = 2.0) -> Tensor:
    return _t(rng, shape, low, high)


def _t_away(rng: np.random.Generator, shape, points, margin: float) -> Tensor:
    """Tensor whose entries keep ``margin`` distance from each kink point."""
    data = rng.uniform(-2.0, 2.0, size=shape)
    for p in np.atleast_1d(points):
        close = np.abs(data - p) < margin
        data = np.where(close, p + np.sign(data - p + 1e-9) * margin, data)
    return Tensor(data.astype(np.float32), requires_grad=True)


def _t_distinct(rng: np.random.Generator, shape, gap: float = 0.1) -> Tensor:
    """Tensor with pairwise-distinct entries (safe for max/argmax ops)."""
    n = int(np.prod(shape))
    flat = (rng.permutation(n).astype(np.float64) - n / 2) * gap
    return Tensor(flat.reshape(shape).astype(np.float32), requires_grad=True)


def _broadcast_partner(rng: np.random.Generator, shape) -> tuple[int, ...]:
    """A shape that numpy-broadcasts against ``shape``."""
    out = list(shape)
    for i in range(len(out)):
        if rng.random() < 0.3:
            out[i] = 1
    drop = int(rng.integers(0, len(out)))  # drop some leading axes
    out = out[drop:]
    return tuple(out) if out else (1,)


def _axis(rng: np.random.Generator, ndim: int):
    """None, a single axis, or a tuple of axes."""
    r = rng.random()
    if r < 0.34 or ndim == 0:
        return None
    if r < 0.67:
        return int(rng.integers(-ndim, ndim))
    k = int(rng.integers(1, ndim + 1))
    return tuple(int(ax) for ax in rng.choice(ndim, size=k, replace=False))


# ----------------------------------------------------------------------
# repro.tensor.ops specs
# ----------------------------------------------------------------------

def _binary_broadcast(op):
    def build(rng):
        shape = _shape(rng)
        a = _t(rng, shape)
        b = _t(rng, _broadcast_partner(rng, shape))
        return FuzzCase(op, [a, b], note=f"{a.shape}x{b.shape}")
    return build


for _name, _op in (("add", ops.add), ("sub", ops.sub), ("mul", ops.mul)):
    register_spec(f"ops.{_name}", [f"ops.{_name}"])(_binary_broadcast(_op))


@register_spec("ops.div", ["ops.div"])
def _build_div(rng):
    shape = _shape(rng)
    a = _t(rng, shape)
    b_shape = _broadcast_partner(rng, shape)
    b_data = rng.uniform(0.5, 2.0, size=b_shape) * rng.choice([-1.0, 1.0],
                                                              size=b_shape)
    b = Tensor(b_data.astype(np.float32), requires_grad=True)
    return FuzzCase(ops.div, [a, b], note=f"{a.shape}/{b.shape}")


@register_spec("ops.neg", ["ops.neg"])
def _build_neg(rng):
    return FuzzCase(ops.neg, [_t(rng, _shape(rng))])


@register_spec("ops.pow", ["ops.pow"])
def _build_pow(rng):
    exponent = float(rng.choice([2.0, 3.0, 0.5, 1.5, -1.0, -2.0]))
    base = _t_pos(rng, _shape(rng))
    return FuzzCase(lambda a: ops.pow(a, exponent), [base],
                    note=f"exp={exponent}")


@register_spec("ops.exp", ["ops.exp"])
def _build_exp(rng):
    return FuzzCase(ops.exp, [_t(rng, _shape(rng), -1.5, 1.5)])


@register_spec("ops.log", ["ops.log"])
def _build_log(rng):
    return FuzzCase(ops.log, [_t_pos(rng, _shape(rng))])


@register_spec("ops.sqrt", ["ops.sqrt"])
def _build_sqrt(rng):
    return FuzzCase(ops.sqrt, [_t_pos(rng, _shape(rng))])


@register_spec("ops.abs", ["ops.abs"])
def _build_abs(rng):
    return FuzzCase(ops.abs, [_t_away(rng, _shape(rng), 0.0, 0.05)])


@register_spec("ops.relu", ["ops.relu"])
def _build_relu(rng):
    return FuzzCase(ops.relu, [_t_away(rng, _shape(rng), 0.0, 0.05)])


@register_spec("ops.sigmoid", ["ops.sigmoid"])
def _build_sigmoid(rng):
    return FuzzCase(ops.sigmoid, [_t(rng, _shape(rng))])


@register_spec("ops.tanh", ["ops.tanh"])
def _build_tanh(rng):
    return FuzzCase(ops.tanh, [_t(rng, _shape(rng))])


@register_spec("ops.clip", ["ops.clip"])
def _build_clip(rng):
    low, high = -1.0, 1.0
    x = _t_away(rng, _shape(rng), [low, high], 0.05)
    return FuzzCase(lambda a: ops.clip(a, low, high), [x])


@register_spec("ops.dropout_mask", ["ops.dropout_mask"])
def _build_dropout_mask(rng):
    shape = _shape(rng)
    mask = (rng.random(shape) < 0.7).astype(np.float32) / 0.7
    return FuzzCase(lambda a: ops.dropout_mask(a, mask), [_t(rng, shape)])


def _build_extremum(op):
    def build(rng):
        shape = _shape(rng)
        a = _t(rng, shape)
        # Enforce a margin between the operands so finite differences never
        # cross the tie (the subgradient there is genuinely ambiguous).
        offset = rng.uniform(0.05, 1.0, size=shape) * rng.choice(
            [-1.0, 1.0], size=shape)
        b = Tensor((a.data + offset).astype(np.float32), requires_grad=True)
        return FuzzCase(op, [a, b])
    return build


register_spec("ops.maximum", ["ops.maximum"])(_build_extremum(ops.maximum))
register_spec("ops.minimum", ["ops.minimum"])(_build_extremum(ops.minimum))


@register_spec("ops.where", ["ops.where"])
def _build_where(rng):
    shape = _shape(rng)
    cond = rng.random(shape) < 0.5
    return FuzzCase(lambda a, b: ops.where(cond, a, b),
                    [_t(rng, shape), _t(rng, shape)])


@register_spec("ops.matmul", ["ops.matmul"])
def _build_matmul(rng):
    n, k, m, batch = (int(rng.integers(1, 4)) for _ in range(4))
    shapes = [
        ((k,), (k,)), ((n, k), (k,)), ((k,), (k, m)), ((n, k), (k, m)),
        ((batch, n, k), (k, m)), ((batch, n, k), (batch, k, m)),
        ((batch, n, k), (k,)), ((k,), (batch, k, m)),
        ((n, k), (batch, k, m)), ((1, n, k), (batch, k, m)),
    ]
    sa, sb = shapes[int(rng.integers(0, len(shapes)))]
    return FuzzCase(ops.matmul, [_t(rng, sa), _t(rng, sb)],
                    note=f"{sa}@{sb}")


def _build_reduction(op, distinct: bool = False):
    def build(rng):
        shape = _shape(rng, min_ndim=1, max_ndim=3)
        x = _t_distinct(rng, shape) if distinct else _t(rng, shape)
        axis = _axis(rng, len(shape))
        keepdims = bool(rng.random() < 0.5)
        return FuzzCase(lambda a: op(a, axis=axis, keepdims=keepdims), [x],
                        note=f"axis={axis} keepdims={keepdims}")
    return build


register_spec("ops.sum", ["ops.sum"])(_build_reduction(ops.sum))
register_spec("ops.mean", ["ops.mean"])(_build_reduction(ops.mean))
register_spec("ops.max", ["ops.max"])(_build_reduction(ops.max, distinct=True))


@register_spec("ops.logsumexp", ["ops.logsumexp"])
def _build_logsumexp(rng):
    shape = _shape(rng, min_ndim=1, max_ndim=3)
    axis = int(rng.integers(-len(shape), len(shape)))
    keepdims = bool(rng.random() < 0.5)
    return FuzzCase(lambda a: ops.logsumexp(a, axis=axis, keepdims=keepdims),
                    [_t(rng, shape)], note=f"axis={axis}")


def _build_softmaxish(op):
    def build(rng):
        shape = _shape(rng, min_ndim=1, max_ndim=3)
        axis = int(rng.integers(-len(shape), len(shape)))
        return FuzzCase(lambda a: op(a, axis=axis), [_t(rng, shape)],
                        note=f"axis={axis}")
    return build


register_spec("ops.log_softmax", ["ops.log_softmax"])(
    _build_softmaxish(ops.log_softmax))
register_spec("ops.softmax", ["ops.softmax"])(_build_softmaxish(ops.softmax))


@register_spec("ops.reshape", ["ops.reshape"])
def _build_reshape(rng):
    shape = _shape(rng)
    n = int(np.prod(shape))
    divisors = [d for d in range(1, n + 1) if n % d == 0]
    d = int(rng.choice(divisors))
    target = (d, n // d) if rng.random() < 0.5 else (d, -1)
    return FuzzCase(lambda a: ops.reshape(a, target), [_t(rng, shape)],
                    note=f"{shape}->{target}")


@register_spec("ops.transpose", ["ops.transpose"])
def _build_transpose(rng):
    shape = _shape(rng, min_ndim=2, max_ndim=4)
    axes = (None if rng.random() < 0.3
            else tuple(int(i) for i in rng.permutation(len(shape))))
    return FuzzCase(lambda a: ops.transpose(a, axes), [_t(rng, shape)],
                    note=f"axes={axes}")


@register_spec("ops.flatten", ["ops.flatten"])
def _build_flatten(rng):
    shape = _shape(rng, min_ndim=2, max_ndim=4)
    start = int(rng.integers(0, len(shape)))
    return FuzzCase(lambda a: ops.flatten(a, start_dim=start), [_t(rng, shape)])


@register_spec("ops.getitem", ["ops.getitem"])
def _build_getitem(rng):
    shape = _shape(rng, min_ndim=1, max_ndim=3)
    x = _t(rng, shape)
    mode = rng.random()
    if mode < 0.3:
        index = int(rng.integers(0, shape[0]))
    elif mode < 0.6:
        lo = int(rng.integers(0, shape[0]))
        index = slice(lo, int(rng.integers(lo, shape[0])) + 1)
    elif mode < 0.85 or len(shape) < 2:
        # Fancy indexing with duplicates exercises gradient accumulation.
        index = rng.integers(0, shape[0], size=shape[0] + 1)
    else:
        rows = rng.integers(0, shape[0], size=3)
        cols = rng.integers(0, shape[1], size=3)
        index = (rows, cols)
    return FuzzCase(lambda a: ops.getitem(a, index), [x], note=f"idx={index}")


def _build_join(op):
    def build(rng):
        shape = _shape(rng, min_ndim=1, max_ndim=3)
        axis = int(rng.integers(0, len(shape)))
        parts = [_t(rng, shape) for _ in range(int(rng.integers(2, 4)))]
        return FuzzCase(lambda *ts: op(list(ts), axis=axis), parts,
                        note=f"axis={axis} n={len(parts)}")
    return build


register_spec("ops.concat", ["ops.concat"])(_build_join(ops.concat))
register_spec("ops.stack", ["ops.stack"])(_build_join(ops.stack))


@register_spec("ops.pad2d", ["ops.pad2d"])
def _build_pad2d(rng):
    shape = (int(rng.integers(1, 3)), int(rng.integers(1, 3)),
             int(rng.integers(2, 5)), int(rng.integers(2, 5)))
    padding = (int(rng.integers(0, 3)) if rng.random() < 0.5
               else (int(rng.integers(0, 3)), int(rng.integers(0, 3))))
    return FuzzCase(lambda a: ops.pad2d(a, padding), [_t(rng, shape)],
                    note=f"pad={padding}")


# ----------------------------------------------------------------------
# repro.tensor.conv specs
# ----------------------------------------------------------------------

def _conv_geometry(rng, max_kernel: int = 3):
    kernel = int(rng.integers(1, max_kernel + 1))
    stride = int(rng.integers(1, 3))
    padding = int(rng.integers(0, 3))
    # Smallest input that still yields at least one output position.
    min_size = max(kernel - 2 * padding, 1)
    size = int(rng.integers(min_size, min_size + 3))
    return kernel, stride, padding, size


@register_spec("conv.conv2d", ["conv.conv2d"])
def _build_conv2d(rng):
    kernel, stride, padding, size = _conv_geometry(rng)
    n, c, o = (int(rng.integers(1, 3)) for _ in range(3))
    x = _t(rng, (n, c, size, size))
    w = _t(rng, (o, c, kernel, kernel), -1.0, 1.0)
    inputs = [x, w]
    note = f"k={kernel} s={stride} p={padding} in={size}"
    if rng.random() < 0.5:
        b = _t(rng, (o,))
        return FuzzCase(
            lambda xi, wi, bi: tconv.conv2d(xi, wi, bi, stride=stride,
                                            padding=padding),
            inputs + [b], note=note + " bias")
    return FuzzCase(
        lambda xi, wi: tconv.conv2d(xi, wi, stride=stride, padding=padding),
        inputs, note=note)


def _build_pool(op, distinct: bool):
    def build(rng):
        kernel = int(rng.integers(2, 4))
        stride = int(rng.choice([0, 1, 2, 3]))  # 0 -> default (== kernel)
        stride_arg = stride or None
        size = kernel + int(rng.integers(0, 4))
        shape = (int(rng.integers(1, 3)), int(rng.integers(1, 3)), size, size)
        x = _t_distinct(rng, shape) if distinct else _t(rng, shape)
        return FuzzCase(lambda a: op(a, kernel, stride_arg), [x],
                        note=f"k={kernel} s={stride_arg} in={size}")
    return build


register_spec("conv.max_pool2d", ["conv.max_pool2d"])(
    _build_pool(tconv.max_pool2d, distinct=True))
register_spec("conv.avg_pool2d", ["conv.avg_pool2d"])(
    _build_pool(tconv.avg_pool2d, distinct=False))


@register_spec("conv.global_avg_pool2d", ["conv.global_avg_pool2d"])
def _build_gap(rng):
    shape = (int(rng.integers(1, 3)), int(rng.integers(1, 4)),
             int(rng.integers(1, 5)), int(rng.integers(1, 5)))
    return FuzzCase(tconv.global_avg_pool2d, [_t(rng, shape)])


# ----------------------------------------------------------------------
# repro.nn specs — layers fuzz gradients w.r.t. input AND parameters by
# passing the layer's own parameter tensors through check_gradients.
# ----------------------------------------------------------------------

def _layer_case(layer, x, note=""):
    params = [p for p in layer.parameters()]
    return FuzzCase(lambda xi, *ps: layer(xi), [x] + params, note=note)


@register_spec("nn.Linear", ["nn.Linear"])
def _build_nn_linear(rng):
    from ..nn import Linear
    n, fin, fout = (int(rng.integers(1, 5)) for _ in range(3))
    layer = Linear(fin, fout, bias=bool(rng.random() < 0.7),
                   rng=np.random.default_rng(int(rng.integers(0, 2**31))))
    return _layer_case(layer, _t(rng, (n, fin)), note=f"{fin}->{fout}")


@register_spec("nn.Conv2d", ["nn.Conv2d"])
def _build_nn_conv2d(rng):
    from ..nn import Conv2d
    kernel, stride, padding, size = _conv_geometry(rng)
    cin, cout = int(rng.integers(1, 3)), int(rng.integers(1, 3))
    layer = Conv2d(cin, cout, kernel, stride=stride, padding=padding,
                   bias=bool(rng.random() < 0.7),
                   rng=np.random.default_rng(int(rng.integers(0, 2**31))))
    x = _t(rng, (int(rng.integers(1, 3)), cin, size, size))
    return _layer_case(layer, x, note=f"k={kernel} s={stride} p={padding}")


@register_spec("nn.BatchNorm2d", ["nn.BatchNorm2d"])
def _build_nn_batchnorm(rng):
    from ..nn import BatchNorm2d
    c = int(rng.integers(1, 4))
    layer = BatchNorm2d(c)
    training = bool(rng.random() < 0.5)
    if training:
        layer.train()
    else:
        layer.eval()
        # Non-trivial running statistics make the eval path meaningful.
        layer.running_mean += rng.normal(size=c).astype(np.float32)
        layer.running_var *= np.exp(rng.normal(scale=0.3, size=c)).astype(
            np.float32)
    shape = (int(rng.integers(2, 4)), c, int(rng.integers(2, 4)),
             int(rng.integers(2, 4)))
    return _layer_case(layer, _t(rng, shape),
                       note="train" if training else "eval")


@register_spec("nn.ReLU", ["nn.ReLU"])
def _build_nn_relu(rng):
    from ..nn import ReLU
    return _layer_case(ReLU(), _t_away(rng, _shape(rng), 0.0, 0.05))


@register_spec("nn.MaxPool2d", ["nn.MaxPool2d"])
def _build_nn_maxpool(rng):
    from ..nn import MaxPool2d
    kernel = int(rng.integers(2, 4))
    size = kernel + int(rng.integers(0, 3))
    layer = MaxPool2d(kernel)
    x = _t_distinct(rng, (1, int(rng.integers(1, 3)), size, size))
    return _layer_case(layer, x, note=f"k={kernel}")


@register_spec("nn.AvgPool2d", ["nn.AvgPool2d"])
def _build_nn_avgpool(rng):
    from ..nn import AvgPool2d
    kernel = int(rng.integers(2, 4))
    size = kernel + int(rng.integers(0, 3))
    layer = AvgPool2d(kernel)
    return _layer_case(layer, _t(rng, (1, int(rng.integers(1, 3)), size, size)))


@register_spec("nn.GlobalAvgPool2d", ["nn.GlobalAvgPool2d"])
def _build_nn_gap(rng):
    from ..nn import GlobalAvgPool2d
    shape = (1, int(rng.integers(1, 4)), int(rng.integers(1, 4)),
             int(rng.integers(1, 4)))
    return _layer_case(GlobalAvgPool2d(), _t(rng, shape))


@register_spec("nn.Flatten", ["nn.Flatten"])
def _build_nn_flatten(rng):
    from ..nn import Flatten
    return _layer_case(Flatten(), _t(rng, _shape(rng, min_ndim=2, max_ndim=4)))


@register_spec("nn.Identity", ["nn.Identity"])
def _build_nn_identity(rng):
    from ..nn import Identity
    return _layer_case(Identity(), _t(rng, _shape(rng)))


@register_spec("nn.Dropout", ["nn.Dropout"])
def _build_nn_dropout(rng):
    from ..nn import Dropout
    p = float(rng.choice([0.0, 0.3, 0.5]))
    layer = Dropout(p)
    training = bool(rng.random() < 0.5)
    layer.train(training)
    seed = int(rng.integers(0, 2**31))

    def fn(x):
        # Re-seed so every finite-difference forward draws the same mask.
        layer.rng = np.random.default_rng(seed)
        return layer(x)

    return FuzzCase(fn, [_t(rng, _shape(rng))],
                    note=f"p={p} {'train' if training else 'eval'}")


@register_spec("nn.cross_entropy", ["nn.cross_entropy", "nn.CrossEntropyLoss"])
def _build_cross_entropy(rng):
    from ..nn import cross_entropy
    n, c = int(rng.integers(1, 5)), int(rng.integers(2, 5))
    targets = rng.integers(0, c, size=n)
    reduction = str(rng.choice(["mean", "sum", "none"]))
    return FuzzCase(lambda l: cross_entropy(l, targets, reduction=reduction),
                    [_t(rng, (n, c))], note=f"reduction={reduction}")


@register_spec("nn.MSELoss", ["nn.MSELoss"])
def _build_mse(rng):
    from ..nn import MSELoss
    shape = _shape(rng)
    reduction = str(rng.choice(["mean", "sum", "none"]))
    loss = MSELoss(reduction=reduction)
    target = rng.normal(size=shape).astype(np.float32)
    return FuzzCase(lambda p: loss(p, target), [_t(rng, shape)],
                    note=f"reduction={reduction}")


# ----------------------------------------------------------------------
# repro.core regularizer surface (L1 / L_orth including Toeplitz, Fig. 2)
# ----------------------------------------------------------------------

@register_spec("core.toeplitz_matrix_tensor", ["core.toeplitz_matrix_tensor"])
def _build_toeplitz(rng):
    from ..core.toeplitz import toeplitz_matrix_tensor
    o, c = int(rng.integers(1, 3)), int(rng.integers(1, 3))
    kernel = int(rng.integers(1, 3))
    stride = int(rng.integers(1, 3))
    padding = int(rng.integers(0, 2))
    input_size = kernel + int(rng.integers(0, 3))
    w = _t(rng, (o, c, kernel, kernel), -1.0, 1.0)
    return FuzzCase(
        lambda wi: toeplitz_matrix_tensor(wi, input_size, stride=stride,
                                          padding=padding),
        [w], note=f"k={kernel} s={stride} p={padding} in={input_size}")


def _tiny_conv_model(rng):
    from ..nn import Conv2d, Linear, Sequential
    layer_rng = np.random.default_rng(int(rng.integers(0, 2**31)))
    return Sequential(
        Conv2d(1, 2, 2, padding=1, rng=layer_rng),
        Conv2d(2, 2, 3, stride=2, padding=1, rng=layer_rng),
        Linear(4, 3, rng=layer_rng),
    )


def _regularized_weights(model, linear: bool):
    """The weight tensors a regularizer actually differentiates.

    Biases are excluded by design (Eq. 2 penalises weight matrices only),
    so they must not be handed to ``check_gradients`` — it would rightly
    complain about their missing gradients.
    """
    from ..nn import Conv2d, Linear
    kinds = (Conv2d, Linear) if linear else (Conv2d,)
    return [m.weight for m in model.modules() if isinstance(m, kinds)]


@register_spec("core.l1_regularizer", ["core.l1_regularizer"])
def _build_l1_reg(rng):
    from ..core.regularizers import l1_regularizer
    model = _tiny_conv_model(rng)
    weights = _regularized_weights(model, linear=True)
    for w in weights:
        # |w| is kinked at 0; keep weights clear of the origin.
        data = w.data
        data = np.where(np.abs(data) < 0.05,
                        0.05 * np.sign(data + 1e-9), data)
        w.data = data.astype(np.float32)
    return FuzzCase(lambda *ws: l1_regularizer(model), weights)


@register_spec("core.orthogonality_term", ["core.orthogonality_term"])
def _build_orth(rng):
    from ..core.regularizers import orthogonality_term
    model = _tiny_conv_model(rng)
    mode = str(rng.choice(["kernel", "conv", "toeplitz"]))
    weights = _regularized_weights(model, linear=(mode == "kernel"))
    if mode == "toeplitz":
        sizes = {"0": 3, "1": 4}
        return FuzzCase(
            lambda *ws: orthogonality_term(model, mode=mode,
                                           input_sizes=sizes),
            weights, note=mode)
    return FuzzCase(lambda *ws: orthogonality_term(model, mode=mode), weights,
                    note=mode)


# ----------------------------------------------------------------------
# Coverage accounting
# ----------------------------------------------------------------------

# Public names that are deliberately outside the fuzzer's contract: factory
# and introspection helpers, non-differentiable utilities, and the grad
# checker itself.
NON_DIFFERENTIABLE: dict[str, set[str]] = {
    "conv": {"im2col", "col2im", "im2col_gather", "im2col_signature",
             "clear_im2col_cache", "conv_output_size", "IM2COL_CACHE_SIZE"},
    "nn": {"Module", "Sequential", "HookHandle", "init", "accuracy"},
}


def required_coverage() -> set[str]:
    """Fully-qualified public differentiable names the registry must cover.

    Derived from the live ``__all__`` lists so a newly exported op
    immediately becomes a coverage requirement.
    """
    from .. import nn as rnn
    required: set[str] = set()
    required |= {f"ops.{n}" for n in ops.__all__}
    required |= {f"conv.{n}" for n in tconv.__all__
                 if n not in NON_DIFFERENTIABLE["conv"]}
    required |= {f"nn.{n}" for n in rnn.__all__
                 if n not in NON_DIFFERENTIABLE["nn"]}
    required |= {"core.toeplitz_matrix_tensor", "core.l1_regularizer",
                 "core.orthogonality_term"}
    return required


def covered_names() -> set[str]:
    """Union of every spec's ``covers`` declaration."""
    out: set[str] = set()
    for spec in OP_SPECS.values():
        out |= set(spec.covers)
    return out


def coverage_gaps() -> set[str]:
    """Required names no fuzz spec certifies (must be empty)."""
    return required_coverage() - covered_names()


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------

QUICK_SPECS: tuple[str, ...] = (
    # The ≤5 s tier-1 subset: the ops the paper's pipeline leans on
    # hardest (Taylor scores flow through conv/BN/CE; surgery through
    # matmul/getitem) plus one representative per backward-code family.
    "ops.add", "ops.mul", "ops.matmul", "ops.sum", "ops.max",
    "ops.log_softmax", "ops.getitem", "ops.pad2d",
    "conv.conv2d", "conv.max_pool2d",
    "nn.Linear", "nn.BatchNorm2d", "nn.cross_entropy",
    "core.toeplitz_matrix_tensor",
)


def _spec_seed(base_seed: int, name: str) -> int:
    """Stable per-spec stream: independent of registry iteration order."""
    return (base_seed * 0x9E3779B1 + zlib.crc32(name.encode())) % (2**32)


def run_spec(spec: OpSpec, seed: int = 0, rounds: int = 2) -> FuzzResult:
    """Fuzz one spec for ``rounds`` independently drawn cases."""
    rng = np.random.default_rng(_spec_seed(seed, spec.name))
    result = FuzzResult(spec=spec.name, cases=0)
    start = time.perf_counter()
    for round_index in range(rounds):
        built = spec.build(rng)
        cases = built if isinstance(built, list) else [built]
        for case in cases:
            result.cases += 1
            try:
                check_gradients(case.fn, case.inputs, atol=spec.atol,
                                rtol=spec.rtol, eps=spec.eps)
            except AssertionError as exc:
                detail = str(exc).splitlines()
                head = next((ln for ln in detail if ln.strip()), "mismatch")
                result.failures.append(
                    f"round {round_index} [{case.note}]: {head.strip()}")
            except Exception as exc:  # crash in forward/backward
                result.failures.append(
                    f"round {round_index} [{case.note}]: "
                    f"{type(exc).__name__}: {exc}")
    result.seconds = time.perf_counter() - start
    return result


def run_fuzzer(seed: int = 0, rounds: int = 2, quick: bool = False,
               select: str | None = None) -> list[FuzzResult]:
    """Fuzz the registry (or a subset) and return per-spec results.

    Parameters
    ----------
    quick:
        Restrict to :data:`QUICK_SPECS` with a single round each.
    select:
        Substring filter on spec names (applied after ``quick``).
    """
    names = list(QUICK_SPECS) if quick else sorted(OP_SPECS)
    if select:
        names = [n for n in names if select in n]
    if quick:
        rounds = min(rounds, 1)
    return [run_spec(OP_SPECS[n], seed=seed, rounds=rounds) for n in names]
