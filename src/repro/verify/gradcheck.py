"""Finite-difference gradient verification.

Promoted from ``repro.tensor.grad_check`` into the correctness subsystem:
every differentiable op and layer in this code base is validated against
central finite differences both by the unit tests and by the property-based
fuzzer in :mod:`repro.verify.fuzz`. The helpers stay importable from
:mod:`repro.tensor` for backwards compatibility.

Tolerances: forwards run in float32 while the difference quotient is taken
in float64, so the achievable agreement is bounded by float32 rounding of
the function values. ``atol=rtol=1e-2`` with ``eps=1e-3`` is conservative
for well-conditioned ops; tighten per-op only with evidence.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..tensor.tensor import Tensor

__all__ = ["numerical_grad", "check_gradients", "grad_error"]


def numerical_grad(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
                   wrt: int, eps: float = 1e-4) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input.

    The inputs are perturbed in float64 to keep the difference quotient
    numerically meaningful.
    """
    target = inputs[wrt]
    base = target.data.astype(np.float64)
    grad = np.zeros_like(base)
    flat = base.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        target.data = base.astype(np.float32)
        plus = float(fn(*inputs).data.sum())
        flat[i] = original - eps
        target.data = base.astype(np.float32)
        minus = float(fn(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    target.data = base.astype(np.float32)
    return grad


def check_gradients(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
                    atol: float = 1e-2, rtol: float = 1e-2,
                    eps: float = 1e-3) -> None:
    """Assert analytic gradients of ``fn`` match finite differences.

    Parameters
    ----------
    fn:
        Function of the input tensors returning a single tensor; the check
        backpropagates from ``sum(output)``.
    inputs:
        Input tensors; those with ``requires_grad=True`` are checked.

    Raises
    ------
    AssertionError
        When any analytic gradient deviates from the numerical one beyond
        the float32 tolerance.
    """
    for t in inputs:
        t.zero_grad()
    out = fn(*inputs)
    out.sum().backward()
    for i, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        assert t.grad is not None, f"input {i} received no gradient"
        num = numerical_grad(fn, inputs, i, eps=eps)
        np.testing.assert_allclose(
            t.grad, num, atol=atol, rtol=rtol,
            err_msg=f"gradient mismatch on input {i}",
        )


def grad_error(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
               eps: float = 1e-3) -> float:
    """Worst absolute analytic-vs-numerical gradient deviation over inputs.

    Non-asserting variant of :func:`check_gradients` used by the fuzzer to
    report magnitudes; returns 0.0 when no input requires grad.
    """
    for t in inputs:
        t.zero_grad()
    out = fn(*inputs)
    out.sum().backward()
    worst = 0.0
    for i, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        if t.grad is None:
            return float("inf")
        num = numerical_grad(fn, inputs, i, eps=eps)
        worst = max(worst, float(np.abs(t.grad - num).max()))
    return worst
