"""Semantic invariants of the pruning pipeline.

Three families of checks, each cheap enough to run on every commit:

* **Prune/mask equivalence** — zeroing a filter group's channels at its
  surgery point (:func:`repro.core.masking.group_mask_paths`) must produce
  bit-for-bit the same logits (to float32 tolerance) as physically removing
  those filters with :func:`repro.core.surgery.prune_groups`. Checked for
  every registry architecture family (VGG, ResNet, MLP) with randomly drawn
  victims, and for victims chosen by every baseline criterion in
  :data:`repro.baselines.SCORER_REGISTRY` — a scorer that produced
  out-of-range indices or a mismatched score vector fails here.

* **Taylor score ranges** — per Eq. 5–7 the per-class importance is an
  average of binarised indicators, so ``per_class ∈ [0, 1]`` and
  ``total = Σ_class ∈ [0, num_classes]`` element-wise. Violations mean the
  aggregation drifted from the paper.

* **Determinism** — two :class:`~repro.core.importance.ImportanceEvaluator`
  runs with the same seed must agree bit-identically; the whole pipeline is
  seed-deterministic by construction.

BN statistics are deliberately perturbed before the equivalence checks:
with freshly initialised statistics (zero mean, unit variance, zero beta)
masking the *conv* output happens to match surgery, and the checks would
silently pass on the buggy mask point.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field

import numpy as np

from ..baselines.scorers import SCORER_REGISTRY, ScoringContext, build_scorer
from ..core.importance import ImportanceConfig, ImportanceEvaluator
from ..core.masking import FilterMasks
from ..core.surgery import group_sizes, prune_groups
from ..data import SyntheticConfig, SyntheticImageClassification
from ..models import MODEL_REGISTRY, build_model
from ..nn import BatchNorm2d, Module
from ..tensor import Tensor, no_grad

__all__ = [
    "InvariantResult", "REGISTRY_CASES", "INFER_CASES",
    "perturb_batchnorm_stats",
    "check_prune_mask_equivalence", "check_baseline_scorer_equivalence",
    "check_taylor_score_ranges", "check_importance_determinism",
    "check_compiled_inference_equivalence",
    "check_quantized_inference_equivalence",
    "run_invariants",
]


@dataclass
class InvariantResult:
    """Outcome of one invariant check."""

    name: str
    passed: bool
    detail: str = ""
    seconds: float = 0.0
    failures: list[str] = field(default_factory=list)


# Tiny instantiations of each registry architecture family. Sized so a
# forward on a 12-image batch takes milliseconds; the invariants are
# width-independent.
REGISTRY_CASES: dict[str, dict] = {
    "vgg11": dict(num_classes=3, image_size=8, width=0.125, seed=0),
    "resnet20": dict(num_classes=3, image_size=8, width=0.25, seed=0),
    "mlp": dict(num_classes=3, image_size=8, width=0.125, seed=0),
}

_RTOL, _ATOL = 1e-4, 1e-5

# Every registry architecture at its smallest usable width — the compiled
# inference engine must reproduce eager logits on all of them.
INFER_CASES: dict[str, dict] = {
    name: dict(num_classes=3, image_size=8, seed=0,
               width=0.25 if name.startswith("resnet") else 0.125)
    for name in sorted(MODEL_REGISTRY)
}


def perturb_batchnorm_stats(model: Module, seed: int = 0) -> None:
    """Give every BN layer non-trivial statistics, as after real training.

    Freshly initialised BN (zero running mean, zero beta) maps zeroed
    channels to zero, hiding mask-point bugs; realistic statistics expose
    them.
    """
    rng = np.random.default_rng(seed)
    for _, module in model.named_modules():
        if isinstance(module, BatchNorm2d):
            module.running_mean += rng.normal(
                size=module.running_mean.shape).astype(np.float32)
            module.running_var *= np.exp(rng.normal(
                scale=0.3, size=module.running_var.shape)).astype(np.float32)
            module.bias.data = (module.bias.data + rng.normal(
                size=module.bias.data.shape)).astype(np.float32)


def _eval_batch(model_name: str, kwargs: dict, seed: int) -> np.ndarray:
    cfg = kwargs
    rng = np.random.default_rng(seed)
    shape = (6, cfg.get("in_channels", 3), cfg.get("image_size", 16),
             cfg.get("image_size", 16))
    return rng.normal(size=shape).astype(np.float32)


def _forward(model: Module, batch: np.ndarray) -> np.ndarray:
    model.eval()
    with no_grad():
        return model(batch if isinstance(batch, Tensor) else Tensor(batch)).data


def _random_victims(model: Module, groups, rng, fraction: float = 0.34):
    """Per-group victim indices: ~fraction of channels, at least one kept."""
    sizes = group_sizes(model, groups)
    victims = {}
    for group in groups:
        n = sizes[group.name]
        k = min(max(int(round(n * fraction)), 1), n - 1)
        if k <= 0:
            continue
        victims[group.name] = np.sort(rng.choice(n, size=k, replace=False))
    return victims


def _mask_vs_prune(model_name: str, kwargs: dict, victims: dict,
                   batch: np.ndarray, bn_seed: int) -> float:
    """Max |masked - pruned| logit deviation for one victim assignment."""
    masked_model = build_model(model_name, **kwargs)
    perturb_batchnorm_stats(masked_model, seed=bn_seed)
    groups = masked_model.prunable_groups()
    with FilterMasks.for_groups(masked_model, groups, victims):
        masked_out = _forward(masked_model, batch)

    pruned_model = copy.deepcopy(masked_model)
    pruned_groups = pruned_model.prunable_groups()
    sizes = group_sizes(pruned_model, pruned_groups)
    keep = {name: np.setdiff1d(np.arange(sizes[name]), idx)
            for name, idx in victims.items()}
    prune_groups(pruned_model, pruned_groups, keep)
    pruned_out = _forward(pruned_model, batch)

    np.testing.assert_allclose(masked_out, pruned_out, rtol=_RTOL, atol=_ATOL)
    return float(np.abs(masked_out - pruned_out).max())


def check_prune_mask_equivalence(seed: int = 0, trials: int = 2,
                                 cases: dict | None = None) -> InvariantResult:
    """Random-victim equivalence for every registry architecture family."""
    start = time.perf_counter()
    result = InvariantResult(name="prune_mask_equivalence", passed=True)
    worst = 0.0
    checked = 0
    for model_name, kwargs in (cases or REGISTRY_CASES).items():
        rng = np.random.default_rng(seed + 1)
        batch = _eval_batch(model_name, kwargs, seed)
        for trial in range(trials):
            probe = build_model(model_name, **kwargs)
            victims = _random_victims(probe, probe.prunable_groups(), rng)
            if not victims:
                continue
            try:
                worst = max(worst, _mask_vs_prune(
                    model_name, kwargs, victims, batch, bn_seed=seed + trial))
                checked += 1
            except AssertionError as exc:
                result.passed = False
                head = str(exc).strip().splitlines()[0] if str(exc) else ""
                result.failures.append(
                    f"{model_name} trial {trial}: {head}")
    result.detail = f"{checked} model/victim cases, worst |Δ|={worst:.2e}"
    result.seconds = time.perf_counter() - start
    return result


def check_baseline_scorer_equivalence(seed: int = 0,
                                      model_name: str = "vgg11",
                                      fraction: float = 0.3,
                                      scorers: list[str] | None = None
                                      ) -> InvariantResult:
    """Mask == prune when victims come from each baseline criterion.

    Exercises every scorer's score vector end-to-end: wrong lengths,
    out-of-range indices, or NaNs all surface as equivalence or selection
    failures.
    """
    from ..core.pruner import PercentageStrategy

    start = time.perf_counter()
    result = InvariantResult(name="baseline_scorer_equivalence", passed=True)
    kwargs = REGISTRY_CASES[model_name]
    data_cfg = SyntheticConfig(num_classes=kwargs["num_classes"],
                               image_size=kwargs["image_size"],
                               samples_per_class=8, seed=seed + 11)
    dataset = SyntheticImageClassification(data_cfg, train=True)
    ctx = ScoringContext(dataset=dataset, num_images=12, seed=seed)
    batch = _eval_batch(model_name, kwargs, seed)
    strategy = PercentageStrategy(fraction)
    worst = 0.0
    for scorer_name in (scorers if scorers is not None
                        else sorted(SCORER_REGISTRY)):
        try:
            model = build_model(model_name, **kwargs)
            perturb_batchnorm_stats(model, seed=seed)
            groups = model.prunable_groups()
            scores = build_scorer(scorer_name).scores(model, groups, ctx)
            for name, vec in scores.items():
                if not np.all(np.isfinite(vec)):
                    raise AssertionError(f"non-finite scores in group {name}")
            decision = strategy.select(
                scores, {g.name: g.min_channels for g in groups})
            if decision.is_empty():
                raise AssertionError("selected nothing at "
                                     f"fraction={fraction}")
            worst = max(worst, _mask_vs_prune(
                model_name, kwargs, decision.remove, batch, bn_seed=seed))
        except AssertionError as exc:
            result.passed = False
            head = str(exc).strip().splitlines()[0] if str(exc) else ""
            result.failures.append(f"{scorer_name}: {head}")
        except Exception as exc:
            result.passed = False
            result.failures.append(
                f"{scorer_name}: {type(exc).__name__}: {exc}")
    result.detail = (f"{len(scorers if scorers is not None else SCORER_REGISTRY)}"
                     f" scorers on {model_name}, worst |Δ|={worst:.2e}")
    result.seconds = time.perf_counter() - start
    return result


def _importance_report(seed: int, model_name: str = "vgg11"):
    kwargs = REGISTRY_CASES[model_name]
    model = build_model(model_name, **kwargs)
    data_cfg = SyntheticConfig(num_classes=kwargs["num_classes"],
                               image_size=kwargs["image_size"],
                               samples_per_class=6, seed=seed + 23)
    dataset = SyntheticImageClassification(data_cfg, train=True)
    evaluator = ImportanceEvaluator(
        model, dataset, kwargs["num_classes"],
        ImportanceConfig(images_per_class=4, seed=seed))
    paths = [g.conv for g in model.prunable_groups()]
    return evaluator.evaluate(paths), kwargs["num_classes"]


def check_taylor_score_ranges(seed: int = 0) -> InvariantResult:
    """Eq. 7 range invariant: per-class ∈ [0, 1], total ∈ [0, num_classes]."""
    start = time.perf_counter()
    result = InvariantResult(name="taylor_score_ranges", passed=True)
    report, num_classes = _importance_report(seed)
    for name, per_class in report.per_class.items():
        total = report.total[name]
        if per_class.shape != (total.shape[0], num_classes):
            result.failures.append(
                f"{name}: per_class shape {per_class.shape}, expected "
                f"({total.shape[0]}, {num_classes})")
            continue
        if np.any(per_class < 0.0) or np.any(per_class > 1.0):
            result.failures.append(
                f"{name}: per-class scores outside [0, 1] "
                f"(min={per_class.min():.3g}, max={per_class.max():.3g})")
        if np.any(total < 0.0) or np.any(total > num_classes + 1e-9):
            result.failures.append(
                f"{name}: total scores outside [0, {num_classes}] "
                f"(min={total.min():.3g}, max={total.max():.3g})")
        if not np.allclose(per_class.sum(axis=1), total, atol=1e-5):
            result.failures.append(
                f"{name}: total != sum of per-class scores")
    result.passed = not result.failures
    result.detail = f"{len(report.total)} groups, num_classes={num_classes}"
    result.seconds = time.perf_counter() - start
    return result


def check_importance_determinism(seed: int = 0) -> InvariantResult:
    """Same seed ⇒ bit-identical importance reports."""
    start = time.perf_counter()
    result = InvariantResult(name="importance_determinism", passed=True)
    first, _ = _importance_report(seed)
    second, _ = _importance_report(seed)
    for name in first.total:
        if not np.array_equal(first.total[name], second.total[name]):
            result.failures.append(f"{name}: total scores differ across runs")
        if not np.array_equal(first.per_class[name], second.per_class[name]):
            result.failures.append(f"{name}: per-class scores differ")
    result.passed = not result.failures
    result.detail = f"{len(first.total)} groups compared bit-exactly"
    result.seconds = time.perf_counter() - start
    return result


def check_compiled_inference_equivalence(seed: int = 0,
                                         quick: bool = False
                                         ) -> InvariantResult:
    """Compiled engine ≡ eager eval on every registry model, dense + pruned.

    The :mod:`repro.infer` pipeline (capture → BN folding → ReLU fusion →
    arena runtime) must reproduce eager logits to float32 tolerance. BN
    statistics are perturbed first; with fresh statistics, folding errors
    at the scale/shift step would cancel and hide.
    """
    from ..infer import compile_model

    start = time.perf_counter()
    result = InvariantResult(name="compiled_inference_equivalence",
                             passed=True)
    cases = ({k: INFER_CASES[k] for k in ("vgg11", "resnet20", "mlp")}
             if quick else INFER_CASES)
    rng = np.random.default_rng(seed + 3)
    worst = 0.0
    checked = 0
    for model_name, kwargs in cases.items():
        batch = _eval_batch(model_name, kwargs, seed)
        for variant in ("dense", "pruned"):
            try:
                model = build_model(model_name, **kwargs)
                perturb_batchnorm_stats(model, seed=seed)
                if variant == "pruned":
                    groups = model.prunable_groups()
                    victims = _random_victims(model, groups, rng)
                    sizes = group_sizes(model, groups)
                    keep = {name: np.setdiff1d(np.arange(sizes[name]), idx)
                            for name, idx in victims.items()}
                    prune_groups(model, groups, keep)
                eager_out = _forward(model, batch)
                engine = compile_model(model, batch, validate=False)
                compiled_out = engine.run(batch)
                np.testing.assert_allclose(compiled_out, eager_out,
                                           rtol=_RTOL, atol=_ATOL)
                worst = max(worst, float(
                    np.abs(compiled_out - eager_out).max()))
                checked += 1
            except AssertionError as exc:
                result.passed = False
                head = str(exc).strip().splitlines()[0] if str(exc) else ""
                result.failures.append(f"{model_name}/{variant}: {head}")
            except Exception as exc:
                result.passed = False
                result.failures.append(
                    f"{model_name}/{variant}: {type(exc).__name__}: {exc}")
    result.detail = f"{checked} model/variant cases, worst |Δ|={worst:.2e}"
    result.seconds = time.perf_counter() - start
    return result


def check_quantized_inference_equivalence(seed: int = 0,
                                          quick: bool = False
                                          ) -> InvariantResult:
    """Int8 engine ≡ exact-integer reference, and close to eager, everywhere.

    For every registry architecture, dense and pruned, the quantized
    compile path (:mod:`repro.qinfer`: percentile calibration →
    ``quantize_plan`` rewrite → int8 NHWC kernels) must

    * reproduce the exact-integer reference interpreter **bitwise** —
      the f32-BLAS-over-integer-codes trick is only legal while every
      accumulator stays exact, and any drift means that certificate
      (or the chunking it mandates) is broken; and
    * agree with eager float execution on ≥ 90% of top-1 decisions on a
      random probe — the same gate :meth:`ModelRegistry.deploy` applies
      to quantized swaps (``min_top1_agreement``), so a regression here
      fails verification before it can fail a deploy.
    """
    from ..infer import compile_model
    from ..qinfer import run_reference

    start = time.perf_counter()
    result = InvariantResult(name="quantized_inference_equivalence",
                             passed=True)
    cases = ({k: INFER_CASES[k] for k in ("vgg11", "resnet20", "mlp")}
             if quick else INFER_CASES)
    rng = np.random.default_rng(seed + 5)
    checked = 0
    worst_top1 = 1.0
    for model_name, kwargs in cases.items():
        batch = _eval_batch(model_name, kwargs, seed)
        loader = [rng.normal(size=batch.shape).astype(np.float32)
                  for _ in range(2)]
        for variant in ("dense", "pruned"):
            try:
                model = build_model(model_name, **kwargs)
                perturb_batchnorm_stats(model, seed=seed)
                if variant == "pruned":
                    groups = model.prunable_groups()
                    victims = _random_victims(model, groups, rng)
                    sizes = group_sizes(model, groups)
                    keep = {name: np.setdiff1d(np.arange(sizes[name]), idx)
                            for name, idx in victims.items()}
                    prune_groups(model, groups, keep)
                eager_out = _forward(model, batch)
                engine = compile_model(model, batch, quantize="int8",
                                       calibrate=loader, validate=False)
                native = engine.run(batch)
                reference = run_reference(engine.plan, batch)
                if native.dtype != reference.dtype or not np.array_equal(
                        native, reference):
                    result.passed = False
                    result.failures.append(
                        f"{model_name}/{variant}: native int8 engine is not "
                        "bitwise-equal to the exact reference interpreter")
                top1 = float(np.mean(np.argmax(native, -1)
                                     == np.argmax(eager_out, -1)))
                worst_top1 = min(worst_top1, top1)
                if top1 < 0.9:
                    result.passed = False
                    result.failures.append(
                        f"{model_name}/{variant}: top-1 agreement with "
                        f"eager is {top1:.2f} < 0.9")
                checked += 1
            except Exception as exc:
                result.passed = False
                result.failures.append(
                    f"{model_name}/{variant}: {type(exc).__name__}: {exc}")
    result.detail = (f"{checked} model/variant cases bitwise vs reference, "
                     f"worst top-1 {worst_top1:.2f}")
    result.seconds = time.perf_counter() - start
    return result


def run_invariants(seed: int = 0, quick: bool = False) -> list[InvariantResult]:
    """Run the full invariant battery.

    ``quick`` trims trial counts but never skips an invariant family or a
    registry architecture — the acceptance bar is VGG + ResNet + MLP
    equivalence even in quick mode.
    """
    trials = 1 if quick else 2
    scorers = (["l1", "taylor", "random"] if quick
               else sorted(SCORER_REGISTRY))
    return [
        check_prune_mask_equivalence(seed=seed, trials=trials),
        check_baseline_scorer_equivalence(seed=seed, scorers=scorers),
        check_taylor_score_ranges(seed=seed),
        check_importance_determinism(seed=seed),
        check_compiled_inference_equivalence(seed=seed, quick=quick),
        check_quantized_inference_equivalence(seed=seed, quick=quick),
    ]
