"""Golden regression fixtures.

Seed-deterministic end-to-end snapshots: for each fixture we build a tiny
registry model, run a fixed batch through it, and score its filters with
:class:`~repro.core.importance.ImportanceEvaluator`. The resulting logits
and importance scores are frozen into ``.npz`` files next to this module
(``src/repro/verify/_golden/``), so any refactor that silently changes
numerics — an op backward, BN statistics handling, the Eq. 5–7
aggregation — fails the comparison even when every local unit test still
passes.

Fixtures are compared with a small relative tolerance (not bit-exactly):
they must survive benign reassociation such as a vectorised rewrite of the
same arithmetic. Bit-level determinism of a *single build* is covered by
:func:`repro.verify.invariants.check_importance_determinism`.

Regenerate after an intentional numeric change with::

    python -m repro.verify --write-golden

and justify the refresh in the commit message.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.importance import ImportanceConfig, ImportanceEvaluator
from ..data import SyntheticConfig, SyntheticImageClassification
from ..models import build_model
from ..tensor import Tensor, no_grad

__all__ = ["GOLDEN_DIR", "GOLDEN_CASES", "GoldenResult", "build_snapshot",
           "write_golden", "check_golden", "run_golden"]

GOLDEN_DIR = Path(__file__).resolve().parent / "_golden"

# Architecture → tiny registry kwargs. Seeds are fixed; everything that
# feeds the snapshot (weights, data, importance sampling) derives from them.
GOLDEN_CASES: dict[str, dict] = {
    "vgg11": dict(num_classes=3, image_size=8, width=0.125, seed=0),
    "resnet20": dict(num_classes=3, image_size=8, width=0.25, seed=0),
    "mlp": dict(num_classes=3, image_size=8, width=0.125, seed=0),
}

_RTOL, _ATOL = 1e-4, 1e-6


@dataclass
class GoldenResult:
    """Outcome of comparing one fixture."""

    name: str
    passed: bool
    detail: str = ""
    seconds: float = 0.0
    failures: list[str] = field(default_factory=list)


def build_snapshot(name: str) -> dict[str, np.ndarray]:
    """Recompute the arrays a fixture freezes, from seeds alone."""
    kwargs = GOLDEN_CASES[name]
    model = build_model(name, **kwargs)
    num_classes = kwargs["num_classes"]
    image_size = kwargs["image_size"]

    batch = np.random.default_rng(99).normal(
        size=(4, 3, image_size, image_size)).astype(np.float32)
    model.eval()
    with no_grad():
        logits = model(Tensor(batch)).data

    data_cfg = SyntheticConfig(num_classes=num_classes, image_size=image_size,
                               samples_per_class=6, seed=31)
    dataset = SyntheticImageClassification(data_cfg, train=True)
    evaluator = ImportanceEvaluator(
        model, dataset, num_classes,
        ImportanceConfig(images_per_class=4, seed=5))
    report = evaluator.evaluate([g.conv for g in model.prunable_groups()])

    arrays: dict[str, np.ndarray] = {"logits": logits}
    for group, total in report.total.items():
        arrays[f"total::{group}"] = total
        arrays[f"per_class::{group}"] = report.per_class[group]
    return arrays


def _fixture_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.npz"


def write_golden(names: list[str] | None = None) -> list[Path]:
    """(Re)generate fixtures; returns the written paths."""
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    written = []
    for name in names or sorted(GOLDEN_CASES):
        arrays = build_snapshot(name)
        path = _fixture_path(name)
        np.savez(path, **arrays)
        written.append(path)
    return written


def check_golden(name: str) -> GoldenResult:
    """Compare the live pipeline against one frozen fixture."""
    start = time.perf_counter()
    result = GoldenResult(name=f"golden_{name}", passed=True)
    path = _fixture_path(name)
    if not path.exists():
        result.passed = False
        result.failures.append(
            f"fixture {path.name} missing — run `python -m repro.verify "
            "--write-golden`")
        result.seconds = time.perf_counter() - start
        return result
    with np.load(path) as archive:
        expected = {key: archive[key] for key in archive.files}
    actual = build_snapshot(name)
    missing = set(expected) - set(actual)
    extra = set(actual) - set(expected)
    for key in sorted(missing):
        result.failures.append(f"{key}: in fixture but not recomputed "
                               "(group renamed?)")
    for key in sorted(extra):
        result.failures.append(f"{key}: recomputed but absent from fixture "
                               "(stale fixture — regenerate)")
    for key in sorted(set(expected) & set(actual)):
        exp, act = expected[key], actual[key]
        if exp.shape != act.shape:
            result.failures.append(
                f"{key}: shape {act.shape} != fixture {exp.shape}")
            continue
        if not np.allclose(act, exp, rtol=_RTOL, atol=_ATOL):
            worst = float(np.abs(act - exp).max())
            result.failures.append(f"{key}: max |Δ|={worst:.3e} beyond "
                                   f"rtol={_RTOL}")
    result.passed = not result.failures
    result.detail = f"{len(expected)} arrays compared"
    result.seconds = time.perf_counter() - start
    return result


def run_golden(names: list[str] | None = None) -> list[GoldenResult]:
    """Compare every (or the named) fixtures."""
    return [check_golden(n) for n in (names or sorted(GOLDEN_CASES))]
