"""Correctness subsystem: gradient fuzzing, invariants, golden fixtures.

Three independent layers, runnable together via ``python -m repro.verify``:

* :mod:`repro.verify.gradcheck` — finite-difference gradient checking
  primitives (also re-exported from :mod:`repro.tensor` for backwards
  compatibility);
* :mod:`repro.verify.fuzz` — a seeded property-based fuzzer sweeping every
  public differentiable op with random shapes, strides and paddings, with
  an asserted-complete coverage registry;
* :mod:`repro.verify.invariants` — semantic invariants of the pruning
  pipeline (prune/mask equivalence, Eq. 7 score ranges, determinism);
* :mod:`repro.verify.golden` — frozen end-to-end regression fixtures.

The heavy submodules import most of the package, while ``gradcheck`` is
imported *by* :mod:`repro.tensor`; lazy attribute access keeps that edge
acyclic.
"""

from importlib import import_module

from .gradcheck import check_gradients, grad_error, numerical_grad

__all__ = [
    "check_gradients", "grad_error", "numerical_grad",
    "fuzz", "gradcheck", "golden", "invariants", "runner",
]

_LAZY_SUBMODULES = ("fuzz", "golden", "invariants", "runner")


def __getattr__(name):
    if name in _LAZY_SUBMODULES:
        module = import_module(f".{name}", __name__)
        globals()[name] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_LAZY_SUBMODULES))
