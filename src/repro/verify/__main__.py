"""``python -m repro.verify`` entry point."""

import sys

from .runner import main

sys.exit(main())
