"""CIFAR-style ResNets (He et al., 2016).

Depth ``6n + 2``: an initial 3×3 convolution, three stages of ``n`` basic
blocks with 16/32/64 base channels, global average pooling and a linear
classifier. ResNet-56 (n=9) is the network the paper evaluates; ResNet-20
(n=3) is provided for fast tests and examples.

Pruning follows the paper's constraint (Sec. IV): *"for ResNet56, to ensure
the shortcut connections during pruning, only the first layer of each
residual block is pruned"* — so every :class:`FilterGroup` covers a block's
``conv1`` with ``conv2`` as the sole consumer, leaving all residual-sum
channel counts untouched.
"""

from __future__ import annotations

import numpy as np

from ..nn import (BatchNorm2d, Conv2d, GlobalAvgPool2d, Linear, Module, ReLU,
                  Sequential)
from ..tensor import ops
from .pruning_spec import ConsumerRef, FilterGroup, PrunableModel

__all__ = ["BasicBlock", "ResNet", "resnet20", "resnet32", "resnet56"]


class BasicBlock(Module):
    """Two 3×3 convolutions with a residual connection.

    When the block changes resolution or width, the shortcut is a projection
    (1×1 convolution + batch norm), otherwise identity.
    """

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.conv1 = Conv2d(in_channels, out_channels, kernel_size=3,
                            stride=stride, padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(out_channels)
        self.relu = ReLU()
        self.conv2 = Conv2d(out_channels, out_channels, kernel_size=3,
                            stride=1, padding=1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Sequential(
                Conv2d(in_channels, out_channels, kernel_size=1, stride=stride,
                       bias=False, rng=rng),
                BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = None

    def forward(self, x):
        residual = self.shortcut(x) if self.shortcut is not None else x
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        return ops.relu(ops.add(out, residual))


class ResNet(Module, PrunableModel):
    """CIFAR ResNet of depth ``6 * blocks_per_stage + 2``.

    Parameters
    ----------
    blocks_per_stage:
        ``n`` in the 6n+2 formula (9 for ResNet-56).
    width:
        Multiplier on the 16/32/64 stage widths.
    """

    def __init__(self, blocks_per_stage: int, num_classes: int = 10,
                 in_channels: int = 3, width: float = 1.0, seed: int = 0,
                 image_size: int | None = None):
        # ``image_size`` is accepted for zoo-interface uniformity with VGG;
        # CIFAR ResNets are resolution-agnostic (global average pooling).
        super().__init__()
        rng = np.random.default_rng(seed)
        widths = [max(int(round(w * width)), 1) for w in (16, 32, 64)]
        self.blocks_per_stage = blocks_per_stage
        self.depth = 6 * blocks_per_stage + 2
        self.conv1 = Conv2d(in_channels, widths[0], kernel_size=3, padding=1,
                            bias=False, rng=rng)
        self.bn1 = BatchNorm2d(widths[0])
        self.relu = ReLU()

        def make_stage(in_ch: int, out_ch: int, stride: int) -> Sequential:
            blocks = [BasicBlock(in_ch, out_ch, stride=stride, rng=rng)]
            blocks += [BasicBlock(out_ch, out_ch, rng=rng)
                       for _ in range(blocks_per_stage - 1)]
            return Sequential(*blocks)

        self.stage1 = make_stage(widths[0], widths[0], 1)
        self.stage2 = make_stage(widths[0], widths[1], 2)
        self.stage3 = make_stage(widths[1], widths[2], 2)
        self.pool = GlobalAvgPool2d()
        self.classifier = Linear(widths[2], num_classes, rng=rng)
        self.num_classes = num_classes

    def forward(self, x):
        x = self.relu(self.bn1(self.conv1(x)))
        x = self.stage1(x)
        x = self.stage2(x)
        x = self.stage3(x)
        x = self.pool(x)
        return self.classifier(x)

    # ------------------------------------------------------------------
    def block_paths(self) -> list[str]:
        """Dotted paths of every residual block, in forward order."""
        paths = []
        for stage in ("stage1", "stage2", "stage3"):
            for i in range(self.blocks_per_stage):
                paths.append(f"{stage}.{i}")
        return paths

    def conv_layer_paths(self) -> list[str]:
        """All convolution paths (conv1, block convs, projections)."""
        paths = ["conv1"]
        for bp in self.block_paths():
            block = self.get_module(bp)
            paths.append(f"{bp}.conv1")
            paths.append(f"{bp}.conv2")
            if getattr(block, "shortcut", None) is not None:
                paths.append(f"{bp}.shortcut.0")
        return paths

    def prunable_groups(self) -> list[FilterGroup]:
        """First conv of each block only (the paper's shortcut-safe rule)."""
        groups = []
        for bp in self.block_paths():
            groups.append(FilterGroup(
                name=f"{bp}.conv1",
                conv=f"{bp}.conv1",
                bn=f"{bp}.bn1",
                consumers=(ConsumerRef(f"{bp}.conv2", "conv"),),
            ))
        return groups


def resnet20(**kwargs) -> ResNet:
    """ResNet-20 (n=3); small enough for unit tests."""
    return ResNet(3, **kwargs)


def resnet32(**kwargs) -> ResNet:
    """ResNet-32 (n=5)."""
    return ResNet(5, **kwargs)


def resnet56(**kwargs) -> ResNet:
    """ResNet-56 (n=9) — the depth evaluated in the paper."""
    return ResNet(9, **kwargs)
