"""Fully connected classifier.

The paper's motivating example (Fig. 1) shows class-aware pruning on the
*neurons* of a four-layer fully connected network; the class-aware concept
"can also be applied to filter-wise pruning". This model makes the neuron
case a first-class citizen: every hidden layer is a prunable group whose
units play the role of filters, so the whole framework (importance scores,
threshold/percentage strategies, fine-tuning) runs unchanged on MLPs.
"""

from __future__ import annotations

import numpy as np

from ..nn import Flatten, Linear, Module, ReLU, Sequential
from .pruning_spec import ConsumerRef, FilterGroup, PrunableModel

__all__ = ["MLP", "mlp"]


class MLP(Module, PrunableModel):
    """Multi-layer perceptron with prunable hidden layers.

    Parameters
    ----------
    in_features:
        Flattened input dimension (images are flattened internally).
    hidden:
        Width of each hidden layer, e.g. ``[128, 64, 32]``.
    num_classes:
        Output classes.
    """

    def __init__(self, in_features: int, hidden: list[int], num_classes: int,
                 seed: int = 0):
        super().__init__()
        if not hidden:
            raise ValueError("MLP needs at least one hidden layer to be prunable")
        rng = np.random.default_rng(seed)
        self.flatten = Flatten()
        layers: list[Module] = []
        self._linear_indices: list[int] = []
        prev = in_features
        for width in hidden:
            self._linear_indices.append(len(layers))
            layers.append(Linear(prev, width, rng=rng))
            layers.append(ReLU())
            prev = width
        self.body = Sequential(*layers)
        self.classifier = Linear(prev, num_classes, rng=rng)
        self.num_classes = num_classes

    def forward(self, x):
        x = self.flatten(x)
        x = self.body(x)
        return self.classifier(x)

    def prunable_groups(self) -> list[FilterGroup]:
        groups = []
        n = len(self._linear_indices)
        for k, li in enumerate(self._linear_indices):
            path = f"body.{li}"
            if k + 1 < n:
                consumer = ConsumerRef(f"body.{self._linear_indices[k + 1]}", "linear")
            else:
                consumer = ConsumerRef("classifier", "linear")
            groups.append(FilterGroup(name=path, conv=path, kind="linear",
                                      consumers=(consumer,)))
        return groups


def mlp(num_classes: int = 10, image_size: int = 16, in_channels: int = 3,
        hidden: list[int] | None = None, width: float = 1.0,
        seed: int = 0) -> MLP:
    """Zoo-interface MLP factory (registry name ``"mlp"``).

    Accepts the same image-shaped kwargs as the conv models so benchmark
    configs and checkpoints can treat all architectures uniformly; the
    input is flattened to ``in_channels * image_size**2`` features.
    ``width`` scales the default ``[128, 64]`` hidden stack.
    """
    hidden = [128, 64] if hidden is None else list(hidden)
    hidden = [max(int(round(h * width)), 1) for h in hidden]
    return MLP(in_channels * image_size * image_size, hidden, num_classes,
               seed=seed)
