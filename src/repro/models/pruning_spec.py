"""Channel-dependency metadata used by filter surgery.

Removing output channels of a convolution is only consistent if every
module that consumes those channels shrinks its input side accordingly
(following batch-norm, the next convolution, or the classifier). Each model
publishes this knowledge as a list of :class:`FilterGroup` records; the
surgery code in :mod:`repro.core.surgery` is then architecture-agnostic.

The DepGraph baseline (:mod:`repro.baselines.depgraph`) derives equivalent
groups automatically from a traced forward pass; tests assert both sources
agree on the models in the zoo.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ConsumerRef", "FilterGroup", "PrunableModel"]


@dataclass(frozen=True)
class ConsumerRef:
    """A module whose *input* side depends on a producer's output channels.

    Attributes
    ----------
    path:
        Dotted module path inside the model (``features.3``).
    kind:
        ``"conv"`` for :class:`~repro.nn.Conv2d` input channels,
        ``"linear"`` for :class:`~repro.nn.Linear` input features.
    group_size:
        For linear consumers fed by a flattened feature map: number of
        consecutive input columns per channel (the spatial extent H*W).
    """

    path: str
    kind: str
    group_size: int = 1

    def __post_init__(self):
        if self.kind not in ("conv", "linear"):
            raise ValueError(f"unknown consumer kind {self.kind!r}")


@dataclass(frozen=True)
class FilterGroup:
    """One independently prunable set of output channels.

    Attributes
    ----------
    name:
        Stable identifier used in reports (defaults to the conv path).
    conv:
        Dotted path of the producing layer whose output channels (filters
        for conv layers, units for linear layers) are pruned.
    kind:
        ``"conv"`` or ``"linear"`` — type of the producing layer.
    bn:
        Dotted path of the batch-norm bound to the producer, if any.
    consumers:
        Downstream modules whose input side must shrink with the producer.
    min_channels:
        Lower bound on how many channels must survive (surgery never prunes
        a group below this).
    """

    name: str
    conv: str
    consumers: tuple[ConsumerRef, ...]
    bn: str | None = None
    kind: str = "conv"
    min_channels: int = 1


class PrunableModel:
    """Mixin interface implemented by every model in the zoo."""

    def prunable_groups(self) -> list[FilterGroup]:
        """Return the model's independently prunable filter groups."""
        raise NotImplementedError
