"""Name-based model construction for benchmark configs and examples."""

from __future__ import annotations

from typing import Callable

from ..nn import Module
from .mlp import mlp
from .resnet import resnet20, resnet32, resnet56
from .vgg import vgg11, vgg13, vgg16, vgg19

__all__ = ["MODEL_REGISTRY", "build_model", "available_models"]

MODEL_REGISTRY: dict[str, Callable[..., Module]] = {
    "vgg11": vgg11,
    "vgg13": vgg13,
    "vgg16": vgg16,
    "vgg19": vgg19,
    "resnet20": resnet20,
    "resnet32": resnet32,
    "resnet56": resnet56,
    "mlp": mlp,
}


def available_models() -> list[str]:
    """Sorted model names accepted by :func:`build_model`."""
    return sorted(MODEL_REGISTRY)


def build_model(name: str, **kwargs) -> Module:
    """Instantiate a zoo model by name.

    Raises
    ------
    KeyError
        With the list of valid names, when ``name`` is unknown.
    """
    try:
        factory = MODEL_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {', '.join(available_models())}"
        ) from None
    model = factory(**kwargs)
    # Record the construction recipe so checkpoints (repro.io) can rebuild
    # the architecture before loading possibly-pruned weights.
    model.arch = {"name": name, **kwargs}
    return model
