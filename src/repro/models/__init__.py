"""Model zoo: VGG and ResNet (CIFAR-style) plus an MLP, with pruning metadata."""

from .mlp import MLP, mlp
from .pruning_spec import ConsumerRef, FilterGroup, PrunableModel
from .registry import MODEL_REGISTRY, available_models, build_model
from .resnet import BasicBlock, ResNet, resnet20, resnet32, resnet56
from .vgg import VGG, VGG_CONFIGS, vgg11, vgg13, vgg16, vgg19

__all__ = [
    "ConsumerRef", "FilterGroup", "PrunableModel",
    "VGG", "VGG_CONFIGS", "vgg11", "vgg13", "vgg16", "vgg19",
    "ResNet", "BasicBlock", "resnet20", "resnet32", "resnet56",
    "MLP", "mlp",
    "MODEL_REGISTRY", "build_model", "available_models",
]
