"""VGG networks for CIFAR-scale image classification.

The standard CIFAR adaptation of VGG (as used by the paper and by the
pruning literature it compares against: conv stacks with batch norm,
max-pooling between stages, and a single linear classifier head).

Two departures from the 224×224 original, both standard for CIFAR:

* the three 4096-unit FC layers are replaced by one classifier layer;
* pooling stages are only emitted while the spatial size stays >= 2, so the
  same configs work at the reduced resolutions the benchmarks use.

A ``width`` multiplier scales every stage, which is how the benchmarks fit
the paper's experiments into a CPU budget while preserving depth/topology.
"""

from __future__ import annotations

import numpy as np

from ..nn import (BatchNorm2d, Conv2d, Flatten, GlobalAvgPool2d, Linear,
                  MaxPool2d, Module, ReLU, Sequential)
from .pruning_spec import ConsumerRef, FilterGroup, PrunableModel

__all__ = ["VGG", "vgg11", "vgg13", "vgg16", "vgg19", "VGG_CONFIGS"]

# Stage configurations from Simonyan & Zisserman; "M" is a 2x2 max-pool.
VGG_CONFIGS: dict[str, list] = {
    "vgg11": [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    "vgg13": [64, 64, "M", 128, 128, "M", 256, 256, "M", 512, 512, "M",
              512, 512, "M"],
    "vgg16": [64, 64, "M", 128, 128, "M", 256, 256, 256, "M", 512, 512, 512,
              "M", 512, 512, 512, "M"],
    "vgg19": [64, 64, "M", 128, 128, "M", 256, 256, 256, 256, "M", 512, 512,
              512, 512, "M", 512, 512, 512, 512, "M"],
}


class VGG(Module, PrunableModel):
    """Configurable VGG with pruning metadata.

    Parameters
    ----------
    config:
        Stage list mixing channel counts and ``"M"`` pool markers.
    num_classes:
        Output classes.
    image_size:
        Input resolution (square); controls how many pools are emitted and
        the classifier fan-in when ``head="flatten"``.
    width:
        Multiplier on every stage's channel count (minimum 1 channel).
    head:
        ``"gap"`` (global average pool then linear — default) or
        ``"flatten"`` (flatten the final feature map into the classifier,
        exercising the grouped-column surgery path).
    """

    def __init__(self, config: list, num_classes: int = 10, image_size: int = 32,
                 in_channels: int = 3, width: float = 1.0, head: str = "gap",
                 seed: int = 0):
        super().__init__()
        if head not in ("gap", "flatten"):
            raise ValueError(f"unknown head {head!r}")
        rng = np.random.default_rng(seed)
        layers: list[Module] = []
        self._conv_indices: list[int] = []
        self._bn_indices: list[int] = []
        channels = in_channels
        size = image_size
        for item in config:
            if item == "M":
                if size >= 2:
                    layers.append(MaxPool2d(2))
                    size //= 2
                continue
            out = max(int(round(item * width)), 1)
            self._conv_indices.append(len(layers))
            layers.append(Conv2d(channels, out, kernel_size=3, padding=1,
                                 bias=False, rng=rng))
            self._bn_indices.append(len(layers))
            layers.append(BatchNorm2d(out))
            layers.append(ReLU())
            channels = out
        self.features = Sequential(*layers)
        self.head = head
        self.num_classes = num_classes
        self.final_spatial = size
        if head == "gap":
            self.pool = GlobalAvgPool2d()
            self.classifier = Linear(channels, num_classes, rng=rng)
        else:
            self.pool = Flatten()
            self.classifier = Linear(channels * size * size, num_classes, rng=rng)

    def forward(self, x):
        x = self.features(x)
        x = self.pool(x)
        return self.classifier(x)

    # ------------------------------------------------------------------
    def conv_layer_paths(self) -> list[str]:
        """Dotted paths of all convolutional layers, in forward order."""
        return [f"features.{i}" for i in self._conv_indices]

    def prunable_groups(self) -> list[FilterGroup]:
        groups: list[FilterGroup] = []
        n = len(self._conv_indices)
        for k, (ci, bi) in enumerate(zip(self._conv_indices, self._bn_indices)):
            conv_path = f"features.{ci}"
            if k + 1 < n:
                consumers = (ConsumerRef(f"features.{self._conv_indices[k + 1]}",
                                         "conv"),)
            else:
                group = 1 if self.head == "gap" else self.final_spatial ** 2
                consumers = (ConsumerRef("classifier", "linear", group_size=group),)
            groups.append(FilterGroup(name=conv_path, conv=conv_path,
                                      bn=f"features.{bi}", consumers=consumers))
        return groups


def _build(name: str, **kwargs) -> VGG:
    return VGG(VGG_CONFIGS[name], **kwargs)


def vgg11(**kwargs) -> VGG:
    """VGG-11 (config A)."""
    return _build("vgg11", **kwargs)


def vgg13(**kwargs) -> VGG:
    """VGG-13 (config B)."""
    return _build("vgg13", **kwargs)


def vgg16(**kwargs) -> VGG:
    """VGG-16 (config D) — used by the paper on CIFAR-10."""
    return _build("vgg16", **kwargs)


def vgg19(**kwargs) -> VGG:
    """VGG-19 (config E) — used by the paper on CIFAR-100."""
    return _build("vgg19", **kwargs)
