"""Native int8 quantized inference (`repro.qinfer`).

Where :mod:`repro.quant` fake-quantizes (int8 grid, float32 storage and
execution), this package executes on real int8 codes inside the compiled
:mod:`repro.infer` runtime: per-channel symmetric weights, per-tensor
calibrated activations, NHWC int8 GEMM kernels with a float32-BLAS
exactness certificate, and an artifact format whose bytes reflect int8
storage. Entry point: ``compile_model(..., quantize="int8",
calibrate=loader)``.

Importing this package registers the quantized kernel builders with the
inference runtime.
"""

from . import kernels  # noqa: F401  (registers Q_BUILDERS with the runtime)
from .artifact import (ArtifactCorruptError, load_plan, plan_size_bytes,
                       save_plan)
from .calibrate import collect_scales, observation_targets
from .kernels import F32_EXACT_LIMIT, QMAX, accumulation_chunks
from .observers import (OBSERVERS, CalibrationError, MinMaxObserver,
                        Observer, PercentileObserver, make_observer)
from .reference import run_reference

__all__ = [
    "ArtifactCorruptError", "load_plan", "save_plan", "plan_size_bytes",
    "collect_scales", "observation_targets",
    "F32_EXACT_LIMIT", "QMAX", "accumulation_chunks",
    "OBSERVERS", "CalibrationError", "MinMaxObserver", "Observer",
    "PercentileObserver", "make_observer",
    "run_reference",
]
