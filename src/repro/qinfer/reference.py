"""Exact-arithmetic reference interpreter for quantized plans.

The native int8 engine's one numerically risky move is running integer
GEMMs on the float32 BLAS (:mod:`repro.qinfer.kernels` explains the
exactness certificate that licenses it). This module provides the check
for that claim: it executes the same quantized plan with the accumulation
done in int64 — *unconditionally* exact — while every other step runs
through the very same kernel builders the engine uses. Since the
epilogues (requantize, dequantize, clamps) are replayed with identical
ufunc sequences on identical operand dtypes, the reference and the native
engine must agree **bitwise**; any difference falsifies the certificate.
``compile_model(quantize="int8", validate=True)`` and the verify
invariants both enforce this equality.

Not a performance path — it interprets one batch at build-time cost.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import as_strided

from ..infer.kernels import BUILDERS
from ..infer.plan import Plan
from .kernels import QMAX, accumulation_chunks, gemm_matrices, quantize_bias

__all__ = ["run_reference"]


class _RefContext:
    """Stand-in for the engine's build context over plain per-run arrays."""

    def __init__(self, plan: Plan, n: int):
        self.plan = plan
        self.n = n
        self.im2col = "strided"
        self.max_batch = n
        self._arrays: dict[int, np.ndarray] = {}
        self._aliases: dict[int, callable] = {}
        self._scratch: dict[tuple[int, str], np.ndarray] = {}
        self._step = None

    def _bind(self, step):
        self._step = step

    def shape(self, vid: int) -> tuple[int, ...]:
        if vid in self.plan.constants:
            return tuple(self.plan.shapes[vid])
        return (self.n,) + tuple(self.plan.shapes[vid][1:])

    def getter(self, vid: int):
        if vid in self.plan.constants:
            const = np.asarray(self.plan.constants[vid], dtype=np.float32)
            return lambda n: const
        alias = self._aliases.get(vid)
        if alias is not None:
            return alias
        buf = self._arrays[vid]
        return lambda n: buf[:n]

    def out(self, vid: int) -> np.ndarray:
        buf = self._arrays.get(vid)
        if buf is None:
            dtype = self._step.params.get("out_dtype", "float32")
            buf = np.zeros(self.shape(vid), dtype=np.dtype(dtype))
            self._arrays[vid] = buf
        return buf

    def alias(self, vid: int, fn) -> None:
        self._aliases[vid] = fn

    def scratch(self, name: str, shape: tuple[int, ...], zero: bool = False,
                dtype=np.float32) -> np.ndarray:
        key = (self._step.output, name)
        buf = self._scratch.get(key)
        if buf is None:
            buf = np.zeros(shape, dtype=dtype)
            self._scratch[key] = buf
        return buf


def _exact_accumulate(cols_int: np.ndarray, wq_raw, bias_q):
    """Integer GEMM in int64, then cast to the native accumulator dtype.

    Single-chunk certified layers use a float32 accumulator natively; the
    int64 result is below ``2**24`` there, so the cast is exact and the
    value matches the native GEMM bit for bit. Chunked layers accumulate
    in float64 natively (sums of exact integers), which again equals the
    exact int64 total.
    """
    wt_f32, cert = gemm_matrices(wq_raw, bias_q)
    chunks = accumulation_chunks(cert)
    acc_int = cols_int @ wt_f32.astype(np.int64)
    if len(chunks) == 1:
        return acc_int.astype(np.float32)
    return acc_int.astype(np.float64)


def _finish(acc, p, w_scale, relu):
    """Replay the native epilogue ufunc-for-ufunc on ``(rows, O)``."""
    if p.get("emit", "q8") == "q8":
        mult = (w_scale * float(p["in_scale"])
                / float(p["out_scale"])).astype(acc.dtype)
        np.multiply(acc, mult, out=acc)
        np.rint(acc, out=acc)
        if relu:
            np.clip(acc, 0, QMAX, out=acc)
        else:
            np.clip(acc, -QMAX, QMAX, out=acc)
        return acc.astype(np.int8)
    mult = (w_scale * float(p["in_scale"])).astype(acc.dtype)
    res = np.multiply(acc, mult).astype(np.float32)
    if relu:
        np.maximum(res, 0.0, out=res)
    return res


def _ref_qconv2d(step, ctx):
    p = step.params
    wq = np.asarray(p["weight_q"], dtype=np.int8)
    o, c, kh, kw = wq.shape
    stride, padding = int(p["stride"]), int(p["padding"])
    w_scale = np.asarray(p["w_scale"], dtype=np.float64).reshape(-1)
    bias_q = quantize_bias(p.get("bias"), w_scale, float(p["in_scale"]))
    get = ctx.getter(step.inputs[0])
    out = ctx.out(step.output)
    emit_q8 = p.get("emit", "q8") == "q8"
    if emit_q8:
        oh, ow = out.shape[1], out.shape[2]
    else:
        oh, ow = out.shape[2], out.shape[3]

    def run(n):
        x = get(n).astype(np.int64)               # (n, H, W, C)
        h, w_in = x.shape[1], x.shape[2]
        if padding > 0:
            xp = np.zeros((n, h + 2 * padding, w_in + 2 * padding, c),
                          dtype=np.int64)
            xp[:, padding:padding + h, padding:padding + w_in, :] = x
        else:
            xp = x
        sn, sh, sw, sc = xp.strides
        patches = as_strided(
            xp, shape=(n, oh, ow, kh, kw, c),
            strides=(sn, sh * stride, sw * stride, sh, sw, sc),
            writeable=False)
        cols = patches.reshape(n * oh * ow, kh * kw * c).copy()
        if bias_q is not None:
            cols = np.concatenate(
                [cols, np.ones((cols.shape[0], 1), dtype=np.int64)], axis=1)
        acc = _exact_accumulate(cols, wq, bias_q)
        res = _finish(acc, p, w_scale, bool(p.get("relu", False)))
        if emit_q8:
            out[:n] = res.reshape(n, oh, ow, o)
        else:
            out[:n] = res.reshape(n, oh * ow, o).transpose(0, 2, 1).reshape(
                n, o, oh, ow)

    return run


def _ref_qlinear(step, ctx):
    p = step.params
    wq = np.asarray(p["weight_q"], dtype=np.int8)
    w_scale = np.asarray(p["w_scale"], dtype=np.float64).reshape(-1)
    bias_q = quantize_bias(p.get("bias"), w_scale, float(p["in_scale"]))
    get = ctx.getter(step.inputs[0])
    out = ctx.out(step.output)

    def run(n):
        cols = get(n).astype(np.int64)
        if bias_q is not None:
            cols = np.concatenate(
                [cols, np.ones((n, 1), dtype=np.int64)], axis=1)
        acc = _exact_accumulate(cols, wq, bias_q)
        out[:n] = _finish(acc, p, w_scale, bool(p.get("relu", False)))

    return run


_EXACT = {"qconv2d": _ref_qconv2d, "qlinear": _ref_qlinear}


def run_reference(plan: Plan, x) -> np.ndarray:
    """Interpret a (quantized or float) plan with exact GEMM accumulation."""
    x = np.asarray(x, dtype=np.float32)
    sample = tuple(plan.shapes[plan.input_id][1:])
    if x.shape == sample:
        x = x[None]
    n = x.shape[0]
    ctx = _RefContext(plan, n)
    ctx._arrays[plan.input_id] = x.astype(np.float32)
    for step in plan.steps:
        ctx._bind(step)
        builder = _EXACT.get(step.op) or BUILDERS[step.op]
        run = builder(step, ctx)
        if run is not None:
            run(n)
    return np.array(ctx.getter(plan.output_id)(n), copy=True)
