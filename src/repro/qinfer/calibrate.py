"""Activation calibration: run a float plan over data, collect scales.

Calibration executes the *optimized float plan* (the exact plan
:func:`repro.infer.optimize.quantize_plan` will rewrite, so value ids
line up) inside a normal :class:`~repro.infer.runtime.InferenceEngine`,
using :meth:`~repro.infer.runtime.InferenceEngine.run_observing` to feed
every would-be-quantized tensor to an
:class:`~repro.qinfer.observers.Observer`. No kernel instrumentation,
no second execution path — the engine that serves float traffic is the
engine that calibrates.

Observed values are the inputs and outputs of conv / linear / residual-add
steps plus the plan input; max-pool and ReLU outputs inherit their input's
scale inside ``quantize_plan`` (codes pass through those ops unchanged, so
their scale *must* equal the producer's — observing them separately would
break code/scale consistency).
"""

from __future__ import annotations

import copy

import numpy as np

from ..infer.plan import Plan
from ..infer.runtime import InferenceEngine
from .observers import CalibrationError, Observer, make_observer

__all__ = ["observation_targets", "collect_scales"]

_OBSERVED_OPS = frozenset({
    "conv2d", "conv2d_relu", "linear", "linear_relu", "add", "add_relu",
})


def observation_targets(plan: Plan) -> list[int]:
    """Value ids of the float plan whose ranges calibration must observe."""
    vids = {plan.input_id}
    for step in plan.steps:
        if step.op in _OBSERVED_OPS:
            vids.update(step.inputs)
            vids.add(step.output)
    return sorted(vids - set(plan.constants))


def _batch_array(batch) -> np.ndarray:
    if isinstance(batch, (tuple, list)):
        batch = batch[0]
    return np.asarray(getattr(batch, "data", batch), dtype=np.float32)


def collect_scales(plan: Plan, loader, observer="percentile",
                   max_batches: int | None = None,
                   engine: InferenceEngine | None = None
                   ) -> dict[int, float]:
    """Run the calibration loader through the plan; return per-value scales.

    Parameters
    ----------
    plan:
        Optimized float plan (post BN-fold / ReLU-fuse).
    loader:
        Iterable of batches or ``(batch, label)`` pairs.
    observer:
        Observer spec (see :func:`~repro.qinfer.observers.make_observer`).
        An :class:`Observer` *instance* serves as a prototype and is
        deep-copied per observed tensor.
    max_batches:
        Cap on calibration batches (``None`` consumes the loader).
    engine:
        Reuse an already-built engine for ``plan`` instead of compiling
        a fresh one.

    Raises :class:`~repro.qinfer.observers.CalibrationError` if the
    loader yields no batches or an observer sees non-finite activations.
    """
    if engine is None:
        engine = InferenceEngine(plan)
    elif engine.plan is not plan:
        raise ValueError("engine was built for a different plan")

    if isinstance(observer, Observer):
        new_observer = lambda: copy.deepcopy(observer)  # noqa: E731
    else:
        new_observer = lambda: make_observer(observer)  # noqa: E731

    observers = {vid: new_observer() for vid in observation_targets(plan)}
    hooks = {vid: ob.update for vid, ob in observers.items()}
    batches = 0
    for batch in loader:
        engine.run_observing(_batch_array(batch), hooks)
        batches += 1
        if max_batches is not None and batches >= max_batches:
            break
    if batches == 0:
        raise CalibrationError("calibration loader yielded no batches")
    return {vid: ob.scale() for vid, ob in observers.items()}
