"""Activation-range observers for post-training calibration.

Per-tensor symmetric activation quantization needs one number per observed
value: the clip range ``amax`` such that ``scale = amax / 127``. Observers
accumulate that range over a calibration loader, one :meth:`update` per
batch, and report the final scale once calibration ends.

Two strategies, both deterministic for a fixed loader and iteration order
(no sampling, no data-dependent allocation):

* :class:`MinMaxObserver` — running maximum of ``|x|``. Exact, but a
  single outlier activation dilates the grid for every other value.
* :class:`PercentileObserver` — a fixed-width histogram of ``|x|`` whose
  range doubles (with exact pairwise bin merging) whenever a batch
  exceeds it; the final range is the requested percentile of the observed
  distribution. Outliers saturate instead of stretching the grid, which
  is usually worth a small clipping error.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CalibrationError", "Observer", "MinMaxObserver",
           "PercentileObserver", "make_observer", "OBSERVERS"]

QMAX = 127  # int8 symmetric grid: codes in [-127, 127]


class CalibrationError(RuntimeError):
    """Calibration could not produce a usable activation range."""


class Observer:
    """Interface: feed batches with :meth:`update`, read :meth:`scale`."""

    def update(self, values: np.ndarray) -> None:
        raise NotImplementedError

    def amax(self) -> float:
        raise NotImplementedError

    def scale(self) -> float:
        """Final quantization scale (``amax / 127``; 1/127 if all-zero)."""
        amax = float(self.amax())
        if not np.isfinite(amax):
            raise CalibrationError(
                f"observed a non-finite activation range ({amax})")
        if amax <= 0.0:
            # An all-zero activation stream: any scale represents it
            # exactly; 1/127 keeps the dequantized grid in [-1, 1].
            return 1.0 / QMAX
        return amax / QMAX


class MinMaxObserver(Observer):
    """Running ``max |x|`` over every batch."""

    def __init__(self):
        self._amax = 0.0
        self._batches = 0

    def update(self, values: np.ndarray) -> None:
        values = np.asarray(values)
        if values.size == 0:
            return
        amax = float(np.max(np.abs(values)))
        if not np.isfinite(amax):
            # Python's max() would silently drop a NaN here (NaN
            # comparisons are False), hiding the poisoned batch.
            raise CalibrationError(
                "calibration batch contains non-finite activations")
        self._amax = max(self._amax, amax)
        self._batches += 1

    def amax(self) -> float:
        if self._batches == 0:
            raise CalibrationError("observer saw no calibration batches")
        return self._amax


class PercentileObserver(Observer):
    """Histogram-based percentile of ``|x|`` with exact range doubling.

    The histogram starts sized to the first batch's range. A later batch
    that overflows it doubles the range — merging adjacent bin pairs, so
    no previously recorded mass is lost or displaced — until the new
    maximum fits. The reported ``amax`` is the upper edge of the first
    bin where the cumulative count reaches ``percentile``.
    """

    def __init__(self, percentile: float = 99.9, bins: int = 2048):
        if not 0.0 < percentile <= 100.0:
            raise ValueError("percentile must be in (0, 100]")
        if bins < 16:
            raise ValueError("need at least 16 histogram bins")
        self.percentile = float(percentile)
        self.bins = int(bins)
        self._counts = np.zeros(self.bins, dtype=np.int64)
        self._top = 0.0
        self._batches = 0

    def _grow_to(self, amax: float) -> None:
        if self._top == 0.0:
            self._top = amax
            return
        while self._top < amax:
            merged = self._counts[0::2] + self._counts[1::2]
            self._counts[:self.bins // 2] = merged
            self._counts[self.bins // 2:] = 0
            self._top *= 2.0

    def update(self, values: np.ndarray) -> None:
        mags = np.abs(np.asarray(values, dtype=np.float64)).reshape(-1)
        if mags.size == 0:
            return
        amax = float(mags.max())
        if not np.isfinite(amax):
            raise CalibrationError(
                "calibration batch contains non-finite activations")
        self._batches += 1
        if amax > 0.0:
            self._grow_to(amax)
        if self._top > 0.0:
            idx = np.minimum(
                (mags * (self.bins / self._top)).astype(np.int64),
                self.bins - 1)
            self._counts += np.bincount(idx, minlength=self.bins)

    def amax(self) -> float:
        if self._batches == 0:
            raise CalibrationError("observer saw no calibration batches")
        total = int(self._counts.sum())
        if total == 0 or self._top == 0.0:
            return 0.0
        cdf = np.cumsum(self._counts)
        target = np.ceil(total * (self.percentile / 100.0))
        bin_idx = int(np.searchsorted(cdf, target))
        return self._top * (bin_idx + 1) / self.bins


OBSERVERS = {
    "minmax": MinMaxObserver,
    "percentile": PercentileObserver,
}


def make_observer(spec) -> Observer:
    """Build an observer from a name, a class, or pass an instance through."""
    if isinstance(spec, Observer):
        return spec
    if isinstance(spec, type) and issubclass(spec, Observer):
        return spec()
    try:
        return OBSERVERS[spec]()
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown observer {spec!r}; expected one of "
            f"{sorted(OBSERVERS)}, an Observer subclass, or an instance"
        ) from None
