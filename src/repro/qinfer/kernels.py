"""Int8 kernel builders for the compiled inference runtime.

Execution model
---------------
Quantized activations are int8 **codes** stored channels-last (NHWC); the
float engine's NCHW convention is converted at the quantize/dequantize
boundaries that :func:`repro.infer.optimize.quantize_plan` inserts. NHWC
makes the conv lowering a *tall* GEMM — im2col rows are output pixels,
columns are ``(kh, kw, c)`` taps — which is the orientation BLAS handles
well across every layer shape this runtime serves, and it makes each
GEMM's output land directly in the next layer's input layout, so the
steady state performs zero transposes.

Integer arithmetic on float hardware
------------------------------------
numpy has no fast integer GEMM (its integer matmul falls back to a
~40-50x slower non-BLAS loop), so the int8 GEMM runs on the float32 BLAS
over *integer-valued* float32 operands. That is exact, not approximate:
every product of two int8 codes has magnitude at most ``127 * 127 =
16129``, and float32 represents every integer of magnitude below ``2**24``
exactly, so any partial sum whose worst-case magnitude stays below
``2**24`` is computed without rounding **regardless of the summation
order BLAS chooses**. :func:`accumulation_chunks` certifies that bound
per layer from the actual quantized weights (``127 * sum_k |w_q[k, o]| +
|bias_q[o]|`` per output channel); when a layer exceeds it, the reduction
axis is split into certified chunks whose exact partial results are
summed in float64 (exact below ``2**53``). The certificate is what lets
:mod:`repro.qinfer.reference` demand *bitwise* equality from this engine.

Biases fold into the GEMM as an extra ones-column: ``bias_q =
rint(bias / (w_scale * in_scale))`` joins the weight matrix as its last
row, which is the standard int32-bias-at-scale-``s_w*s_a`` construction
(the rounding introduces at most ``0.5 * w_scale * in_scale`` absolute
error per output, accounted for in the documented tolerance).

The requantization epilogue (scale to the output grid, round, clamp, emit
int8) and the folded ReLU run as a short sequence of in-place ufunc
passes over the accumulator; monotone ops (max-pool, ReLU) act directly
on codes at unchanged scale because symmetric quantization commutes with
them.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import as_strided

from ..infer.kernels import register_builders

__all__ = ["Q_BUILDERS", "QMAX", "F32_EXACT_LIMIT", "accumulation_chunks",
           "gemm_matrices", "conv_cert_rows", "quantize_bias"]

QMAX = 127
# Integers with |value| < 2**24 are exactly representable in float32.
F32_EXACT_LIMIT = 2 ** 24


# ----------------------------------------------------------------------
# Exactness certificate
# ----------------------------------------------------------------------

def conv_cert_rows(wq_2d: np.ndarray, bias_q: np.ndarray | None) -> np.ndarray:
    """Per-K-row worst-case contribution table ``(K[+1], O)`` in int64.

    Row ``k`` holds ``127 * |w_q[k, o]|`` — the largest magnitude the
    products of that tap can contribute for any int8 input code. The
    bias row (if present) contributes ``|bias_q[o]|`` exactly once.
    """
    rows = QMAX * np.abs(wq_2d.astype(np.int64))
    if bias_q is not None:
        rows = np.concatenate(
            [rows, np.abs(bias_q.astype(np.int64))[None, :]], axis=0)
    return rows


def accumulation_chunks(cert_rows: np.ndarray) -> list[tuple[int, int]]:
    """Split the reduction axis so each chunk's float32 sums stay exact.

    Greedy scan over the per-row bound table: a chunk closes when adding
    the next row would let some output channel's worst-case partial sum
    reach ``2**24``. Any sub-sum of a chunk is bounded by the chunk's full
    sum of absolute terms, so the guarantee holds for every summation
    order BLAS may use. Returns ``[(0, K)]`` — one exact GEMM — for every
    realistic layer; multi-chunk splits only appear for adversarial
    weight/bias magnitudes.
    """
    k_total = cert_rows.shape[0]
    chunks: list[tuple[int, int]] = []
    start = 0
    running = np.zeros(cert_rows.shape[1], dtype=np.int64)
    for k in range(k_total):
        candidate = running + cert_rows[k]
        if start < k and int(candidate.max()) >= F32_EXACT_LIMIT:
            chunks.append((start, k))
            start = k
            running = cert_rows[k].copy()
        else:
            running = candidate
    chunks.append((start, k_total))
    return chunks


def gemm_matrices(wq_raw: np.ndarray, bias_q: np.ndarray | None
                  ) -> tuple[np.ndarray, np.ndarray]:
    """GEMM weight matrix + certificate table for a quantized layer.

    Packs int8 conv codes ``(O, C, kh, kw)`` (rows ordered to match the
    NHWC im2col tap order ``(kh, kw, c)``) or linear codes ``(O, F)``
    into a float32 ``(K[+1], O)`` matrix of integer values, with the
    optional integer bias as the final (ones-column) row. Returns
    ``(wt, cert_rows)``; the certificate table feeds
    :func:`accumulation_chunks`.
    """
    wq_raw = np.asarray(wq_raw)
    if wq_raw.ndim == 4:
        o = wq_raw.shape[0]
        wq_ko = wq_raw.transpose(2, 3, 1, 0).reshape(-1, o)
    else:                                   # linear: (O, F) -> (F, O)
        wq_ko = wq_raw.T
    cert = conv_cert_rows(wq_ko, bias_q)
    wt = np.ascontiguousarray(wq_ko, dtype=np.float32)
    if bias_q is not None:
        if int(np.abs(bias_q).max(initial=0)) >= F32_EXACT_LIMIT:
            # Chunking cannot help here: the bias *code itself* would be
            # rounded by the float32 weight matrix. Only reachable with
            # degenerate (near-zero) scales; fail loudly.
            raise ValueError(
                "quantized bias code exceeds the exact float32 integer "
                "range (2**24); activation/weight scales are degenerate")
        wt = np.concatenate(
            [wt, bias_q.astype(np.float32)[None, :]], axis=0)
    return wt, cert


def quantize_bias(bias, w_scale, in_scale) -> np.ndarray | None:
    """Integer bias on the accumulator grid (TFLite-style int32 bias).

    ``bias_q = rint(bias / (w_scale * in_scale))`` — rounding costs at
    most ``0.5 * w_scale * in_scale`` absolute error per output channel.
    """
    if bias is None:
        return None
    acc_scale = np.asarray(w_scale, dtype=np.float64) * float(in_scale)
    return np.rint(np.asarray(bias, dtype=np.float64)
                   / acc_scale).astype(np.int64)


# ----------------------------------------------------------------------
# GEMM core shared by qconv2d / qlinear
# ----------------------------------------------------------------------

def _gemm_plan(ctx, wq_raw, bias_q, rows_cap):
    """Build the (possibly chunked) GEMM and pick the accumulator dtype.

    Returns ``(chunks, gemm)`` where ``gemm(cols, rows)`` leaves the
    exact integer accumulation for the first ``rows`` rows in the
    returned accumulator (float32 for the certified single-chunk fast
    path, float64 when chunked).
    """
    wt, cert = gemm_matrices(wq_raw, bias_q)
    chunks = accumulation_chunks(cert)
    o = wt.shape[1]
    acc = ctx.scratch("acc", (rows_cap, o))
    if len(chunks) == 1:
        def gemm(cols, rows):
            np.matmul(cols[:rows], wt, out=acc[:rows])
            return acc
        return chunks, gemm

    acc_wide = ctx.scratch("acc64", (rows_cap, o), dtype=np.float64)

    def gemm(cols, rows):
        first = True
        for k0, k1 in chunks:
            np.matmul(cols[:rows, k0:k1], wt[k0:k1], out=acc[:rows])
            if first:
                np.copyto(acc_wide[:rows], acc[:rows])
                first = False
            else:
                np.add(acc_wide[:rows], acc[:rows], out=acc_wide[:rows])
        return acc_wide

    return chunks, gemm


def _requant_epilogue(acc, rows, mult, relu, outq_rows):
    """acc (rows, O) exact integers -> int8 codes on the output grid."""
    np.multiply(acc[:rows], mult, out=acc[:rows])
    np.rint(acc[:rows], out=acc[:rows])
    if relu:
        np.clip(acc[:rows], 0, QMAX, out=acc[:rows])
    else:
        np.clip(acc[:rows], -QMAX, QMAX, out=acc[:rows])
    np.copyto(outq_rows[:rows], acc[:rows], casting="unsafe")


# ----------------------------------------------------------------------
# qconv2d
# ----------------------------------------------------------------------

def _build_qconv2d(step, ctx):
    p = step.params
    wq = np.asarray(p["weight_q"], dtype=np.int8)
    o, c, kh, kw = wq.shape
    stride, padding = int(p["stride"]), int(p["padding"])
    in_scale = float(p["in_scale"])
    w_scale = np.asarray(p["w_scale"], dtype=np.float64).reshape(-1)
    relu = bool(p.get("relu", False))
    emit = p.get("emit", "q8")

    bias_q = quantize_bias(p.get("bias"), w_scale, in_scale)
    get = ctx.getter(step.inputs[0])
    in_shape = ctx.shape(step.inputs[0])          # (nb, H, W, C)
    nb, h, w_in = in_shape[0], in_shape[1], in_shape[2]
    out = ctx.out(step.output)
    if emit == "q8":
        oh, ow = out.shape[1], out.shape[2]       # (nb, OH, OW, O) int8
    else:
        oh, ow = out.shape[2], out.shape[3]       # (nb, O, OH, OW) f32
    span = oh * ow
    rows_cap = nb * span

    k_cols = kh * kw * c + (1 if bias_q is not None else 0)
    cols = ctx.scratch("cols", (rows_cap, k_cols))
    if bias_q is not None:
        cols[:, -1] = 1.0
    rs = cols.strides[0]
    itemsize = cols.itemsize

    padbuf = None
    if padding > 0:
        padbuf = ctx.scratch(
            "pad", (nb, h + 2 * padding, w_in + 2 * padding, c),
            zero=True, dtype=np.int8)

    chunks, gemm = _gemm_plan(ctx, wq, bias_q, rows_cap)

    mult_dtype = np.float32 if len(chunks) == 1 else np.float64
    if emit == "q8":
        mult = (w_scale * in_scale / float(p["out_scale"])).astype(mult_dtype)
        outq_rows = out.reshape(rows_cap, o)
    else:
        mult = (w_scale * in_scale).astype(mult_dtype)
        # Dequantized output goes back to the float engine's NCHW layout
        # through a strided write of the (nb, span, O) accumulator view.
        out_t = out.reshape(nb, o, span).transpose(0, 2, 1)

    def run(n):
        x = get(n)                                # (n, H, W, C) int8
        if padbuf is not None:
            padbuf[:n, padding:padding + h, padding:padding + w_in, :] = x
            src = padbuf
        else:
            src = x
        sn, sh, sw, sc = src.strides
        patches = as_strided(
            src, shape=(n, oh, ow, kh, kw, c),
            strides=(sn, sh * stride, sw * stride, sh, sw, sc),
            writeable=False)
        rows = n * span
        cols6 = as_strided(
            cols, shape=(n, oh, ow, kh, kw, c),
            strides=(span * rs, ow * rs, rs,
                     kw * c * itemsize, c * itemsize, itemsize))
        np.copyto(cols6, patches)                 # int8 -> f32 cast
        a = gemm(cols, rows)
        if emit == "q8":
            _requant_epilogue(a, rows, mult, relu, outq_rows)
        else:
            a3 = a.reshape(nb, span, o)
            np.multiply(a3[:n], mult, out=out_t[:n])
            if relu:
                np.maximum(out_t[:n], 0.0, out=out_t[:n])

    return run


# ----------------------------------------------------------------------
# qlinear
# ----------------------------------------------------------------------

def _build_qlinear(step, ctx):
    p = step.params
    wq = np.asarray(p["weight_q"], dtype=np.int8)       # (O, F)
    o, f = wq.shape
    in_scale = float(p["in_scale"])
    w_scale = np.asarray(p["w_scale"], dtype=np.float64).reshape(-1)
    relu = bool(p.get("relu", False))
    emit = p.get("emit", "f32")

    bias_q = quantize_bias(p.get("bias"), w_scale, in_scale)
    get = ctx.getter(step.inputs[0])
    out = ctx.out(step.output)
    nb = ctx.shape(step.inputs[0])[0]

    k_cols = f + (1 if bias_q is not None else 0)
    cols = ctx.scratch("cols", (nb, k_cols))
    if bias_q is not None:
        cols[:, -1] = 1.0

    chunks, gemm = _gemm_plan(ctx, wq, bias_q, nb)
    mult_dtype = np.float32 if len(chunks) == 1 else np.float64
    if emit == "q8":
        mult = (w_scale * in_scale / float(p["out_scale"])).astype(mult_dtype)
    else:
        mult = (w_scale * in_scale).astype(mult_dtype)

    def run(n):
        np.copyto(cols[:n, :f], get(n))           # int8 -> f32 cast
        a = gemm(cols, n)
        if emit == "q8":
            _requant_epilogue(a, n, mult, relu, out.reshape(nb, o))
        else:
            np.multiply(a[:n], mult, out=out[:n])
            if relu:
                np.maximum(out[:n], 0.0, out=out[:n])

    return run


# ----------------------------------------------------------------------
# Quantize / dequantize boundaries
# ----------------------------------------------------------------------

def _build_quantize(step, ctx):
    inv = np.float32(1.0 / float(step.params["scale"]))
    get = ctx.getter(step.inputs[0])
    out = ctx.out(step.output)
    four_d = out.ndim == 4
    s = ctx.scratch("fq", out.shape)

    def run(n):
        x = get(n)
        if four_d:
            x = x.transpose(0, 2, 3, 1)           # NCHW view -> NHWC
        np.multiply(x, inv, out=s[:n])
        np.rint(s[:n], out=s[:n])
        np.clip(s[:n], -QMAX, QMAX, out=s[:n])
        np.copyto(out[:n], s[:n], casting="unsafe")

    return run


def _build_dequantize(step, ctx):
    scale = np.float32(step.params["scale"])
    get = ctx.getter(step.inputs[0])
    out = ctx.out(step.output)
    four_d = out.ndim == 4

    def run(n):
        x = get(n)
        if four_d:
            x = x.transpose(0, 3, 1, 2)           # NHWC view -> NCHW
        np.multiply(x, scale, out=out[:n])

    return run


# ----------------------------------------------------------------------
# Code-passthrough ops (monotone under symmetric quantization)
# ----------------------------------------------------------------------

def _build_qmax_pool2d(step, ctx):
    kernel = int(step.params["kernel"])
    stride = int(step.params["stride"])
    get = ctx.getter(step.inputs[0])
    out = ctx.out(step.output)                    # (nb, OH, OW, C) int8
    oh, ow = out.shape[1], out.shape[2]
    offsets = [(i, j) for i in range(kernel) for j in range(kernel)]

    def run(n):
        x = get(n)
        i0, j0 = offsets[0]
        np.copyto(out[:n], x[:, i0:i0 + oh * stride:stride,
                             j0:j0 + ow * stride:stride, :])
        for i, j in offsets[1:]:
            np.maximum(out[:n], x[:, i:i + oh * stride:stride,
                                  j:j + ow * stride:stride, :], out=out[:n])

    return run


def _build_qrelu(step, ctx):
    get = ctx.getter(step.inputs[0])
    out = ctx.out(step.output)

    def run(n):
        np.maximum(get(n), np.int8(0), out=out[:n])

    return run


# ----------------------------------------------------------------------
# Residual add and global average pool
# ----------------------------------------------------------------------

def _build_qadd(step, ctx, relu=False):
    p = step.params
    sa, sb = float(p["a_scale"]), float(p["b_scale"])
    emit = p.get("emit", "q8")
    ga = ctx.getter(step.inputs[0])
    gb = ctx.getter(step.inputs[1])
    out = ctx.out(step.output)

    if emit == "q8":
        so = float(p["out_scale"])
        ca, cb = np.float32(sa / so), np.float32(sb / so)
        f1 = ctx.scratch("fa", out.shape)
        f2 = ctx.scratch("fb", out.shape)

        def run(n):
            np.multiply(ga(n), ca, out=f1[:n])
            np.multiply(gb(n), cb, out=f2[:n])
            np.add(f1[:n], f2[:n], out=f1[:n])
            np.rint(f1[:n], out=f1[:n])
            if relu:
                np.clip(f1[:n], 0, QMAX, out=f1[:n])
            else:
                np.clip(f1[:n], -QMAX, QMAX, out=f1[:n])
            np.copyto(out[:n], f1[:n], casting="unsafe")

        return run

    tmp = ctx.scratch("fb", out.shape)            # f32 NCHW emit

    def run(n):
        a, b = ga(n), gb(n)
        if out.ndim == 4:
            a = a.transpose(0, 3, 1, 2)
            b = b.transpose(0, 3, 1, 2)
        np.multiply(a, np.float32(sa), out=out[:n])
        np.multiply(b, np.float32(sb), out=tmp[:n])
        np.add(out[:n], tmp[:n], out=out[:n])
        if relu:
            np.maximum(out[:n], 0.0, out=out[:n])

    return run


def _build_qglobal_avg_pool(step, ctx):
    scale = float(step.params["scale"])
    get = ctx.getter(step.inputs[0])
    out = ctx.out(step.output)                    # (nb, C) f32
    in_shape = ctx.shape(step.inputs[0])          # (nb, H, W, C)
    factor = np.float32(scale / (in_shape[1] * in_shape[2]))

    def run(n):
        np.sum(get(n), axis=(1, 2), dtype=np.float32, out=out[:n])
        np.multiply(out[:n], factor, out=out[:n])

    return run


Q_BUILDERS = {
    "quantize": _build_quantize,
    "dequantize": _build_dequantize,
    "qconv2d": _build_qconv2d,
    "qlinear": _build_qlinear,
    "qmax_pool2d": _build_qmax_pool2d,
    "qrelu": _build_qrelu,
    "qadd": _build_qadd,
    "qadd_relu": lambda step, ctx: _build_qadd(step, ctx, relu=True),
    "qglobal_avg_pool": _build_qglobal_avg_pool,
}

register_builders(Q_BUILDERS)
