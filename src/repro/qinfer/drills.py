"""Quantization drills for ``python -m repro.verify --drills quant``.

Two drills extend the resilience battery to the int8 deployable:

* ``quant.deploy`` — the full fused prune+quantize deploy path: a pruned
  model is compiled to int8 (percentile calibration), serialized with
  :func:`repro.qinfer.save_plan`, and deployed *as an artifact* over an
  active float version through the serve swap gate (bitwise
  reference-interpreter validation plus the top-1 agreement gate against
  the live engine). The registry must land on the quantized version, and
  a warm restart from the manifest must restore the identical int8
  engine — never silently requantize;

* ``quant.corrupt`` — an artifact whose bytes rot on disk (the flip lands
  in the serialized scale/weight payload) must be rejected at deploy time
  with :class:`~repro.serve.registry.SwapValidationError` naming the
  corruption, while the previously active version keeps serving. A
  tampered scale is the quantized analogue of a bit-flipped checkpoint:
  the model would still *run*, just wrongly — only the artifact digest
  stands between that and production.

Like the serve drills, these guard recovery semantics with tiny models
and finish in a few seconds.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from ..infer import compile_model
from ..models import build_model
from ..verify.invariants import perturb_batchnorm_stats
from .artifact import load_plan, save_plan

__all__ = ["QUANT_DRILLS"]


def _drill_result(name: str):
    from ..resilience.drills import DrillResult
    return DrillResult(name)


def _pruned_model(seed: int):
    from ..infer.bench import _prune_model

    model = build_model("vgg11", num_classes=3, image_size=8, width=0.25,
                        seed=seed)
    perturb_batchnorm_stats(model, seed=seed)
    _prune_model(model, seed)
    model.eval()
    return model


def _calibration_loader(seed: int, batches: int = 3):
    rng = np.random.default_rng(seed + 13)
    return [rng.normal(size=(16, 3, 8, 8)).astype(np.float32)
            for _ in range(batches)]


def _drill_quant_deploy(seed: int):
    from ..serve.manifest import restore_registry
    from ..serve.registry import ModelRegistry

    result = _drill_result("quant.deploy")
    model = _pruned_model(seed)
    loader = _calibration_loader(seed)
    engine = compile_model(model, loader[0], max_batch=16,
                           quantize="int8", calibrate=loader)
    if not engine.quantized:
        result.fail("compile_model(quantize='int8') produced a float engine")

    probe = loader[0][:8]
    expected = engine.run(probe)
    with tempfile.TemporaryDirectory() as tmp:
        artifact = Path(tmp) / "pruned-int8.rplan"
        save_plan(engine.plan, artifact)

        manifest_dir = Path(tmp) / "manifest"
        with ModelRegistry(max_batch=16,
                           manifest_dir=manifest_dir) as registry:
            registry.deploy("m", "v1", model=model, input_shape=(3, 8, 8),
                            seed=seed)
            report = registry.deploy("m", "v2", artifact=artifact)
            if not report.quantized:
                result.fail("artifact deploy did not report quantized=True")
            if report.top1_agreement is None or report.top1_agreement < 0.9:
                result.fail(f"top-1 agreement gate not exercised: "
                            f"{report.top1_agreement}")
            if registry.models()["m"]["active"] != "m@v2":
                result.fail("registry did not land on the int8 version")
            served = registry.resolve("m")[1].engine.run(probe)
            if not np.array_equal(served, expected):
                result.fail("served outputs differ from the compiled engine")

        # The process dies; the manifest must bring back the *same*
        # int8 engine, bit for bit.
        with ModelRegistry(max_batch=16,
                           manifest_dir=manifest_dir) as restored:
            restore_report = restore_registry(restored, manifest_dir)
            if [e["name"] for e in restore_report.restored] != ["m"]:
                result.fail(f"warm restart did not restore the quantized "
                            f"deploy: {restore_report.summary()}")
            else:
                out = restored.resolve("m")[1].engine.run(probe)
                if not np.array_equal(out, expected):
                    result.fail("restored engine outputs differ bitwise")
                if not restored.models()["m"]["quantized"]:
                    result.fail("restored version lost its quantized flag")
    result.detail = "int8 artifact swapped in, warm restart bit-identical"
    return result


def _drill_quant_corrupt(seed: int):
    from ..serve.registry import ModelRegistry, SwapValidationError

    result = _drill_result("quant.corrupt")
    model = _pruned_model(seed)
    loader = _calibration_loader(seed)
    engine = compile_model(model, loader[0], max_batch=16,
                           quantize="int8", calibrate=loader)
    probe = loader[0][:8]

    with tempfile.TemporaryDirectory() as tmp:
        artifact = Path(tmp) / "good.rplan"
        save_plan(engine.plan, artifact)
        # Flip a byte deep in the array payload — scales and weight codes
        # live there; the manifest (and thus the structure) stays valid.
        raw = bytearray(artifact.read_bytes())
        raw[len(raw) - len(raw) // 4] ^= 0xFF
        doomed = Path(tmp) / "doomed.rplan"
        doomed.write_bytes(bytes(raw))

        with ModelRegistry(max_batch=16) as registry:
            registry.deploy("m", "v1", artifact=artifact)
            before = registry.resolve("m")[1].engine.run(probe)
            try:
                registry.deploy("m", "v2", artifact=doomed)
                result.fail("corrupted-scale artifact was accepted")
            except SwapValidationError as exc:
                if "artifact" not in str(exc):
                    result.fail(f"rejection does not name the artifact: "
                                f"{exc}")
            if registry.models()["m"]["active"] != "m@v1":
                result.fail("active version changed after a rejected swap")
            after = registry.resolve("m")[1].engine.run(probe)
            if not np.array_equal(before, after):
                result.fail("surviving version's outputs changed after the "
                            "rejected swap")

        # Belt and braces: the loader itself must refuse the bytes too.
        from .artifact import ArtifactCorruptError
        try:
            load_plan(doomed)
            result.fail("load_plan accepted the corrupted artifact")
        except ArtifactCorruptError:
            pass
    result.detail = "tampered artifact rejected, old version kept serving"
    return result


QUANT_DRILLS = [_drill_quant_deploy, _drill_quant_corrupt]
