"""Deployable plan artifacts: serialized compiled plans, honest bytes.

A compiled :class:`~repro.infer.plan.Plan` — float or int8-quantized —
serializes to a single compact container: every parameter array is
stored as raw bytes at its **native dtype** (int8 weight codes stay one
byte per element, so a quantized artifact's size on disk reflects the
real compression, not fake-quantized float32), step topology and scalar
params live in a small zlib-compressed JSON manifest, and a SHA-256
digest over the manifest plus every array's bytes makes corruption —
including a flipped scale — a load-time :class:`ArtifactCorruptError`
instead of a silently wrong model.

Array payloads are deliberately *not* compressed: size comparisons
between fp32 and int8 artifacts should measure storage layout, not
zlib's opinion of weight entropy. (The manifest is metadata, so
compressing it is fair game.)

Layout::

    b"RPLAN" | version u8 | digest (64 ascii hex) |
    manifest_len u32le | zlib(manifest JSON) | array bytes...

The manifest records each array's key, dtype, shape, offset, and length
within the payload region.
"""

from __future__ import annotations

import hashlib
import json
import zlib

import numpy as np

from ..infer.plan import Plan, Step

__all__ = ["ArtifactCorruptError", "save_plan", "load_plan",
           "plan_size_bytes"]

_MAGIC = b"RPLAN"
_VERSION = 1


class ArtifactCorruptError(RuntimeError):
    """The artifact's digest or structure does not match its contents."""


def _scalarize(value):
    """Make a non-array param JSON-safe (numpy scalars -> python)."""
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, tuple):
        return list(value)
    return value


def _digest(manifest_bytes: bytes, payload: bytes) -> str:
    h = hashlib.sha256()
    h.update(manifest_bytes)
    h.update(payload)
    return h.hexdigest()


def save_plan(plan: Plan, path) -> str:
    """Serialize a plan to ``path``; returns the content digest."""
    arrays: list[tuple[str, np.ndarray]] = []
    steps = []
    for i, step in enumerate(plan.steps):
        scalars, array_keys = {}, {}
        for key, value in step.params.items():
            if isinstance(value, np.ndarray):
                npz_key = f"s{i}.{key}"
                arrays.append((npz_key, np.ascontiguousarray(value)))
                array_keys[key] = npz_key
            else:
                scalars[key] = _scalarize(value)
        steps.append({"op": step.op, "inputs": list(step.inputs),
                      "output": step.output, "source": step.source,
                      "params": scalars, "arrays": array_keys})
    for vid in sorted(plan.constants):
        arrays.append((f"c{vid}", np.ascontiguousarray(plan.constants[vid])))

    offset = 0
    index = []
    chunks = []
    for key, arr in arrays:
        data = arr.tobytes()
        index.append({"key": key, "dtype": str(arr.dtype),
                      "shape": list(arr.shape), "offset": offset,
                      "length": len(data)})
        chunks.append(data)
        offset += len(data)

    manifest = {
        "format": "repro-plan", "version": _VERSION,
        "input_id": plan.input_id, "output_id": plan.output_id,
        "example_batch": plan.example_batch,
        "shapes": {str(vid): list(shape)
                   for vid, shape in plan.shapes.items()},
        "constants": {str(vid): f"c{vid}" for vid in plan.constants},
        "steps": steps,
        "arrays": index,
    }
    manifest_bytes = json.dumps(manifest, sort_keys=True,
                                separators=(",", ":")).encode()
    payload = b"".join(chunks)
    digest = _digest(manifest_bytes, payload)
    packed = zlib.compress(manifest_bytes, 9)
    with open(path, "wb") as fh:
        fh.write(_MAGIC)
        fh.write(bytes([_VERSION]))
        fh.write(digest.encode())
        fh.write(len(packed).to_bytes(4, "little"))
        fh.write(packed)
        fh.write(payload)
    return digest


def load_plan(path) -> Plan:
    """Load a plan artifact, verifying its digest.

    Raises :class:`ArtifactCorruptError` on any mismatch between the
    stored digest and the actual manifest/array bytes (bit flips,
    truncation, tampered scales), or on a structurally invalid file.
    """
    try:
        with open(path, "rb") as fh:
            blob = fh.read()
    except OSError as exc:
        raise ArtifactCorruptError(
            f"unreadable plan artifact {path!r}: {exc}") from exc
    header = len(_MAGIC) + 1 + 64 + 4
    if len(blob) < header or blob[:len(_MAGIC)] != _MAGIC:
        raise ArtifactCorruptError(f"{path!r} is not a repro plan artifact")
    if blob[len(_MAGIC)] != _VERSION:
        raise ArtifactCorruptError(
            f"{path!r}: unsupported artifact version {blob[len(_MAGIC)]}")
    pos = len(_MAGIC) + 1
    stored_digest = blob[pos:pos + 64].decode("ascii", errors="replace")
    pos += 64
    manifest_len = int.from_bytes(blob[pos:pos + 4], "little")
    pos += 4
    try:
        manifest_bytes = zlib.decompress(blob[pos:pos + manifest_len])
        manifest = json.loads(manifest_bytes)
    except (zlib.error, ValueError) as exc:
        raise ArtifactCorruptError(
            f"plan artifact {path!r} has a malformed manifest: "
            f"{exc}") from exc
    payload = blob[pos + manifest_len:]
    if _digest(manifest_bytes, payload) != stored_digest:
        raise ArtifactCorruptError(
            f"plan artifact {path!r} failed its integrity check "
            "(content digest mismatch)")

    try:
        contents: dict[str, np.ndarray] = {}
        for entry in manifest["arrays"]:
            start, length = entry["offset"], entry["length"]
            arr = np.frombuffer(
                payload[start:start + length],
                dtype=np.dtype(entry["dtype"])).reshape(entry["shape"])
            contents[entry["key"]] = arr.copy()   # writable, owns memory
        steps = []
        for entry in manifest["steps"]:
            params = dict(entry["params"])
            for key, array_key in entry["arrays"].items():
                params[key] = contents[array_key]
            steps.append(Step(entry["op"], tuple(entry["inputs"]),
                              entry["output"], params, entry["source"]))
        shapes = {int(vid): tuple(shape)
                  for vid, shape in manifest["shapes"].items()}
        constants = {int(vid): contents[key]
                     for vid, key in manifest["constants"].items()}
        return Plan(steps=steps, input_id=manifest["input_id"],
                    output_id=manifest["output_id"], shapes=shapes,
                    constants=constants,
                    example_batch=manifest["example_batch"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactCorruptError(
            f"plan artifact {path!r} has an inconsistent manifest: "
            f"{exc}") from exc


def plan_size_bytes(plan: Plan) -> int:
    """Parameter + constant storage of a plan at native dtypes."""
    total = 0
    for step in plan.steps:
        for value in step.params.values():
            if isinstance(value, np.ndarray):
                total += value.nbytes
    for const in plan.constants.values():
        total += np.asarray(const).nbytes
    return total
