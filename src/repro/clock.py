"""Injectable time source for everything that batches, waits, or sheds.

Timing-sensitive components (:class:`repro.infer.BatchRunner`, the
adaptive batching window and admission controller in :mod:`repro.serve`)
never call :mod:`time` directly — they go through a :class:`Clock`. In
production that is :data:`SYSTEM_CLOCK` (a thin wrapper over
``time.monotonic`` / ``time.sleep`` / ``queue.get``); in tests it is a
:class:`FakeClock` whose time only moves when the test moves it, so
batching-window, deadline, and shedding behaviour are asserted *exactly*
instead of raced against the wall clock.

The protocol is three methods:

``monotonic()``
    Seconds on a monotonic axis (epoch is arbitrary).
``sleep(seconds)``
    Block for that long. The fake clock just advances itself.
``get(queue, timeout)``
    Pop one item from a queue, waiting at most ``timeout`` seconds, or
    raise :class:`queue.Empty`. This is the one *blocking* primitive the
    batching loop needs; routing it through the clock is what lets a fake
    clock expire a batching window deterministically — if the queue is
    empty the fake simply advances virtual time by ``timeout`` and raises.
"""

from __future__ import annotations

import queue as _queue
import threading
import time as _time

__all__ = ["Clock", "SystemClock", "FakeClock", "SYSTEM_CLOCK"]


class Clock:
    """Protocol (and doc anchor) for injectable time sources."""

    def monotonic(self) -> float:
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        raise NotImplementedError

    def get(self, q, timeout: float):
        """Pop from ``q`` within ``timeout`` seconds or raise ``queue.Empty``."""
        raise NotImplementedError


class SystemClock(Clock):
    """The real thing: ``time.monotonic``, ``time.sleep``, blocking gets."""

    def monotonic(self) -> float:
        return _time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            _time.sleep(seconds)

    def get(self, q, timeout: float):
        if timeout <= 0:
            return q.get_nowait()
        return q.get(timeout=timeout)


class FakeClock(Clock):
    """Manual time for tests: it is whatever o'clock you say it is.

    ``advance``/``sleep`` move virtual time; ``get`` first tries a
    non-blocking pop and, when the queue is empty, *charges the full
    timeout* to virtual time before raising :class:`queue.Empty` — exactly
    what a real clock would have spent waiting on a quiet queue. Every
    mutation happens under a lock so a worker thread and the test driver
    can share one instance.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._lock = threading.Lock()
        self.slept: list[float] = []

    def monotonic(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("time only moves forward")
        with self._lock:
            self._now += seconds

    def sleep(self, seconds: float) -> None:
        with self._lock:
            self._now += max(float(seconds), 0.0)
            self.slept.append(float(seconds))

    def get(self, q, timeout: float):
        try:
            return q.get_nowait()
        except _queue.Empty:
            self.advance(max(float(timeout), 0.0))
            raise


SYSTEM_CLOCK = SystemClock()
