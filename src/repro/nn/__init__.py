"""Neural-network building blocks on top of :mod:`repro.tensor`."""

from . import init
from .layers import (AvgPool2d, BatchNorm2d, Conv2d, Dropout, Flatten,
                     GlobalAvgPool2d, Identity, Linear, MaxPool2d, ReLU)
from .losses import CrossEntropyLoss, MSELoss, accuracy, cross_entropy
from .module import HookHandle, Module, Sequential

__all__ = [
    "Module", "Sequential", "HookHandle",
    "Linear", "Conv2d", "BatchNorm2d", "ReLU", "MaxPool2d", "AvgPool2d",
    "GlobalAvgPool2d", "Flatten", "Dropout", "Identity",
    "CrossEntropyLoss", "MSELoss", "accuracy", "cross_entropy",
    "init",
]
