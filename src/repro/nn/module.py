"""Module system: parameter registry, submodule tree, and forward hooks.

Forward hooks are first-class here because the paper's importance engine
(Sec. III-B) must capture the activation tensor produced by every
convolutional filter and read back its gradient after a backward pass —
exactly the ``register_forward_hook`` pattern from PyTorch.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from ..tensor import Tensor

__all__ = ["Module", "Sequential", "HookHandle"]


class HookHandle:
    """Removable registration of a forward hook."""

    def __init__(self, hooks: dict[int, Callable], key: int):
        self._hooks = hooks
        self._key = key

    def remove(self) -> None:
        self._hooks.pop(self._key, None)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`~repro.tensor.Tensor` parameters and child
    modules as attributes; registration happens automatically through
    ``__setattr__``. Plain numpy arrays can be registered as *buffers*
    (non-trainable state such as batch-norm running statistics) via
    :meth:`register_buffer`.
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "_buffers", {})
        object.__setattr__(self, "_forward_hooks", {})
        object.__setattr__(self, "_hook_counter", 0)
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Attribute plumbing
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        else:
            # Re-assigning a former parameter/module with something else
            # must unregister the old entry.
            self._parameters.pop(name, None)
            self._modules.pop(name, None)
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, value: Tensor) -> None:
        """Explicitly register a trainable tensor (sets requires_grad)."""
        value.requires_grad = True
        setattr(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable state saved in :meth:`state_dict`."""
        self._buffers[name] = name
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Tree traversal
    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Tensor]:
        for _, p in self.named_parameters():
            yield p

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        for _, m in self.named_modules():
            yield m

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def named_children(self) -> Iterator[tuple[str, "Module"]]:
        yield from self._modules.items()

    def get_module(self, path: str) -> "Module":
        """Resolve a dotted path like ``features.3`` to a submodule."""
        if path == "":
            return self
        node: Module = self
        for part in path.split("."):
            if part not in node._modules:
                raise KeyError(f"no submodule {part!r} under {type(node).__name__}")
            node = node._modules[part]
        return node

    # ------------------------------------------------------------------
    # Modes and gradient management
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for m in self._modules.values():
            m.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Hooks and calling
    # ------------------------------------------------------------------
    def register_forward_hook(self, hook: Callable[["Module", tuple, Tensor], None]) -> HookHandle:
        key = self._hook_counter
        object.__setattr__(self, "_hook_counter", key + 1)
        self._forward_hooks[key] = hook
        return HookHandle(self._forward_hooks, key)

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        out = self.forward(*args, **kwargs)
        for hook in list(self._forward_hooks.values()):
            replacement = hook(self, args, out)
            if replacement is not None:
                # Hooks may rewrite the output (used by the exact-zeroing
                # importance evaluator to ablate single activations).
                out = replacement
        return out

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def state_dict(self, prefix: str = "") -> dict[str, np.ndarray]:
        """Flat mapping of parameter and buffer names to array copies."""
        state: dict[str, np.ndarray] = {}
        for name, param in self._parameters.items():
            state[f"{prefix}{name}"] = param.data.copy()
        for name in self._buffers:
            state[f"{prefix}{name}"] = np.array(getattr(self, name), copy=True)
        for name, module in self._modules.items():
            state.update(module.state_dict(prefix=f"{prefix}{name}."))
        return state

    def load_state_dict(self, state: dict[str, np.ndarray], prefix: str = "") -> None:
        """Load arrays saved by :meth:`state_dict` (shapes must match)."""
        for name, param in self._parameters.items():
            key = f"{prefix}{name}"
            if key not in state:
                raise KeyError(f"missing parameter {key!r} in state dict")
            value = state[key]
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {key!r}: "
                    f"checkpoint {value.shape} vs model {param.data.shape}")
            param.data = value.astype(param.data.dtype).copy()
        for name in self._buffers:
            key = f"{prefix}{name}"
            if key in state:
                object.__setattr__(self, name, np.array(state[key], copy=True))
        for name, module in self._modules.items():
            module.load_state_dict(state, prefix=f"{prefix}{name}.")

    def __repr__(self) -> str:
        child_lines = [f"  ({name}): {module!r}".replace("\n", "\n  ")
                       for name, module in self._modules.items()]
        header = type(self).__name__
        if not child_lines:
            return f"{header}()"
        return header + "(\n" + "\n".join(child_lines) + "\n)"


class Sequential(Module):
    """Chain of modules applied in order; indexable like a list."""

    def __init__(self, *layers: Module):
        super().__init__()
        for i, layer in enumerate(layers):
            setattr(self, str(i), layer)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def append(self, layer: Module) -> "Sequential":
        setattr(self, str(len(self._modules)), layer)
        return self

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._modules.values():
            x = layer(x)
        return x
