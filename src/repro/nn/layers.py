"""Neural-network layers.

Beyond the usual forward/backward behaviour, the convolutional, linear and
batch-norm layers expose *surgery* methods (``select_output_channels`` /
``select_input_channels``) that rebuild their parameter arrays around a kept
subset of channels. Filter pruning in :mod:`repro.core.surgery` and all the
baselines are implemented on top of these primitives, so the physical
removal logic lives in exactly one place.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, conv, ops
from . import init as init_mod
from .module import Module

__all__ = [
    "Linear", "Conv2d", "BatchNorm2d", "ReLU", "MaxPool2d", "AvgPool2d",
    "GlobalAvgPool2d", "Flatten", "Dropout", "Identity",
]


class Identity(Module):
    """No-op layer; useful as a placeholder when a block is pruned away."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.relu(x)


class Flatten(Module):
    """Flatten all dimensions after the batch axis."""

    def forward(self, x: Tensor) -> Tensor:
        return ops.flatten(x, start_dim=1)


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return conv.max_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"MaxPool2d(kernel_size={self.kernel_size}, stride={self.stride})"


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return conv.avg_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"AvgPool2d(kernel_size={self.kernel_size}, stride={self.stride})"


class GlobalAvgPool2d(Module):
    """Average over the spatial extent, producing ``(N, C)``."""

    def forward(self, x: Tensor) -> Tensor:
        return conv.global_avg_pool2d(x)


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self.rng.random(x.shape) < keep).astype(np.float32) / keep
        return ops.dropout_mask(x, mask)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class Linear(Module):
    """Fully connected layer ``y = x Wᵀ + b`` with weight ``(out, in)``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(init_mod.kaiming_uniform((out_features, in_features), rng),
                             requires_grad=True, name="weight")
        if bias:
            self.bias = Tensor(init_mod.zeros((out_features,)),
                               requires_grad=True, name="bias")
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        out = ops.matmul(x, ops.transpose(self.weight))
        if self.bias is not None:
            out = ops.add(out, self.bias)
        return out

    # -- surgery --------------------------------------------------------
    def select_output_channels(self, keep: np.ndarray) -> None:
        """Keep only the listed output units, in the given order."""
        keep = np.asarray(keep, dtype=np.intp)
        self.weight.data = np.ascontiguousarray(self.weight.data[keep])
        self.weight.zero_grad()
        if self.bias is not None:
            self.bias.data = np.ascontiguousarray(self.bias.data[keep])
            self.bias.zero_grad()
        self.out_features = len(keep)

    def select_input_channels(self, keep: np.ndarray, group_size: int = 1) -> None:
        """Keep only the listed input channels.

        ``group_size`` handles a flattened convolutional feature map feeding
        the layer: each retained channel keeps a contiguous block of
        ``group_size`` input columns (spatial positions).
        """
        keep = np.asarray(keep, dtype=np.intp)
        if group_size == 1:
            cols = keep
        else:
            cols = (keep[:, None] * group_size + np.arange(group_size)[None, :]).reshape(-1)
        self.weight.data = np.ascontiguousarray(self.weight.data[:, cols])
        self.weight.zero_grad()
        self.in_features = self.weight.data.shape[1]

    def __repr__(self) -> str:
        return (f"Linear(in_features={self.in_features}, "
                f"out_features={self.out_features}, bias={self.bias is not None})")


class Conv2d(Module):
    """2-D convolution with weight ``(out_channels, in_channels, kh, kw)``."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Tensor(init_mod.kaiming_normal(shape, rng),
                             requires_grad=True, name="weight")
        if bias:
            self.bias = Tensor(init_mod.zeros((out_channels,)),
                               requires_grad=True, name="bias")
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return conv.conv2d(x, self.weight, self.bias,
                           stride=self.stride, padding=self.padding)

    # -- surgery --------------------------------------------------------
    def select_output_channels(self, keep: np.ndarray) -> None:
        """Keep only the listed filters (output channels)."""
        keep = np.asarray(keep, dtype=np.intp)
        self.weight.data = np.ascontiguousarray(self.weight.data[keep])
        self.weight.zero_grad()
        if self.bias is not None:
            self.bias.data = np.ascontiguousarray(self.bias.data[keep])
            self.bias.zero_grad()
        self.out_channels = len(keep)

    def select_input_channels(self, keep: np.ndarray) -> None:
        """Keep only the listed input channels of every filter."""
        keep = np.asarray(keep, dtype=np.intp)
        self.weight.data = np.ascontiguousarray(self.weight.data[:, keep])
        self.weight.zero_grad()
        self.in_channels = len(keep)

    def __repr__(self) -> str:
        return (f"Conv2d({self.in_channels}, {self.out_channels}, "
                f"kernel_size={self.kernel_size}, stride={self.stride}, "
                f"padding={self.padding}, bias={self.bias is not None})")


class BatchNorm2d(Module):
    """Batch normalisation over the channel axis of NCHW tensors."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Tensor(init_mod.ones((num_features,)),
                             requires_grad=True, name="weight")
        self.bias = Tensor(init_mod.zeros((num_features,)),
                           requires_grad=True, name="bias")
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))
        # (batch_mean, biased batch_var, n) of the most recent training
        # forward; the sharded trainer reads it to reduce per-shard batch
        # statistics into the parent's running stats.
        object.__setattr__(self, "last_batch_stats", None)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects NCHW input, got shape {x.shape}")
        if self.training:
            mean = ops.mean(x, axis=(0, 2, 3), keepdims=True)
            centered = ops.sub(x, mean)
            var = ops.mean(ops.mul(centered, centered), axis=(0, 2, 3), keepdims=True)
            # Update running statistics outside the graph.
            m = self.momentum
            batch_mean = mean.data.reshape(-1)
            batch_var = var.data.reshape(-1)
            n = x.shape[0] * x.shape[2] * x.shape[3]
            unbiased = batch_var * n / max(n - 1, 1)
            object.__setattr__(self, "last_batch_stats",
                               (batch_mean, batch_var, n))
            object.__setattr__(self, "running_mean",
                               (1 - m) * self.running_mean + m * batch_mean)
            object.__setattr__(self, "running_var",
                               (1 - m) * self.running_var + m * unbiased)
            inv_std = ops.pow(ops.add(var, self.eps), -0.5)
            normed = ops.mul(centered, inv_std)
        else:
            mean = self.running_mean.reshape(1, -1, 1, 1)
            inv_std = (1.0 / np.sqrt(self.running_var + self.eps)).reshape(1, -1, 1, 1)
            normed = ops.mul(ops.sub(x, Tensor(mean)), Tensor(inv_std))
        gamma = ops.reshape(self.weight, (1, self.num_features, 1, 1))
        beta = ops.reshape(self.bias, (1, self.num_features, 1, 1))
        return ops.add(ops.mul(normed, gamma), beta)

    # -- surgery --------------------------------------------------------
    def select_channels(self, keep: np.ndarray) -> None:
        """Keep only the listed channels (affine params + running stats)."""
        keep = np.asarray(keep, dtype=np.intp)
        self.weight.data = np.ascontiguousarray(self.weight.data[keep])
        self.bias.data = np.ascontiguousarray(self.bias.data[keep])
        self.weight.zero_grad()
        self.bias.zero_grad()
        object.__setattr__(self, "running_mean",
                           np.ascontiguousarray(self.running_mean[keep]))
        object.__setattr__(self, "running_var",
                           np.ascontiguousarray(self.running_var[keep]))
        self.num_features = len(keep)

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features}, eps={self.eps}, momentum={self.momentum})"
