"""Loss functions and classification metrics."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, ops
from .module import Module

__all__ = ["CrossEntropyLoss", "MSELoss", "accuracy", "cross_entropy"]


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  reduction: str = "mean") -> Tensor:
    """Cross entropy between raw logits ``(N, C)`` and integer labels ``(N,)``.

    Equivalent to ``torch.nn.functional.cross_entropy``; computed through a
    numerically stable log-softmax.
    """
    targets = np.asarray(targets, dtype=np.intp)
    if logits.ndim != 2:
        raise ValueError(f"expected (N, C) logits, got shape {logits.shape}")
    n = logits.shape[0]
    if targets.shape != (n,):
        raise ValueError(f"expected {n} labels, got shape {targets.shape}")
    log_probs = ops.log_softmax(logits, axis=1)
    picked = ops.getitem(log_probs, (np.arange(n), targets))
    nll = ops.neg(picked)
    if reduction == "mean":
        return ops.mean(nll)
    if reduction == "sum":
        return ops.sum(nll)
    if reduction == "none":
        return nll
    raise ValueError(f"unknown reduction {reduction!r}")


class CrossEntropyLoss(Module):
    """Module wrapper around :func:`cross_entropy`."""

    def __init__(self, reduction: str = "mean"):
        super().__init__()
        self.reduction = reduction

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return cross_entropy(logits, targets, reduction=self.reduction)


class MSELoss(Module):
    """Mean squared error between two tensors of identical shape."""

    def __init__(self, reduction: str = "mean"):
        super().__init__()
        self.reduction = reduction

    def forward(self, prediction: Tensor, target) -> Tensor:
        target_t = target if isinstance(target, Tensor) else Tensor(target)
        diff = ops.sub(prediction, target_t)
        sq = ops.mul(diff, diff)
        if self.reduction == "mean":
            return ops.mean(sq)
        if self.reduction == "sum":
            return ops.sum(sq)
        return sq


def accuracy(logits: Tensor | np.ndarray, targets: np.ndarray) -> float:
    """Top-1 accuracy in ``[0, 1]``."""
    scores = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    predictions = scores.argmax(axis=1)
    return float((predictions == np.asarray(targets)).mean())
