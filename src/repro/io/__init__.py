"""Checkpointing for (possibly pruned) models."""

from .checkpoint import (CheckpointCorruptError, conform_to_state, load_model,
                         save_model)

__all__ = ["save_model", "load_model", "conform_to_state",
           "CheckpointCorruptError"]
