"""Checkpointing for (possibly pruned) models.

Pruned networks have irregular per-layer channel counts, so a checkpoint
must carry more than weights: it stores the *architecture recipe* (zoo
name + constructor kwargs) alongside the state dict. Loading rebuilds the
full-width model, shrinks every coupled channel group to the checkpoint's
sizes (reusing the DepGraph trace so the logic is architecture-agnostic),
and then loads the weights.

Format: a single ``.npz`` file whose ``__arch__`` entry is a JSON string
and whose remaining entries are the state-dict arrays.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..baselines.depgraph import prune_coupled_group, trace_coupled_groups
from ..models import build_model
from ..nn import Module

__all__ = ["save_model", "load_model", "conform_to_state"]

_ARCH_KEY = "__arch__"


def save_model(model: Module, path: str | Path,
               arch: dict | None = None) -> None:
    """Write a model checkpoint.

    Parameters
    ----------
    model:
        Model to save (pruned or not).
    arch:
        Architecture recipe ``{"name": <registry name>, **kwargs}``. May be
        omitted when the model carries an ``arch`` attribute (models built
        through :func:`repro.models.build_model` do).

    Raises
    ------
    ValueError
        When no architecture recipe is available — weights alone cannot
        rebuild a pruned network.
    """
    arch = arch if arch is not None else getattr(model, "arch", None)
    if arch is None or "name" not in arch:
        raise ValueError(
            "save_model needs an architecture recipe: pass arch={'name': ..., "
            "**kwargs} or build the model via repro.models.build_model")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {_ARCH_KEY: np.frombuffer(
        json.dumps(arch).encode("utf-8"), dtype=np.uint8)}
    payload.update(model.state_dict())
    np.savez(path, **payload)


def conform_to_state(model: Module, state: dict[str, np.ndarray],
                     input_shape: tuple[int, int, int]) -> Module:
    """Shrink a freshly built model's channel groups to match a state dict.

    Every coupled group (derived from the autograd trace) whose producer is
    larger in the model than in the checkpoint keeps its first ``n``
    channels; the weights are then overwritten by the checkpoint anyway, so
    which channels survive is irrelevant — only the shapes matter.
    """
    for group in trace_coupled_groups(model, input_shape):
        first = group.producers[0]
        key = f"{first}.weight"
        if key not in state:
            raise KeyError(f"checkpoint is missing weights for {first!r}")
        target = state[key].shape[0]
        if target > group.size:
            raise ValueError(
                f"checkpoint group {group.name!r} has {target} channels but "
                f"the rebuilt model only has {group.size}; wrong arch recipe?")
        if target < group.size:
            if not group.prunable():
                raise ValueError(
                    f"checkpoint shrinks terminal group {group.name!r}; "
                    "the class count in the arch recipe is inconsistent")
            prune_coupled_group(model, group, np.arange(target))
    return model


def load_model(path: str | Path,
               input_shape: tuple[int, int, int] | None = None) -> Module:
    """Rebuild a model from a checkpoint written by :func:`save_model`.

    Parameters
    ----------
    input_shape:
        ``(C, H, W)`` used for the conforming trace; defaults to
        ``(3, image_size, image_size)`` from the arch recipe.
    """
    data = np.load(Path(path))
    if _ARCH_KEY not in data:
        raise ValueError(f"{path} is not a repro checkpoint (missing arch)")
    arch = json.loads(bytes(data[_ARCH_KEY].tobytes()).decode("utf-8"))
    state = {k: data[k] for k in data.files if k != _ARCH_KEY}
    name = arch.pop("name")
    model = build_model(name, **arch)
    if input_shape is None:
        size = arch.get("image_size", 32)
        channels = arch.get("in_channels", 3)
        input_shape = (channels, size, size)
    conform_to_state(model, state, input_shape)
    model.load_state_dict(state)
    model.arch = {"name": name, **arch}
    return model
