"""Checkpointing for (possibly pruned) models.

Pruned networks have irregular per-layer channel counts, so a checkpoint
must carry more than weights: it stores the *architecture recipe* (zoo
name + constructor kwargs) alongside the state dict. Loading rebuilds the
full-width model, shrinks every coupled channel group to the checkpoint's
sizes (reusing the DepGraph trace so the logic is architecture-agnostic),
and then loads the weights.

Format: a single ``.npz`` file whose ``__arch__`` entry is a JSON string,
whose ``__checksum__`` entry is a SHA-256 digest of every other entry, and
whose remaining entries are the state-dict arrays.

Durability guarantees (the checkpoints are the recovery points of the
resumable pruning pipeline, see ``docs/resilience.md``):

* writes are **atomic** — the payload goes to a temporary file in the same
  directory, is fsynced, and is moved into place with ``os.replace``; a
  crash mid-save can never leave a half-written checkpoint under the
  target name;
* loads are **verified** — truncation, bit-flips, or a stale digest raise
  :class:`CheckpointCorruptError` instead of a numpy decoding backtrace.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
import zlib
from pathlib import Path

import numpy as np

from ..models import build_model
from ..nn import Module

__all__ = ["save_model", "load_model", "conform_to_state",
           "CheckpointCorruptError"]

_ARCH_KEY = "__arch__"
_CHECKSUM_KEY = "__checksum__"


class CheckpointCorruptError(ValueError):
    """The checkpoint bytes are damaged (truncated, flipped, or tampered).

    Subclasses ``ValueError`` so pre-existing broad handlers still catch
    it; resumable runs catch it specifically to fall back to an earlier
    recovery point.
    """


def _npz_path(path: str | Path) -> Path:
    """Mirror ``np.savez``'s name handling: append ``.npz`` if missing."""
    path = Path(path)
    if not path.name.endswith(".npz"):
        path = path.with_name(path.name + ".npz")
    return path


def _payload_digest(payload: dict[str, np.ndarray]) -> str:
    """Order-independent content digest of every non-checksum entry."""
    digest = hashlib.sha256()
    for key in sorted(payload):
        if key == _CHECKSUM_KEY:
            continue
        array = np.ascontiguousarray(payload[key])
        digest.update(key.encode("utf-8"))
        digest.update(str(array.dtype).encode("ascii"))
        digest.update(repr(array.shape).encode("ascii"))
        digest.update(array.tobytes())
    return digest.hexdigest()


def save_model(model: Module, path: str | Path,
               arch: dict | None = None) -> None:
    """Atomically write a checksummed model checkpoint.

    Parameters
    ----------
    model:
        Model to save (pruned or not).
    arch:
        Architecture recipe ``{"name": <registry name>, **kwargs}``. May be
        omitted when the model carries an ``arch`` attribute (models built
        through :func:`repro.models.build_model` do).

    Raises
    ------
    ValueError
        When no architecture recipe is available — weights alone cannot
        rebuild a pruned network.
    """
    arch = arch if arch is not None else getattr(model, "arch", None)
    if arch is None or "name" not in arch:
        raise ValueError(
            "save_model needs an architecture recipe: pass arch={'name': ..., "
            "**kwargs} or build the model via repro.models.build_model")
    path = _npz_path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {_ARCH_KEY: np.frombuffer(
        json.dumps(arch).encode("utf-8"), dtype=np.uint8)}
    payload.update(model.state_dict())
    payload[_CHECKSUM_KEY] = np.frombuffer(
        _payload_digest(payload).encode("ascii"), dtype=np.uint8)
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            np.savez(handle, **payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def _read_payload(path: Path) -> dict[str, np.ndarray]:
    """Materialise every npz entry, translating damage into one error."""
    try:
        with np.load(path) as data:
            return {key: np.array(data[key]) for key in data.files}
    except (zipfile.BadZipFile, zlib.error, EOFError, OSError, KeyError,
            ValueError) as exc:
        if isinstance(exc, FileNotFoundError):
            raise
        raise CheckpointCorruptError(
            f"{path} is unreadable (truncated or corrupted checkpoint): "
            f"{exc}") from exc


def conform_to_state(model: Module, state: dict[str, np.ndarray],
                     input_shape: tuple[int, int, int]) -> Module:
    """Shrink a freshly built model's channel groups to match a state dict.

    Every coupled group (derived from the autograd trace) whose producer is
    larger in the model than in the checkpoint keeps its first ``n``
    channels; the weights are then overwritten by the checkpoint anyway, so
    which channels survive is irrelevant — only the shapes matter.
    """
    # Imported here, not at module scope: depgraph sits on top of repro.core,
    # which itself checkpoints through this module (framework journaling).
    from ..baselines.depgraph import (prune_coupled_group,
                                      trace_coupled_groups)
    for group in trace_coupled_groups(model, input_shape):
        first = group.producers[0]
        key = f"{first}.weight"
        if key not in state:
            raise KeyError(f"checkpoint is missing weights for {first!r}")
        target = state[key].shape[0]
        if target > group.size:
            raise ValueError(
                f"checkpoint group {group.name!r} has {target} channels but "
                f"the rebuilt model only has {group.size}; wrong arch recipe?")
        if target < group.size:
            if not group.prunable():
                raise ValueError(
                    f"checkpoint shrinks terminal group {group.name!r}; "
                    "the class count in the arch recipe is inconsistent")
            prune_coupled_group(model, group, np.arange(target))
    return model


def load_model(path: str | Path,
               input_shape: tuple[int, int, int] | None = None) -> Module:
    """Rebuild a model from a checkpoint written by :func:`save_model`.

    Parameters
    ----------
    input_shape:
        ``(C, H, W)`` used for the conforming trace; defaults to
        ``(3, image_size, image_size)`` from the arch recipe.

    Raises
    ------
    CheckpointCorruptError
        When the file is truncated, bit-flipped, or its content checksum
        does not match the stored digest.
    """
    path = Path(path)
    payload = _read_payload(path)
    if _CHECKSUM_KEY in payload:
        expected = bytes(payload.pop(_CHECKSUM_KEY).tobytes()).decode("ascii")
        actual = _payload_digest(payload)
        if actual != expected:
            raise CheckpointCorruptError(
                f"{path} failed its content checksum "
                f"(stored {expected[:12]}..., computed {actual[:12]}...); "
                "the checkpoint was tampered with or partially written")
    if _ARCH_KEY not in payload:
        raise ValueError(f"{path} is not a repro checkpoint (missing arch)")
    arch = json.loads(bytes(payload[_ARCH_KEY].tobytes()).decode("utf-8"))
    state = {k: v for k, v in payload.items() if k != _ARCH_KEY}
    name = arch.pop("name")
    model = build_model(name, **arch)
    if input_shape is None:
        size = arch.get("image_size", 32)
        channels = arch.get("in_channels", 3)
        input_shape = (channels, size, size)
    conform_to_state(model, state, input_shape)
    model.load_state_dict(state)
    model.arch = {"name": name, **arch}
    return model
