"""Multi-method comparison tables (paper Fig. 6).

Collects per-method results — accuracy after pruning, pruning ratio, FLOPs
reduction — and renders the three panels of Fig. 6 as aligned text tables
plus ASCII bars, with the original (unpruned) accuracy as the reference
line.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baselines.harness import BaselineRunResult
from ..baselines.methods import method_display_name
from .distribution import ascii_bars

__all__ = ["MethodComparison"]


@dataclass
class MethodComparison:
    """Accumulates Fig. 6 data points for one network/dataset pair."""

    network: str
    original_accuracy: float
    results: list[BaselineRunResult] = field(default_factory=list)

    def add(self, result: BaselineRunResult) -> None:
        self.results.append(result)

    def best_accuracy_method(self) -> str:
        """Method with the highest post-pruning accuracy."""
        if not self.results:
            raise ValueError("no results recorded")
        return max(self.results, key=lambda r: r.final_accuracy).method

    def rank_of(self, method: str, metric: str = "final_accuracy") -> int:
        """1-based rank of a method under a metric (1 = best/highest)."""
        values = sorted((getattr(r, metric) for r in self.results), reverse=True)
        mine = [getattr(r, metric) for r in self.results if r.method == method]
        if not mine:
            raise KeyError(f"method {method!r} not in comparison")
        return values.index(mine[0]) + 1

    def table(self) -> str:
        """The three Fig. 6 panels as one aligned table."""
        header = (f"{'method':<22}{'accuracy':>10}{'drop':>8}"
                  f"{'prun.ratio':>12}{'FLOPs red.':>12}")
        lines = [f"== {self.network}  (original accuracy "
                 f"{self.original_accuracy * 100:.2f}%) ==", header,
                 "-" * len(header)]
        for r in sorted(self.results, key=lambda r: -r.final_accuracy):
            lines.append(
                f"{method_display_name(r.method):<22}"
                f"{r.final_accuracy * 100:>9.2f}%"
                f"{(r.final_accuracy - self.original_accuracy) * 100:>+7.2f}%"
                f"{r.pruning_ratio * 100:>11.1f}%"
                f"{r.flops_reduction * 100:>11.1f}%")
        return "\n".join(lines)

    def panels(self, width: int = 36) -> str:
        """ASCII bar rendering of the accuracy / ratio / FLOPs panels."""
        acc = {method_display_name(r.method): r.final_accuracy * 100
               for r in self.results}
        ratio = {method_display_name(r.method): r.pruning_ratio * 100
                 for r in self.results}
        flops = {method_display_name(r.method): r.flops_reduction * 100
                 for r in self.results}
        parts = [
            f"-- Top-1 accuracy (%, original = {self.original_accuracy * 100:.2f})",
            ascii_bars(acc, width=width, fmt="{:.2f}"),
            "-- Pruning ratio (%)",
            ascii_bars(ratio, width=width, fmt="{:.1f}"),
            "-- FLOPs reduction (%)",
            ascii_bars(flops, width=width, fmt="{:.1f}"),
        ]
        return "\n".join(parts)
