"""Accuracy-vs-compression trade-off sweeps.

The paper reports a single operating point per network (Table I); this
utility maps out the whole frontier by sweeping the class-count threshold
of the pruning strategy, which is the natural knob of the class-aware
method (a higher threshold prunes filters important for more classes).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from ..core.framework import (ClassAwarePruningFramework, FrameworkConfig)
from ..core.importance import ImportanceConfig
from ..core.trainer import TrainingConfig
from ..nn import Module

__all__ = ["TradeoffPoint", "threshold_sweep", "pareto_front"]


@dataclass(frozen=True)
class TradeoffPoint:
    """One operating point of the accuracy/compression frontier."""

    threshold: float
    accuracy: float
    pruning_ratio: float
    flops_reduction: float
    stop_reason: str


def threshold_sweep(model: Module, train_dataset, test_dataset,
                    num_classes: int, input_shape: tuple[int, int, int],
                    thresholds: list[float],
                    base_config: FrameworkConfig | None = None,
                    training: TrainingConfig | None = None,
                    log: bool = False) -> list[TradeoffPoint]:
    """Run the framework once per threshold on copies of a trained model.

    Returns points in the order of ``thresholds``.
    """
    base_config = base_config or FrameworkConfig()
    training = training or TrainingConfig()
    points = []
    for threshold in thresholds:
        candidate = copy.deepcopy(model)
        config = FrameworkConfig(
            score_threshold=threshold,
            max_fraction_per_iteration=base_config.max_fraction_per_iteration,
            strategy=base_config.strategy,
            finetune_epochs=base_config.finetune_epochs,
            accuracy_drop_tolerance=base_config.accuracy_drop_tolerance,
            max_iterations=base_config.max_iterations,
            finetune_lr=base_config.finetune_lr,
            importance=base_config.importance,
        )
        framework = ClassAwarePruningFramework(
            candidate, train_dataset, test_dataset, num_classes,
            input_shape, config=config, training=training)
        result = framework.run()
        point = TradeoffPoint(
            threshold=threshold,
            accuracy=result.final_accuracy,
            pruning_ratio=result.pruning_ratio,
            flops_reduction=result.flops_reduction,
            stop_reason=result.stop_reason,
        )
        points.append(point)
        if log:
            print(f"threshold {threshold:5.2f}: acc={point.accuracy:.3f} "
                  f"ratio={point.pruning_ratio:.3f}")
    return points


def pareto_front(points: list[TradeoffPoint]) -> list[TradeoffPoint]:
    """Points not dominated in (accuracy, pruning_ratio), sorted by ratio.

    A point dominates another when it is at least as good on both axes and
    strictly better on one.
    """
    front = []
    for p in points:
        dominated = any(
            (q.accuracy >= p.accuracy and q.pruning_ratio >= p.pruning_ratio
             and (q.accuracy > p.accuracy or q.pruning_ratio > p.pruning_ratio))
            for q in points)
        if not dominated:
            front.append(p)
    return sorted(front, key=lambda p: p.pruning_ratio)
