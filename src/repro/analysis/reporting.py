"""Experiment records and table formatting.

Benchmarks persist their measurements as JSON records so EXPERIMENTS.md can
be regenerated and paper-vs-measured comparisons are auditable.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

__all__ = ["ExperimentRecord", "format_table", "save_records",
           "load_records", "records_to_markdown"]


def _jsonable(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


@dataclass
class ExperimentRecord:
    """One reproduced measurement tied to a paper table/figure.

    Attributes
    ----------
    experiment:
        Paper anchor, e.g. ``"table1"`` or ``"fig6"``.
    setting:
        Row/series label, e.g. ``"VGG16-C10"`` or ``"L1+orth"``.
    paper:
        The paper's reported numbers for this setting (for side-by-side
        reporting; absolute match is not expected, shape is).
    measured:
        This reproduction's numbers.
    """

    experiment: str
    setting: str
    paper: dict[str, float] = field(default_factory=dict)
    measured: dict[str, float] = field(default_factory=dict)
    notes: str = ""

    def to_dict(self) -> dict:
        return _jsonable(asdict(self))

    def row(self) -> str:
        paper_s = ", ".join(f"{k}={v}" for k, v in self.paper.items())
        meas_s = ", ".join(f"{k}={v:.3f}" if isinstance(v, float) else f"{k}={v}"
                           for k, v in self.measured.items())
        return f"{self.experiment:<8} {self.setting:<24} paper[{paper_s}] measured[{meas_s}]"


def format_table(headers: list[str], rows: list[list[Any]],
                 title: str = "") -> str:
    """Align a list of rows under headers (monospace report tables)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def records_to_markdown(records: list["ExperimentRecord"]) -> str:
    """Render records as a GitHub-flavoured markdown table.

    Used to regenerate the measured columns of EXPERIMENTS.md from the
    JSON files the benchmarks write.
    """
    if not records:
        return "(no records)"
    metric_keys: list[str] = []
    for record in records:
        for key in record.measured:
            if key not in metric_keys:
                metric_keys.append(key)
    header = ["experiment", "setting"] + metric_keys + ["paper"]
    lines = ["| " + " | ".join(header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    for record in records:
        cells = [record.experiment, record.setting]
        for key in metric_keys:
            value = record.measured.get(key, "")
            cells.append(f"{value:.2f}" if isinstance(value, float) else
                         str(value))
        paper = ", ".join(f"{k}={v}" for k, v in record.paper.items())
        cells.append(paper or "—")
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def save_records(records: list[ExperimentRecord], path: str | Path) -> None:
    """Write records as a JSON list (parents created as needed)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump([r.to_dict() for r in records], fh, indent=2)


def load_records(path: str | Path) -> list[ExperimentRecord]:
    """Read records saved by :func:`save_records`."""
    with open(path) as fh:
        raw = json.load(fh)
    return [ExperimentRecord(**item) for item in raw]
