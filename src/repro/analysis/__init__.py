"""Score-distribution analysis, method comparisons and experiment records."""

from .comparison import MethodComparison
from .distribution import (DistributionComparison, ascii_bars,
                           ascii_histogram, layer_average_scores,
                           polarization_index, report_correlation,
                           score_histogram)
from .sensitivity import (LayerSensitivity, layer_sensitivity,
                          sensitivity_vs_importance)
from .reporting import (ExperimentRecord, format_table, load_records,
                        save_records)
from .tradeoff import TradeoffPoint, pareto_front, threshold_sweep

__all__ = [
    "score_histogram", "DistributionComparison", "ascii_histogram",
    "ascii_bars", "layer_average_scores", "polarization_index",
    "MethodComparison", "report_correlation",
    "ExperimentRecord", "format_table", "save_records", "load_records",
    "TradeoffPoint", "threshold_sweep", "pareto_front",
    "LayerSensitivity", "layer_sensitivity", "sensitivity_vs_importance",
]
