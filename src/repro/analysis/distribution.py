"""Importance-score distribution analysis (paper Figs. 4, 7, 8).

The paper's qualitative evidence is carried by score histograms:

* Fig. 4 — per-layer histogram of filter total scores before vs after
  pruning (survivors shift towards the class-count maximum);
* Fig. 7 — per-layer *average* score before vs after pruning;
* Fig. 8 — histogram under the four regulariser settings (none / L1 /
  orth / both), showing the polarisation the modified loss induces.

Figures are rendered as ASCII bar charts so every benchmark reproduces
them without a plotting dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.importance import ImportanceReport

__all__ = ["score_histogram", "DistributionComparison", "ascii_histogram",
           "ascii_bars", "layer_average_scores", "polarization_index",
           "report_correlation"]


def report_correlation(a: ImportanceReport, b: ImportanceReport) -> float:
    """Spearman rank correlation between two reports' total scores.

    Used to verify the paper's Sec. IV claim that evaluating more than
    M = 10 images per class leaves the importance scores "almost the
    same": the correlation between the M=10 report and a larger-M report
    should be near 1.
    """
    from scipy.stats import spearmanr
    if set(a.total) != set(b.total):
        raise ValueError("reports cover different groups")
    x = a.all_scores()
    y = b.all_scores()
    if len(x) != len(y):
        raise ValueError("reports cover different filter counts")
    if np.allclose(x, x[0]) or np.allclose(y, y[0]):
        # Degenerate constant vector: correlation undefined; treat exact
        # equality as perfect agreement.
        return 1.0 if np.allclose(x, y) else 0.0
    rho, _ = spearmanr(x, y)
    return float(rho)


def score_histogram(scores: np.ndarray, num_classes: int,
                    bins: int | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of total importance scores over ``[0, num_classes]``.

    Defaults to one bin per integer score (the paper's x-axis), so
    ``counts[k]`` ≈ number of filters important for about ``k`` classes.
    """
    if num_classes <= 0:
        raise ValueError("num_classes must be positive")
    nbins = bins if bins is not None else num_classes + 1
    edges = np.linspace(0, num_classes, nbins + 1)
    # Closed right edge so a perfect score lands in the last bin.
    counts, _ = np.histogram(np.clip(scores, 0, num_classes), bins=edges)
    return counts, edges


def polarization_index(scores: np.ndarray, num_classes: int) -> float:
    """Fraction of filters in the extreme bins (bottom/top 10% of range).

    A scalar summary of the Fig. 8 effect: L1+orth training should produce
    a *more polarised* distribution than either regulariser alone.
    """
    if len(scores) == 0:
        return 0.0
    lo = num_classes * 0.1
    hi = num_classes * 0.9
    extreme = np.sum(scores <= lo) + np.sum(scores >= hi)
    return float(extreme / len(scores))


def layer_average_scores(report: ImportanceReport) -> dict[str, float]:
    """Per-layer mean total score (one Fig. 7 series)."""
    return report.layer_means()


@dataclass
class DistributionComparison:
    """Before/after (or multi-setting) score distributions of one layer."""

    label: str
    num_classes: int
    series: dict[str, np.ndarray] = field(default_factory=dict)

    def add(self, name: str, scores: np.ndarray) -> None:
        self.series[name] = np.asarray(scores, dtype=np.float64)

    def histograms(self, bins: int | None = None) -> dict[str, np.ndarray]:
        return {name: score_histogram(s, self.num_classes, bins)[0]
                for name, s in self.series.items()}

    def means(self) -> dict[str, float]:
        return {name: float(s.mean()) if len(s) else 0.0
                for name, s in self.series.items()}

    def render(self, width: int = 40) -> str:
        """ASCII rendering of all series' histograms."""
        blocks = [f"== {self.label} (scores 0..{self.num_classes}) =="]
        for name, scores in self.series.items():
            counts, edges = score_histogram(scores, self.num_classes)
            blocks.append(f"-- {name}  (n={len(scores)}, "
                          f"mean={scores.mean() if len(scores) else 0:.2f})")
            blocks.append(ascii_histogram(counts, edges, width=width))
        return "\n".join(blocks)


def ascii_histogram(counts: np.ndarray, edges: np.ndarray,
                    width: int = 40) -> str:
    """Horizontal bar rendering of a histogram."""
    peak = max(int(counts.max()), 1)
    lines = []
    for i, count in enumerate(counts):
        bar = "#" * int(round(count / peak * width))
        lines.append(f"[{edges[i]:5.1f},{edges[i + 1]:5.1f}) "
                     f"{bar:<{width}} {int(count)}")
    return "\n".join(lines)


def ascii_bars(values: dict[str, float], width: int = 40,
               fmt: str = "{:.3f}") -> str:
    """Labelled horizontal bars (Fig. 6 / Fig. 7 style series)."""
    if not values:
        return "(empty)"
    peak = max(abs(v) for v in values.values()) or 1.0
    label_w = max(len(k) for k in values)
    lines = []
    for key, value in values.items():
        bar = "#" * int(round(abs(value) / peak * width))
        lines.append(f"{key:<{label_w}} {bar:<{width}} " + fmt.format(value))
    return "\n".join(lines)
