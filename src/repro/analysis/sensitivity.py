"""Layer-wise pruning sensitivity analysis.

A classic diagnostic (popularised by the L1-pruning paper [23] the method
compares against): for each prunable layer alone, mask increasing
fractions of its lowest-importance filters and measure the accuracy — no
retraining — revealing which layers tolerate pruning. Uses the soft
masking machinery, so the model is never modified.

The class-aware connection: layers whose filters carry high class-aware
scores should be the sensitive ones; `sensitivity_vs_importance` measures
that correlation directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.masking import masked_accuracy
from ..core.importance import ImportanceReport
from ..data import Dataset
from ..models.pruning_spec import FilterGroup
from ..nn import Module

__all__ = ["LayerSensitivity", "layer_sensitivity", "sensitivity_vs_importance"]


@dataclass
class LayerSensitivity:
    """Accuracy of one layer under increasing masked fractions."""

    group: str
    fractions: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)

    def drop_at(self, fraction: float) -> float:
        """Accuracy drop (vs fraction 0) at the closest measured fraction."""
        if not self.fractions:
            raise ValueError("no measurements recorded")
        base = self.accuracies[0]
        idx = int(np.argmin(np.abs(np.asarray(self.fractions) - fraction)))
        return base - self.accuracies[idx]


def layer_sensitivity(model: Module, dataset: Dataset,
                      groups: list[FilterGroup],
                      scores: dict[str, np.ndarray] | None = None,
                      fractions: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75),
                      batch_size: int = 256) -> dict[str, LayerSensitivity]:
    """Mask each layer's lowest-scoring filters at several fractions.

    Parameters
    ----------
    scores:
        Per-group filter scores determining the masking order (lowest
        first); defaults to the filters' L2 weight norms.

    Returns
    -------
    ``{group name: LayerSensitivity}`` — one curve per layer; the model is
    restored after every measurement.
    """
    results: dict[str, LayerSensitivity] = {}
    for group in groups:
        producer = model.get_module(group.conv)
        w = producer.weight.data
        n = w.shape[0]
        if scores is not None and group.name in scores:
            order = np.argsort(scores[group.name], kind="stable")
        else:
            norms = np.sqrt((w.reshape(n, -1) ** 2).sum(axis=1))
            order = np.argsort(norms, kind="stable")
        curve = LayerSensitivity(group=group.name)
        for fraction in fractions:
            count = int(np.floor(n * fraction))
            count = min(count, n - group.min_channels)
            masked = {group.conv: order[:count]} if count > 0 else {}
            acc = masked_accuracy(model, dataset, masked, batch_size)
            curve.fractions.append(fraction)
            curve.accuracies.append(acc)
        results[group.name] = curve
    return results


def sensitivity_vs_importance(sensitivities: dict[str, LayerSensitivity],
                              report: ImportanceReport,
                              fraction: float = 0.5) -> float:
    """Spearman correlation of layer sensitivity with mean importance.

    The class-aware hypothesis predicts a positive correlation: layers
    whose filters are important for many classes hurt more when pruned.
    """
    from scipy.stats import spearmanr
    common = [name for name in sensitivities if name in report.total]
    if len(common) < 3:
        raise ValueError("need at least three layers to correlate")
    drops = [sensitivities[name].drop_at(fraction) for name in common]
    means = [float(report.total[name].mean()) for name in common]
    if np.allclose(drops, drops[0]) or np.allclose(means, means[0]):
        return 0.0
    rho, _ = spearmanr(drops, means)
    return float(rho)
