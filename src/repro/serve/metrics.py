"""Serving metrics: latency reservoirs, counters, the ``stats`` payload.

Everything a load test or an operator needs to judge the service —
request counts by outcome, queue depth, batching behaviour, and latency
percentiles — is collected here and serialised by :meth:`ServerMetrics.
snapshot` into the JSON the server's ``stats`` verb returns.

Percentiles use a bounded ring of the most recent samples (a reservoir of
the *last N*, not a random sample): serving cares about "how slow are we
right now", and a ring is O(1) to feed from the hot path. The percentile
itself sorts a copy on demand — reads are rare, writes are not.
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping

__all__ = ["LatencyReservoir", "ServerMetrics", "sum_counters"]


class LatencyReservoir:
    """Ring buffer of the most recent latency samples (milliseconds)."""

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._ring: list[float] = []
        self._next = 0
        self.count = 0                      # lifetime samples

    def record(self, value_ms: float) -> None:
        value_ms = float(value_ms)
        if len(self._ring) < self.capacity:
            self._ring.append(value_ms)
        else:
            self._ring[self._next] = value_ms
            self._next = (self._next + 1) % self.capacity
        self.count += 1

    def samples(self) -> list[float]:
        """Retained window, oldest first (at most ``capacity`` values)."""
        if len(self._ring) < self.capacity:
            return list(self._ring)
        return self._ring[self._next:] + self._ring[:self._next]

    @classmethod
    def from_samples(cls, values: Iterable[float],
                     lifetime: int | None = None,
                     capacity: int | None = None) -> "LatencyReservoir":
        """Rebuild a reservoir from a wire-serialised sample window.

        ``lifetime`` restores the original lifetime ``count`` (the window
        only retains the most recent samples); defaults to the window
        length.
        """
        values = [float(v) for v in values]
        out = cls(capacity if capacity is not None else max(len(values), 1))
        for value in values:
            out.record(value)
        if lifetime is not None:
            out.count = max(int(lifetime), out.count)
        return out

    @classmethod
    def merged(cls, reservoirs: Iterable["LatencyReservoir"],
               capacity: int | None = None) -> "LatencyReservoir":
        """Fleet-wide union of several reservoirs.

        The merged window holds every retained sample from every input
        (capacity defaults to the sum of input capacities) and the
        lifetime ``count`` is the sum of lifetimes, so percentiles and
        counts answer "how is the fleet doing" rather than any single
        replica.
        """
        pool = list(reservoirs)
        if capacity is None:
            capacity = max(sum(r.capacity for r in pool), 1)
        out = cls(capacity)
        for reservoir in pool:
            for value in reservoir.samples():
                out.record(value)
        out.count = sum(r.count for r in pool)
        return out

    def percentile(self, p: float) -> float | None:
        """Nearest-rank percentile of the retained window; None if empty."""
        if not self._ring:
            return None
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        ordered = sorted(self._ring)
        rank = max(int(round(p / 100.0 * len(ordered) + 0.5)) - 1, 0)
        return ordered[min(rank, len(ordered) - 1)]

    def summary(self) -> dict:
        return {
            "count": self.count,
            "p50_ms": self.percentile(50.0),
            "p99_ms": self.percentile(99.0),
            "max_ms": max(self._ring) if self._ring else None,
        }


def sum_counters(counter_maps: Iterable[Mapping[str, int]]) -> dict[str, int]:
    """Element-wise sum of counter dicts (missing keys count as zero)."""
    total: dict[str, int] = {}
    for counters in counter_maps:
        for name, value in counters.items():
            total[name] = total.get(name, 0) + int(value)
    return total


class ServerMetrics:
    """Thread-safe roll-up of one server's request stream."""

    def __init__(self, reservoir: int = 1024):
        self._lock = threading.Lock()
        self._reservoir = reservoir
        self.counters = {"received": 0, "accepted": 0, "rejected": 0,
                         "completed": 0, "errors": 0, "fallbacks": 0,
                         "swaps": 0, "cancelled": 0, "expired": 0,
                         "replayed": 0, "observer_faults": 0}
        self.reject_reasons: dict[str, int] = {}
        self._latency = LatencyReservoir(reservoir)
        self._queue_wait = LatencyReservoir(reservoir)
        self._per_model: dict[str, LatencyReservoir] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def record_rejection(self, reason: str) -> None:
        with self._lock:
            self.counters["rejected"] += 1
            self.reject_reasons[reason] = \
                self.reject_reasons.get(reason, 0) + 1

    def record_completion(self, model: str, latency_ms: float,
                          queue_wait_ms: float | None = None) -> None:
        with self._lock:
            self.counters["completed"] += 1
            self._latency.record(latency_ms)
            if queue_wait_ms is not None:
                self._queue_wait.record(queue_wait_ms)
            per_model = self._per_model.get(model)
            if per_model is None:
                per_model = self._per_model[model] = \
                    LatencyReservoir(self._reservoir)
            per_model.record(latency_ms)

    def latency_samples(self) -> list[float]:
        """Retained request-latency window (for cross-replica merging)."""
        with self._lock:
            return self._latency.samples()

    def snapshot(self, extra: dict | None = None) -> dict:
        """JSON-ready view; ``extra`` merges model/shed state from callers."""
        with self._lock:
            payload = {
                "counters": dict(self.counters),
                "reject_reasons": dict(self.reject_reasons),
                "latency": self._latency.summary(),
                "queue_wait": self._queue_wait.summary(),
                "per_model": {name: r.summary()
                              for name, r in self._per_model.items()},
            }
        if extra:
            payload.update(extra)
        return payload
