"""Serving metrics: latency reservoirs, counters, the ``stats`` payload.

Everything a load test or an operator needs to judge the service —
request counts by outcome, queue depth, batching behaviour, and latency
percentiles — is collected here and serialised by :meth:`ServerMetrics.
snapshot` into the JSON the server's ``stats`` verb returns.

Percentiles use a bounded ring of the most recent samples (a reservoir of
the *last N*, not a random sample): serving cares about "how slow are we
right now", and a ring is O(1) to feed from the hot path. The percentile
itself sorts a copy on demand — reads are rare, writes are not.
"""

from __future__ import annotations

import threading

__all__ = ["LatencyReservoir", "ServerMetrics"]


class LatencyReservoir:
    """Ring buffer of the most recent latency samples (milliseconds)."""

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._ring: list[float] = []
        self._next = 0
        self.count = 0                      # lifetime samples

    def record(self, value_ms: float) -> None:
        value_ms = float(value_ms)
        if len(self._ring) < self.capacity:
            self._ring.append(value_ms)
        else:
            self._ring[self._next] = value_ms
            self._next = (self._next + 1) % self.capacity
        self.count += 1

    def percentile(self, p: float) -> float | None:
        """Nearest-rank percentile of the retained window; None if empty."""
        if not self._ring:
            return None
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        ordered = sorted(self._ring)
        rank = max(int(round(p / 100.0 * len(ordered) + 0.5)) - 1, 0)
        return ordered[min(rank, len(ordered) - 1)]

    def summary(self) -> dict:
        return {
            "count": self.count,
            "p50_ms": self.percentile(50.0),
            "p99_ms": self.percentile(99.0),
            "max_ms": max(self._ring) if self._ring else None,
        }


class ServerMetrics:
    """Thread-safe roll-up of one server's request stream."""

    def __init__(self, reservoir: int = 1024):
        self._lock = threading.Lock()
        self._reservoir = reservoir
        self.counters = {"received": 0, "accepted": 0, "rejected": 0,
                         "completed": 0, "errors": 0, "fallbacks": 0,
                         "swaps": 0, "cancelled": 0, "expired": 0,
                         "replayed": 0}
        self.reject_reasons: dict[str, int] = {}
        self._latency = LatencyReservoir(reservoir)
        self._queue_wait = LatencyReservoir(reservoir)
        self._per_model: dict[str, LatencyReservoir] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def record_rejection(self, reason: str) -> None:
        with self._lock:
            self.counters["rejected"] += 1
            self.reject_reasons[reason] = \
                self.reject_reasons.get(reason, 0) + 1

    def record_completion(self, model: str, latency_ms: float,
                          queue_wait_ms: float | None = None) -> None:
        with self._lock:
            self.counters["completed"] += 1
            self._latency.record(latency_ms)
            if queue_wait_ms is not None:
                self._queue_wait.record(queue_wait_ms)
            per_model = self._per_model.get(model)
            if per_model is None:
                per_model = self._per_model[model] = \
                    LatencyReservoir(self._reservoir)
            per_model.record(latency_ms)

    def snapshot(self, extra: dict | None = None) -> dict:
        """JSON-ready view; ``extra`` merges model/shed state from callers."""
        with self._lock:
            payload = {
                "counters": dict(self.counters),
                "reject_reasons": dict(self.reject_reasons),
                "latency": self._latency.summary(),
                "queue_wait": self._queue_wait.summary(),
                "per_model": {name: r.summary()
                              for name, r in self._per_model.items()},
            }
        if extra:
            payload.update(extra)
        return payload
