"""Adaptive micro-batching window: wide under load, narrow when idle.

:class:`repro.infer.BatchRunner` waits ``max_wait`` seconds after the
first request of a batch for stragglers. A fixed window is always wrong
at one end: at low traffic it adds pure latency (nobody else is coming),
at high traffic a too-short window ships half-empty batches and wastes
the engine's throughput.

:class:`AdaptiveWindow` closes the loop. After every executed batch it
observes the *fill fraction* (batch size / ``max_batch``) through an
exponential moving average and steers the window multiplicatively:

* fill ≥ ``widen_above``  → traffic saturates batches; widen the window
  (more coalescing, higher throughput) up to ``max_window``;
* fill ≤ ``shrink_below`` → batches are mostly singletons; shrink toward
  ``min_window`` so idle-time requests pay (almost) no batching tax.

The class is pure decision logic — no threads, no clock. The serving
layer wires ``observe_batch`` into the runner's ``on_batch`` hook and
copies :meth:`current` back into ``runner.max_wait``; tests drive it with
hand-picked sizes and assert the exact window trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["WindowConfig", "AdaptiveWindow"]


@dataclass(frozen=True)
class WindowConfig:
    """Bounds and gains of the adaptive batching window (seconds)."""

    min_window: float = 0.0005
    max_window: float = 0.020
    initial_window: float | None = None     # default: min_window
    widen_above: float = 0.5                # EWMA fill that widens
    shrink_below: float = 0.25              # EWMA fill that shrinks
    gain: float = 2.0                       # multiplicative step
    ewma_alpha: float = 0.4                 # fill-fraction smoothing

    def __post_init__(self):
        if not 0 < self.min_window <= self.max_window:
            raise ValueError("need 0 < min_window <= max_window")
        if not 0 <= self.shrink_below < self.widen_above <= 1:
            raise ValueError("need 0 <= shrink_below < widen_above <= 1")
        if self.gain <= 1:
            raise ValueError("gain must be > 1")
        if not 0 < self.ewma_alpha <= 1:
            raise ValueError("ewma_alpha must be in (0, 1]")


class AdaptiveWindow:
    """EWMA fill-fraction controller for the batching window."""

    def __init__(self, config: WindowConfig | None = None, *,
                 max_batch: int = 1):
        self.config = config or WindowConfig()
        self.max_batch = max(int(max_batch), 1)
        self._window = float(self.config.initial_window
                             if self.config.initial_window is not None
                             else self.config.min_window)
        self._window = min(max(self._window, self.config.min_window),
                           self.config.max_window)
        self._fill: float | None = None      # EWMA of batch fill fraction
        self.adjustments = {"widened": 0, "shrunk": 0}

    def current(self) -> float:
        """The batching window the runner should use right now (seconds)."""
        return self._window

    @property
    def fill(self) -> float:
        """Smoothed batch fill fraction in [0, 1] (0 before any batch)."""
        return 0.0 if self._fill is None else self._fill

    def observe_batch(self, size: int) -> float:
        """Record one executed batch; returns the (possibly new) window."""
        cfg = self.config
        frac = min(max(size / self.max_batch, 0.0), 1.0)
        self._fill = (frac if self._fill is None
                      else cfg.ewma_alpha * frac
                      + (1 - cfg.ewma_alpha) * self._fill)
        if self._fill >= cfg.widen_above and self._window < cfg.max_window:
            self._window = min(self._window * cfg.gain, cfg.max_window)
            self.adjustments["widened"] += 1
        elif self._fill <= cfg.shrink_below and self._window > cfg.min_window:
            self._window = max(self._window / cfg.gain, cfg.min_window)
            self.adjustments["shrunk"] += 1
        return self._window

    def snapshot(self) -> dict:
        return {"window_s": self._window, "fill_ewma": round(self.fill, 4),
                "widened": self.adjustments["widened"],
                "shrunk": self.adjustments["shrunk"]}
