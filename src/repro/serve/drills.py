"""Serving fault drills for ``python -m repro.verify --drills serve``.

Seven drills, run against a *real* socket server in-process, extend the
resilience battery to the serving layer:

* ``serve.shed`` — offered load at 2× the admission bound: every
  *accepted* request must complete correctly, every rejection must be
  explicit (``error: "overloaded"`` with a reason) and fast, and nothing
  may simply vanish;
* ``serve.swap`` — a checkpoint hot-swap in the middle of live traffic:
  zero dropped and zero errored requests, every response valid against
  the old or the new model, and the registry must end up on the new
  version with the old one drained;
* ``serve.drain`` — a graceful drain with requests in flight: every
  accepted request completes correctly, every request arriving during
  the drain gets an explicit ``draining`` answer, zero drops;
* ``serve.restart`` — a warm restart from the deploy manifest: every
  journaled version comes back through probe validation, a corrupted
  checkpoint is skipped *with a report*, and the restored server answers
  correctly;
* ``replica.kill`` — SIGKILL of a replica mid-batch under live traffic:
  every accepted request completes exactly once, bitwise-identical to an
  unfaulted run, and the dead replica respawns within budget;
* ``replica.hang`` — a wedged replica (healthy heartbeat, dead serving
  path): the router's liveness probe times out, the replica is killed
  and respawned, and traffic never notices;
* ``replica.rolling`` — a rolling deploy across the replica fleet under
  live traffic: zero drops, capacity never below N−1, and a
  gate-failing checkpoint leaves every replica on the old version.

All timing goes through the injectable :data:`repro.clock.SYSTEM_CLOCK`
(the drills poll real threads, so virtual time would lie) — consistent
with the rest of the serve stack, and swappable in one place.

Like the worker drills, these guard *recovery semantics*, not speed —
they use tiny models and finish in seconds.
"""

from __future__ import annotations

import socket
import tempfile
import threading
from pathlib import Path

import numpy as np

from ..clock import SYSTEM_CLOCK
from ..models import build_model
from ..tensor import Tensor, inference_mode
from ..verify.invariants import perturb_batchnorm_stats
from .client import Draining, Overloaded, ServeClient, ServerError
from .manifest import restore_registry
from .registry import ModelRegistry
from .server import ServeConfig, ServerThread
from .shedding import SheddingConfig

__all__ = ["SERVE_DRILLS"]

_CLOCK = SYSTEM_CLOCK


def _drill_result(name: str):
    from ..resilience.drills import DrillResult
    return DrillResult(name)


def _tiny_model(seed: int, pruned: bool = False):
    model = build_model("vgg11", num_classes=3, image_size=8, width=0.125,
                        seed=seed)
    perturb_batchnorm_stats(model, seed=seed)
    if pruned:
        from ..infer.bench import _prune_model
        _prune_model(model, seed)
    model.eval()
    return model


class _SlowEngine:
    """Engine wrapper that makes every batch take a while (queues form)."""

    def __init__(self, engine, delay_s: float):
        self._engine = engine
        self._delay = delay_s
        self.max_batch = engine.max_batch

    def run(self, x):
        _CLOCK.sleep(self._delay)
        return self._engine.run(x)


class _GatedEngine:
    """Engine wrapper that holds every batch until the drill releases it."""

    def __init__(self, engine):
        self._engine = engine
        self.max_batch = engine.max_batch
        self.entered = threading.Event()
        self.release = threading.Event()

    def run(self, x):
        self.entered.set()
        self.release.wait(timeout=30)
        return self._engine.run(x)


def _ref_engine(checkpoint, seed: int):
    """A local max_batch=1 engine from ``checkpoint``: the unfaulted
    reference a replicated answer must match bitwise (batch size 1 keeps
    batch composition from perturbing BLAS accumulation order)."""
    from ..infer import compile_model
    from ..io import load_model
    model = load_model(str(checkpoint))
    model.eval()
    probe = np.random.default_rng(seed).normal(
        size=(4, 3, 8, 8)).astype(np.float32)
    return compile_model(model, probe, max_batch=1)


def _wedge_replica(handle) -> None:
    """Freeze a replica's serving path over its own unix socket (the
    ``chaos`` op): heartbeats keep flowing, requests stop — the exact
    failure a liveness probe exists to catch."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(5.0)
        sock.connect(str(handle.socket_path))
        sock.sendall(b'{"op": "chaos", "wedged": true, "rid": "drill"}\n')
        sock.recv(4096)                 # ack lands before the wedge bites


def _poll_until(predicate, timeout_s: float = 10.0,
                interval_s: float = 0.005) -> bool:
    """Spin on the system clock until ``predicate()`` or the deadline."""
    deadline = _CLOCK.monotonic() + timeout_s
    while not predicate():
        if _CLOCK.monotonic() >= deadline:
            return False
        _CLOCK.sleep(interval_s)
    return True


def _drill_serve_shed(seed: int):
    result = _drill_result("serve.shed")
    max_pending = 4
    registry = ModelRegistry(
        max_batch=4,
        shedding=SheddingConfig(max_pending=max_pending,
                                p99_budget_ms=None))
    model = _tiny_model(seed)
    with registry:
        registry.deploy("m", "v1", model=model, input_shape=(3, 8, 8),
                        seed=seed)
        _, version = registry.resolve("m")
        version.runner.engine = _SlowEngine(version.engine, delay_s=0.02)

        workers = 2 * max_pending          # offered load 2× the bound
        per_worker = 6
        lock = threading.Lock()
        outcomes = {"completed": 0, "rejected": 0, "errors": 0,
                    "unanswered": 0, "bad_output": 0}
        reject_ms: list[float] = []

        def eager(sample):
            with inference_mode():
                return model(Tensor(sample[None])).data[0]

        def client_loop(wid: int):
            rng = np.random.default_rng(seed * 997 + wid)
            local = dict.fromkeys(outcomes, 0)
            local_rej = []
            try:
                with ServeClient("127.0.0.1", port) as client:
                    for _ in range(per_worker):
                        sample = rng.normal(size=(3, 8, 8)).astype(np.float32)
                        start = _CLOCK.monotonic()
                        try:
                            out = client.infer("m", sample)
                            if not np.allclose(out, eager(sample),
                                               rtol=1e-4, atol=1e-5):
                                local["bad_output"] += 1
                            local["completed"] += 1
                        except Overloaded as exc:
                            local_rej.append(
                                (_CLOCK.monotonic() - start) * 1e3)
                            if exc.reason not in ("queue-full", "slo"):
                                local["errors"] += 1
                            local["rejected"] += 1
                        except (ServerError, ConnectionError):
                            local["errors"] += 1
            except OSError:
                local["unanswered"] += per_worker
            with lock:
                for key in outcomes:
                    outcomes[key] += local[key]
                reject_ms.extend(local_rej)

        with ServerThread(registry, ServeConfig()) as srv:
            port = srv.port
            threads = [threading.Thread(target=client_loop, args=(i,))
                       for i in range(workers)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

    total = workers * per_worker
    answered = outcomes["completed"] + outcomes["rejected"]
    if outcomes["unanswered"] or answered + outcomes["errors"] != total:
        result.fail(f"requests vanished: {outcomes} (total {total})")
    if outcomes["errors"]:
        result.fail(f"{outcomes['errors']} non-shed errors under overload")
    if outcomes["bad_output"]:
        result.fail(f"{outcomes['bad_output']} accepted requests returned "
                    "wrong outputs")
    if not outcomes["rejected"]:
        result.fail("2x offered load produced no explicit rejections")
    if reject_ms and float(np.median(np.asarray(reject_ms))) >= 10.0:
        result.fail(f"rejections are slow: median "
                    f"{float(np.median(np.asarray(reject_ms))):.1f} ms")
    result.detail = (f"{outcomes['completed']} served, "
                     f"{outcomes['rejected']} shed fast, 0 dropped")
    return result


def _drill_serve_swap(seed: int):
    result = _drill_result("serve.swap")
    from ..io import save_model

    dense = _tiny_model(seed)
    pruned = _tiny_model(seed, pruned=True)

    def eager(model, sample):
        with inference_mode():
            return model(Tensor(sample[None])).data[0]

    registry = ModelRegistry(max_batch=8,
                             shedding=SheddingConfig(max_pending=64,
                                                     p99_budget_ms=None))
    with tempfile.TemporaryDirectory() as tmp, registry:
        checkpoint = Path(tmp) / "pruned.npz"
        save_model(pruned, checkpoint)
        registry.deploy("m", "v1", model=dense, input_shape=(3, 8, 8),
                        seed=seed)

        stop = threading.Event()
        lock = threading.Lock()
        failures: list[str] = []
        served = {"total": 0, "v1": 0, "v2": 0}

        def traffic(wid: int):
            rng = np.random.default_rng(seed * 131 + wid)
            try:
                with ServeClient("127.0.0.1", port) as client:
                    while not stop.is_set():
                        sample = rng.normal(size=(3, 8, 8)).astype(np.float32)
                        response = client.infer_verbose("m", sample)
                        out = np.asarray(response["output"], np.float32)
                        version = response["model"].split("@")[1]
                        reference = eager(
                            dense if version == "v1" else pruned, sample)
                        with lock:
                            served["total"] += 1
                            served[version] = served.get(version, 0) + 1
                            if not np.allclose(out, reference, rtol=1e-4,
                                               atol=1e-5):
                                failures.append(
                                    f"wrong output from {version}")
            except (ServerError, ConnectionError, OSError) as exc:
                with lock:
                    failures.append(f"traffic error: {exc}")

        with ServerThread(registry, ServeConfig()) as srv:
            port = srv.port
            threads = [threading.Thread(target=traffic, args=(i,))
                       for i in range(4)]
            for t in threads:
                t.start()
            try:
                with ServeClient("127.0.0.1", port) as control:
                    # Let traffic establish before, and continue after,
                    # the swap — the swap must be invisible to callers.
                    _poll_until(lambda: served["total"] >= 20 or failures,
                                timeout_s=30)
                    report = control.swap("m", "v2", str(checkpoint))
                    _poll_until(lambda: served.get("v2", 0) >= 10 or failures,
                                timeout_s=10)
                    stats = control.stats()
            finally:
                stop.set()
                for t in threads:
                    t.join(timeout=30)

        if failures:
            result.fail("; ".join(sorted(set(failures))[:3]))
        if report["swapped_from"] != "v1":
            result.fail(f"swap report wrong: {report}")
        if served.get("v2", 0) == 0:
            result.fail("no traffic reached v2 after the swap")
        if stats["counters"]["errors"]:
            result.fail(f"server recorded {stats['counters']['errors']} "
                        "errors across the swap")
        active = stats["models"]["m"]["active"]
        if active != "m@v2":
            result.fail(f"active version is {active!r}, expected m@v2")
    result.detail = (f"{served['total']} responses "
                     f"({served.get('v1', 0)} v1 / {served.get('v2', 0)} v2),"
                     f" 0 dropped across swap")
    return result


def _drill_serve_drain(seed: int):
    result = _drill_result("serve.drain")
    registry = ModelRegistry(max_batch=4,
                             shedding=SheddingConfig(max_pending=64,
                                                     p99_budget_ms=None))
    model = _tiny_model(seed)
    inflight_workers = 3
    with registry:
        registry.deploy("m", "v1", model=model, input_shape=(3, 8, 8),
                        seed=seed)
        _, version = registry.resolve("m")
        gate = _GatedEngine(version.engine)
        version.runner.engine = gate

        def eager(sample):
            with inference_mode():
                return model(Tensor(sample[None])).data[0]

        lock = threading.Lock()
        outcomes: dict[int, str] = {}
        rng = np.random.default_rng(seed * 607)
        samples = rng.normal(size=(inflight_workers, 3, 8, 8)
                             ).astype(np.float32)

        def inflight(wid: int):
            try:
                with ServeClient("127.0.0.1", port) as client:
                    out = client.infer("m", samples[wid])
                    ok = np.allclose(out, eager(samples[wid]),
                                     rtol=1e-4, atol=1e-5)
                    verdict = "ok" if ok else "bad-output"
            except Exception as exc:  # noqa: BLE001 - collected for report
                verdict = f"error: {type(exc).__name__}"
            with lock:
                outcomes[wid] = verdict

        with ServerThread(registry, ServeConfig()) as srv:
            port = srv.port
            threads = [threading.Thread(target=inflight, args=(i,))
                       for i in range(inflight_workers)]
            for t in threads:
                t.start()
            # All three requests accepted (and stuck at the engine gate).
            if not _poll_until(lambda: srv.server.inflight
                               >= inflight_workers):
                result.fail("in-flight requests never reached the engine")
            # A connection opened before the listener closes can still
            # talk to a draining server — and must be told "draining".
            # (The ping forces the accept: a merely-backlogged socket
            # would die with the listener instead of being answered.)
            late = ServeClient("127.0.0.1", port)
            late.ping()
            drainer = threading.Thread(target=srv.drain)
            drainer.start()
            try:
                if not _poll_until(lambda: srv.server.draining):
                    result.fail("drain never entered the draining state")
                try:
                    late.infer("m", samples[0])
                    result.fail("request during drain was not rejected")
                except Draining:
                    pass
                except Exception as exc:  # noqa: BLE001 - wrong rejection
                    result.fail(f"draining rejection was {exc!r}, "
                                "not an explicit 'draining' error")
            finally:
                gate.release.set()
                drainer.join(timeout=30)
                late.close()
                for t in threads:
                    t.join(timeout=30)
            metrics = srv.server.metrics
        if drainer.is_alive():
            result.fail("drain did not complete after the gate opened")
        completed = sum(1 for v in outcomes.values() if v == "ok")
        if completed != inflight_workers:
            result.fail(f"accepted requests dropped by drain: {outcomes}")
        if not metrics.reject_reasons.get("draining"):
            result.fail("no explicit 'draining' rejection was recorded")
    result.detail = (f"{completed}/{inflight_workers} in-flight served, "
                     f"{metrics.reject_reasons.get('draining', 0)} "
                     "drain-rejected, 0 dropped")
    return result


def _drill_serve_restart(seed: int):
    result = _drill_result("serve.restart")
    from ..io import save_model

    dense = _tiny_model(seed)
    pruned = _tiny_model(seed, pruned=True)

    def eager(model, sample):
        with inference_mode():
            return model(Tensor(sample[None])).data[0]

    with tempfile.TemporaryDirectory() as tmp:
        manifest_dir = Path(tmp) / "manifest"
        pruned_ckpt = Path(tmp) / "pruned.npz"
        doomed_ckpt = Path(tmp) / "doomed.npz"
        save_model(pruned, pruned_ckpt)
        save_model(dense, doomed_ckpt)

        with ModelRegistry(manifest_dir=manifest_dir) as registry:
            registry.deploy("a", "v1", model=dense, input_shape=(3, 8, 8),
                            seed=seed)          # snapshotted into manifest
            registry.deploy("b", "v1", checkpoint=pruned_ckpt)
            registry.deploy("c", "v1", checkpoint=doomed_ckpt)

        # The process "dies"; one checkpoint rots on disk meanwhile.
        raw = bytearray(doomed_ckpt.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        doomed_ckpt.write_bytes(bytes(raw))

        with ModelRegistry(manifest_dir=manifest_dir) as restored:
            report = restore_registry(restored, manifest_dir)
            names = {e["name"] for e in report.restored}
            if names != {"a", "b"}:
                result.fail(f"expected a+b restored, got {sorted(names)}")
            skipped = {e["name"]: e["reason"] for e in report.skipped}
            if "c" not in skipped:
                result.fail("corrupted checkpoint was not skipped")
            elif "CheckpointCorrupt" not in skipped["c"]:
                result.fail(f"skip reason does not name the corruption: "
                            f"{skipped['c']}")
            if report.journal_truncated:
                result.fail("manifest journal unexpectedly truncated")

            rng = np.random.default_rng(seed * 911)
            sample = rng.normal(size=(3, 8, 8)).astype(np.float32)
            with ServerThread(restored, ServeConfig()) as srv:
                with ServeClient("127.0.0.1", srv.port) as client:
                    for name, reference in (("a", dense), ("b", pruned)):
                        out = client.infer(name, sample)
                        if not np.allclose(out, eager(reference, sample),
                                           rtol=1e-4, atol=1e-5):
                            result.fail(f"restored {name} answers wrongly")
                    try:
                        client.infer("c", sample)
                        result.fail("corrupted model is being served")
                    except ServerError as exc:
                        if exc.error != "no-such-model":
                            result.fail(f"unexpected error for skipped "
                                        f"model: {exc.error}")
    result.detail = (f"{len(report.restored)} restored through validation, "
                     f"{len(report.skipped)} skipped with report")
    return result


def _drill_serve_replica_kill(seed: int):
    result = _drill_result("replica.kill")
    from ..io import save_model
    from .replica import ReplicaConfig, ReplicaSet, ReplicaSpec
    from .router import ReplicaRouter

    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = Path(tmp) / "m.npz"
        save_model(_tiny_model(seed), checkpoint)
        reference = _ref_engine(checkpoint, seed)

        config = ReplicaConfig(replicas=2, max_batch=1, engine_delay_ms=5.0,
                               probe_interval_s=0.1, probe_timeout_s=1.0,
                               respawn_base_delay_s=0.01)
        rset = ReplicaSet(config)
        router = ReplicaRouter(
            rset, [ReplicaSpec("m", "v1", checkpoint=str(checkpoint))])
        registry = ModelRegistry(max_batch=1)
        registry.deploy("m", "v1", checkpoint=str(checkpoint), seed=seed)

        workers, per_worker = 4, 8
        total = workers * per_worker
        lock = threading.Lock()
        answered: list[tuple[np.ndarray, np.ndarray]] = []
        failures: list[str] = []

        def traffic(wid: int):
            rng = np.random.default_rng(seed * 613 + wid)
            try:
                with ServeClient("127.0.0.1", port, timeout=60) as client:
                    for _ in range(per_worker):
                        sample = rng.normal(size=(3, 8, 8)).astype(np.float32)
                        out = client.infer("m", sample)
                        with lock:
                            answered.append((sample, out))
            except (ServerError, ConnectionError, OSError) as exc:
                with lock:
                    failures.append(f"traffic error: {exc!r}")

        try:
            with registry, ServerThread(registry, ServeConfig(),
                                        router=router) as srv:
                port = srv.port
                threads = [threading.Thread(target=traffic, args=(i,))
                           for i in range(workers)]
                for t in threads:
                    t.start()
                _CLOCK.sleep(0.05)
                rset.handles[0].proc.kill()     # SIGKILL mid-batch
                for t in threads:
                    t.join(timeout=60)
                with ServeClient("127.0.0.1", port) as control:
                    stats = control.stats()
        finally:
            rset.close()

    # Verify serially: the compiled reference engine reuses scratch
    # buffers, so it is checked from one thread only.
    bitwise = sum(1 for sample, out in answered
                  if np.array_equal(out, reference.run(sample[None])[0]))
    if failures:
        result.fail("; ".join(sorted(set(failures))[:3]))
    if len(answered) != total:
        result.fail(f"{total - len(answered)} of {total} accepted "
                    "requests never completed")
    if bitwise != len(answered):
        result.fail(f"{len(answered) - bitwise} responses differ bitwise "
                    "from the unfaulted engine")
    if stats["counters"]["completed"] != total:
        result.fail(f"server completed {stats['counters']['completed']} != "
                    f"{total} requests: lost or double-counted work")
    kinds = [e.kind for e in rset.events]
    if "respawn" not in kinds:
        result.fail(f"killed replica never respawned (events: {kinds})")
    if stats["replicas"]["degraded"]:
        result.fail("fleet degraded after a single in-budget kill")
    result.detail = (f"{bitwise}/{total} bitwise-identical "
                     f"across SIGKILL, {rset.respawns_used} respawn")
    return result


def _drill_serve_replica_hang(seed: int):
    result = _drill_result("replica.hang")
    from ..io import save_model
    from .replica import ReplicaConfig, ReplicaSet, ReplicaSpec
    from .router import ReplicaRouter

    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = Path(tmp) / "m.npz"
        save_model(_tiny_model(seed), checkpoint)
        reference = _ref_engine(checkpoint, seed)

        config = ReplicaConfig(replicas=2, max_batch=1, engine_delay_ms=2.0,
                               probe_interval_s=0.05, probe_timeout_s=0.3,
                               respawn_base_delay_s=0.01, allow_chaos=True)
        rset = ReplicaSet(config)
        router = ReplicaRouter(
            rset, [ReplicaSpec("m", "v1", checkpoint=str(checkpoint))])
        registry = ModelRegistry(max_batch=1)
        registry.deploy("m", "v1", checkpoint=str(checkpoint), seed=seed)

        workers, per_worker = 4, 10
        total = workers * per_worker
        lock = threading.Lock()
        answered: list[tuple[np.ndarray, np.ndarray]] = []
        failures: list[str] = []

        def traffic(wid: int):
            rng = np.random.default_rng(seed * 821 + wid)
            try:
                with ServeClient("127.0.0.1", port, timeout=60) as client:
                    for _ in range(per_worker):
                        sample = rng.normal(size=(3, 8, 8)).astype(np.float32)
                        out = client.infer("m", sample)
                        with lock:
                            answered.append((sample, out))
            except (ServerError, ConnectionError, OSError) as exc:
                with lock:
                    failures.append(f"traffic error: {exc!r}")

        try:
            with registry, ServerThread(registry, ServeConfig(),
                                        router=router) as srv:
                port = srv.port
                threads = [threading.Thread(target=traffic, args=(i,))
                           for i in range(workers)]
                for t in threads:
                    t.start()
                _CLOCK.sleep(0.05)
                # The replica's process stays alive and its heartbeat keeps
                # flowing — only the serving path freezes. The supervisor
                # watchdog can't see this; the router's liveness probe must.
                _wedge_replica(rset.handles[1])
                for t in threads:
                    t.join(timeout=60)
                if not _poll_until(lambda: "respawn" in
                                   [e.kind for e in rset.events],
                                   timeout_s=15):
                    result.fail("wedged replica was never respawned")
        finally:
            rset.close()

    bitwise = sum(1 for sample, out in answered
                  if np.array_equal(out, reference.run(sample[None])[0]))
    if failures:
        result.fail("; ".join(sorted(set(failures))[:3]))
    if len(answered) != total:
        result.fail(f"{total - len(answered)} of {total} requests "
                    "lost behind the wedged replica")
    if bitwise != len(answered):
        result.fail(f"{len(answered) - bitwise} responses differ bitwise "
                    "after failover")
    kinds = [e.kind for e in rset.events]
    if "hang" not in kinds:
        result.fail(f"probe never declared the wedged replica hung "
                    f"(events: {kinds})")
    result.detail = (f"{bitwise}/{total} served across a wedged "
                     f"replica; probe killed + respawned it")
    return result


def _drill_serve_replica_rolling(seed: int):
    result = _drill_result("replica.rolling")
    from ..io import save_model
    from .replica import ReplicaConfig, ReplicaSet, ReplicaSpec
    from .router import ReplicaRouter

    dense = _tiny_model(seed)
    pruned = _tiny_model(seed, pruned=True)

    with tempfile.TemporaryDirectory() as tmp:
        ckpt_v1 = Path(tmp) / "v1.npz"
        ckpt_v2 = Path(tmp) / "v2.npz"
        ckpt_bad = Path(tmp) / "bad.npz"
        save_model(dense, ckpt_v1)
        save_model(pruned, ckpt_v2)
        save_model(dense, ckpt_bad)
        raw = bytearray(ckpt_bad.read_bytes())
        raw[len(raw) // 2] ^= 0xFF      # rot the gate-failing artifact
        ckpt_bad.write_bytes(bytes(raw))

        references = {"v1": _ref_engine(ckpt_v1, seed),
                      "v2": _ref_engine(ckpt_v2, seed)}

        config = ReplicaConfig(replicas=2, max_batch=1, engine_delay_ms=2.0,
                               probe_interval_s=0.1, probe_timeout_s=1.0)
        rset = ReplicaSet(config)
        router = ReplicaRouter(
            rset, [ReplicaSpec("m", "v1", checkpoint=str(ckpt_v1))])
        registry = ModelRegistry(max_batch=1)
        registry.deploy("m", "v1", checkpoint=str(ckpt_v1), seed=seed)

        stop = threading.Event()
        lock = threading.Lock()
        served = {"total": 0, "v1": 0, "v2": 0}
        failures: list[str] = []
        capacity = {"min": config.replicas}

        answered: list[tuple[str, np.ndarray, np.ndarray]] = []

        def traffic(wid: int):
            rng = np.random.default_rng(seed * 577 + wid)
            try:
                with ServeClient("127.0.0.1", port, timeout=60) as client:
                    while not stop.is_set():
                        sample = rng.normal(size=(3, 8, 8)).astype(np.float32)
                        response = client.infer_verbose("m", sample)
                        out = np.asarray(response["output"], np.float32)
                        version = response["model"].split("@")[1]
                        with lock:
                            served["total"] += 1
                            served[version] = served.get(version, 0) + 1
                            answered.append((version, sample, out))
            except (ServerError, ConnectionError, OSError) as exc:
                with lock:
                    failures.append(f"traffic error: {exc!r}")

        def watch_capacity():
            # Sampled invariant: a rolling deploy drains one replica at a
            # time, so routable capacity must never dip below N-1.
            while not stop.is_set():
                routable = sum(1 for p in router._peers
                               if p.alive and p.routable)
                with lock:
                    capacity["min"] = min(capacity["min"], routable)
                _CLOCK.sleep(0.002)

        try:
            with registry, ServerThread(registry, ServeConfig(),
                                        router=router) as srv:
                port = srv.port
                threads = [threading.Thread(target=traffic, args=(i,))
                           for i in range(4)]
                threads.append(threading.Thread(target=watch_capacity))
                for t in threads:
                    t.start()
                rejected = None
                try:
                    with ServeClient("127.0.0.1", port) as control:
                        _poll_until(lambda: served["total"] >= 10 or failures,
                                    timeout_s=30)
                        rolling = control.request(
                            {"op": "swap", "name": "m", "version": "v2",
                             "checkpoint": str(ckpt_v2)}).get("rolling")
                        _poll_until(lambda: served.get("v2", 0) >= 10
                                    or failures, timeout_s=15)
                        try:
                            control.request(
                                {"op": "swap", "name": "m", "version": "v3",
                                 "checkpoint": str(ckpt_bad)})
                            result.fail("gate-failing checkpoint deployed")
                        except ServerError as exc:
                            rejected = exc
                        stats = control.stats()
                finally:
                    stop.set()
                    for t in threads:
                        t.join(timeout=30)
        finally:
            rset.close()

    bad = sum(1 for version, sample, out in answered
              if not np.array_equal(
                  out, references[version].run(sample[None])[0]))
    if bad:
        result.fail(f"{bad} responses differ bitwise from their version's "
                    "reference engine")
    if failures:
        result.fail("; ".join(sorted(set(failures))[:3]))
    if not rolling or not rolling.get("ok"):
        result.fail(f"rolling deploy did not succeed: {rolling}")
    elif sorted(rolling.get("updated", [])) != [0, 1]:
        result.fail(f"rolling updated {rolling.get('updated')}, not both")
    if served.get("v2", 0) == 0:
        result.fail("no traffic reached v2 after the rolling deploy")
    if capacity["min"] < config.replicas - 1:
        result.fail(f"routable capacity dipped to {capacity['min']} "
                    f"(< N-1 = {config.replicas - 1})")
    if rejected is not None and rejected.error != "swap-rejected":
        result.fail(f"bad artifact failed oddly: {rejected.error}")
    models = {rid: (entry.get("models") or {}).get("m")
              for rid, entry in stats["replicas"]["per_replica"].items()}
    if any(ref != "m@v2" for ref in models.values()):
        result.fail(f"aborted roll left mixed versions: {models}")
    if stats["models"]["m"]["active"] != "m@v2":
        result.fail("frontend registry diverged from the fleet after abort")
    result.detail = (f"{served['total']} responses "
                     f"({served.get('v1', 0)} v1 / {served.get('v2', 0)} v2) "
                     f"across roll, min capacity {capacity['min']}, "
                     f"bad artifact rejected fleet-wide")
    return result


SERVE_DRILLS = [_drill_serve_shed, _drill_serve_swap, _drill_serve_drain,
                _drill_serve_restart, _drill_serve_replica_kill,
                _drill_serve_replica_hang, _drill_serve_replica_rolling]
