"""Async inference service over the compiled engine.

The front door of the repo: an asyncio newline-delimited-JSON server that
feeds an adaptively micro-batched :class:`repro.infer.BatchRunner` per
deployed model, sheds load explicitly once its pending queue or latency
budget is exceeded, exports per-request metrics through a ``stats`` verb,
and hot-swaps pruned checkpoints mid-traffic with zero dropped requests
(load → validate on a probe batch → atomic swap → drain the old engine).

Pieces (each importable on its own):

``scheduler``   adaptive batching window (widens under load, shrinks idle)
``shedding``    admission control: bounded queue depth + p99 SLO budget
``metrics``     latency reservoirs, counters, the ``stats`` snapshot
``registry``    name@version model registry, hot-swap, degrade-to-eager
``server``      the asyncio NDJSON frontend
``client``      minimal blocking client (tests, drills, load generator)
``loadgen``     closed-loop load generator behind ``repro serve-bench``
``bench``       the BENCH_serve.json lane
``drills``      ``serve.shed`` / ``serve.swap`` fault drills for
                ``python -m repro.verify --drills serve``

Typical use::

    from repro.serve import ModelRegistry, InferenceServer, ServeConfig

    registry = ModelRegistry()
    registry.deploy("vgg16", "v1", model=model)
    server = InferenceServer(registry, ServeConfig(port=7071))
    server.run_forever()        # or: ServerThread(server) in tests

See ``docs/serving.md`` for the wire protocol, shedding policy, hot-swap
lifecycle, and the BENCH_serve.json schema.
"""

from .metrics import LatencyReservoir, ServerMetrics
from .registry import (DeployReport, ModelRegistry, ModelVersion,
                       NoSuchModelError, SwapValidationError)
from .scheduler import AdaptiveWindow, WindowConfig
from .server import InferenceServer, ServeConfig, ServerThread
from .shedding import AdmissionController, SheddingConfig

__all__ = [
    "AdaptiveWindow", "WindowConfig",
    "AdmissionController", "SheddingConfig",
    "LatencyReservoir", "ServerMetrics",
    "DeployReport", "ModelRegistry", "ModelVersion", "NoSuchModelError",
    "SwapValidationError",
    "InferenceServer", "ServeConfig", "ServerThread",
]
