"""Async inference service over the compiled engine.

The front door of the repo: an asyncio newline-delimited-JSON server that
feeds an adaptively micro-batched :class:`repro.infer.BatchRunner` per
deployed model, sheds load explicitly once its pending queue or latency
budget is exceeded, exports per-request metrics through a ``stats`` verb,
and hot-swaps pruned checkpoints mid-traffic with zero dropped requests
(load → validate on a probe batch → atomic swap → drain the old engine).

Pieces (each importable on its own):

``scheduler``   adaptive batching window (widens under load, shrinks idle)
``shedding``    admission control: queue depth + p99 SLO + deadline gates
``metrics``     latency reservoirs, counters, the ``stats`` snapshot
``registry``    name@version model registry, hot-swap, degrade-to-eager
``manifest``    journaled deploy manifest + warm restart (``--resume``)
``server``      the asyncio NDJSON frontend (deadlines, graceful drain)
``replica``     replica worker processes: per-process registry + engine
                behind a unix socket, heartbeats, bounded respawn
``router``      health-aware dispatch across replicas: least-outstanding
                routing, liveness probes, rid-keyed failover, hedging,
                circuit breakers, rolling deploys, degrade
``client``      minimal blocking client (tests, drills, load generator)
``resilient``   self-healing client: reconnect, backoff, circuit breaker
``loadgen``     closed-loop load generator behind ``repro serve-bench``
``bench``       the BENCH_serve.json lane
``drills``      ``serve.shed`` / ``serve.swap`` / ``serve.drain`` /
                ``serve.restart`` / ``replica.kill`` / ``replica.hang`` /
                ``replica.rolling`` fault drills for
                ``python -m repro.verify --drills serve``

Typical use::

    from repro.serve import ModelRegistry, InferenceServer, ServeConfig

    registry = ModelRegistry()
    registry.deploy("vgg16", "v1", model=model)
    server = InferenceServer(registry, ServeConfig(port=7071))
    server.run_forever()        # or: ServerThread(server) in tests

See ``docs/serving.md`` for the wire protocol, shedding policy, hot-swap
lifecycle, and the BENCH_serve.json schema.
"""

from .manifest import RestoreReport, ServeManifest, restore_registry
from .metrics import LatencyReservoir, ServerMetrics, sum_counters
from .registry import (DeployReport, ModelRegistry, ModelVersion,
                       NoSuchModelError, SwapValidationError)
from .replica import ReplicaConfig, ReplicaSet, ReplicaSpec
from .resilient import CircuitBreaker, CircuitOpenError, ResilientClient
from .router import ReplicaRouter, ReplicasUnavailable
from .scheduler import AdaptiveWindow, WindowConfig
from .server import InferenceServer, ServeConfig, ServerThread
from .shedding import AdmissionController, SheddingConfig

__all__ = [
    "AdaptiveWindow", "WindowConfig",
    "AdmissionController", "SheddingConfig",
    "LatencyReservoir", "ServerMetrics", "sum_counters",
    "DeployReport", "ModelRegistry", "ModelVersion", "NoSuchModelError",
    "SwapValidationError",
    "ServeManifest", "RestoreReport", "restore_registry",
    "ReplicaConfig", "ReplicaSet", "ReplicaSpec",
    "ReplicaRouter", "ReplicasUnavailable",
    "CircuitBreaker", "CircuitOpenError", "ResilientClient",
    "InferenceServer", "ServeConfig", "ServerThread",
]
