"""Closed-loop load generator for the serving benchmark.

Closed-loop means each virtual client keeps exactly one request in
flight: send, wait for the answer, immediately send the next. Offered
load is therefore set by the *number of concurrent connections*, and the
measured throughput is the service's actual sustained rate at that
concurrency — the model matches the server's one-request-per-connection
protocol and avoids coordinated-omission artefacts of naive open-loop
generators.

Each worker records per-request wall-clock latency client-side; explicit
``overloaded`` rejections are counted (with their reject latency) but do
not contribute to the completion percentiles. A *drop* — an accepted
request that never got an answer — is a protocol violation and is
counted separately; the smoke bench asserts it stays zero.

``deadline_ms`` (optional) attaches a per-request deadline budget, which
exercises the deadline-propagation path end to end: requests shed at
admission count as rejected, requests that expire in the queue or while
waiting count as ``expired`` — neither pollutes the completion
percentiles.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from .client import Expired, Overloaded, ServeClient, ServerError

__all__ = ["LoadReport", "run_load"]


class LoadReport:
    """Aggregated result of one (model, connections) load point."""

    def __init__(self, model: str, connections: int, duration_s: float,
                 latencies_ms: list[float], reject_ms: list[float],
                 rejected: int, errors: int, dropped: int,
                 expired: int = 0):
        self.model = model
        self.connections = connections
        self.duration_s = duration_s
        self.latencies_ms = latencies_ms
        self.reject_ms = reject_ms
        self.rejected = rejected
        self.errors = errors
        self.dropped = dropped
        self.expired = expired

    @property
    def completed(self) -> int:
        return len(self.latencies_ms)

    @property
    def throughput_rps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.completed / self.duration_s

    def _pct(self, values: list[float], p: float) -> float | None:
        if not values:
            return None
        return float(np.percentile(np.asarray(values), p))

    def as_dict(self) -> dict:
        return {
            "model": self.model,
            "connections": self.connections,
            "duration_s": round(self.duration_s, 4),
            "completed": self.completed,
            "rejected": self.rejected,
            "errors": self.errors,
            "dropped": self.dropped,
            "expired": self.expired,
            "throughput_rps": round(self.throughput_rps, 1),
            "p50_ms": self._pct(self.latencies_ms, 50),
            "p99_ms": self._pct(self.latencies_ms, 99),
            "max_ms": max(self.latencies_ms) if self.latencies_ms else None,
            "reject_p50_ms": self._pct(self.reject_ms, 50),
            "reject_p99_ms": self._pct(self.reject_ms, 99),
        }


def run_load(host: str, port: int, model: str, sample_shape,
             connections: int, requests_per_connection: int,
             seed: int = 0, deadline_ms: float | None = None) -> LoadReport:
    """Drive ``connections`` closed-loop clients; aggregate their stats."""
    lock = threading.Lock()
    latencies: list[float] = []
    reject_ms: list[float] = []
    counters = {"rejected": 0, "errors": 0, "dropped": 0, "expired": 0}

    def worker(worker_id: int) -> None:
        rng = np.random.default_rng(seed * 10_007 + worker_id)
        local_lat, local_rej = [], []
        local = {"rejected": 0, "errors": 0, "dropped": 0, "expired": 0}
        try:
            with ServeClient(host, port) as client:
                for _ in range(requests_per_connection):
                    sample = rng.normal(size=sample_shape).astype(np.float32)
                    start = time.perf_counter()
                    try:
                        client.infer(model, sample, deadline_ms)
                        local_lat.append(
                            (time.perf_counter() - start) * 1e3)
                    except Overloaded:
                        local["rejected"] += 1
                        local_rej.append(
                            (time.perf_counter() - start) * 1e3)
                    except Expired:
                        local["expired"] += 1
                    except (ServerError, ConnectionError):
                        local["errors"] += 1
        except OSError:
            # Connection-level failure: every request this worker still
            # owed is an accepted-side unknown — count as dropped so the
            # bench can assert it never happens.
            outstanding = requests_per_connection - (
                len(local_lat) + local["rejected"] + local["errors"]
                + local["expired"])
            local["dropped"] += max(outstanding, 0)
        with lock:
            latencies.extend(local_lat)
            reject_ms.extend(local_rej)
            for key in counters:
                counters[key] += local[key]

    threads = [threading.Thread(target=worker, args=(i,), daemon=True)
               for i in range(connections)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    duration = time.perf_counter() - start
    return LoadReport(model, connections, duration, latencies, reject_ms,
                      counters["rejected"], counters["errors"],
                      counters["dropped"], counters["expired"])
